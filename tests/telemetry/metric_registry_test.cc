// Metric registry: striped counters and log2 histograms must aggregate
// exactly, hand out stable references, and survive concurrent writers
// racing a reader (the TSan CI job runs this file under
// -fsanitize=thread, which is the real assertion for the lock-free
// write path).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/metric_registry.h"

namespace sketch::telemetry {
namespace {

class MetricRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricRegistry::Instance().ResetForTest(); }
};

TEST_F(MetricRegistryTest, CounterAggregatesAdds) {
  Counter& counter = MetricRegistry::Instance().GetCounter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(5);
  counter.Increment();
  counter.Add(10);
  EXPECT_EQ(counter.Value(), 16u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(MetricRegistryTest, GetCounterReturnsStableReference) {
  Counter& a = MetricRegistry::Instance().GetCounter("test.stable");
  Counter& b = MetricRegistry::Instance().GetCounter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.stable");
}

TEST_F(MetricRegistryTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(5), 16u);
}

TEST_F(MetricRegistryTest, HistogramSnapshotAggregates) {
  Histogram& h = MetricRegistry::Instance().GetHistogram("test.hist");
  h.Record(0);
  h.Record(1);
  h.Record(7);    // bucket 3
  h.Record(256);  // bucket 9
  const Histogram::Snapshot snapshot = h.GetSnapshot();
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_EQ(snapshot.sum, 264u);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 1u);
  EXPECT_EQ(snapshot.buckets[3], 1u);
  EXPECT_EQ(snapshot.buckets[9], 1u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 66.0);
  // The 0-quantile lands in the zero bucket; the 1.0-quantile
  // interpolates to the exclusive upper bound of the max's bucket
  // (256 * 2 = 512) — the tightest value the log2 buckets can certify as
  // an upper bound for the maximum.
  EXPECT_EQ(snapshot.ApproxQuantile(0.0), 0u);
  EXPECT_EQ(snapshot.ApproxQuantile(1.0), 512u);
}

// Within-bucket linear interpolation must recover exact percentiles when
// samples fill a bucket uniformly — the case Prometheus's
// histogram_quantile is exact for — instead of snapping to the bucket
// lower bound (the old behavior, biased low by up to 2x).
TEST_F(MetricRegistryTest, InterpolatedQuantileMatchesExactOnUniformFill) {
  Histogram& h = MetricRegistry::Instance().GetHistogram("test.interp");
  // 256 samples spread uniformly across bucket 9 ([256, 512)).
  for (uint64_t v = 256; v < 512; ++v) h.Record(v);
  const Histogram::Snapshot snapshot = h.GetSnapshot();
  ASSERT_EQ(snapshot.count, 256u);
  // Exact percentile of {256..511}: p-th value is 256 + p * 256. The
  // interpolated estimate must land within one sample of exact, not one
  // bucket (the bucket is 256 wide).
  EXPECT_NEAR(snapshot.InterpolatedQuantile(0.50), 384.0, 1.0);
  EXPECT_NEAR(snapshot.InterpolatedQuantile(0.25), 320.0, 1.0);
  EXPECT_NEAR(snapshot.InterpolatedQuantile(0.99), 509.4, 1.0);
  // Degenerate cases: empty histogram and the all-zero bucket.
  Histogram& empty = MetricRegistry::Instance().GetHistogram("test.interp0");
  EXPECT_DOUBLE_EQ(empty.GetSnapshot().InterpolatedQuantile(0.5), 0.0);
  empty.Record(0);
  EXPECT_DOUBLE_EQ(empty.GetSnapshot().InterpolatedQuantile(0.99), 0.0);
}

TEST_F(MetricRegistryTest, DumpJsonIncludesInterpolatedQuantiles) {
  Histogram& h = MetricRegistry::Instance().GetHistogram("test.jsonq");
  for (uint64_t v = 256; v < 512; ++v) h.Record(v);
  const std::string json = MetricRegistry::Instance().DumpJson();
  EXPECT_NE(json.find("\"p50\":384"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST_F(MetricRegistryTest, DumpsContainRegisteredMetrics) {
  MetricRegistry::Instance().GetCounter("test.dump.counter").Add(3);
  MetricRegistry::Instance().GetHistogram("test.dump.hist").Record(42);
  const std::string text = MetricRegistry::Instance().DumpText();
  EXPECT_NE(text.find("test.dump.counter"), std::string::npos);
  EXPECT_NE(text.find("test.dump.hist"), std::string::npos);
  const std::string json = MetricRegistry::Instance().DumpJson();
  EXPECT_NE(json.find("\"test.dump.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.dump.hist\""), std::string::npos);
}

TEST_F(MetricRegistryTest, ResetForTestZeroesButKeepsRegistrations) {
  Counter& counter = MetricRegistry::Instance().GetCounter("test.reset");
  counter.Add(7);
  MetricRegistry::Instance().ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);  // cached reference still valid
  EXPECT_EQ(&counter, &MetricRegistry::Instance().GetCounter("test.reset"));
}

// Concurrency stress: writers hammer one counter and one histogram from
// many threads while a reader aggregates mid-flight. Totals must be exact
// after joining (relaxed atomics lose nothing), and TSan must stay quiet.
TEST_F(MetricRegistryTest, ConcurrentWritersAggregateExactly) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  Counter& counter = MetricRegistry::Instance().GetCounter("test.mt.counter");
  Histogram& hist = MetricRegistry::Instance().GetHistogram("test.mt.hist");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Mid-flight reads must be valid lower bounds, never garbage.
      EXPECT_LE(counter.Value(), kThreads * kPerThread);
      EXPECT_LE(hist.GetSnapshot().count, kThreads * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        hist.Record(i & 1023);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  const Histogram::Snapshot snapshot = hist.GetSnapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
}

}  // namespace
}  // namespace sketch::telemetry
