// Trace recorder: span capture, ring wraparound, the runtime switch, and
// the Chrome trace-event JSON export (golden-file schema check so the
// emitted bytes stay Perfetto-loadable).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/trace.h"

namespace sketch::telemetry {
namespace {

std::string ReadFileTrimmed(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

// First test in the file: the main thread's ring is created here, so its
// recorder-assigned tid is 1 and the exported JSON is fully deterministic
// (timestamps are injected, not read from the clock).
TEST(TraceGoldenTest, ChromeTraceJsonMatchesGoldenFile) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.RecordSpan("beta", 2000, 250);   // out of order on purpose:
  recorder.RecordSpan("alpha", 1000, 500);  // export sorts by start time
  recorder.RecordSpan("gamma", 2500, 125);
  const std::string json = recorder.ExportChromeTraceJson();
  const std::string golden =
      ReadFileTrimmed(std::string(SKETCH_TESTDATA_DIR) + "/trace_golden.json");
  EXPECT_EQ(json, golden);
  recorder.Clear();
}

TEST(TraceTest, CollectEventsSortsByStartTime) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.RecordSpan("late", 300, 10);
  recorder.RecordSpan("early", 100, 10);
  recorder.RecordSpan("middle", 200, 10);
  const std::vector<TraceEvent> events = recorder.CollectEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_STREQ(events[2].name, "late");
  recorder.Clear();
}

TEST(TraceTest, ScopedSpanRecordsOneCompleteEvent) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  { const ScopedSpan span("test.scope"); }
  const std::vector<TraceEvent> events = recorder.CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.scope");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GT(events[0].start_ns, 0u);
  recorder.Clear();
}

TEST(TraceTest, CounterSampleCarriesValue) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.RecordCounter("test.residual", 42.5);
  const std::vector<TraceEvent> events = recorder.CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'C');
  EXPECT_DOUBLE_EQ(events[0].value, 42.5);
  const std::string json = recorder.ExportChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42.5}"), std::string::npos);
  recorder.Clear();
}

TEST(TraceTest, DisabledRecorderDropsEverything) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.SetEnabled(false);
  recorder.RecordSpan("dropped", 1, 1);
  recorder.RecordCounter("dropped.counter", 1.0);
  { const ScopedSpan span("dropped.scope"); }
  recorder.SetEnabled(true);
  EXPECT_TRUE(recorder.CollectEvents().empty());
}

// Wraparound: rings cache their capacity at creation, so the small
// capacity must be exercised from a thread whose ring does not exist yet.
TEST(TraceTest, RingOverwritesOldestWhenFull) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  const std::size_t default_capacity = recorder.ring_capacity();
  constexpr std::size_t kSmall = 8;
  recorder.SetRingCapacity(kSmall);
  const uint64_t pushed_before = recorder.TotalRecorded();

  std::thread writer([&recorder] {
    for (uint64_t i = 0; i < 3 * kSmall; ++i) {
      recorder.RecordSpan("wrap", /*start_ns=*/i + 1, /*duration_ns=*/1);
    }
  });
  writer.join();
  recorder.SetRingCapacity(default_capacity);

  const std::vector<TraceEvent> events = recorder.CollectEvents();
  ASSERT_EQ(events.size(), kSmall);  // only the last `kSmall` retained
  for (const TraceEvent& event : events) {
    // Oldest events (start_ns <= 2 * kSmall) were overwritten.
    EXPECT_GT(event.start_ns, 2 * kSmall);
  }
  // TotalRecorded counts overwritten events too.
  EXPECT_EQ(recorder.TotalRecorded() - pushed_before, 3 * kSmall);
  recorder.Clear();
}

TEST(TraceTest, WriteChromeTraceRoundTrips) {
  TraceRecorder& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.RecordSpan("file.span", 100, 50);
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path));
  EXPECT_EQ(ReadFileTrimmed(path), recorder.ExportChromeTraceJson());
  recorder.Clear();
}

}  // namespace
}  // namespace sketch::telemetry
