// Introspection: every sketch type returns a StatsSnapshot whose
// geometry, occupancy, and memory numbers are consistent with the
// sketch's actual state; composite sketches nest children; the JSON
// rendering follows the documented schema exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "parallel/sharded_sketch.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/stream_summary.h"
#include "stream/generators.h"
#include "telemetry/stats.h"
#include "telemetry/telemetry.h"

namespace sketch {
namespace {

uint64_t HistogramTotal(const std::vector<uint64_t>& histogram) {
  uint64_t total = 0;
  for (uint64_t count : histogram) total += count;
  return total;
}

TEST(IntrospectTest, CountMinSnapshotIsConsistent) {
  CountMinSketch sketch(1024, 4, 7);
  const auto stream = MakeZipfStream(1 << 14, 1.1, 20000, 1);
  sketch.ApplyBatch(stream);

  const StatsSnapshot snapshot = sketch.Introspect();
  EXPECT_EQ(snapshot.type, "CountMinSketch");
  EXPECT_EQ(snapshot.cells, 4096u);
  EXPECT_EQ(snapshot.memory_bytes, sketch.MemoryFootprintBytes());
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("width", 0), 1024.0);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("depth", 0), 4.0);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("seed", 0), 7.0);
  // Every cell appears in exactly one magnitude bucket.
  EXPECT_EQ(HistogramTotal(snapshot.occupancy_log2), snapshot.cells);

  const double occupied = snapshot.FieldOr("occupied_fraction", -1);
  EXPECT_GT(occupied, 0.0);
  EXPECT_LE(occupied, 1.0);
  // ~10k distinct Zipf keys into width-1024 rows: heavily loaded, so the
  // balls-in-bins inversion must report far more keys than buckets and a
  // collision rate near 1.
  EXPECT_GT(snapshot.FieldOr("estimated_distinct_keys", 0), 1024.0);
  EXPECT_GT(snapshot.FieldOr("estimated_collision_rate", 0), 0.9);
  EXPECT_LE(snapshot.FieldOr("estimated_collision_rate", 0), 1.0);
}

TEST(IntrospectTest, OpCountersTrackLifetimeWhenEnabled) {
  CountMinSketch sketch(64, 3, 1);
  const auto stream = MakeZipfStream(1 << 10, 1.1, 1000, 2);
  sketch.ApplyBatch(stream);
  sketch.Update({5, 1});

  CountMinSketch other(64, 3, 1);
  other.Update({9, 2});
  sketch.Merge(other);

  const StatsSnapshot snapshot = sketch.Introspect();
#if SKETCH_TELEMETRY_ENABLED
  // Merge folds the other sketch's absorbed updates in.
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("updates", -1), 1002.0);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("batches", -1), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("merges", -1), 1.0);
#else
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("updates", -1), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("merges", -1), 0.0);
#endif
}

TEST(IntrospectTest, CountSketchAndAmsSnapshots) {
  const auto stream = MakeTurnstileStream(1 << 10, 1.0, 5000, 0.5, 2);

  CountSketch cs(512, 5, 3);
  cs.ApplyBatch(stream);
  const StatsSnapshot cs_snapshot = cs.Introspect();
  EXPECT_EQ(cs_snapshot.type, "CountSketch");
  EXPECT_EQ(cs_snapshot.cells, 512u * 5u);
  EXPECT_EQ(HistogramTotal(cs_snapshot.occupancy_log2), cs_snapshot.cells);
  EXPECT_GT(cs_snapshot.FieldOr("occupied_fraction", 0), 0.0);

  AmsSketch ams(256, 5, 4);
  ams.ApplyBatch(stream);
  const StatsSnapshot ams_snapshot = ams.Introspect();
  EXPECT_EQ(ams_snapshot.type, "AmsSketch");
  EXPECT_EQ(ams_snapshot.cells, 256u * 5u);
  EXPECT_GT(ams_snapshot.FieldOr("occupied_fraction", 0), 0.0);
}

TEST(IntrospectTest, BloomSnapshotEstimatesDistinctKeys) {
  BloomFilter filter(1 << 14, 5, 9);
  constexpr uint64_t kKeys = 1000;
  for (uint64_t k = 0; k < kKeys; ++k) filter.Insert(k * 7);

  const StatsSnapshot snapshot = filter.Introspect();
  EXPECT_EQ(snapshot.type, "BloomFilter");
  EXPECT_EQ(snapshot.cells, uint64_t{1} << 14);
  // Two-bucket occupancy: [clear, set], summing to the bit count.
  ASSERT_EQ(snapshot.occupancy_log2.size(), 2u);
  EXPECT_EQ(snapshot.occupancy_log2[0] + snapshot.occupancy_log2[1],
            snapshot.cells);
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("fill_ratio", -1),
                   filter.FillRatio());
  // The fill-ratio inversion should land within 15% of the true count.
  const double estimated = snapshot.FieldOr("estimated_distinct_keys", 0);
  EXPECT_NEAR(estimated, static_cast<double>(kKeys),
              0.15 * static_cast<double>(kKeys));
  EXPECT_GT(snapshot.FieldOr("current_fpr", -1), 0.0);
  EXPECT_LT(snapshot.FieldOr("current_fpr", 2), 1.0);
}

TEST(IntrospectTest, DyadicNestsOneChildPerLevel) {
  DyadicCountMin sketch(10, 128, 3, 5);
  sketch.UpdateAll(MakeZipfStream(1 << 10, 1.2, 5000, 6));

  const StatsSnapshot snapshot = sketch.Introspect();
  EXPECT_EQ(snapshot.type, "DyadicCountMin");
  ASSERT_EQ(snapshot.children.size(), 10u);
  EXPECT_EQ(snapshot.cells, sketch.SizeInCounters());
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("total_count", -1),
                   static_cast<double>(sketch.TotalCount()));
  uint64_t child_memory = 0;
  for (const StatsSnapshot& child : snapshot.children) {
    EXPECT_EQ(child.type, "CountMinSketch");
    child_memory += child.memory_bytes;
  }
  // Parent footprint covers all children (plus its own object body).
  EXPECT_GE(snapshot.memory_bytes, child_memory);
}

TEST(IntrospectTest, StreamSummaryNestsComponents) {
  StreamSummary::Options options;
  options.log_universe = 12;
  options.width = 256;
  options.verify_width = 512;
  StreamSummary summary(options);
  summary.UpdateAll(MakeZipfStream(1 << 12, 1.1, 4000, 8));

  const StatsSnapshot snapshot = summary.Introspect();
  EXPECT_EQ(snapshot.type, "StreamSummary");
  ASSERT_EQ(snapshot.children.size(), 3u);
  EXPECT_EQ(snapshot.children[0].type, "DyadicCountMin");
  EXPECT_EQ(snapshot.children[1].type, "CountSketch");
  EXPECT_EQ(snapshot.children[2].type, "AmsSketch");
  EXPECT_EQ(snapshot.cells, summary.SizeInCounters());
}

TEST(IntrospectTest, ShardedSketchNestsOneChildPerShard) {
  ThreadPool pool(4);
  ShardedSketch<CountMinSketch> sharded(CountMinSketch(256, 3, 11),
                                        /*num_shards=*/4, &pool);
  sharded.Ingest(MakeZipfStream(1 << 12, 1.1, 8000, 9));

  const StatsSnapshot snapshot = sharded.Introspect();
  EXPECT_EQ(snapshot.type, "ShardedSketch");
  EXPECT_DOUBLE_EQ(snapshot.FieldOr("num_shards", 0), 4.0);
  ASSERT_EQ(snapshot.children.size(), 4u);
  EXPECT_EQ(snapshot.cells, 4u * 256u * 3u);
  for (const StatsSnapshot& child : snapshot.children) {
    EXPECT_EQ(child.type, "CountMinSketch");
    // Ingest spreads work: every replica absorbed a share of the stream.
    EXPECT_GT(child.FieldOr("occupied_fraction", 0), 0.0);
  }
  // DebugString renders the whole tree.
  const std::string debug = sharded.DebugString();
  EXPECT_NE(debug.find("ShardedSketch"), std::string::npos);
  EXPECT_NE(debug.find("CountMinSketch"), std::string::npos);
}

// Schema golden: a hand-built snapshot with fixed values renders to these
// exact bytes in every build configuration.
TEST(IntrospectTest, ToJsonMatchesDocumentedSchema) {
  StatsSnapshot snapshot;
  snapshot.type = "Golden";
  snapshot.memory_bytes = 128;
  snapshot.cells = 16;
  snapshot.AddField("width", 8);
  snapshot.AddField("fraction", 0.5);
  snapshot.occupancy_log2 = {12, 3, 1};
  StatsSnapshot child;
  child.type = "Child";
  child.memory_bytes = 32;
  child.cells = 4;
  snapshot.children.push_back(child);

  EXPECT_EQ(snapshot.ToJson(),
            "{\"type\":\"Golden\",\"memory_bytes\":128,\"cells\":16,"
            "\"fields\":{\"width\":8,\"fraction\":0.5},"
            "\"occupancy_log2\":[12,3,1],"
            "\"children\":[{\"type\":\"Child\",\"memory_bytes\":32,"
            "\"cells\":4,\"fields\":{},\"occupancy_log2\":[],"
            "\"children\":[]}]}");
}

TEST(IntrospectTest, MagnitudeHistogramHandlesSignsAndExtremes) {
  const int64_t values[] = {0, 1, -1, 7, -8, INT64_MIN};
  const std::vector<uint64_t> histogram =
      telemetry::MagnitudeHistogram(values, 6);
  ASSERT_EQ(histogram.size(), 65u);  // INT64_MIN fills the last bucket
  EXPECT_EQ(histogram[0], 1u);       // the zero
  EXPECT_EQ(histogram[1], 2u);       // |1| and |-1|
  EXPECT_EQ(histogram[3], 1u);       // |7|
  EXPECT_EQ(histogram[4], 1u);       // |-8|
  EXPECT_EQ(histogram[64], 1u);      // |INT64_MIN| = 2^63
}

TEST(IntrospectTest, BallsInBinsHelpersAreSane) {
  // 63.2% occupancy is what one key per bucket produces in expectation:
  // the inversion must return ~width keys.
  const double keys = telemetry::EstimateDistinctKeys(0.632, 1000.0);
  EXPECT_NEAR(keys, 1000.0, 10.0);
  EXPECT_EQ(telemetry::EstimateDistinctKeys(0.0, 1000.0), 0.0);

  EXPECT_EQ(telemetry::EstimateCollisionRate(1.0, 1000.0), 0.0);
  const double low = telemetry::EstimateCollisionRate(10.0, 1000.0);
  const double high = telemetry::EstimateCollisionRate(5000.0, 1000.0);
  EXPECT_GT(low, 0.0);
  EXPECT_LT(low, 0.05);
  EXPECT_GT(high, 0.99);
}

}  // namespace
}  // namespace sketch
