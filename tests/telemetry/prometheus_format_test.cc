// Prometheus text exposition: the formatter is pure over explicit
// inputs, so its exact output is pinned against a checked-in golden file
// — including hostile sketch names (quotes, newlines, braces,
// backslashes) riding in label values, where an escaping bug would
// corrupt every sample that follows on a real scrape.
//
// Regenerate the golden (after an INTENTIONAL format change) by running
// this binary with SKETCH_UPDATE_GOLDEN=1 and committing the diff:
//   SKETCH_UPDATE_GOLDEN=1 ./prometheus_format_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/prometheus.h"

namespace sketch::telemetry {
namespace {

bool UpdateGolden() {
  const char* env = std::getenv("SKETCH_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string GoldenPath() {
  return std::string(SKETCH_TESTDATA_DIR) + "/prometheus_golden.txt";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PrometheusFormatTest, SanitizesMetricNames) {
  EXPECT_EQ(SanitizeMetricName("server.latency_ns.PointQuery"),
            "server_latency_ns_PointQuery");
  EXPECT_EQ(SanitizeMetricName("a:b_c9"), "a:b_c9");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("sp ace{x}"), "sp_ace_x_");
}

TEST(PrometheusFormatTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  // Braces are legal inside a quoted label value — no escaping, but they
  // must round-trip untouched.
  EXPECT_EQ(EscapeLabelValue("curly{}name"), "curly{}name");
}

TEST(PrometheusFormatTest, MatchesGoldenFile) {
  std::vector<std::pair<std::string, uint64_t>> counters = {
      {"server.frames_handled", 42},
      {"9starts.with.digit", 7},
  };

  Histogram::Snapshot latency;
  latency.count = 10;
  latency.sum = 1234;
  latency.buckets[0] = 2;  // exact zeros
  latency.buckets[1] = 3;  // value 1
  latency.buckets[9] = 5;  // [256, 511]
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms = {
      {"server.latency_ns.PointQuery", latency},
  };

  // Hostile sketch names in label values: every escape class, plus
  // braces (legal but easy to mangle), interleaved across two families
  // to exercise the grouped-by-family emission order.
  std::vector<PromGauge> gauges = {
      {"sketch_health_occupancy", {{"sketch", "evil\"quote"}}, 0.5},
      {"sketch_health_degraded", {{"sketch", "evil\"quote"}}, 0.0},
      {"sketch_health_occupancy", {{"sketch", "multi\nline"}}, 0.25},
      {"sketch_health_occupancy", {{"sketch", "curly{}name"}}, 1.0},
      {"sketch_health_occupancy", {{"sketch", "back\\slash"}}, 0.125},
      {"server_health_degraded", {}, 1.0},
  };

  const std::string text =
      FormatPrometheusText(counters, histograms, gauges);

  if (UpdateGolden()) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << text;
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  const std::string golden = ReadFileOrEmpty(GoldenPath());
  ASSERT_FALSE(golden.empty())
      << "missing golden " << GoldenPath()
      << " — run with SKETCH_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(text, golden)
      << "exposition format drifted; if intentional, regenerate with "
         "SKETCH_UPDATE_GOLDEN=1 and commit the diff";
}

// Structural invariants that hold for any input: cumulative buckets are
// monotone, +Inf equals _count, and the summary quantiles are ordered.
TEST(PrometheusFormatTest, CumulativeBucketsAreMonotone) {
  Histogram::Snapshot s;
  s.count = 100;
  s.sum = 5000;
  s.buckets[0] = 10;
  s.buckets[3] = 40;
  s.buckets[7] = 50;
  const std::string text = FormatPrometheusText({}, {{"h", s}}, {});
  uint64_t prev = 0;
  std::istringstream lines(text);
  std::string line;
  uint64_t inf_value = 0;
  uint64_t count_value = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("h_bucket", 0) == 0) {
      const uint64_t v =
          std::stoull(line.substr(line.find_last_of(' ') + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
      if (line.find("+Inf") != std::string::npos) inf_value = v;
    } else if (line.rfind("h_count", 0) == 0) {
      count_value = std::stoull(line.substr(line.find_last_of(' ') + 1));
    }
  }
  EXPECT_EQ(inf_value, 100u);
  EXPECT_EQ(count_value, 100u);
}

}  // namespace
}  // namespace sketch::telemetry
