// Integration tests for the survey's central identity: the hashing process
// IS a linear map c = Ax. The streaming sketches (src/sketch) and the
// explicit measurement matrices (src/cs) are built from the same hash
// families with the same seeds, so streaming a frequency vector through a
// sketch must produce exactly A x.

#include <gtest/gtest.h>

#include "cs/ensembles.h"
#include "cs/hashed_recovery.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(SketchLinearityTest, CountSketchCountersEqualMatrixProduct) {
  const uint64_t width = 64, depth = 3, universe = 4096, seed = 42;
  const auto updates = MakeZipfStream(universe, 1.1, 20000, 1);

  // Stream through the sketch.
  CountSketch cs(width, depth, seed);
  cs.UpdateAll(updates);

  // Build the frequency vector and multiply by the explicit matrix with
  // the same seed.
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  std::vector<double> x(universe, 0.0);
  for (const auto& [item, count] : oracle.counts()) {
    x[item] = static_cast<double>(count);
  }
  const CsrMatrix a = MakeCountSketchMatrix(width, depth, universe, seed);
  const std::vector<double> c = a.Multiply(x);

  for (uint64_t row = 0; row < depth; ++row) {
    for (uint64_t b = 0; b < width; ++b) {
      EXPECT_DOUBLE_EQ(static_cast<double>(cs.CounterAt(row, b)),
                       c[row * width + b])
          << "row " << row << " bucket " << b;
    }
  }
}

TEST(SketchLinearityTest, CountMinCountersEqualMatrixProduct) {
  const uint64_t width = 32, depth = 4, universe = 1024, seed = 7;
  const auto updates = MakeTurnstileStream(universe, 1.0, 5000, 0.3, 2);

  CountMinSketch cm(width, depth, seed);
  cm.UpdateAll(updates);

  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  std::vector<double> x(universe, 0.0);
  for (const auto& [item, count] : oracle.counts()) {
    x[item] = static_cast<double>(count);
  }
  const CsrMatrix a = MakeCountMinMatrix(width, depth, universe, seed);
  const std::vector<double> c = a.Multiply(x);

  for (uint64_t row = 0; row < depth; ++row) {
    for (uint64_t b = 0; b < width; ++b) {
      EXPECT_DOUBLE_EQ(static_cast<double>(cm.CounterAt(row, b)),
                       c[row * width + b]);
    }
  }
}

TEST(SketchLinearityTest, HashedRecoveryMatrixMatchesCountSketchMatrix) {
  // HashedRecovery and MakeCountSketchMatrix use the same seed derivation;
  // their matrices must be identical entry for entry.
  const uint64_t width = 16, depth = 3, n = 256, seed = 9;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, width,
                          depth, n, seed);
  const CsrMatrix a = hr.ToMatrix();
  const CsrMatrix b = MakeCountSketchMatrix(width, depth, n, seed);
  const std::vector<double> probe(n, 1.0);
  std::vector<double> pa = a.Multiply(probe);
  std::vector<double> pb = b.Multiply(probe);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(SketchLinearityTest, SketchOfDifferenceIsDifferenceOfSketches) {
  // Linearity in the update stream: sketch(S1 - S2) == sketch(S1) -
  // sketch(S2), the property that powers distributed merging and set
  // reconciliation.
  const auto s1 = MakeZipfStream(512, 1.0, 3000, 3);
  const auto s2 = MakeZipfStream(512, 1.0, 3000, 4);
  CountSketch a(64, 3, 5);
  a.UpdateAll(s1);
  for (const StreamUpdate& u : s2) a.Update({u.item, -u.delta});

  CountSketch b(64, 3, 5);
  for (const StreamUpdate& u : s1) b.Update(u);
  CountSketch c(64, 3, 5);
  for (const StreamUpdate& u : s2) c.Update(u);
  // a == b - c counter-for-counter (linearity holds on the raw sketch
  // state; the median estimator is not linear).
  for (uint64_t row = 0; row < 3; ++row) {
    for (uint64_t bucket = 0; bucket < 64; ++bucket) {
      EXPECT_EQ(a.CounterAt(row, bucket),
                b.CounterAt(row, bucket) - c.CounterAt(row, bucket));
    }
  }
}

}  // namespace
}  // namespace sketch
