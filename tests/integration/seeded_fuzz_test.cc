// Seeded randomized property sweeps ("fuzz-lite"): every invariant below
// must hold for *every* seed, not just the hand-picked ones in the unit
// suites. Each TEST_P instance runs one seed so failures name the exact
// reproducing seed.

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"
#include "cs/hashed_recovery.h"
#include "cs/signals.h"
#include "fft/fft.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/iblt.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

class SeededFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }
};

TEST_P(SeededFuzzTest, CountMinNeverUnderestimatesOnRandomTurnstile) {
  Xoshiro256StarStar rng(seed());
  const auto updates = MakeTurnstileStream(
      1 + rng.NextBounded(5000), 0.5 + rng.NextDouble(),
      1000 + rng.NextBounded(20000), rng.NextDouble(), seed());
  CountMinSketch cm(16 + rng.NextBounded(512), 1 + rng.NextBounded(6),
                    seed());
  FrequencyOracle oracle;
  cm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  for (const auto& [item, count] : oracle.counts()) {
    ASSERT_GE(cm.Estimate(item), count)
        << "seed " << seed() << " item " << item;
  }
}

TEST_P(SeededFuzzTest, CountSketchDeletionsAlwaysCancel) {
  Xoshiro256StarStar rng(seed());
  const auto updates =
      MakeZipfStream(1 + rng.NextBounded(2000), rng.NextDouble() * 1.5,
                     500 + rng.NextBounded(5000), seed());
  CountSketch cs(16 + rng.NextBounded(256), 1 + rng.NextBounded(5), seed());
  cs.UpdateAll(updates);
  for (const StreamUpdate& u : updates) cs.Update({u.item, -u.delta});
  for (uint64_t row = 0; row < cs.depth(); ++row) {
    for (uint64_t b = 0; b < cs.width(); ++b) {
      ASSERT_EQ(cs.CounterAt(row, b), 0) << "seed " << seed();
    }
  }
}

TEST_P(SeededFuzzTest, MisraGriesAndSpaceSavingBoundsHold) {
  Xoshiro256StarStar rng(seed());
  const uint64_t capacity = 2 + rng.NextBounded(100);
  const uint64_t length = 1000 + rng.NextBounded(20000);
  const auto updates =
      MakeZipfStream(1 + rng.NextBounded(10000), rng.NextDouble() * 2,
                     length, seed());
  MisraGries mg(capacity);
  SpaceSaving ss(capacity);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    mg.Update(u.item);
    ss.Update(u.item);
    oracle.Update(u);
  }
  const auto bound = static_cast<int64_t>(length / (capacity + 1));
  for (const auto& [item, count] : oracle.counts()) {
    // MG: count - N/(c+1) <= est <= count.
    ASSERT_LE(mg.Estimate(item), count);
    ASSERT_GE(mg.Estimate(item), count - bound);
    // SS: tracked items overestimate by at most N/c.
    const int64_t ss_est = ss.Estimate(item);
    if (ss_est > 0) {
      ASSERT_GE(ss_est, count);
      ASSERT_LE(ss_est - count, static_cast<int64_t>(length / capacity));
    }
  }
}

TEST_P(SeededFuzzTest, IbltRandomOpSequenceStaysConsistent) {
  Xoshiro256StarStar rng(seed());
  Iblt iblt(300, 3, seed());
  std::map<uint64_t, uint64_t> reference;
  // Random interleaving of inserts and deletes, keeping <= 150 live pairs.
  for (int op = 0; op < 2000; ++op) {
    if (!reference.empty() && (rng.Next() & 1)) {
      auto it = reference.begin();
      std::advance(it, rng.NextBounded(reference.size()));
      iblt.Delete(it->first, it->second);
      reference.erase(it);
    } else if (reference.size() < 150) {
      const uint64_t key = rng.Next() | 1;
      const uint64_t value = rng.Next();
      if (reference.emplace(key, value).second) iblt.Insert(key, value);
    }
  }
  const auto [entries, complete] = iblt.ListEntries();
  ASSERT_TRUE(complete) << "seed " << seed();
  ASSERT_EQ(entries.size(), reference.size());
  for (const Iblt::Entry& e : entries) {
    ASSERT_EQ(e.sign, +1);
    auto it = reference.find(e.key);
    ASSERT_NE(it, reference.end()) << "seed " << seed();
    ASSERT_EQ(it->second, e.value);
  }
}

TEST_P(SeededFuzzTest, DyadicRangeSumsDominateTruth) {
  Xoshiro256StarStar rng(seed());
  const int log_n = 10;
  const auto updates = MakeZipfStream(1ULL << log_n, rng.NextDouble() * 1.5,
                                      2000 + rng.NextBounded(10000), seed(),
                                      false);
  DyadicCountMin dcm(log_n, 512, 4, seed());
  FrequencyOracle oracle;
  dcm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  for (int probe = 0; probe < 20; ++probe) {
    uint64_t lo = rng.NextBounded(1ULL << log_n);
    uint64_t hi = rng.NextBounded(1ULL << log_n);
    if (lo > hi) std::swap(lo, hi);
    int64_t truth = 0;
    for (uint64_t i = lo; i <= hi; ++i) truth += oracle.Count(i);
    ASSERT_GE(dcm.RangeSum(lo, hi), truth)
        << "seed " << seed() << " range [" << lo << "," << hi << "]";
  }
}

TEST_P(SeededFuzzTest, FftRoundTripOnRandomSizes) {
  Xoshiro256StarStar rng(seed());
  const uint64_t n = 1 + rng.NextBounded(600);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.NextGaussian(), rng.NextGaussian());
  const std::vector<Complex> back = InverseFft(Fft(x));
  ASSERT_LT(L2Distance(x, back), 1e-8 * (1.0 + L2Norm(x)))
      << "seed " << seed() << " n " << n;
}

TEST_P(SeededFuzzTest, HashedRecoveryMeasureMatchesMatrixAlways) {
  Xoshiro256StarStar rng(seed());
  const uint64_t n = 64 + rng.NextBounded(1000);
  const HashedRecovery hr(
      rng.Next() & 1 ? HashedRecovery::Variant::kCountSketch
                     : HashedRecovery::Variant::kCountMin,
      4 + rng.NextBounded(60), 1 + rng.NextBounded(6), n, seed());
  const SparseVector x = MakeSparseSignal(
      n, rng.NextBounded(n / 2), SignalValueDistribution::kGaussian, seed());
  const std::vector<double> direct = hr.Measure(x);
  const std::vector<double> via_matrix = hr.ToMatrix().Multiply(x.ToDense());
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i], via_matrix[i], 1e-9) << "seed " << seed();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace sketch
