// End-to-end pipelines across modules: signals generated in src/cs,
// measured through matrices/operators from src/cs and src/dimred, and
// recovered by each algorithm family — the cross-module contracts the
// benchmark harnesses rely on.

#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/hashed_recovery.h"
#include "cs/iht.h"
#include "cs/omp.h"
#include "cs/signals.h"
#include "cs/ssmp.h"
#include "dimred/jl_transform.h"

namespace sketch {
namespace {

TEST(RecoveryPipelineTest, AllFourAlgorithmsRecoverTheSameSignal) {
  const uint64_t n = 1024, k = 8;
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 99);
  const std::vector<double> x_dense = x.ToDense();
  const double x_norm = L2Norm(x_dense);

  // 1. Count-Sketch hashing recovery (depth ~ log n for exactness).
  {
    const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k,
                            15, n, 1);
    const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
    EXPECT_LT(L2Distance(rec.ToDense(), x_dense), 1e-6 * x_norm) << "CS";
  }
  // 2. SSMP on a sparse binary matrix.
  {
    const CsrMatrix a = MakeSparseBinaryMatrix(20 * k, n, 8, 2);
    SsmpOptions opt;
    opt.sparsity = k;
    const SsmpResult rec = SsmpRecover(a, a.Multiply(x_dense), opt);
    EXPECT_LT(L2Distance(rec.estimate.ToDense(), x_dense), 1e-6 * x_norm)
        << "SSMP";
  }
  // 3. IHT on dense Gaussian.
  {
    auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(20 * k, n, 3));
    IhtOptions opt;
    opt.sparsity = k;
    const IhtResult rec =
        IhtRecover(LinearOperator::FromDense(a), a->Multiply(x_dense), opt);
    EXPECT_LT(L2Distance(rec.estimate.ToDense(), x_dense), 1e-4 * x_norm)
        << "IHT";
  }
  // 4. OMP on dense Gaussian.
  {
    const DenseMatrix a = MakeGaussianMatrix(20 * k, n, 4);
    OmpOptions opt;
    opt.sparsity = k;
    const OmpResult rec = OmpRecover(a, a.Multiply(x_dense), opt);
    EXPECT_LT(L2Distance(rec.estimate.ToDense(), x_dense), 1e-8 * x_norm)
        << "OMP";
  }
}

TEST(RecoveryPipelineTest, SparseMatrixMeasurementsFeedGenericIht) {
  // The same sparse binary ensemble drives both SSMP (native) and IHT
  // (through the LinearOperator interface): results must agree on an
  // easy instance.
  const uint64_t n = 512, k = 5, m = 200;
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 5);
  auto a = std::make_shared<CsrMatrix>(MakeSparseBinaryMatrix(m, n, 8, 6));
  const std::vector<double> y = a->Multiply(x.ToDense());

  SsmpOptions sopt;
  sopt.sparsity = k;
  const SsmpResult ssmp = SsmpRecover(*a, y, sopt);

  IhtOptions iopt;
  iopt.sparsity = k;
  iopt.max_iterations = 500;
  const IhtResult iht = IhtRecover(LinearOperator::FromCsr(a), y, iopt);

  EXPECT_LT(L2Distance(ssmp.estimate.ToDense(), x.ToDense()), 1e-6);
  EXPECT_LT(L2Distance(iht.estimate.ToDense(), x.ToDense()), 1e-3);
}

TEST(RecoveryPipelineTest, CompressibleSignalBestKTermGuarantee) {
  // For a power-law (not exactly sparse) signal, Count-Sketch recovery
  // must achieve error comparable to the best k-term approximation.
  const uint64_t n = 4096, k = 32;
  const std::vector<double> x = MakePowerLawSignal(n, 1.0, 7);
  const double best_k = BestKTermError(x, k, 2);
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k, 9,
                          n, 7);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  const double err = L2Distance(rec.ToDense(), x);
  EXPECT_LE(err, 3.0 * best_k) << "err=" << err << " best=" << best_k;
}

TEST(RecoveryPipelineTest, JlSketchPreservesRecoveredSignalGeometry) {
  // Recover a signal, then verify a JL transform preserves the distance
  // between the recovery and the truth (cross-module consistency of the
  // dimred layer with cs outputs).
  const uint64_t n = 2048, k = 10;
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 8);
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 8 * k, 7, n,
                          8);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  const SparseJlTransform jl(n, 512, 8, 8);
  const double original = L2Distance(rec.ToDense(), x.ToDense());
  const double embedded = L2Distance(jl.Apply(rec), jl.Apply(x));
  // Both should be ~0; the embedded distance must not inflate it.
  EXPECT_LE(embedded, original + 1e-9);
}

TEST(RecoveryPipelineTest, MeasurementBudgetOrderingSparseVsDense) {
  // With the *same* tight measurement budget, dense-Gaussian OMP should
  // succeed while still being far more expensive per operation — here we
  // only verify both succeed at their cited budgets: m = O(k log n) for
  // hashing, m = O(k log(n/k)) for Gaussian.
  const uint64_t n = 1024, k = 6;
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 9);
  const uint64_t m_hash = 16 * k * 13;  // width 16k, depth ~ log n
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k, 13,
                          n, 9);
  ASSERT_EQ(hr.NumMeasurements(), m_hash);
  const SparseVector rec_h = hr.RecoverTopK(hr.Measure(x), k);

  const uint64_t m_dense = 4 * k * 5;  // ~ k log(n/k)
  const DenseMatrix a = MakeGaussianMatrix(m_dense, n, 9);
  OmpOptions opt;
  opt.sparsity = k;
  const OmpResult rec_d = OmpRecover(a, a.Multiply(x.ToDense()), opt);

  EXPECT_LT(L2Distance(rec_h.ToDense(), x.ToDense()), 1e-6);
  EXPECT_LT(L2Distance(rec_d.estimate.ToDense(), x.ToDense()), 1e-6);
  EXPECT_LT(m_dense, m_hash);  // the dense budget is the smaller one
}

}  // namespace
}  // namespace sketch
