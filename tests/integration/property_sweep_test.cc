// Parameterized property sweeps across configuration grids — the
// "does the guarantee hold at every operating point" complement to the
// per-seed fuzz suite.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"
#include "sfft/sfft.h"
#include "sketch/bloom_filter.h"
#include "sketch/iblt.h"
#include "sketch/stream_summary.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

// ---------------------------------------------------------------------------
// Bloom filter: measured FPR tracks theory across (target FPR, load).

class BloomSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BloomSweepTest, MeasuredFprWithinTheoryBand) {
  const auto [target_fpr, load_factor] = GetParam();
  const uint64_t design_keys = 20000;
  const auto inserted =
      static_cast<uint64_t>(load_factor * design_keys);
  BloomFilter bf = BloomFilter::FromFalsePositiveRate(design_keys,
                                                      target_fpr, 99);
  // Pre-mixed keys: with 2-wise polynomial hashes, sequential inserts and
  // sequential probes are affine-correlated (probe positions are a
  // constant shift of insert positions), which distorts the FPR far from
  // the random-key model the formula describes.
  for (uint64_t k = 0; k < inserted; ++k) bf.Insert(SplitMix64Once(k));
  int fp = 0;
  const int probes = 40000;
  for (int i = 0; i < probes; ++i) {
    fp += bf.MayContain(SplitMix64Once(design_keys + 1 + i) ^ 0xabcdULL);
  }
  const double measured = static_cast<double>(fp) / probes;
  const double theory = bf.TheoreticalFpr(inserted);
  // Within ~2x + sampling slack of the analytic rate at this load (the
  // classic formula slightly underestimates at overload fills).
  EXPECT_LE(measured, 2.5 * theory + 3.0 / probes)
      << "target " << target_fpr << " load " << load_factor;
  // No false negatives, ever.
  for (uint64_t k = 0; k < inserted; k += 97) {
    ASSERT_TRUE(bf.MayContain(SplitMix64Once(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BloomSweepTest,
    ::testing::Combine(::testing::Values(0.1, 0.01, 0.001),
                       ::testing::Values(0.5, 1.0, 1.5)));

// ---------------------------------------------------------------------------
// Exact sparse FFT: recovery across the (n, k) grid.

class SfftSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SfftSweepTest, ExactRecoveryAcrossGrid) {
  const auto [log_n, k] = GetParam();
  const uint64_t n = 1ULL << log_n;
  if (k * 8 > n) GTEST_SKIP() << "not sparse at this size";
  const SparseSpectrumSignal signal =
      MakeSparseSpectrumSignal(n, k, 1000 + log_n * 31 + k);
  SfftOptions options;
  options.sparsity = k;
  options.max_rounds = 20;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged) << "n=" << n << " k=" << k;
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal),
            1e-6 * std::sqrt(static_cast<double>(k)))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Grid, SfftSweepTest,
                         ::testing::Combine(::testing::Values(10, 13, 16),
                                            ::testing::Values(1, 7, 32)));

// ---------------------------------------------------------------------------
// IBLT: listing succeeds above threshold across hash counts and sizes.

class IbltSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(IbltSweepTest, ListsCompletelyAtSafeLoad) {
  const auto [hashes, pairs] = GetParam();
  // 1.6 cells/pair is above both the 3- and 4-hash thresholds.
  Iblt iblt(static_cast<uint64_t>(1.6 * static_cast<double>(pairs)) +
                3 * hashes,
            hashes,
            pairs + hashes);
  // Keys are pre-mixed: IBLT peeling thresholds assume random-looking
  // keys, and the per-subtable hashes are only 2-wise independent —
  // structured arithmetic progressions can correlate across subtables.
  for (uint64_t p = 0; p < pairs; ++p) {
    iblt.Insert(SplitMix64Once(p) | 1, p);
  }
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_TRUE(complete) << "hashes=" << hashes << " pairs=" << pairs;
  EXPECT_EQ(entries.size(), pairs);
}

INSTANTIATE_TEST_SUITE_P(Grid, IbltSweepTest,
                         ::testing::Combine(::testing::Values(3, 4, 5),
                                            ::testing::Values(50, 500,
                                                              5000)));

// ---------------------------------------------------------------------------
// StreamSummary: heavy-hitter recall 1 across skew and phi.

class SummarySweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SummarySweepTest, HeavyHitterRecallIsOne) {
  const auto [alpha, phi] = GetParam();
  StreamSummary::Options options;
  options.log_universe = 14;
  options.seed = 41;
  StreamSummary summary(options);
  const auto updates =
      MakeZipfStream(1 << 14, alpha, 40000,
                     static_cast<uint64_t>(alpha * 100 + phi * 1e5));
  FrequencyOracle oracle;
  summary.UpdateAll(updates);
  oracle.UpdateAll(updates);
  const auto truth =
      oracle.ItemsAbove(static_cast<int64_t>(phi * 40000));
  const PrecisionRecall pr =
      ComputePrecisionRecall(summary.HeavyHitters(phi), truth);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0) << "alpha=" << alpha << " phi=" << phi;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SummarySweepTest,
    ::testing::Combine(::testing::Values(0.9, 1.2, 1.6),
                       ::testing::Values(0.001, 0.005, 0.02)));

}  // namespace
}  // namespace sketch
