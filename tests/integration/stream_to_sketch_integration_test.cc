// Integration: full streaming pipelines — generators -> sketches ->
// query/recovery — including the heavy-hitter comparison of E2 and the
// set-reconciliation use of IBLTs.

#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/iblt.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(StreamToSketchTest, AllHeavyHitterMethodsAgreeOnSkewedStream) {
  const int log_n = 14;
  const uint64_t universe = 1ULL << log_n;
  const uint64_t stream_len = 50000;
  const auto updates = MakeZipfStream(universe, 1.4, stream_len, 1);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  const int64_t threshold = stream_len / 100;  // phi = 1%
  const auto truth = oracle.ItemsAbove(threshold);
  ASSERT_FALSE(truth.empty());

  // Dyadic Count-Min.
  DyadicCountMin dcm(log_n, 2048, 4, 2);
  dcm.UpdateAll(updates);
  const auto dcm_found = dcm.HeavyHitters(threshold);
  EXPECT_DOUBLE_EQ(ComputePrecisionRecall(dcm_found, truth).recall, 1.0);

  // Misra-Gries with capacity >> 1/phi.
  MisraGries mg(400);
  for (const StreamUpdate& u : updates) mg.Update(u.item);
  std::vector<uint64_t> mg_found;
  for (uint64_t item : truth) {
    if (mg.Estimate(item) > 0) mg_found.push_back(item);
  }
  EXPECT_EQ(mg_found.size(), truth.size());

  // SpaceSaving with capacity >> 1/phi.
  SpaceSaving ss(400);
  for (const StreamUpdate& u : updates) ss.Update(u.item);
  const PrecisionRecall ss_pr =
      ComputePrecisionRecall(ss.ItemsAbove(threshold), truth);
  EXPECT_DOUBLE_EQ(ss_pr.recall, 1.0);
}

TEST(StreamToSketchTest, CountSketchTopKOnCandidateSetMatchesOracle) {
  const uint64_t universe = 1 << 12;
  const auto updates = MakeZipfStream(universe, 1.3, 40000, 3);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  CountSketch cs(4096, 5, 3);
  cs.UpdateAll(updates);
  // Score every universe element by sketch estimate; top-10 should match
  // the oracle's top-10 almost exactly.
  std::vector<std::pair<int64_t, uint64_t>> scored;
  for (uint64_t i = 0; i < universe; ++i) {
    scored.emplace_back(cs.Estimate(i), i);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<uint64_t> sketch_top;
  for (int i = 0; i < 10; ++i) sketch_top.push_back(scored[i].second);
  const auto oracle_top = oracle.TopK(10);
  const PrecisionRecall pr = ComputePrecisionRecall(sketch_top, oracle_top);
  EXPECT_GE(pr.recall, 0.9);
}

TEST(StreamToSketchTest, IbltSetReconciliationBetweenTwoStreams) {
  // Two hosts hold almost-identical key sets; IBLT subtraction recovers
  // the (small) difference regardless of the (large) common size.
  const uint64_t common = 5000, unique_each = 20;
  Iblt host_a(256, 3, 4);
  Iblt host_b(256, 3, 4);
  for (uint64_t k = 0; k < common; ++k) {
    host_a.Insert(k + 1, k);
    host_b.Insert(k + 1, k);
  }
  std::set<uint64_t> only_a, only_b;
  for (uint64_t k = 0; k < unique_each; ++k) {
    only_a.insert(100000 + k);
    only_b.insert(200000 + k);
    host_a.Insert(100000 + k, k);
    host_b.Insert(200000 + k, k);
  }
  host_a.Subtract(host_b);
  const auto [entries, complete] = host_a.ListEntries();
  EXPECT_TRUE(complete);
  ASSERT_EQ(entries.size(), 2 * unique_each);
  for (const Iblt::Entry& e : entries) {
    if (e.sign > 0) {
      EXPECT_TRUE(only_a.count(e.key));
    } else {
      EXPECT_TRUE(only_b.count(e.key));
    }
  }
}

TEST(StreamToSketchTest, TurnstileDeletionsKeepDyadicQuantilesConsistent) {
  // Insert a block, delete half; quantiles should reflect the survivors.
  const int log_n = 10;
  DyadicCountMin dcm(log_n, 512, 4, 5);
  // Insert items 0..511 ten times each, then delete items 256..511.
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 0; i < 512; ++i) dcm.Update({i, 1});
  }
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 256; i < 512; ++i) dcm.Update({i, -1});
  }
  EXPECT_EQ(dcm.TotalCount(), 10 * 256);
  // All mass now lives on [0, 256): the median should be ~128.
  const uint64_t median = dcm.Quantile(0.5);
  EXPECT_NEAR(static_cast<double>(median), 128.0, 16.0);
}

TEST(StreamToSketchTest, AdversarialSingleItemStream) {
  // One key owns the whole stream: every structure must nail it.
  const auto updates = MakeSingleItemStream(777, 10000);
  CountSketch cs(64, 5, 6);
  cs.UpdateAll(updates);
  EXPECT_EQ(cs.Estimate(777), 10000);
  MisraGries mg(4);
  for (const StreamUpdate& u : updates) mg.Update(u.item);
  EXPECT_EQ(mg.Estimate(777), 10000);
  SpaceSaving ss(4);
  for (const StreamUpdate& u : updates) ss.Update(u.item);
  EXPECT_EQ(ss.Estimate(777), 10000);
}

}  // namespace
}  // namespace sketch
