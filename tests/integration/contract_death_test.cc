// Contract tests: the library's no-exceptions policy means precondition
// violations abort with a CHECK message. These death tests pin down the
// contracts a downstream user relies on (and that refactors must not
// silently weaken).

#include <gtest/gtest.h>

#include "common/check.h"
#include "cs/hashed_recovery.h"
#include "fft/fft.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/least_squares.h"
#include "sfft/crt_sfft.h"
#include "sfft/sfft.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/iblt.h"

namespace sketch {
namespace {

TEST(ContractDeathTest, CountMinRejectsZeroGeometry) {
  EXPECT_DEATH(CountMinSketch(0, 1, 1), "width");
  EXPECT_DEATH(CountMinSketch(1, 0, 1), "depth");
}

TEST(ContractDeathTest, CountMinRejectsMergeAcrossSeeds) {
  CountMinSketch a(16, 2, 1);
  CountMinSketch b(16, 2, 2);  // different seed: different hash functions
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, CountMinRejectsMergeAcrossGeometry) {
  CountMinSketch a(16, 2, 1);
  CountMinSketch wide(32, 2, 1);
  EXPECT_DEATH(a.Merge(wide), "identical geometry and seed");
}

TEST(ContractDeathTest, ConservativeUpdateRejectsNonPositiveDelta) {
  CountMinSketch cm(16, 2, 1);
  EXPECT_DEATH(cm.UpdateConservative(1, 0), "delta");
  EXPECT_DEATH(cm.UpdateConservative(1, -5), "delta");
}

TEST(ContractDeathTest, CountSketchInnerProductRequiresSameSeed) {
  CountSketch a(16, 3, 1);
  CountSketch b(16, 3, 2);
  EXPECT_DEATH(a.EstimateInnerProduct(b), "identical geometry and seed");
}

TEST(ContractDeathTest, IbltSubtractRequiresSameFamily) {
  Iblt a(60, 3, 1);
  Iblt b(60, 3, 2);
  EXPECT_DEATH(a.Subtract(b), "identical geometry and seed");
}

TEST(ContractDeathTest, FftRejectsEmptyInput) {
  EXPECT_DEATH(Fft(std::vector<Complex>{}), "");
}

TEST(ContractDeathTest, ExactSfftRejectsNonPowerOfTwo) {
  const std::vector<Complex> x(100, Complex(0, 0));
  SfftOptions options;
  EXPECT_DEATH(ExactSparseFft(x, options), "IsPowerOfTwo");
}

TEST(ContractDeathTest, CrtSfftRejectsPrimePowerLengths) {
  const std::vector<Complex> x(64, Complex(0, 0));
  CrtSfftOptions options;
  EXPECT_DEATH(CrtSparseFft(x, options), "co-prime");
}

TEST(ContractDeathTest, LeastSquaresRejectsUnderdeterminedSystems) {
  DenseMatrix a(3, 5);
  EXPECT_DEATH(SolveLeastSquaresQr(a, {1.0, 2.0, 3.0}), "");
}

TEST(ContractDeathTest, LeastSquaresAbortsOnRankDeficiency) {
  DenseMatrix a(4, 2);  // second column all zero: rank 1
  a.At(0, 0) = 1.0;
  a.At(1, 0) = 2.0;
  EXPECT_DEATH(SolveLeastSquaresQr(a, {1.0, 1.0, 1.0, 1.0}),
               "rank deficient");
}

TEST(ContractDeathTest, DenseMatrixMultiplyRejectsWrongDimension) {
  DenseMatrix a(2, 3);
  EXPECT_DEATH(a.Multiply(std::vector<double>{1.0, 2.0}), "");
}

TEST(ContractDeathTest, CsrTripletsOutOfRangeRejected) {
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), "");
}

TEST(ContractDeathTest, HashedRecoveryMeasureChecksDimension) {
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 8, 2, 100,
                          1);
  EXPECT_DEATH(hr.Measure(std::vector<double>(50, 0.0)), "");
}

}  // namespace
}  // namespace sketch
