// Contract tests: the library's no-exceptions policy means precondition
// violations abort with a CHECK message. These death tests pin down the
// contracts a downstream user relies on (and that refactors must not
// silently weaken).

#include <gtest/gtest.h>

#include "common/check.h"
#include "cs/hashed_recovery.h"
#include "fft/fft.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/least_squares.h"
#include "sfft/crt_sfft.h"
#include "sfft/sfft.h"
#include "common/thread_pool.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/iblt.h"
#include "sketch/stream_summary.h"

namespace sketch {
namespace {

TEST(ContractDeathTest, CountMinRejectsZeroGeometry) {
  EXPECT_DEATH(CountMinSketch(0, 1, 1), "width");
  EXPECT_DEATH(CountMinSketch(1, 0, 1), "depth");
}

TEST(ContractDeathTest, CountMinRejectsMergeAcrossSeeds) {
  CountMinSketch a(16, 2, 1);
  CountMinSketch b(16, 2, 2);  // different seed: different hash functions
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, CountMinRejectsMergeAcrossGeometry) {
  CountMinSketch a(16, 2, 1);
  CountMinSketch wide(32, 2, 1);
  EXPECT_DEATH(a.Merge(wide), "identical geometry and seed");
}

// Every mergeable sketch rejects geometry/seed mismatch with the same
// uniform CHECK message — the contract the sharded ingestion engine
// (`src/parallel`) relies on to catch mis-wired shard replicas loudly
// instead of silently corrupting counters.
TEST(ContractDeathTest, CountSketchRejectsMergeAcrossSeeds) {
  CountSketch a(16, 3, 1);
  CountSketch b(16, 3, 2);
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, AmsRejectsMergeAcrossGeometry) {
  AmsSketch a(16, 3, 1);
  AmsSketch narrow(8, 3, 1);
  EXPECT_DEATH(a.Merge(narrow), "identical geometry and seed");
}

TEST(ContractDeathTest, BloomRejectsMergeAcrossSeeds) {
  BloomFilter a(256, 4, 1);
  BloomFilter b(256, 4, 2);
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, DyadicRejectsMergeAcrossUniverses) {
  DyadicCountMin a(10, 64, 2, 1);
  DyadicCountMin b(12, 64, 2, 1);
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, DyadicRejectsMergeAcrossSeeds) {
  DyadicCountMin a(10, 64, 2, 1);
  DyadicCountMin b(10, 64, 2, 2);  // same shape, different hash functions
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, StreamSummaryRejectsMergeAcrossOptions) {
  StreamSummary::Options options;
  options.log_universe = 10;
  StreamSummary a(options);
  options.seed = 2;
  StreamSummary b(options);
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
}

TEST(ContractDeathTest, ThreadPoolRejectsZeroThreads) {
  EXPECT_DEATH(ThreadPool pool(0), "num_threads");
}

TEST(ContractDeathTest, ConservativeUpdateRejectsNonPositiveDelta) {
  CountMinSketch cm(16, 2, 1);
  EXPECT_DEATH(cm.UpdateConservative(1, 0), "delta");
  EXPECT_DEATH(cm.UpdateConservative(1, -5), "delta");
}

TEST(ContractDeathTest, CountSketchInnerProductRequiresSameSeed) {
  CountSketch a(16, 3, 1);
  CountSketch b(16, 3, 2);
  EXPECT_DEATH(a.EstimateInnerProduct(b), "identical geometry and seed");
}

TEST(ContractDeathTest, IbltSubtractRequiresSameFamily) {
  Iblt a(60, 3, 1);
  Iblt b(60, 3, 2);
  EXPECT_DEATH(a.Subtract(b), "identical geometry and seed");
}

TEST(ContractDeathTest, FftRejectsEmptyInput) {
  EXPECT_DEATH(Fft(std::vector<Complex>{}), "");
}

TEST(ContractDeathTest, ExactSfftRejectsNonPowerOfTwo) {
  const std::vector<Complex> x(100, Complex(0, 0));
  SfftOptions options;
  EXPECT_DEATH(ExactSparseFft(x, options), "IsPowerOfTwo");
}

TEST(ContractDeathTest, CrtSfftRejectsPrimePowerLengths) {
  const std::vector<Complex> x(64, Complex(0, 0));
  CrtSfftOptions options;
  EXPECT_DEATH(CrtSparseFft(x, options), "co-prime");
}

TEST(ContractDeathTest, LeastSquaresRejectsUnderdeterminedSystems) {
  DenseMatrix a(3, 5);
  EXPECT_DEATH(SolveLeastSquaresQr(a, {1.0, 2.0, 3.0}), "");
}

TEST(ContractDeathTest, LeastSquaresAbortsOnRankDeficiency) {
  DenseMatrix a(4, 2);  // second column all zero: rank 1
  a.At(0, 0) = 1.0;
  a.At(1, 0) = 2.0;
  EXPECT_DEATH(SolveLeastSquaresQr(a, {1.0, 1.0, 1.0, 1.0}),
               "rank deficient");
}

TEST(ContractDeathTest, DenseMatrixMultiplyRejectsWrongDimension) {
  DenseMatrix a(2, 3);
  EXPECT_DEATH(a.Multiply(std::vector<double>{1.0, 2.0}), "");
}

TEST(ContractDeathTest, CsrTripletsOutOfRangeRejected) {
  EXPECT_DEATH(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0}}), "");
}

TEST(ContractDeathTest, HashedRecoveryMeasureChecksDimension) {
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 8, 2, 100,
                          1);
  EXPECT_DEATH(hr.Measure(std::vector<double>(50, 0.0)), "");
}

}  // namespace
}  // namespace sketch
