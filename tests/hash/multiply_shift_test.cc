#include "hash/multiply_shift.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(MultiplyShiftTest, OutputFitsInRequestedBits) {
  for (int bits : {1, 4, 16, 32, 63}) {
    MultiplyShiftHash h(bits, 7);
    const uint64_t bound = (bits == 63) ? (1ULL << 63) : (1ULL << bits);
    for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Hash(x), bound);
  }
}

TEST(MultiplyShiftTest, Deterministic) {
  MultiplyShiftHash a(16, 3);
  MultiplyShiftHash b(16, 3);
  for (uint64_t x = 0; x < 500; ++x) EXPECT_EQ(a.Hash(x), b.Hash(x));
}

TEST(MultiplyShiftTest, SeedSensitive) {
  MultiplyShiftHash a(16, 1);
  MultiplyShiftHash b(16, 2);
  int diff = 0;
  for (uint64_t x = 0; x < 200; ++x) diff += (a.Hash(x) != b.Hash(x));
  EXPECT_GE(diff, 190);
}

TEST(MultiplyShiftTest, ApproximatelyUniformOverBuckets) {
  MultiplyShiftHash h(4, 17);  // 16 buckets
  std::vector<int> counts(16, 0);
  const int trials = 160000;
  for (int x = 0; x < trials; ++x) ++counts[h.Hash(x)];
  const double expected = trials / 16.0;
  for (int b = 0; b < 16; ++b) {
    // Multiply-shift on sequential keys is only universal, not fully
    // uniform; allow a loose 10% band.
    EXPECT_NEAR(counts[b], expected, 0.1 * expected) << "bucket " << b;
  }
}

TEST(MultiplyShiftTest, CollisionRateOverSeedsIsUniversal) {
  // Universality: Pr over seeds [h(x)=h(y)] <= 2/m for x != y (dietzfelbinger
  // multiply-shift has a factor-2 slack). With m = 256 expect <= ~0.8%.
  int collisions = 0;
  const int trials = 50000;
  for (int s = 0; s < trials; ++s) {
    MultiplyShiftHash h(8, 900 + s);
    collisions += (h.Hash(1234567) == h.Hash(7654321));
  }
  EXPECT_LT(collisions, trials * (2.5 / 256.0));
}

}  // namespace
}  // namespace sketch
