#include "hash/kwise_hash.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(MulModMersenne61Test, SmallProducts) {
  EXPECT_EQ(MulModMersenne61(3, 5), 15u);
  EXPECT_EQ(MulModMersenne61(0, 12345), 0u);
  EXPECT_EQ(MulModMersenne61(1, kMersennePrime61 - 1), kMersennePrime61 - 1);
}

TEST(MulModMersenne61Test, WrapsCorrectly) {
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(MulModMersenne61(kMersennePrime61 - 1, kMersennePrime61 - 1), 1u);
  // (p-1) * 2 mod p == p - 2.
  EXPECT_EQ(MulModMersenne61(kMersennePrime61 - 1, 2), kMersennePrime61 - 2);
}

TEST(MulModMersenne61Test, MatchesNaive128BitReduction) {
  uint64_t a = 0x123456789abcdefULL % kMersennePrime61;
  uint64_t b = 0xfedcba987654321ULL % kMersennePrime61;
  const __uint128_t expected =
      (static_cast<__uint128_t>(a) * b) % kMersennePrime61;
  EXPECT_EQ(MulModMersenne61(a, b), static_cast<uint64_t>(expected));
}

TEST(KWiseHashTest, DeterministicForSameSeed) {
  KWiseHash a(2, 42);
  KWiseHash b(2, 42);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_EQ(a.Hash(x), b.Hash(x));
}

TEST(KWiseHashTest, DifferentSeedsGiveDifferentFunctions) {
  KWiseHash a(2, 1);
  KWiseHash b(2, 2);
  int diff = 0;
  for (uint64_t x = 0; x < 100; ++x) diff += (a.Hash(x) != b.Hash(x));
  EXPECT_GE(diff, 95);
}

TEST(KWiseHashTest, OutputAlwaysBelowPrime) {
  KWiseHash h(3, 9);
  for (uint64_t x = 0; x < 10000; ++x) EXPECT_LT(h.Hash(x), kMersennePrime61);
}

TEST(KWiseHashTest, BucketStaysInRange) {
  KWiseHash h(2, 5);
  for (uint64_t m : {1ULL, 2ULL, 7ULL, 256ULL}) {
    for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.Bucket(x, m), m);
  }
}

TEST(KWiseHashTest, BucketsApproximatelyUniform) {
  KWiseHash h(2, 77);
  const uint64_t m = 16;
  std::vector<int> counts(m, 0);
  const int trials = 160000;
  for (int x = 0; x < trials; ++x) ++counts[h.Bucket(x, m)];
  const double expected = trials / static_cast<double>(m);
  for (uint64_t b = 0; b < m; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(KWiseHashTest, SignsAreApproximatelyBalanced) {
  KWiseHash h(2, 31);
  int sum = 0;
  const int trials = 100000;
  for (int x = 0; x < trials; ++x) sum += h.Sign(x);
  EXPECT_LT(std::abs(sum), 5 * std::sqrt(trials));
}

TEST(KWiseHashTest, PairwiseCollisionRateNearUniform) {
  // For a 2-wise independent family, Pr[h(x) = h(y)] over random seeds is
  // 1/m for fixed x != y. Estimate over 2000 seeds.
  const uint64_t m = 64;
  int collisions = 0;
  const int trials = 20000;
  for (int s = 0; s < trials; ++s) {
    KWiseHash h(2, 1000 + s);
    collisions += (h.Bucket(123, m) == h.Bucket(456, m));
  }
  const double expected = trials / static_cast<double>(m);
  EXPECT_NEAR(collisions, expected, 5 * std::sqrt(expected));
}

TEST(KWiseHashTest, FourWiseSignProductIsUnbiased) {
  // For a 4-wise family the product of signs of 4 distinct keys has mean 0
  // over the choice of hash function.
  int sum = 0;
  const int trials = 40000;
  for (int s = 0; s < trials; ++s) {
    KWiseHash h(4, 5000 + s);
    sum += h.Sign(1) * h.Sign(2) * h.Sign(3) * h.Sign(4);
  }
  EXPECT_LT(std::abs(sum), 5 * std::sqrt(trials));
}

TEST(KWiseHashTest, IndependenceParameterIsStored) {
  EXPECT_EQ(KWiseHash(2, 1).independence(), 2);
  EXPECT_EQ(KWiseHash(4, 1).independence(), 4);
  EXPECT_EQ(KWiseHash(7, 1).independence(), 7);
}

TEST(KWiseHashTest, LargeKeysReducedModPrime) {
  KWiseHash h(2, 3);
  // Keys congruent mod p hash identically.
  EXPECT_EQ(h.Hash(5), h.Hash(5 + kMersennePrime61));
}

}  // namespace
}  // namespace sketch
