#include "hash/string_key.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/count_min.h"

namespace sketch {
namespace {

TEST(StringKeyTest, StableAcrossCalls) {
  EXPECT_EQ(StringKeyId("hello"), StringKeyId("hello"));
  EXPECT_EQ(StringKeyId(""), StringKeyId(""));
}

TEST(StringKeyTest, SensitiveToEveryCharacter) {
  EXPECT_NE(StringKeyId("hello"), StringKeyId("hellp"));
  EXPECT_NE(StringKeyId("hello"), StringKeyId("Hello"));
  EXPECT_NE(StringKeyId("ab"), StringKeyId("ba"));
  EXPECT_NE(StringKeyId("a"), StringKeyId(std::string_view("a\0", 2)));
}

TEST(StringKeyTest, NoCollisionsOnLargeVocabulary) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 100000; ++i) {
    ids.insert(StringKeyId("key-" + std::to_string(i)));
  }
  EXPECT_EQ(ids.size(), 100000u);
}

TEST(StringKeyTest, IdsSpreadUniformlyOverBuckets) {
  std::vector<int> buckets(64, 0);
  const int keys = 64000;
  for (int i = 0; i < keys; ++i) {
    ++buckets[StringKeyId("user/" + std::to_string(i)) % 64];
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(buckets[b], 1000, 200) << "bucket " << b;
  }
}

TEST(StringKeyTest, DrivesSketchesOverStringData) {
  CountMinSketch cm(1024, 4, 1);
  for (int i = 0; i < 500; ++i) cm.Update({StringKeyId("popular-url"), 1});
  cm.Update({StringKeyId("rare-url"), 1});
  EXPECT_GE(cm.Estimate(StringKeyId("popular-url")), 500);
  EXPECT_LE(cm.Estimate(StringKeyId("rare-url")), 501);
}

}  // namespace
}  // namespace sketch
