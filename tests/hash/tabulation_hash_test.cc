#include "hash/tabulation_hash.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(TabulationHashTest, Deterministic) {
  TabulationHash a(5);
  TabulationHash b(5);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_EQ(a.Hash(x), b.Hash(x));
}

TEST(TabulationHashTest, SeedSensitive) {
  TabulationHash a(1);
  TabulationHash b(2);
  int diff = 0;
  for (uint64_t x = 0; x < 100; ++x) diff += (a.Hash(x) != b.Hash(x));
  EXPECT_GE(diff, 99);
}

TEST(TabulationHashTest, NoCollisionsOnSmallDomain) {
  TabulationHash h(7);
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < 10000; ++x) seen.insert(h.Hash(x));
  EXPECT_EQ(seen.size(), 10000u);  // 64-bit outputs: collisions negligible
}

TEST(TabulationHashTest, BucketsApproximatelyUniform) {
  TabulationHash h(11);
  const uint64_t m = 32;
  std::vector<int> counts(m, 0);
  const int trials = 320000;
  for (int x = 0; x < trials; ++x) ++counts[h.Bucket(x, m)];
  const double expected = trials / static_cast<double>(m);
  for (uint64_t b = 0; b < m; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected));
  }
}

TEST(TabulationHashTest, SingleByteDifferenceAvalanches) {
  TabulationHash h(13);
  // Keys differing in one byte must differ in their hash (XOR of one table
  // row is nonzero w.h.p.) and roughly half the output bits should flip.
  int total_flips = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    const uint64_t y = x ^ 0xff00ULL;  // flip byte 1
    EXPECT_NE(h.Hash(x), h.Hash(y));
    total_flips += __builtin_popcountll(h.Hash(x) ^ h.Hash(y));
  }
  EXPECT_NEAR(total_flips / 1000.0, 32.0, 3.0);
}

}  // namespace
}  // namespace sketch
