#include "dimred/jl_transform.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"
#include "cs/signals.h"

namespace sketch {
namespace {

std::vector<double> RandomUnitVector(uint64_t n, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextGaussian();
  const double norm = L2Norm(x);
  for (auto& v : x) v /= norm;
  return x;
}

/// Fraction of trials where the embedded norm deviates from 1 by more
/// than eps.
double DistortionFailureRate(const JlTransform& t, double eps, int trials) {
  int failures = 0;
  for (int i = 0; i < trials; ++i) {
    const std::vector<double> x =
        RandomUnitVector(t.input_dimension(), 1000 + i);
    const double norm = L2Norm(t.Apply(x));
    if (std::abs(norm - 1.0) > eps) ++failures;
  }
  return static_cast<double>(failures) / trials;
}

TEST(DenseJlTest, PreservesNormsWithinEps) {
  const DenseJlTransform t(1 << 10, 512, 1);
  EXPECT_LT(DistortionFailureRate(t, 0.25, 50), 0.1);
}

TEST(SparseJlTest, PreservesNormsWithinEps) {
  const SparseJlTransform t(1 << 10, 512, 8, 2);
  EXPECT_LT(DistortionFailureRate(t, 0.25, 50), 0.1);
}

TEST(CountSketchTransformTest, PreservesNormsWithinEps) {
  const CountSketchTransform t(1 << 10, 512, 3);
  EXPECT_LT(DistortionFailureRate(t, 0.3, 50), 0.15);
}

TEST(FjltTest, PreservesNormsWithinEps) {
  const FjltTransform t(1 << 10, 512, 4);
  EXPECT_LT(DistortionFailureRate(t, 0.25, 50), 0.1);
}

TEST(JlTest, EmbeddedNormSecondMomentIsCorrect) {
  // E||Sx||^2 == ||x||^2 exactly for all four constructions.
  const uint64_t n = 256, m = 64;
  const std::vector<double> x = RandomUnitVector(n, 5);
  for (int construction = 0; construction < 4; ++construction) {
    double sum = 0.0;
    const int trials = 300;
    for (int s = 0; s < trials; ++s) {
      std::unique_ptr<JlTransform> t;
      switch (construction) {
        case 0:
          t = std::make_unique<DenseJlTransform>(n, m, 100 + s);
          break;
        case 1:
          t = std::make_unique<SparseJlTransform>(n, m, 4, 100 + s);
          break;
        case 2:
          t = std::make_unique<CountSketchTransform>(n, m, 100 + s);
          break;
        default:
          t = std::make_unique<FjltTransform>(n, m, 100 + s);
          break;
      }
      const double norm = L2Norm(t->Apply(x));
      sum += norm * norm;
    }
    EXPECT_NEAR(sum / trials, 1.0, 0.1) << "construction " << construction;
  }
}

TEST(JlTest, LinearityOfAllTransforms) {
  const uint64_t n = 128, m = 32;
  const std::vector<double> x = RandomUnitVector(n, 6);
  const std::vector<double> y = RandomUnitVector(n, 7);
  std::vector<double> combo(n);
  for (uint64_t i = 0; i < n; ++i) combo[i] = 2.0 * x[i] - 3.0 * y[i];
  const SparseJlTransform t(n, m, 4, 8);
  const std::vector<double> lhs = t.Apply(combo);
  const std::vector<double> tx = t.Apply(x);
  const std::vector<double> ty = t.Apply(y);
  for (uint64_t i = 0; i < t.output_dimension(); ++i) {
    EXPECT_NEAR(lhs[i], 2.0 * tx[i] - 3.0 * ty[i], 1e-10);
  }
}

TEST(JlTest, SparseApplyMatchesDenseApply) {
  const uint64_t n = 1024, m = 128;
  const SparseVector x =
      MakeSparseSignal(n, 30, SignalValueDistribution::kGaussian, 9);
  const SparseJlTransform sjl(n, m, 8, 9);
  const CountSketchTransform cst(n, m, 9);
  {
    const std::vector<double> a = sjl.Apply(x);
    const std::vector<double> b = sjl.Apply(x.ToDense());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
  }
  {
    const std::vector<double> a = cst.Apply(x);
    const std::vector<double> b = cst.Apply(x.ToDense());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(JlTest, PairwiseDistancesPreserved) {
  const uint64_t n = 512, m = 256;
  const SparseJlTransform t(n, m, 8, 10);
  const std::vector<double> x = RandomUnitVector(n, 11);
  const std::vector<double> y = RandomUnitVector(n, 12);
  const double original = L2Distance(x, y);
  const double embedded = L2Distance(t.Apply(x), t.Apply(y));
  EXPECT_NEAR(embedded / original, 1.0, 0.3);
}

TEST(WalshHadamardTest, MatchesDefinitionOnSmallInput) {
  // H_2 [a b c d] = [a+b+c+d, a-b+c-d, a+b-c-d, a-b-c+d].
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  WalshHadamardInPlace(&x);
  EXPECT_DOUBLE_EQ(x[0], 10.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], -4.0);
  EXPECT_DOUBLE_EQ(x[3], 0.0);
}

TEST(WalshHadamardTest, SelfInverseUpToN) {
  std::vector<double> x = {3.0, -1.0, 0.5, 2.0, 1.0, 1.0, -2.0, 0.0};
  const std::vector<double> original = x;
  WalshHadamardInPlace(&x);
  WalshHadamardInPlace(&x);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], 8.0 * original[i], 1e-12);
  }
}

TEST(FjltTest, HandlesNonPowerOfTwoInput) {
  const FjltTransform t(100, 32, 13);
  EXPECT_EQ(t.input_dimension(), 100u);
  EXPECT_EQ(t.output_dimension(), 32u);
  const std::vector<double> x = RandomUnitVector(100, 14);
  EXPECT_EQ(t.Apply(x).size(), 32u);
}

TEST(JlTest, NamesAreDistinct) {
  EXPECT_STRNE(DenseJlTransform(8, 4, 1).Name(),
               SparseJlTransform(8, 4, 2, 1).Name());
  EXPECT_STRNE(CountSketchTransform(8, 4, 1).Name(),
               FjltTransform(8, 4, 1).Name());
}

}  // namespace
}  // namespace sketch
