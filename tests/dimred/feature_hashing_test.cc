#include "dimred/feature_hashing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "linalg/dense_matrix.h"

namespace sketch {
namespace {

TEST(FeatureHasherTest, Deterministic) {
  const FeatureHasher h(64, 1);
  const auto a = h.HashFeatures({{"cat", 1.0}, {"dog", 2.0}});
  const auto b = h.HashFeatures({{"cat", 1.0}, {"dog", 2.0}});
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(FeatureHasherTest, OrderInvariant) {
  const FeatureHasher h(64, 2);
  const auto a = h.HashFeatures({{"x", 1.0}, {"y", -2.0}});
  const auto b = h.HashFeatures({{"y", -2.0}, {"x", 1.0}});
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(FeatureHasherTest, SingleFeatureLandsInOneBucket) {
  const FeatureHasher h(128, 3);
  const auto v = h.HashFeatures({{"solo", 3.5}});
  int nonzero = 0;
  for (double x : v) {
    if (x != 0.0) {
      ++nonzero;
      EXPECT_DOUBLE_EQ(std::abs(x), 3.5);
    }
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(FeatureHasherTest, RepeatedFeatureAccumulates) {
  const FeatureHasher h(128, 4);
  const auto once = h.HashFeatures({{"f", 1.0}});
  const auto thrice = h.HashFeatures({{"f", 1.0}, {"f", 1.0}, {"f", 1.0}});
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_DOUBLE_EQ(thrice[i], 3.0 * once[i]);
  }
}

TEST(FeatureHasherTest, InnerProductApproximatelyPreserved) {
  // The hashing trick preserves inner products in expectation. Two sparse
  // documents with known overlap.
  const FeatureHasher h(4096, 5);
  std::vector<std::pair<std::string_view, double>> doc1, doc2;
  // 40 shared features, 20 unique each => <doc1, doc2> = 40.
  static std::vector<std::string> names;
  if (names.empty()) {
    for (int i = 0; i < 100; ++i) names.push_back("feat" + std::to_string(i));
  }
  for (int i = 0; i < 60; ++i) doc1.push_back({names[i], 1.0});
  for (int i = 20; i < 80; ++i) doc2.push_back({names[i], 1.0});
  const auto v1 = h.HashFeatures(doc1);
  const auto v2 = h.HashFeatures(doc2);
  EXPECT_NEAR(Dot(v1, v2), 40.0, 8.0);
}

TEST(FeatureHasherTest, FeatureIdIsStableAndNameSensitive) {
  EXPECT_EQ(FeatureHasher::FeatureId("hello"), FeatureHasher::FeatureId("hello"));
  EXPECT_NE(FeatureHasher::FeatureId("hello"), FeatureHasher::FeatureId("hellp"));
  EXPECT_NE(FeatureHasher::FeatureId(""), FeatureHasher::FeatureId("a"));
}

TEST(FeatureHasherTest, AddFeatureAccumulatesIntoProvidedVector) {
  const FeatureHasher h(32, 6);
  std::vector<double> out(32, 0.0);
  h.AddFeature("a", 1.0, &out);
  h.AddFeature("b", 2.0, &out);
  EXPECT_NEAR(L1Norm(out), 3.0, 1e-12);
}

}  // namespace
}  // namespace sketch
