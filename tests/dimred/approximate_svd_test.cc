#include "dimred/approximate_svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

/// Builds A = U diag(s) V^T with orthonormal U, V (via Gram-Schmidt of
/// Gaussian matrices) and the given singular values.
DenseMatrix MakeMatrixWithSpectrum(uint64_t rows, uint64_t cols,
                                   const std::vector<double>& sigmas,
                                   uint64_t seed) {
  const uint64_t r = sigmas.size();
  Xoshiro256StarStar rng(seed);
  auto orthonormal = [&](uint64_t dim) {
    DenseMatrix m(dim, r);
    for (uint64_t i = 0; i < dim; ++i) {
      for (uint64_t t = 0; t < r; ++t) m.At(i, t) = rng.NextGaussian();
    }
    for (uint64_t c = 0; c < r; ++c) {
      for (uint64_t p = 0; p < c; ++p) {
        double dot = 0.0;
        for (uint64_t i = 0; i < dim; ++i) dot += m.At(i, p) * m.At(i, c);
        for (uint64_t i = 0; i < dim; ++i) m.At(i, c) -= dot * m.At(i, p);
      }
      double norm = 0.0;
      for (uint64_t i = 0; i < dim; ++i) norm += m.At(i, c) * m.At(i, c);
      norm = std::sqrt(norm);
      for (uint64_t i = 0; i < dim; ++i) m.At(i, c) /= norm;
    }
    return m;
  };
  const DenseMatrix u = orthonormal(rows);
  const DenseMatrix v = orthonormal(cols);
  DenseMatrix a(rows, cols);
  for (uint64_t i = 0; i < rows; ++i) {
    for (uint64_t j = 0; j < cols; ++j) {
      double acc = 0.0;
      for (uint64_t t = 0; t < r; ++t) {
        acc += u.At(i, t) * sigmas[t] * v.At(j, t);
      }
      a.At(i, j) = acc;
    }
  }
  return a;
}

TEST(ApproximateSvdTest, RecoversPlantedSingularValues) {
  const std::vector<double> sigmas = {10.0, 5.0, 2.0, 1.0};
  const DenseMatrix a = MakeMatrixWithSpectrum(80, 60, sigmas, 1);
  const ApproximateSvdResult svd =
      ApproximateSvd(a, 4, 6, LowRankSketchType::kGaussian, 1);
  ASSERT_EQ(svd.singular_values.size(), 4u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(svd.singular_values[t], sigmas[t], 1e-6 * sigmas[t]);
  }
}

TEST(ApproximateSvdTest, FactorsReconstructTheMatrix) {
  const std::vector<double> sigmas = {8.0, 3.0, 1.5};
  const DenseMatrix a = MakeMatrixWithSpectrum(50, 40, sigmas, 2);
  const ApproximateSvdResult svd =
      ApproximateSvd(a, 3, 5, LowRankSketchType::kGaussian, 2);
  for (uint64_t i = 0; i < 50; ++i) {
    for (uint64_t j = 0; j < 40; ++j) {
      double recon = 0.0;
      for (uint64_t t = 0; t < 3; ++t) {
        recon += svd.u.At(i, t) * svd.singular_values[t] * svd.v.At(j, t);
      }
      ASSERT_NEAR(recon, a.At(i, j), 1e-7);
    }
  }
}

TEST(ApproximateSvdTest, SingularVectorsAreOrthonormal) {
  const std::vector<double> sigmas = {6.0, 4.0, 2.0, 1.0};
  const DenseMatrix a = MakeMatrixWithSpectrum(60, 60, sigmas, 3);
  const ApproximateSvdResult svd =
      ApproximateSvd(a, 4, 4, LowRankSketchType::kGaussian, 3);
  for (uint64_t c1 = 0; c1 < 4; ++c1) {
    for (uint64_t c2 = c1; c2 < 4; ++c2) {
      double du = 0.0, dv = 0.0;
      for (uint64_t r = 0; r < 60; ++r) du += svd.u.At(r, c1) * svd.u.At(r, c2);
      for (uint64_t r = 0; r < 60; ++r) dv += svd.v.At(r, c1) * svd.v.At(r, c2);
      const double want = c1 == c2 ? 1.0 : 0.0;
      EXPECT_NEAR(du, want, 1e-8);
      EXPECT_NEAR(dv, want, 1e-8);
    }
  }
}

TEST(ApproximateSvdTest, NoisySpectrumTopValuesStillAccurate) {
  // Planted spectrum + a noise floor: the top singular values should be
  // recovered within a few percent with modest oversampling.
  const std::vector<double> sigmas = {20.0, 10.0, 5.0};
  DenseMatrix a = MakeMatrixWithSpectrum(100, 80, sigmas, 4);
  Xoshiro256StarStar rng(5);
  for (uint64_t i = 0; i < 100; ++i) {
    for (uint64_t j = 0; j < 80; ++j) a.At(i, j) += 0.05 * rng.NextGaussian();
  }
  const ApproximateSvdResult svd =
      ApproximateSvd(a, 3, 10, LowRankSketchType::kGaussian, 5);
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(svd.singular_values[t], sigmas[t], 0.05 * sigmas[t]);
  }
}

TEST(ApproximateSvdTest, CountSketchVariantWorksWithQuadraticOversampling) {
  const std::vector<double> sigmas = {9.0, 4.0};
  const DenseMatrix a = MakeMatrixWithSpectrum(60, 50, sigmas, 6);
  const ApproximateSvdResult svd = ApproximateSvd(
      a, 2, /*oversampling=*/16, LowRankSketchType::kCountSketch, 6);
  EXPECT_NEAR(svd.singular_values[0], 9.0, 0.1);
  EXPECT_NEAR(svd.singular_values[1], 4.0, 0.1);
}

}  // namespace
}  // namespace sketch
