#include "dimred/sketched_lowrank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

/// A of rank exactly r plus optional noise: A = U V^T + noise.
DenseMatrix MakeLowRankMatrix(uint64_t rows, uint64_t cols, uint64_t rank,
                              double noise, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  DenseMatrix u(rows, rank), v(cols, rank);
  for (uint64_t i = 0; i < rows; ++i) {
    for (uint64_t t = 0; t < rank; ++t) u.At(i, t) = rng.NextGaussian();
  }
  for (uint64_t j = 0; j < cols; ++j) {
    for (uint64_t t = 0; t < rank; ++t) v.At(j, t) = rng.NextGaussian();
  }
  DenseMatrix a(rows, cols);
  for (uint64_t i = 0; i < rows; ++i) {
    for (uint64_t j = 0; j < cols; ++j) {
      double acc = 0.0;
      for (uint64_t t = 0; t < rank; ++t) acc += u.At(i, t) * v.At(j, t);
      a.At(i, j) = acc + noise * rng.NextGaussian();
    }
  }
  return a;
}

TEST(LowRankTest, ExactlyLowRankMatrixCapturedCompletely) {
  const DenseMatrix a = MakeLowRankMatrix(100, 80, 5, 0.0, 1);
  for (const LowRankSketchType type :
       {LowRankSketchType::kGaussian, LowRankSketchType::kCountSketch}) {
    const LowRankResult result = RandomizedRangeFinder(a, 5, 5, type, 1);
    const double err = LowRankApproximationError(a, result.basis);
    EXPECT_LT(err, 1e-8 * FrobeniusNorm(a)) << "type " << static_cast<int>(type);
  }
}

TEST(LowRankTest, NoisyLowRankMatrixErrorNearNoiseFloor) {
  const double noise = 0.01;
  const DenseMatrix a = MakeLowRankMatrix(120, 100, 6, noise, 2);
  const LowRankResult result =
      RandomizedRangeFinder(a, 6, 6, LowRankSketchType::kGaussian, 2);
  const double err = LowRankApproximationError(a, result.basis);
  // Residual should be on the order of the noise Frobenius mass,
  // sqrt(rows*cols)*noise, far below ||A||_F.
  EXPECT_LT(err, 5.0 * std::sqrt(120.0 * 100.0) * noise);
  EXPECT_LT(err, 0.1 * FrobeniusNorm(a));
}

TEST(LowRankTest, BasisIsOrthonormal) {
  const DenseMatrix a = MakeLowRankMatrix(60, 50, 4, 0.05, 3);
  const LowRankResult result =
      RandomizedRangeFinder(a, 4, 4, LowRankSketchType::kGaussian, 3);
  const DenseMatrix& q = result.basis;
  for (uint64_t c1 = 0; c1 < q.cols(); ++c1) {
    for (uint64_t c2 = c1; c2 < q.cols(); ++c2) {
      double dot = 0.0;
      for (uint64_t r = 0; r < q.rows(); ++r) dot += q.At(r, c1) * q.At(r, c2);
      // Zero columns (rank deficiency) are allowed; otherwise orthonormal.
      if (c1 == c2) {
        EXPECT_TRUE(std::abs(dot - 1.0) < 1e-9 || std::abs(dot) < 1e-12);
      } else {
        EXPECT_NEAR(dot, 0.0, 1e-9);
      }
    }
  }
}

TEST(LowRankTest, ErrorDecreasesWithRank) {
  const DenseMatrix a = MakeLowRankMatrix(80, 80, 20, 0.0, 4);
  double prev = FrobeniusNorm(a);
  for (uint64_t rank : {5u, 10u, 20u}) {
    const LowRankResult result =
        RandomizedRangeFinder(a, rank, 5, LowRankSketchType::kGaussian, 4);
    const double err = LowRankApproximationError(a, result.basis);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
  EXPECT_LT(prev, 1e-7 * FrobeniusNorm(a));  // rank 20 captures everything
}

TEST(LowRankTest, FrobeniusNormKnownValue) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 3.0;
  a.At(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
}

TEST(LowRankTest, CountSketchNeedsQuadraticOversampling) {
  // A Count-Sketch test matrix is a subspace embedding only at
  // l = O(rank^2) columns — with that budget it matches Gaussian quality
  // in a single O(nnz) pass.
  const DenseMatrix a = MakeLowRankMatrix(100, 90, 8, 0.01, 5);
  const LowRankResult result = RandomizedRangeFinder(
      a, 8, /*oversampling=*/8 * 8, LowRankSketchType::kCountSketch, 5);
  EXPECT_LT(LowRankApproximationError(a, result.basis),
            0.2 * FrobeniusNorm(a));
}

}  // namespace
}  // namespace sketch
