#include "dimred/sketched_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"
#include "linalg/least_squares.h"

namespace sketch {
namespace {

/// Builds a well-conditioned random regression instance with planted
/// solution + noise; returns (A, b, exact residual).
struct Instance {
  DenseMatrix a;
  std::vector<double> b;
  double exact_residual;
  Instance() : a(1, 1) {}
};

Instance MakeInstance(uint64_t n, uint64_t d, double noise, uint64_t seed) {
  Instance inst;
  inst.a = DenseMatrix(n, d);
  inst.a.FillGaussian(seed);
  Xoshiro256StarStar rng(seed + 1);
  std::vector<double> x_true(d);
  for (auto& v : x_true) v = rng.NextGaussian();
  inst.b = inst.a.Multiply(x_true);
  for (auto& v : inst.b) v += noise * rng.NextGaussian();
  const std::vector<double> x_exact = SolveLeastSquaresQr(inst.a, inst.b);
  inst.exact_residual = RegressionResidual(inst.a, x_exact, inst.b);
  return inst;
}

TEST(SketchedRegressionTest, CountSketchSolutionNearOptimal) {
  const Instance inst = MakeInstance(4096, 20, 0.1, 1);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, /*sketch_rows=*/20 * 20 * 4,
      RegressionSketchType::kCountSketch, 1);
  const double res = RegressionResidual(inst.a, result.solution, inst.b);
  // (1 + eps)-approximation of the optimal residual.
  EXPECT_LE(res, 1.3 * inst.exact_residual + 1e-12);
}

TEST(SketchedRegressionTest, GaussianSolutionNearOptimal) {
  const Instance inst = MakeInstance(2048, 15, 0.1, 2);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, /*sketch_rows=*/600, RegressionSketchType::kGaussian,
      2);
  const double res = RegressionResidual(inst.a, result.solution, inst.b);
  EXPECT_LE(res, 1.3 * inst.exact_residual + 1e-12);
}

TEST(SketchedRegressionTest, NoiselessSystemSolvedExactly) {
  const Instance inst = MakeInstance(1024, 10, 0.0, 3);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, 500, RegressionSketchType::kCountSketch, 3);
  // With b in the column span, any subspace embedding preserves the exact
  // solution.
  EXPECT_LT(RegressionResidual(inst.a, result.solution, inst.b), 1e-8);
}

TEST(SketchedRegressionTest, SolutionDimensionMatches) {
  const Instance inst = MakeInstance(512, 8, 0.05, 4);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, 256, RegressionSketchType::kCountSketch, 4);
  EXPECT_EQ(result.solution.size(), 8u);
}

TEST(SketchedRegressionTest, TimingsAreReported) {
  const Instance inst = MakeInstance(1024, 10, 0.1, 5);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, 400, RegressionSketchType::kCountSketch, 5);
  EXPECT_GE(result.sketch_seconds, 0.0);
  EXPECT_GE(result.solve_seconds, 0.0);
}

TEST(SketchedRegressionTest, OsnapNearOptimalAtLinearSketchSize) {
  // OSNAP's selling point: m = O~(d) rows suffice, versus O(d^2) for the
  // s = 1 Count-Sketch embedding. d = 64 with m = 8d = 512 << d^2 = 4096.
  const Instance inst = MakeInstance(8192, 64, 0.1, 7);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, /*sketch_rows=*/512, RegressionSketchType::kOsnap, 7,
      /*osnap_sparsity=*/8);
  const double res = RegressionResidual(inst.a, result.solution, inst.b);
  EXPECT_LE(res, 1.3 * inst.exact_residual + 1e-12);
}

TEST(SketchedRegressionTest, OsnapNoiselessSystemSolvedExactly) {
  const Instance inst = MakeInstance(2048, 16, 0.0, 8);
  const SketchedRegressionResult result = SolveSketchedRegression(
      inst.a, inst.b, 256, RegressionSketchType::kOsnap, 8, 4);
  EXPECT_LT(RegressionResidual(inst.a, result.solution, inst.b), 1e-8);
}

TEST(SketchedRegressionTest, OsnapSparsitySweep) {
  const Instance inst = MakeInstance(4096, 32, 0.1, 9);
  for (int s : {2, 4, 8, 16}) {
    const SketchedRegressionResult result = SolveSketchedRegression(
        inst.a, inst.b, 512, RegressionSketchType::kOsnap, 9, s);
    const double res = RegressionResidual(inst.a, result.solution, inst.b);
    EXPECT_LE(res, 1.4 * inst.exact_residual + 1e-12) << "s=" << s;
  }
}

TEST(SketchedRegressionTest, LargerSketchImprovesAccuracy) {
  const Instance inst = MakeInstance(4096, 12, 0.2, 6);
  double small_res = 0.0, large_res = 0.0;
  // Average over seeds: a single Count-Sketch draw has constant failure
  // probability at small m.
  for (uint64_t s = 0; s < 5; ++s) {
    small_res += RegressionResidual(
        inst.a,
        SolveSketchedRegression(inst.a, inst.b, 40,
                                RegressionSketchType::kCountSketch, 10 + s)
            .solution,
        inst.b);
    large_res += RegressionResidual(
        inst.a,
        SolveSketchedRegression(inst.a, inst.b, 2048,
                                RegressionSketchType::kCountSketch, 20 + s)
            .solution,
        inst.b);
  }
  EXPECT_LE(large_res, small_res);
}

}  // namespace
}  // namespace sketch
