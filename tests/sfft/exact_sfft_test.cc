#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sfft/sfft.h"

namespace sketch {
namespace {

TEST(ExactSfftTest, RecoversSingleTone) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(1 << 10, 1, 1);
  SfftOptions options;
  options.sparsity = 1;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-8);
}

TEST(ExactSfftTest, RecoversSparseSpectrumExactly) {
  for (uint64_t k : {2u, 8u, 32u}) {
    const SparseSpectrumSignal signal =
        MakeSparseSpectrumSignal(1 << 12, k, 10 + k);
    SfftOptions options;
    options.sparsity = k;
    const SfftResult result = ExactSparseFft(signal.time_domain, options);
    EXPECT_TRUE(result.converged) << "k=" << k;
    EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-7) << "k=" << k;
    EXPECT_EQ(result.coefficients.size(), k) << "k=" << k;
  }
}

TEST(ExactSfftTest, MatchesDenseFftBaseline) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(1 << 11, 12, 2);
  SfftOptions options;
  options.sparsity = 12;
  const SfftResult sparse = ExactSparseFft(signal.time_domain, options);
  const SfftResult dense = DenseFftTopK(signal.time_domain, 12);
  ASSERT_EQ(sparse.coefficients.size(), dense.coefficients.size());
  for (size_t i = 0; i < sparse.coefficients.size(); ++i) {
    EXPECT_EQ(sparse.coefficients[i].frequency,
              dense.coefficients[i].frequency);
    EXPECT_NEAR(std::abs(sparse.coefficients[i].value -
                         dense.coefficients[i].value),
                0.0, 1e-7);
  }
}

TEST(ExactSfftTest, SubLinearSampleComplexity) {
  const uint64_t n = 1 << 18;
  const uint64_t k = 8;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, 3);
  SfftOptions options;
  options.sparsity = k;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged);
  // The algorithm must not read more than a fraction of the input. This
  // seed contains a frequency pair differing by a multiple of 2^10, which
  // forces bucket escalation to B = 2048 — the worst case still stays well
  // below n, and typical seeds read only a few hundred samples.
  EXPECT_LT(result.samples_read, n / 4);
}

TEST(ExactSfftTest, ZeroSignalConvergesToEmptySpectrum) {
  const std::vector<Complex> zero(1 << 8, Complex(0, 0));
  SfftOptions options;
  options.sparsity = 4;
  const SfftResult result = ExactSparseFft(zero, options);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.coefficients.empty());
}

TEST(ExactSfftTest, AdjacentFrequenciesSeparated) {
  // Two coefficients at adjacent frequencies collide in every aliasing
  // configuration's *bucket* only when congruent mod B; adjacent ones are
  // not, so they must both be found.
  const uint64_t n = 1 << 10;
  std::vector<Complex> x(n, Complex(0, 0));
  SparseSpectrumSignal signal;
  signal.coefficients = {{100, Complex(1.0, 0.0)}, {101, Complex(-0.5, 0.5)}};
  signal.time_domain.assign(n, Complex(0, 0));
  for (const auto& c : signal.coefficients) {
    for (uint64_t t = 0; t < n; ++t) {
      const double angle = 2.0 * M_PI * static_cast<double>(c.frequency * t) /
                           static_cast<double>(n);
      signal.time_domain[t] +=
          c.value * Complex(std::cos(angle), std::sin(angle)) /
          static_cast<double>(n);
    }
  }
  SfftOptions options;
  options.sparsity = 2;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-7);
}

TEST(ExactSfftTest, CollidingFrequenciesResolvedAcrossRounds) {
  // Force B = 16 with k = 8 packed into the same residue class mod 16:
  // every coefficient collides in round structure until the random
  // permutation separates them.
  const uint64_t n = 1 << 12;
  SparseSpectrumSignal signal;
  for (int i = 0; i < 8; ++i) {
    signal.coefficients.push_back(
        {static_cast<uint64_t>(16 * i * 16), Complex(1.0, 0.0)});
  }
  signal.time_domain.assign(n, Complex(0, 0));
  for (const auto& c : signal.coefficients) {
    for (uint64_t t = 0; t < n; ++t) {
      const double angle =
          2.0 * M_PI * static_cast<double>((c.frequency * t) % n) / n;
      signal.time_domain[t] +=
          c.value * Complex(std::cos(angle), std::sin(angle)) /
          static_cast<double>(n);
    }
  }
  SfftOptions options;
  options.sparsity = 8;
  options.buckets = 16;
  options.max_rounds = 30;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-6);
}

TEST(ExactSfftTest, DeterministicForSeed) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(1 << 10, 6, 4);
  SfftOptions options;
  options.sparsity = 6;
  const SfftResult a = ExactSparseFft(signal.time_domain, options);
  const SfftResult b = ExactSparseFft(signal.time_domain, options);
  EXPECT_EQ(a.rounds_used, b.rounds_used);
  EXPECT_EQ(a.samples_read, b.samples_read);
  ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
}

TEST(ExactSfftTest, ReportsRoundsUsed) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(1 << 10, 4, 5);
  SfftOptions options;
  options.sparsity = 4;
  const SfftResult result = ExactSparseFft(signal.time_domain, options);
  EXPECT_GE(result.rounds_used, 1);
  EXPECT_LE(result.rounds_used, options.max_rounds);
}

}  // namespace
}  // namespace sketch
