#include "sfft/sfft2d.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace sketch {
namespace {

TEST(Dense2dFftTest, MatchesDirectDefinition) {
  const uint64_t n1 = 4, n2 = 8;
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(n1, n2, 3, 1);
  const std::vector<Complex> spectrum =
      Dense2dFft(signal.time_domain, n1, n2);
  for (const SpectralCoefficient2d& c : signal.coefficients) {
    EXPECT_NEAR(std::abs(spectrum[c.f1 * n2 + c.f2] - c.value), 0.0, 1e-9);
  }
  // Total spectral energy equals the planted energy (Parseval, k units).
  double energy = 0.0;
  for (const Complex& v : spectrum) energy += std::norm(v);
  EXPECT_NEAR(energy, 3.0, 1e-9);
}

TEST(Dense2dFftTest, TopKSelectsPlantedCoefficients) {
  const uint64_t n1 = 16, n2 = 16;
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(n1, n2, 5, 2);
  const auto top = TopK2dCoefficients(Dense2dFft(signal.time_domain, n1, n2),
                                      n1, n2, 5);
  EXPECT_NEAR(Spectrum2dL2Error(top, signal), 0.0, 1e-9);
}

TEST(Sfft2dTest, RecoversSingleCoefficient) {
  const uint64_t n1 = 64, n2 = 64;
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(n1, n2, 1, 3);
  Sfft2dOptions options;
  options.sparsity = 1;
  const Sfft2dResult result =
      ExactSparseFft2d(signal.time_domain, n1, n2, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(Spectrum2dL2Error(result.coefficients, signal), 1e-8);
}

TEST(Sfft2dTest, RecoversSparseSpectraAcrossSizes) {
  for (uint64_t k : {4u, 16u, 64u}) {
    const uint64_t n1 = 128, n2 = 128;
    const SparseSpectrum2dSignal signal =
        MakeSparseSpectrum2dSignal(n1, n2, k, 10 + k);
    Sfft2dOptions options;
    options.sparsity = k;
    const Sfft2dResult result =
        ExactSparseFft2d(signal.time_domain, n1, n2, options);
    EXPECT_TRUE(result.converged) << "k=" << k;
    EXPECT_LT(Spectrum2dL2Error(result.coefficients, signal), 1e-7)
        << "k=" << k;
    EXPECT_EQ(result.coefficients.size(), k) << "k=" << k;
  }
}

TEST(Sfft2dTest, RectangularGrids) {
  const uint64_t n1 = 32, n2 = 256;
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(n1, n2, 8, 5);
  Sfft2dOptions options;
  options.sparsity = 8;
  const Sfft2dResult result =
      ExactSparseFft2d(signal.time_domain, n1, n2, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(Spectrum2dL2Error(result.coefficients, signal), 1e-7);
}

TEST(Sfft2dTest, SubLinearSampleComplexity) {
  const uint64_t n1 = 256, n2 = 256;  // n = 65536
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(n1, n2, 8, 6);
  Sfft2dOptions options;
  options.sparsity = 8;
  const Sfft2dResult result =
      ExactSparseFft2d(signal.time_domain, n1, n2, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.samples_read, n1 * n2 / 2);
}

TEST(Sfft2dTest, ShearBreaksGridCollisionPattern) {
  // Four coefficients at the corners of an axis-aligned rectangle form a
  // stopping set for pure row/column peeling: every row-bucket and
  // column-bucket involved holds exactly two of them. Shear rounds must
  // break the pattern.
  const uint64_t n1 = 64, n2 = 64;
  SparseSpectrum2dSignal signal;
  signal.coefficients = {{10, 20, Complex(1, 0)},
                         {10, 40, Complex(0, 1)},
                         {30, 20, Complex(-1, 0)},
                         {30, 40, Complex(0.5, 0.5)}};
  signal.time_domain.assign(n1 * n2, Complex(0, 0));
  for (const auto& c : signal.coefficients) {
    for (uint64_t t1 = 0; t1 < n1; ++t1) {
      for (uint64_t t2 = 0; t2 < n2; ++t2) {
        const double angle =
            2.0 * M_PI * (static_cast<double>(c.f1 * t1) / n1 +
                          static_cast<double>(c.f2 * t2) / n2);
        signal.time_domain[t1 * n2 + t2] +=
            c.value * Complex(std::cos(angle), std::sin(angle)) /
            static_cast<double>(n1 * n2);
      }
    }
  }
  Sfft2dOptions options;
  options.sparsity = 4;
  options.max_rounds = 12;
  const Sfft2dResult result =
      ExactSparseFft2d(signal.time_domain, n1, n2, options);
  EXPECT_LT(Spectrum2dL2Error(result.coefficients, signal), 1e-7);
  EXPECT_GT(result.rounds_used, 1);  // round 0 alone cannot finish
}

TEST(Sfft2dTest, ZeroGridConvergesEmpty) {
  const std::vector<Complex> zero(64 * 64, Complex(0, 0));
  Sfft2dOptions options;
  options.sparsity = 4;
  const Sfft2dResult result = ExactSparseFft2d(zero, 64, 64, options);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.coefficients.empty());
}

TEST(Sfft2dTest, DeterministicForSeed) {
  const SparseSpectrum2dSignal signal =
      MakeSparseSpectrum2dSignal(64, 64, 6, 7);
  Sfft2dOptions options;
  options.sparsity = 6;
  const Sfft2dResult a =
      ExactSparseFft2d(signal.time_domain, 64, 64, options);
  const Sfft2dResult b =
      ExactSparseFft2d(signal.time_domain, 64, 64, options);
  EXPECT_EQ(a.samples_read, b.samples_read);
  ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
}

}  // namespace
}  // namespace sketch
