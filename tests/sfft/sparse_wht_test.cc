#include "sfft/sparse_wht.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

std::vector<WhtCoefficient> RandomSparseCharacters(uint64_t n, uint64_t k,
                                                   uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::map<uint64_t, double> coeffs;
  while (coeffs.size() < k) {
    coeffs[rng.NextBounded(n)] = (rng.Next() & 1) ? 1.0 : -1.0;
  }
  std::vector<WhtCoefficient> out;
  for (const auto& [s, v] : coeffs) out.push_back({s, v});
  return out;
}

TEST(DenseWhtTest, DeltaFunctionHasFlatSpectrum) {
  std::vector<double> f(8, 0.0);
  f[0] = 8.0;
  const std::vector<double> fhat = DenseWht(f);
  for (double v : fhat) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(DenseWhtTest, SingleCharacterRoundTrip) {
  const uint64_t n = 64, s = 37;
  const std::vector<double> f =
      SynthesizeFromWhtCoefficients(n, {{s, 2.5}});
  const std::vector<double> fhat = DenseWht(f);
  for (uint64_t t = 0; t < n; ++t) {
    EXPECT_NEAR(fhat[t], t == s ? 2.5 : 0.0, 1e-12) << t;
  }
}

TEST(DenseWhtTest, ParsevalHolds) {
  Xoshiro256StarStar rng(3);
  std::vector<double> f(256);
  for (double& v : f) v = rng.NextGaussian();
  const std::vector<double> fhat = DenseWht(f);
  double time_energy = 0.0, freq_energy = 0.0;
  for (double v : f) time_energy += v * v;
  for (double v : fhat) freq_energy += v * v;
  // sum fhat^2 = E[f^2] = (1/N) sum f^2.
  EXPECT_NEAR(freq_energy, time_energy / 256.0, 1e-9);
}

TEST(DenseWhtTest, SelfInverseUpToScale) {
  Xoshiro256StarStar rng(4);
  std::vector<double> f(128);
  for (double& v : f) v = rng.NextGaussian();
  // WHT(WHT(f)) = f / N with our 1/N-normalized transform applied twice
  // on the *unnormalized* identity H H = N I => here result = f / N * N.
  std::vector<double> back = DenseWht(DenseWht(f));
  for (size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(back[i], f[i] / 128.0, 1e-12);
  }
}

TEST(KushilevitzMansourTest, FindsSingleHeavyCharacter) {
  const uint64_t n = 1 << 12;
  const std::vector<double> f =
      SynthesizeFromWhtCoefficients(n, {{1234, 1.0}});
  SparseWhtOptions options;
  options.threshold = 0.5;
  const SparseWhtResult result = KushilevitzMansour(f, options);
  ASSERT_EQ(result.coefficients.size(), 1u);
  EXPECT_EQ(result.coefficients[0].index, 1234u);
  EXPECT_NEAR(result.coefficients[0].value, 1.0, 0.05);
}

TEST(KushilevitzMansourTest, FindsAllPlantedCharacters) {
  const uint64_t n = 1 << 12;
  for (uint64_t k : {2u, 4u, 8u}) {
    const auto planted = RandomSparseCharacters(n, k, 10 + k);
    const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
    SparseWhtOptions options;
    options.threshold = 0.5;
    options.seed = k;
    const SparseWhtResult result = KushilevitzMansour(f, options);
    ASSERT_EQ(result.coefficients.size(), planted.size()) << "k=" << k;
    for (size_t i = 0; i < planted.size(); ++i) {
      EXPECT_EQ(result.coefficients[i].index, planted[i].index);
      EXPECT_NEAR(result.coefficients[i].value, planted[i].value, 0.1);
    }
  }
}

TEST(KushilevitzMansourTest, ExactCoefficientModeIsExact) {
  const uint64_t n = 1 << 10;
  const auto planted = RandomSparseCharacters(n, 4, 7);
  const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
  SparseWhtOptions options;
  options.threshold = 0.5;
  options.samples_per_coefficient = 0;  // exact summation
  const SparseWhtResult result = KushilevitzMansour(f, options);
  ASSERT_EQ(result.coefficients.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.coefficients[i].value, planted[i].value, 1e-12);
  }
}

TEST(KushilevitzMansourTest, IgnoresCoefficientsBelowThreshold) {
  const uint64_t n = 1 << 10;
  std::vector<WhtCoefficient> planted = {{100, 1.0}, {200, 0.05}};
  const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
  SparseWhtOptions options;
  options.threshold = 0.5;
  const SparseWhtResult result = KushilevitzMansour(f, options);
  ASSERT_EQ(result.coefficients.size(), 1u);
  EXPECT_EQ(result.coefficients[0].index, 100u);
}

TEST(KushilevitzMansourTest, SampleComplexityScalesLogarithmically) {
  // KM reads O(k log n * samples_per_estimate) positions: growing n by
  // 64x should grow the sample count by ~log factor (1.5x), not 64x.
  uint64_t samples_small = 0, samples_large = 0;
  {
    const uint64_t n = 1 << 12;
    const auto planted = RandomSparseCharacters(n, 4, 9);
    const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
    SparseWhtOptions options;
    options.threshold = 0.5;
    const SparseWhtResult result = KushilevitzMansour(f, options);
    EXPECT_EQ(result.coefficients.size(), 4u);
    samples_small = result.samples_read;
  }
  {
    const uint64_t n = 1 << 18;
    const auto planted = RandomSparseCharacters(n, 4, 9);
    const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
    SparseWhtOptions options;
    options.threshold = 0.5;
    const SparseWhtResult result = KushilevitzMansour(f, options);
    EXPECT_EQ(result.coefficients.size(), 4u);
    samples_large = result.samples_read;
  }
  // 64x more input, only ~1.5x more samples: the O(k log n * S) cost is
  // what makes KM sub-linear once n outgrows the (large) constant S.
  EXPECT_LT(samples_large, 4 * samples_small);
}

TEST(KushilevitzMansourTest, RobustToSmallNoise) {
  const uint64_t n = 1 << 12;
  const auto planted = RandomSparseCharacters(n, 3, 11);
  std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
  Xoshiro256StarStar rng(12);
  for (double& v : f) v += 0.05 * rng.NextGaussian();
  SparseWhtOptions options;
  options.threshold = 0.5;
  const SparseWhtResult result = KushilevitzMansour(f, options);
  ASSERT_EQ(result.coefficients.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.coefficients[i].index, planted[i].index);
    EXPECT_NEAR(result.coefficients[i].value, planted[i].value, 0.1);
  }
}

TEST(KushilevitzMansourTest, ZeroFunctionFindsNothing) {
  const std::vector<double> f(1 << 8, 0.0);
  SparseWhtOptions options;
  options.threshold = 0.25;
  const SparseWhtResult result = KushilevitzMansour(f, options);
  EXPECT_TRUE(result.coefficients.empty());
}

TEST(KushilevitzMansourTest, AgreesWithDenseWht) {
  const uint64_t n = 1 << 10;
  const auto planted = RandomSparseCharacters(n, 5, 13);
  const std::vector<double> f = SynthesizeFromWhtCoefficients(n, planted);
  const std::vector<double> dense = DenseWht(f);
  SparseWhtOptions options;
  options.threshold = 0.5;
  options.samples_per_coefficient = 0;
  const SparseWhtResult sparse = KushilevitzMansour(f, options);
  for (const WhtCoefficient& c : sparse.coefficients) {
    EXPECT_NEAR(c.value, dense[c.index], 1e-10);
  }
}

}  // namespace
}  // namespace sketch
