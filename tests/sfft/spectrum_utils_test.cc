#include "sfft/spectrum_utils.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "fft/fft.h"

namespace sketch {
namespace {

TEST(SparseSpectrumSignalTest, SpectrumMatchesFftOfTimeDomain) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(256, 5, 1);
  const std::vector<Complex> spectrum = Fft(signal.time_domain);
  std::set<uint64_t> support;
  for (const SpectralCoefficient& c : signal.coefficients) {
    support.insert(c.frequency);
    EXPECT_NEAR(std::abs(spectrum[c.frequency] - c.value), 0.0, 1e-9);
  }
  for (uint64_t f = 0; f < 256; ++f) {
    if (!support.count(f)) {
      EXPECT_NEAR(std::abs(spectrum[f]), 0.0, 1e-9) << "f=" << f;
    }
  }
}

TEST(SparseSpectrumSignalTest, ExactlyKCoefficientsWithUnitMagnitude) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(1024, 17, 2);
  EXPECT_EQ(signal.coefficients.size(), 17u);
  std::set<uint64_t> freqs;
  for (const SpectralCoefficient& c : signal.coefficients) {
    freqs.insert(c.frequency);
    EXPECT_NEAR(std::abs(c.value), 1.0, 1e-12);
  }
  EXPECT_EQ(freqs.size(), 17u);
}

TEST(SparseSpectrumSignalTest, CoefficientsSortedByFrequency) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(512, 9, 3);
  for (size_t i = 1; i < signal.coefficients.size(); ++i) {
    EXPECT_LT(signal.coefficients[i - 1].frequency,
              signal.coefficients[i].frequency);
  }
}

TEST(SparseSpectrumSignalTest, ZeroSparsityIsZeroSignal) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(64, 0, 4);
  EXPECT_TRUE(signal.coefficients.empty());
  EXPECT_NEAR(L2Norm(signal.time_domain), 0.0, 1e-15);
}

TEST(SpectrumL2ErrorTest, ZeroForPerfectRecovery) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(128, 4, 5);
  EXPECT_NEAR(SpectrumL2Error(signal.coefficients, signal), 0.0, 1e-15);
}

TEST(SpectrumL2ErrorTest, MissedCoefficientCountsFully) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(128, 3, 6);
  std::vector<SpectralCoefficient> partial(signal.coefficients.begin(),
                                           signal.coefficients.end() - 1);
  const double missing = std::abs(signal.coefficients.back().value);
  EXPECT_NEAR(SpectrumL2Error(partial, signal), missing, 1e-12);
}

TEST(SpectrumL2ErrorTest, SpuriousCoefficientPenalized) {
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(128, 2, 7);
  std::vector<SpectralCoefficient> rec = signal.coefficients;
  // Add a spurious coefficient at an unused frequency.
  uint64_t spurious = 0;
  std::set<uint64_t> used;
  for (const auto& c : signal.coefficients) used.insert(c.frequency);
  while (used.count(spurious)) ++spurious;
  rec.push_back({spurious, Complex(0.5, 0.0)});
  EXPECT_NEAR(SpectrumL2Error(rec, signal), 0.5, 1e-12);
}

TEST(TopKCoefficientsTest, SelectsLargestMagnitudes) {
  std::vector<Complex> spectrum(8, Complex(0, 0));
  spectrum[2] = Complex(3.0, 0.0);
  spectrum[5] = Complex(0.0, 5.0);
  spectrum[7] = Complex(1.0, 0.0);
  const auto top = TopKCoefficients(spectrum, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].frequency, 2u);
  EXPECT_EQ(top[1].frequency, 5u);
}

TEST(TopKCoefficientsTest, KLargerThanNKeepsAll) {
  std::vector<Complex> spectrum(4, Complex(1, 0));
  EXPECT_EQ(TopKCoefficients(spectrum, 10).size(), 4u);
}

TEST(AddComplexNoiseTest, EnergyMatchesSigma) {
  std::vector<Complex> x(50000, Complex(0, 0));
  AddComplexNoise(&x, 0.3, 8);
  double energy = 0.0;
  for (const Complex& v : x) energy += std::norm(v);
  // Each component contributes 2 * sigma^2 per sample.
  EXPECT_NEAR(energy / static_cast<double>(x.size()), 2 * 0.09, 0.01);
}

}  // namespace
}  // namespace sketch
