#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "sfft/sfft.h"

namespace sketch {
namespace {

TEST(FlatSfftTest, RecoversSingleToneCleanly) {
  const uint64_t n = 1 << 12;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 1, 1);
  const FlatFilter filter(n, 16, 6, 1e-8);
  SfftOptions options;
  options.sparsity = 1;
  const SfftResult result =
      FlatFilterSparseFft(signal.time_domain, filter, options);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-3);
}

TEST(FlatSfftTest, RecoversSparseSpectrum) {
  const uint64_t n = 1 << 14;
  for (uint64_t k : {4u, 16u}) {
    const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, k);
    const FlatFilter filter(n, std::max<uint64_t>(4 * k, 16), 6, 1e-8);
    SfftOptions options;
    options.sparsity = k;
    options.max_rounds = 20;
    const SfftResult result =
        FlatFilterSparseFft(signal.time_domain, filter, options);
    EXPECT_LT(SpectrumL2Error(result.coefficients, signal),
              1e-2 * static_cast<double>(k))
        << "k=" << k;
  }
}

TEST(FlatSfftTest, SubLinearSampleComplexity) {
  const uint64_t n = 1 << 18;
  const uint64_t k = 4;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, 2);
  const FlatFilter filter(n, 16, 6, 1e-8);
  SfftOptions options;
  options.sparsity = k;
  const SfftResult result =
      FlatFilterSparseFft(signal.time_domain, filter, options);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-2);
  EXPECT_LT(result.samples_read, n);  // strictly fewer samples than FFT
}

TEST(FlatSfftTest, ToleratesModerateNoise) {
  const uint64_t n = 1 << 13;
  const uint64_t k = 4;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, 3);
  std::vector<Complex> noisy = signal.time_domain;
  // Per-sample noise well below the per-sample signal contribution.
  AddComplexNoise(&noisy, 0.05 / static_cast<double>(n), 3);
  const FlatFilter filter(n, 32, 6, 1e-8);
  SfftOptions options;
  options.sparsity = k;
  options.magnitude_tolerance = 1e-3;
  options.max_rounds = 20;
  const SfftResult result = FlatFilterSparseFft(noisy, filter, options);
  // All true coefficients located; values within the noise budget.
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 0.3);
}

TEST(FlatSfftTest, ZeroSignalFindsNothingSignificant) {
  const uint64_t n = 1 << 10;
  const std::vector<Complex> zero(n, Complex(0, 0));
  const FlatFilter filter(n, 16, 4, 1e-8);
  SfftOptions options;
  options.sparsity = 4;
  const SfftResult result = FlatFilterSparseFft(zero, filter, options);
  double total = 0.0;
  for (const auto& c : result.coefficients) total += std::abs(c.value);
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST(FlatSfftTest, OutputCappedAtTwiceSparsity) {
  const uint64_t n = 1 << 12;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 10, 4);
  const FlatFilter filter(n, 64, 6, 1e-8);
  SfftOptions options;
  options.sparsity = 3;  // deliberately under-provisioned
  const SfftResult result =
      FlatFilterSparseFft(signal.time_domain, filter, options);
  EXPECT_LE(result.coefficients.size(), 2 * options.sparsity);
}

TEST(FlatSfftTest, AgreesWithExactSfftOnExactlySparseInput) {
  const uint64_t n = 1 << 12;
  const uint64_t k = 6;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, 5);
  const FlatFilter filter(n, 32, 6, 1e-8);
  SfftOptions options;
  options.sparsity = k;
  options.max_rounds = 20;
  const SfftResult flat =
      FlatFilterSparseFft(signal.time_domain, filter, options);
  const SfftResult exact = ExactSparseFft(signal.time_domain, options);
  EXPECT_LT(SpectrumL2Error(flat.coefficients, signal), 1e-2);
  EXPECT_LT(SpectrumL2Error(exact.coefficients, signal), 1e-7);
}

}  // namespace
}  // namespace sketch
