#include "sfft/modular.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

TEST(ModInversePow2Test, SmallKnownInverses) {
  EXPECT_EQ(ModInversePow2(1, 8), 1u);
  EXPECT_EQ(ModInversePow2(3, 8), 3u);   // 3*3 = 9 = 1 mod 8
  EXPECT_EQ(ModInversePow2(5, 8), 5u);   // 5*5 = 25 = 1 mod 8
  EXPECT_EQ(ModInversePow2(7, 8), 7u);
  EXPECT_EQ(ModInversePow2(3, 16), 11u);  // 3*11 = 33 = 1 mod 16
}

TEST(ModInversePow2Test, InverseIdentityForRandomOddValues) {
  Xoshiro256StarStar rng(1);
  for (uint64_t n : {1ULL << 8, 1ULL << 20, 1ULL << 40, 1ULL << 62}) {
    for (int t = 0; t < 200; ++t) {
      const uint64_t a = (rng.Next() | 1) & (n - 1);
      const uint64_t inv = ModInversePow2(a, n);
      ASSERT_LT(inv, n);
      ASSERT_EQ((a * inv) & (n - 1), 1u) << "a=" << a << " n=" << n;
    }
  }
}

TEST(ModInversePow2Test, RejectsEvenValues) {
  EXPECT_DEATH(ModInversePow2(4, 16), "");
}

TEST(ModInversePow2Test, RejectsNonPowerOfTwoModulus) {
  EXPECT_DEATH(ModInversePow2(3, 12), "");
}

TEST(MulModPow2Test, WrapsCorrectly) {
  EXPECT_EQ(MulModPow2(3, 5, 8), 7u);       // 15 mod 8
  EXPECT_EQ(MulModPow2(7, 7, 16), 1u);      // 49 mod 16
  EXPECT_EQ(MulModPow2(1ULL << 32, 1ULL << 32, 1ULL << 40), 0u);
}

}  // namespace
}  // namespace sketch
