#include "sfft/crt_sfft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fft/fft.h"

namespace sketch {
namespace {

TEST(CoprimeFactorizationTest, KnownFactorizations) {
  EXPECT_EQ(CoprimeFactorization(720),
            (std::vector<uint64_t>{16, 9, 5}));
  EXPECT_EQ(CoprimeFactorization(6), (std::vector<uint64_t>{3, 2}));
  EXPECT_EQ(CoprimeFactorization(1024), (std::vector<uint64_t>{1024}));
  EXPECT_EQ(CoprimeFactorization(97), (std::vector<uint64_t>{97}));
  EXPECT_EQ(CoprimeFactorization(3 * 3 * 7 * 11),
            (std::vector<uint64_t>{11, 9, 7}));
}

TEST(CoprimeFactorizationTest, ProductRecoversN) {
  for (uint64_t n : {12u, 360u, 46080u, 99999u}) {
    uint64_t product = 1;
    for (uint64_t f : CoprimeFactorization(n)) product *= f;
    EXPECT_EQ(product, n);
  }
}

TEST(CrtSfftTest, RecoversSingleTone) {
  const uint64_t n = 3 * 1024;  // moduli {1024, 3}
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 1, 1);
  CrtSfftOptions options;
  options.sparsity = 1;
  const CrtSfftResult result = CrtSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-8);
}

TEST(CrtSfftTest, RecoversSparseSpectraOnSmoothLengths) {
  // n = 2^6 * 3^4 * 5^2 = 129600: moduli {64, 81, 25}.
  const uint64_t n = 64 * 81 * 25;
  for (uint64_t k : {2u, 8u, 16u}) {
    const SparseSpectrumSignal signal =
        MakeSparseSpectrumSignal(n, k, 10 + k);
    CrtSfftOptions options;
    options.sparsity = k;
    const CrtSfftResult result = CrtSparseFft(signal.time_domain, options);
    EXPECT_TRUE(result.converged) << "k=" << k;
    EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-7)
        << "k=" << k;
    ASSERT_EQ(result.moduli_used.size(), 3u);
  }
}

TEST(CrtSfftTest, SubLinearSamples) {
  const uint64_t n = 64 * 81 * 25;  // 129600
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 8, 3);
  CrtSfftOptions options;
  options.sparsity = 8;
  const CrtSfftResult result = CrtSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged);
  // Reads 2*(64+81+25) = 340 samples of a 129600-sample signal.
  EXPECT_EQ(result.samples_read, 2u * (64 + 81 + 25));
}

TEST(CrtSfftTest, PeelingResolvesCollisions) {
  // Two frequencies congruent mod 64 (the largest modulus) collide there
  // but are separated by the other moduli once one of them peels.
  const uint64_t n = 64 * 27;
  SparseSpectrumSignal signal;
  signal.coefficients = {{100, Complex(1.0, 0.0)},
                         {100 + 64 * 9, Complex(0.0, 1.0)},
                         {500, Complex(-1.0, 0.0)}};
  signal.time_domain.assign(n, Complex(0, 0));
  for (const auto& c : signal.coefficients) {
    for (uint64_t t = 0; t < n; ++t) {
      const double angle = 2.0 * M_PI *
                           static_cast<double>((c.frequency * t) % n) /
                           static_cast<double>(n);
      signal.time_domain[t] += c.value *
                               Complex(std::cos(angle), std::sin(angle)) /
                               static_cast<double>(n);
    }
  }
  CrtSfftOptions options;
  options.sparsity = 3;
  const CrtSfftResult result = CrtSparseFft(signal.time_domain, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(SpectrumL2Error(result.coefficients, signal), 1e-8);
}

TEST(CrtSfftTest, ZeroSignalConvergesEmpty) {
  const std::vector<Complex> zero(6 * 125, Complex(0, 0));
  CrtSfftOptions options;
  options.sparsity = 4;
  const CrtSfftResult result = CrtSparseFft(zero, options);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.coefficients.empty());
}

TEST(CrtSfftTest, MatchesDenseFftBaseline) {
  const uint64_t n = 128 * 9;
  const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 5, 7);
  CrtSfftOptions options;
  options.sparsity = 5;
  const CrtSfftResult crt = CrtSparseFft(signal.time_domain, options);
  const std::vector<Complex> dense = Fft(signal.time_domain);
  for (const SpectralCoefficient& c : crt.coefficients) {
    EXPECT_NEAR(std::abs(c.value - dense[c.frequency]), 0.0, 1e-8);
  }
}

}  // namespace
}  // namespace sketch
