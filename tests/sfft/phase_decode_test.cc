#include "sfft/phase_decode.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sketch {
namespace {

/// Builds the measurement vector of a singleton at frequency g with the
/// given complex amplitude, plus optional per-measurement noise.
std::vector<Complex> SingletonMeasurements(uint64_t g, Complex amplitude,
                                           const std::vector<uint64_t>& shifts,
                                           uint64_t n, double noise,
                                           uint64_t noise_seed) {
  Xoshiro256StarStar rng(noise_seed);
  std::vector<Complex> values(shifts.size());
  for (size_t s = 0; s < shifts.size(); ++s) {
    values[s] = amplitude * PhaseUnit(g * shifts[s], n);
    if (noise > 0.0) {
      values[s] += Complex(noise * rng.NextGaussian(),
                           noise * rng.NextGaussian());
    }
  }
  return values;
}

TEST(PhaseUnitTest, KnownAngles) {
  const uint64_t n = 8;
  EXPECT_NEAR(std::abs(PhaseUnit(0, n) - Complex(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(PhaseUnit(2, n) - Complex(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(PhaseUnit(4, n) - Complex(-1, 0)), 0.0, 1e-12);
  // Periodicity: numerator reduced mod n.
  EXPECT_NEAR(std::abs(PhaseUnit(10, n) - PhaseUnit(2, n)), 0.0, 1e-12);
}

TEST(PhaseShiftScheduleTest, StructureIsReferencePlusScalesPlusRandom) {
  Xoshiro256StarStar rng(1);
  const uint64_t n = 64;
  const auto shifts = PhaseShiftSchedule(n, 1, &rng);
  // {0} + {32, 16, 8, 4, 2, 1} + {random}.
  ASSERT_EQ(shifts.size(), 8u);
  EXPECT_EQ(shifts[0], 0u);
  for (int j = 1; j <= 6; ++j) EXPECT_EQ(shifts[j], n >> j);
  EXPECT_GE(shifts.back(), 2u);
  EXPECT_LT(shifts.back(), n);
}

TEST(PhaseShiftScheduleTest, StartLevelSkipsKnownBits) {
  Xoshiro256StarStar rng(2);
  const auto shifts = PhaseShiftSchedule(64, 4, &rng);
  // {0} + {64>>4, 64>>5, 64>>6} = {4, 2, 1} + {random}.
  ASSERT_EQ(shifts.size(), 5u);
  EXPECT_EQ(shifts[1], 4u);
  EXPECT_EQ(shifts[3], 1u);
}

TEST(PhaseDecodeTest, DecodesEveryFrequencyExactly) {
  const uint64_t n = 256;
  Xoshiro256StarStar rng(3);
  const auto shifts = PhaseShiftSchedule(n, 1, &rng);
  for (uint64_t g = 0; g < n; ++g) {
    const auto values =
        SingletonMeasurements(g, Complex(0.7, -1.1), shifts, n, 0.0, 0);
    uint64_t decoded = 0;
    ASSERT_TRUE(
        PhaseDecodeSingleton(values, shifts, n, 1, 0, 0.05, &decoded));
    EXPECT_EQ(decoded, g);
  }
}

TEST(PhaseDecodeTest, UsesKnownLowBits) {
  const uint64_t n = 1 << 10;
  Xoshiro256StarStar rng(4);
  const int start_level = 5;  // low 4 bits known
  const auto shifts = PhaseShiftSchedule(n, start_level, &rng);
  const uint64_t g = 0x2f3;  // low 4 bits = 0x3
  const auto values =
      SingletonMeasurements(g, Complex(1, 0), shifts, n, 0.0, 0);
  uint64_t decoded = 0;
  ASSERT_TRUE(PhaseDecodeSingleton(values, shifts, n, start_level,
                                   g & 0xf, 0.05, &decoded));
  EXPECT_EQ(decoded, g);
}

TEST(PhaseDecodeTest, RobustToTenPercentNoise) {
  const uint64_t n = 1 << 16;
  Xoshiro256StarStar rng(5);
  int correct = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto shifts = PhaseShiftSchedule(n, 1, &rng);
    const uint64_t g = rng.NextBounded(n);
    const auto values = SingletonMeasurements(g, Complex(1, 0), shifts, n,
                                              /*noise=*/0.05, 100 + t);
    uint64_t decoded = 0;
    if (PhaseDecodeSingleton(values, shifts, n, 1, 0, /*tolerance=*/0.4,
                             &decoded) &&
        decoded == g) {
      ++correct;
    }
  }
  // Bitwise location has a pi/2 margin per bit: 5% noise should almost
  // never flip a bit.
  EXPECT_GE(correct, trials * 95 / 100);
}

TEST(PhaseDecodeTest, RejectsTwoToneCollisions) {
  const uint64_t n = 1 << 12;
  Xoshiro256StarStar rng(6);
  int rejected = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto shifts = PhaseShiftSchedule(n, 1, &rng);
    const uint64_t g1 = rng.NextBounded(n);
    uint64_t g2 = rng.NextBounded(n);
    if (g2 == g1) g2 = (g1 + 1) % n;
    std::vector<Complex> values(shifts.size());
    for (size_t s = 0; s < shifts.size(); ++s) {
      values[s] = Complex(1.0, 0.0) * PhaseUnit(g1 * shifts[s], n) +
                  Complex(0.8, 0.3) * PhaseUnit(g2 * shifts[s], n);
    }
    uint64_t decoded = 0;
    const bool accepted =
        PhaseDecodeSingleton(values, shifts, n, 1, 0, 0.05, &decoded);
    // Either rejected, or (vanishingly rare) accepted with one of the two
    // real tones — never a fabricated third frequency.
    if (!accepted) {
      ++rejected;
    } else {
      EXPECT_TRUE(decoded == g1 || decoded == g2);
    }
  }
  EXPECT_GE(rejected, trials * 90 / 100);
}

TEST(PhaseDecodeTest, RejectsNearCancellingPairs) {
  // Two tones of near-opposite amplitude in one bucket — the ghost
  // scenario that a final random-shift validation must catch.
  const uint64_t n = 1 << 14;
  Xoshiro256StarStar rng(7);
  int fabricated = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto shifts = PhaseShiftSchedule(n, 1, &rng);
    const uint64_t g1 = rng.NextBounded(n);
    const uint64_t g2 = (g1 + 1 + rng.NextBounded(30)) % n;  // nearby
    std::vector<Complex> values(shifts.size());
    for (size_t s = 0; s < shifts.size(); ++s) {
      values[s] = Complex(1.0, 0.0) * PhaseUnit(g1 * shifts[s], n) -
                  Complex(0.55, 0.0) * PhaseUnit(g2 * shifts[s], n);
    }
    uint64_t decoded = 0;
    if (PhaseDecodeSingleton(values, shifts, n, 1, 0, 0.05, &decoded) &&
        decoded != g1 && decoded != g2) {
      ++fabricated;
    }
  }
  EXPECT_LE(fabricated, 2);  // fabricated ghosts must be (almost) never
}

}  // namespace
}  // namespace sketch
