#include "sfft/flat_filter.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(FlatFilterTest, SupportIsOddAndBounded) {
  const FlatFilter f(1 << 14, 64, 4, 1e-8);
  EXPECT_EQ(f.support() % 2, 1u);
  EXPECT_LE(f.support(), 1u << 14);
  EXPECT_EQ(f.support(), static_cast<uint64_t>(2 * f.half_support() + 1));
}

TEST(FlatFilterTest, PassbandCenterHasUnitGain) {
  const FlatFilter f(1 << 12, 32, 4, 1e-8);
  EXPECT_NEAR(f.ResponseAt(0), 1.0, 1e-9);
}

TEST(FlatFilterTest, PassbandIsFlat) {
  const FlatFilter f(1 << 14, 64, 6, 1e-8);
  // Within half a bucket of the center the gain must stay near 1.
  EXPECT_LT(f.PassbandRipple(), 0.05);
}

TEST(FlatFilterTest, StopbandLeakageIsNegligible) {
  const FlatFilter f(1 << 14, 64, 6, 1e-8);
  EXPECT_LT(f.StopbandLeakage(), 1e-5);
}

TEST(FlatFilterTest, LargerSupportImprovesLeakage) {
  const uint64_t n = 1 << 13;
  const FlatFilter narrow(n, 32, 2, 1e-8);
  const FlatFilter wide(n, 32, 8, 1e-8);
  EXPECT_LT(wide.StopbandLeakage(), narrow.StopbandLeakage());
}

TEST(FlatFilterTest, ResponseIsSymmetric) {
  const FlatFilter f(1 << 10, 16, 4, 1e-8);
  for (int64_t o : {1, 5, 17, 100, 500}) {
    EXPECT_NEAR(f.ResponseAt(o), f.ResponseAt(-o), 1e-9) << "offset " << o;
  }
}

TEST(FlatFilterTest, ResponseMatchesDirectDftOfTaps) {
  const uint64_t n = 256;
  const FlatFilter f(n, 8, 3, 1e-6);
  // Recompute H[f] = sum_t h[t] e^{-2 pi i f t / n} directly for a few f.
  const int64_t half = f.half_support();
  for (uint64_t freq : {0u, 1u, 5u, 32u, 128u}) {
    double re = 0.0;
    for (int64_t t = -half; t <= half; ++t) {
      re += f.taps()[t + half] *
            std::cos(2.0 * M_PI * static_cast<double>(freq) *
                     static_cast<double>(t) / static_cast<double>(n));
    }
    EXPECT_NEAR(f.frequency_response()[freq], re, 1e-9) << "f=" << freq;
  }
}

TEST(FlatFilterTest, ResponseDecaysMonotonicallyIntoStopband) {
  const FlatFilter f(1 << 12, 32, 6, 1e-8);
  const int64_t bucket = static_cast<int64_t>((1 << 12) / 32);
  // Sampled at bucket multiples, the gain must drop sharply after the
  // passband.
  EXPECT_GT(f.ResponseAt(0), 0.99);
  EXPECT_LT(std::abs(f.ResponseAt(2 * bucket)), 0.05);
  EXPECT_LT(std::abs(f.ResponseAt(4 * bucket)), 0.01);
}

TEST(FlatFilterTest, TinyConfigurationsStillConstruct) {
  const FlatFilter f(16, 2, 1, 0.01);
  EXPECT_GE(f.support(), 3u);
  EXPECT_NEAR(f.ResponseAt(0), 1.0, 1e-9);
}

}  // namespace
}  // namespace sketch
