#include "cs/linear_operator.h"

#include <memory>

#include <gtest/gtest.h>

#include "cs/ensembles.h"

namespace sketch {
namespace {

TEST(LinearOperatorTest, DenseWrapperMatchesMatrix) {
  auto a = std::make_shared<DenseMatrix>(3, 2);
  a->At(0, 0) = 1.0;
  a->At(1, 1) = 2.0;
  a->At(2, 0) = -1.0;
  const LinearOperator op = LinearOperator::FromDense(a);
  EXPECT_EQ(op.rows(), 3u);
  EXPECT_EQ(op.cols(), 2u);
  const std::vector<double> y = op.Apply({2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
  const std::vector<double> z = op.ApplyTranspose({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 2.0);
}

TEST(LinearOperatorTest, CsrWrapperMatchesMatrix) {
  auto a = std::make_shared<CsrMatrix>(
      CsrMatrix::FromTriplets(2, 3, {{0, 0, 1.0}, {1, 2, 4.0}}));
  const LinearOperator op = LinearOperator::FromCsr(a);
  const std::vector<double> direct =
      a->Multiply(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<double> via_op = op.Apply({1.0, 2.0, 3.0});
  ASSERT_EQ(direct.size(), via_op.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], via_op[i]);
  }
}

TEST(LinearOperatorTest, SurvivesSourceSharedPtrGoingOutOfScope) {
  LinearOperator op = [] {
    auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(4, 4, 1));
    return LinearOperator::FromDense(a);
  }();  // the local shared_ptr died; the lambda capture keeps it alive
  const std::vector<double> y = op.Apply({1.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(y.size(), 4u);
}

TEST(LinearOperatorTest, AdjointIdentityHolds) {
  auto a = std::make_shared<CsrMatrix>(MakeSparseBinaryMatrix(16, 32, 4, 2));
  const LinearOperator op = LinearOperator::FromCsr(a);
  std::vector<double> x(32), y(16);
  for (int i = 0; i < 32; ++i) x[i] = 0.1 * i;
  for (int i = 0; i < 16; ++i) y[i] = 0.2 * (i - 8);
  double lhs = 0.0, rhs = 0.0;
  const auto ax = op.Apply(x);
  for (int i = 0; i < 16; ++i) lhs += ax[i] * y[i];
  const auto aty = op.ApplyTranspose(y);
  for (int i = 0; i < 32; ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(LinearOperatorTest, CustomFunctionsWork) {
  // A pure-callback operator (e.g., an implicit FFT-based map).
  const LinearOperator op(
      2, 2, [](const std::vector<double>& x) {
        return std::vector<double>{x[0] + x[1], x[0] - x[1]};
      },
      [](const std::vector<double>& y) {
        return std::vector<double>{y[0] + y[1], y[0] - y[1]};
      });
  const auto y = op.Apply({3.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

}  // namespace
}  // namespace sketch
