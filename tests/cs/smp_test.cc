#include "cs/smp.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/signals.h"
#include "cs/ssmp.h"

namespace sketch {
namespace {

TEST(SmpTest, RecoversExactlySparseSignal) {
  const uint64_t n = 1024, k = 8, m = 24 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 1);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 1);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SmpOptions options;
  options.sparsity = k;
  const SmpResult result = SmpRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-6 * L2Norm(x.ToDense()));
}

TEST(SmpTest, EstimateIsKSparse) {
  const uint64_t n = 512, k = 6, m = 150;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 6, 2);
  const SparseVector x =
      MakeSparseSignal(n, 2 * k, SignalValueDistribution::kGaussian, 2);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SmpOptions options;
  options.sparsity = k;
  const SmpResult result = SmpRecover(a, y, options);
  EXPECT_LE(result.estimate.nnz(), k);
}

TEST(SmpTest, ZeroMeasurementsGiveZero) {
  const CsrMatrix a = MakeSparseBinaryMatrix(64, 256, 4, 3);
  SmpOptions options;
  options.sparsity = 5;
  const SmpResult result =
      SmpRecover(a, std::vector<double>(64, 0.0), options);
  EXPECT_EQ(result.estimate.nnz(), 0u);
}

TEST(SmpTest, FewerIterationsThanSsmpSteps) {
  // SMP converges in O(log) batch iterations where SSMP performs O(k)
  // single-coordinate steps per phase.
  const uint64_t n = 1024, k = 10, m = 30 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 4);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 4);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SmpOptions smp_options;
  smp_options.sparsity = k;
  const SmpResult smp = SmpRecover(a, y, smp_options);
  EXPECT_LT(L2Distance(smp.estimate.ToDense(), x.ToDense()), 1e-6);
  EXPECT_LE(smp.iterations_run, 10);
}

TEST(SmpTest, NoisyRecoveryDegradesGracefully) {
  const uint64_t n = 1024, k = 8, m = 30 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 5);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 5);
  std::vector<double> y = a.Multiply(x.ToDense());
  AddGaussianNoise(&y, 0.01, 5);
  SmpOptions options;
  options.sparsity = k;
  const SmpResult result = SmpRecover(a, y, options);
  std::set<uint64_t> truth, found;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : result.estimate.entries()) found.insert(e.index);
  int hits = 0;
  for (uint64_t i : found) hits += static_cast<int>(truth.count(i));
  EXPECT_GE(hits, static_cast<int>(k) - 1);
}

TEST(SmpTest, AgreesWithSsmpOnEasyInstances) {
  const uint64_t n = 512, k = 5, m = 200;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 6);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 6);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SmpOptions smp_opt;
  smp_opt.sparsity = k;
  SsmpOptions ssmp_opt;
  ssmp_opt.sparsity = k;
  const SmpResult smp = SmpRecover(a, y, smp_opt);
  const SsmpResult ssmp = SsmpRecover(a, y, ssmp_opt);
  EXPECT_LT(L2Distance(smp.estimate.ToDense(), ssmp.estimate.ToDense()),
            1e-6);
}

}  // namespace
}  // namespace sketch
