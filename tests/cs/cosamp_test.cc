#include "cs/cosamp.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(CosampTest, RecoversExactlySparseSignal) {
  const uint64_t n = 512, k = 8, m = 160;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 1);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 1);
  CosampOptions options;
  options.sparsity = k;
  const CosampResult result = CosampRecover(a, a.Multiply(x.ToDense()),
                                            options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-8 * L2Norm(x.ToDense()));
  EXPECT_LT(result.residual_l2, 1e-8);
}

TEST(CosampTest, ConvergesInFewIterations) {
  const uint64_t n = 512, k = 10, m = 200;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 2);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 2);
  CosampOptions options;
  options.sparsity = k;
  const CosampResult result = CosampRecover(a, a.Multiply(x.ToDense()),
                                            options);
  EXPECT_LE(result.iterations_run, 10);
  EXPECT_LT(result.residual_l2, 1e-8);
}

TEST(CosampTest, SupportExactlyIdentified) {
  const uint64_t n = 256, k = 6, m = 100;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 3);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kSignOnly, 3);
  CosampOptions options;
  options.sparsity = k;
  const CosampResult result = CosampRecover(a, a.Multiply(x.ToDense()),
                                            options);
  std::set<uint64_t> truth, got;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : result.estimate.entries()) got.insert(e.index);
  EXPECT_EQ(truth, got);
}

TEST(CosampTest, EstimateIsKSparse) {
  const uint64_t n = 256, k = 5, m = 120;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 4);
  const SparseVector x =
      MakeSparseSignal(n, 3 * k, SignalValueDistribution::kGaussian, 4);
  CosampOptions options;
  options.sparsity = k;
  const CosampResult result = CosampRecover(a, a.Multiply(x.ToDense()),
                                            options);
  EXPECT_LE(result.estimate.nnz(), k);
}

TEST(CosampTest, NoisyRecoveryCloseToTruth) {
  const uint64_t n = 512, k = 8, m = 200;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 5);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 5);
  std::vector<double> y = a.Multiply(x.ToDense());
  AddGaussianNoise(&y, 0.01, 5);
  CosampOptions options;
  options.sparsity = k;
  const CosampResult result = CosampRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()), 0.3);
}

TEST(CosampTest, ZeroMeasurementsGiveZero) {
  const DenseMatrix a = MakeGaussianMatrix(64, 128, 6);
  CosampOptions options;
  options.sparsity = 4;
  const CosampResult result =
      CosampRecover(a, std::vector<double>(64, 0.0), options);
  EXPECT_EQ(result.estimate.nnz(), 0u);
}

}  // namespace
}  // namespace sketch
