#include "cs/ensembles.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(SparseBinaryMatrixTest, ExactlyDOnesPerColumnInDistinctRows) {
  const CsrMatrix a = MakeSparseBinaryMatrix(64, 256, 8, 1);
  EXPECT_EQ(a.nnz(), 256u * 8u);
  const CsrMatrix at = a.Transpose();
  for (uint64_t c = 0; c < 256; ++c) {
    const CsrMatrix::RowView col = at.Row(c);
    ASSERT_EQ(col.size, 8u) << "column " << c;
    std::set<uint64_t> rows;
    for (uint64_t t = 0; t < col.size; ++t) {
      EXPECT_DOUBLE_EQ(col.values[t], 1.0);
      rows.insert(col.cols[t]);
    }
    EXPECT_EQ(rows.size(), 8u) << "column " << c << " has duplicate rows";
  }
}

TEST(SparseBinaryMatrixTest, RowLoadIsBalanced) {
  const uint64_t rows = 128, cols = 4096;
  const int d = 4;
  const CsrMatrix a = MakeSparseBinaryMatrix(rows, cols, d, 2);
  const double expected = static_cast<double>(cols) * d / rows;
  for (uint64_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(static_cast<double>(a.Row(r).size), expected,
                6 * std::sqrt(expected));
  }
}

TEST(CountSketchMatrixTest, OneSignedEntryPerColumnPerBlock) {
  const uint64_t width = 32, depth = 3, cols = 500;
  const CsrMatrix a = MakeCountSketchMatrix(width, depth, cols, 3);
  EXPECT_EQ(a.rows(), width * depth);
  EXPECT_EQ(a.nnz(), cols * depth);
  const CsrMatrix at = a.Transpose();
  for (uint64_t c = 0; c < cols; ++c) {
    const CsrMatrix::RowView col = at.Row(c);
    ASSERT_EQ(col.size, depth);
    for (uint64_t t = 0; t < col.size; ++t) {
      // One entry in each block of `width` rows, value ±1.
      EXPECT_EQ(col.cols[t] / width, t);
      EXPECT_DOUBLE_EQ(std::abs(col.values[t]), 1.0);
    }
  }
}

TEST(CountMinMatrixTest, AllEntriesPositive) {
  const CsrMatrix a = MakeCountMinMatrix(32, 3, 500, 4);
  const CsrMatrix at = a.Transpose();
  for (uint64_t c = 0; c < 500; ++c) {
    const CsrMatrix::RowView col = at.Row(c);
    for (uint64_t t = 0; t < col.size; ++t) {
      EXPECT_DOUBLE_EQ(col.values[t], 1.0);
    }
  }
}

TEST(CountSketchMatrixTest, SignsAreRoughlyBalanced) {
  const CsrMatrix a = MakeCountSketchMatrix(64, 1, 10000, 5);
  int64_t sum = 0;
  for (uint64_t r = 0; r < a.rows(); ++r) {
    const CsrMatrix::RowView row = a.Row(r);
    for (uint64_t t = 0; t < row.size; ++t) {
      sum += static_cast<int64_t>(row.values[t]);
    }
  }
  EXPECT_LT(std::abs(sum), 5 * static_cast<int64_t>(std::sqrt(10000.0)));
}

TEST(DenseEnsemblesTest, GaussianAndRademacherShapes) {
  const DenseMatrix g = MakeGaussianMatrix(10, 20, 6);
  EXPECT_EQ(g.rows(), 10u);
  EXPECT_EQ(g.cols(), 20u);
  const DenseMatrix r = MakeRademacherMatrix(10, 20, 7);
  const double mag = 1.0 / std::sqrt(10.0);
  for (uint64_t i = 0; i < 10; ++i) {
    for (uint64_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(std::abs(r.At(i, j)), mag);
    }
  }
}

TEST(EnsemblesTest, DeterministicPerSeed) {
  const CsrMatrix a = MakeSparseBinaryMatrix(32, 64, 4, 9);
  const CsrMatrix b = MakeSparseBinaryMatrix(32, 64, 4, 9);
  const std::vector<double> probe(64, 1.0);
  const std::vector<double> ya = a.Multiply(probe);
  const std::vector<double> yb = b.Multiply(probe);
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

}  // namespace
}  // namespace sketch
