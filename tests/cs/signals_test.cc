#include "cs/signals.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace sketch {
namespace {

TEST(SparseSignalTest, ExactSparsityAndDistinctSupport) {
  for (uint64_t k : {0u, 1u, 10u, 100u}) {
    const SparseVector x =
        MakeSparseSignal(1 << 12, k, SignalValueDistribution::kSignOnly, k);
    EXPECT_EQ(x.nnz(), k);
    std::set<uint64_t> support;
    for (const SparseEntry& e : x.entries()) support.insert(e.index);
    EXPECT_EQ(support.size(), k);
  }
}

TEST(SparseSignalTest, SignOnlyValuesAreUnitMagnitude) {
  const SparseVector x =
      MakeSparseSignal(1024, 50, SignalValueDistribution::kSignOnly, 1);
  for (const SparseEntry& e : x.entries()) {
    EXPECT_DOUBLE_EQ(std::abs(e.value), 1.0);
  }
}

TEST(SparseSignalTest, UniformMagnitudeInRange) {
  const SparseVector x = MakeSparseSignal(
      1024, 50, SignalValueDistribution::kUniformMagnitude, 2);
  for (const SparseEntry& e : x.entries()) {
    EXPECT_GE(std::abs(e.value), 0.5);
    EXPECT_LE(std::abs(e.value), 1.5);
  }
}

TEST(SparseSignalTest, GaussianValuesAreNonzero) {
  const SparseVector x =
      MakeSparseSignal(1024, 50, SignalValueDistribution::kGaussian, 3);
  for (const SparseEntry& e : x.entries()) EXPECT_NE(e.value, 0.0);
}

TEST(SparseSignalTest, FullSupportAllowed) {
  const SparseVector x =
      MakeSparseSignal(64, 64, SignalValueDistribution::kSignOnly, 4);
  EXPECT_EQ(x.nnz(), 64u);
}

TEST(SparseSignalTest, DeterministicPerSeed) {
  const SparseVector a =
      MakeSparseSignal(1024, 20, SignalValueDistribution::kGaussian, 7);
  const SparseVector b =
      MakeSparseSignal(1024, 20, SignalValueDistribution::kGaussian, 7);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (uint64_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.entries()[i].index, b.entries()[i].index);
    EXPECT_DOUBLE_EQ(a.entries()[i].value, b.entries()[i].value);
  }
}

TEST(PowerLawSignalTest, MagnitudesFollowDecay) {
  const std::vector<double> x = MakePowerLawSignal(1000, 1.0, 5);
  std::vector<double> mags(x.size());
  for (size_t i = 0; i < x.size(); ++i) mags[i] = std::abs(x[i]);
  std::sort(mags.begin(), mags.end(), std::greater<double>());
  EXPECT_DOUBLE_EQ(mags[0], 1.0);    // rank 1 => 1^-1
  EXPECT_DOUBLE_EQ(mags[9], 0.1);    // rank 10 => 10^-1
  EXPECT_DOUBLE_EQ(mags[99], 0.01);  // rank 100
}

TEST(PowerLawSignalTest, BestKTermErrorDecaysWithK) {
  const std::vector<double> x = MakePowerLawSignal(4096, 1.2, 6);
  double prev = BestKTermError(x, 1, 2);
  for (uint64_t k : {4u, 16u, 64u, 256u}) {
    const double err = BestKTermError(x, k, 2);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(AddGaussianNoiseTest, ZeroSigmaIsNoop) {
  std::vector<double> x = {1.0, 2.0};
  AddGaussianNoise(&x, 0.0, 7);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(AddGaussianNoiseTest, NoiseEnergyMatchesSigma) {
  std::vector<double> x(100000, 0.0);
  AddGaussianNoise(&x, 0.5, 8);
  const double per_coord =
      L2Norm(x) * L2Norm(x) / static_cast<double>(x.size());
  EXPECT_NEAR(per_coord, 0.25, 0.01);
}

}  // namespace
}  // namespace sketch
