#include "cs/ssmp.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(SsmpTest, RecoversExactlySparseSignal) {
  const uint64_t n = 1024, k = 8, m = 20 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 1);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 1);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SsmpOptions options;
  options.sparsity = k;
  const SsmpResult result = SsmpRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-6 * L2Norm(x.ToDense()));
  EXPECT_LT(result.residual_l1, 1e-6);
}

TEST(SsmpTest, RecoversSignSignals) {
  const uint64_t n = 1024, k = 10, m = 20 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 2);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kSignOnly, 2);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SsmpOptions options;
  options.sparsity = k;
  const SsmpResult result = SsmpRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()), 1e-6);
}

TEST(SsmpTest, ZeroMeasurementsGiveZeroEstimate) {
  const uint64_t n = 256, m = 64;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 4, 3);
  const std::vector<double> y(m, 0.0);
  SsmpOptions options;
  options.sparsity = 5;
  const SsmpResult result = SsmpRecover(a, y, options);
  EXPECT_EQ(result.estimate.nnz(), 0u);
  EXPECT_DOUBLE_EQ(result.residual_l1, 0.0);
}

TEST(SsmpTest, EstimateIsAtMostKSparse) {
  const uint64_t n = 512, k = 6, m = 120;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 6, 4);
  const SparseVector x =
      MakeSparseSignal(n, 2 * k, SignalValueDistribution::kGaussian, 4);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SsmpOptions options;
  options.sparsity = k;
  const SsmpResult result = SsmpRecover(a, y, options);
  EXPECT_LE(result.estimate.nnz(), k);
}

TEST(SsmpTest, NoisyMeasurementsGiveProportionalError) {
  const uint64_t n = 1024, k = 8, m = 30 * k;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, 5);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 5);
  std::vector<double> y = a.Multiply(x.ToDense());
  const double noise_scale = 0.01;
  AddGaussianNoise(&y, noise_scale, 5);
  SsmpOptions options;
  options.sparsity = k;
  const SsmpResult result = SsmpRecover(a, y, options);
  // SSMP guarantees ||x - x'||_1 <= C ||noise||_1 / d; just check the
  // recovery is close rather than exact.
  EXPECT_LT(L1Distance(result.estimate.ToDense(), x.ToDense()),
            20.0 * noise_scale * m / 8);
  // Support should still be essentially correct.
  std::set<uint64_t> truth, found;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : result.estimate.entries()) found.insert(e.index);
  int hits = 0;
  for (uint64_t i : found) hits += static_cast<int>(truth.count(i));
  EXPECT_GE(hits, static_cast<int>(k) - 1);
}

TEST(SsmpTest, ReportsPhasesRun) {
  const uint64_t n = 256, k = 4, m = 80;
  const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 6, 6);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 6);
  const std::vector<double> y = a.Multiply(x.ToDense());
  SsmpOptions options;
  options.sparsity = k;
  const SsmpResult result = SsmpRecover(a, y, options);
  EXPECT_GE(result.phases_run, 1);
  EXPECT_LE(result.phases_run, options.phases);
}

}  // namespace
}  // namespace sketch
