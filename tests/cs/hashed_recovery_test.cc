#include "cs/hashed_recovery.h"

#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(HashedRecoveryTest, MeasureMatchesExplicitMatrix) {
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 32, 5, 256,
                          1);
  const SparseVector x =
      MakeSparseSignal(256, 10, SignalValueDistribution::kGaussian, 1);
  const std::vector<double> y1 = hr.Measure(x);
  const std::vector<double> y2 = hr.ToMatrix().Multiply(x.ToDense());
  ASSERT_EQ(y1.size(), y2.size());
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(HashedRecoveryTest, SparseAndDenseMeasureAgree) {
  const HashedRecovery hr(HashedRecovery::Variant::kCountMin, 64, 4, 512, 2);
  const SparseVector x =
      MakeSparseSignal(512, 20, SignalValueDistribution::kUniformMagnitude, 2);
  const std::vector<double> ys = hr.Measure(x);
  const std::vector<double> yd = hr.Measure(x.ToDense());
  for (size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(HashedRecoveryTest, CountSketchRecoversExactlySparseSignal) {
  // Exact top-k recovery needs depth ~ log n: with shallow sketches,
  // enough rows collide that some non-support coordinate gets a nonzero
  // median and sneaks into the top k.
  const uint64_t n = 4096, k = 10;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k, 15,
                          n, 3);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 3);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  EXPECT_LT(L2Distance(rec.ToDense(), x.ToDense()),
            1e-9 * L2Norm(x.ToDense()));
}

TEST(HashedRecoveryTest, CountMinRecoversNonnegativeSignal) {
  const uint64_t n = 4096, k = 10;
  const HashedRecovery hr(HashedRecovery::Variant::kCountMin, 8 * k, 7, n, 4);
  // Count-Min's min estimator requires nonnegative signals.
  std::vector<SparseEntry> entries;
  const SparseVector raw =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 4);
  for (SparseEntry e : raw.entries()) {
    e.value = std::abs(e.value);
    entries.push_back(e);
  }
  const SparseVector x = SparseVector::FromEntries(n, std::move(entries));
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  EXPECT_LT(L2Distance(rec.ToDense(), x.ToDense()),
            1e-9 * L2Norm(x.ToDense()));
}

TEST(HashedRecoveryTest, RecoveredSupportMatchesTruth) {
  const uint64_t n = 2048, k = 16;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 8 * k, 9, n,
                          5);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kSignOnly, 5);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  std::set<uint64_t> truth, found;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : rec.entries()) found.insert(e.index);
  EXPECT_EQ(truth, found);
}

TEST(HashedRecoveryTest, NoisyRecoveryDegradesGracefully) {
  const uint64_t n = 2048, k = 8;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k, 9, n,
                          6);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 6);
  std::vector<double> dense = x.ToDense();
  AddGaussianNoise(&dense, 0.005, 6);  // small tail noise
  const SparseVector rec = hr.RecoverTopK(hr.Measure(dense), k);
  // Error should be proportional to the noise, not the signal.
  EXPECT_LT(L2Distance(rec.ToDense(), x.ToDense()), 0.5);
}

TEST(HashedRecoveryTest, EstimateCoordinateFindsPlantedSpike) {
  const uint64_t n = 1024;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 64, 5, n, 7);
  SparseVector x = SparseVector::FromEntries(n, {{123, 5.0}});
  const std::vector<double> y = hr.Measure(x);
  EXPECT_NEAR(hr.EstimateCoordinate(y, 123), 5.0, 1e-12);
  EXPECT_NEAR(hr.EstimateCoordinate(y, 200), 0.0, 1e-12);
}

TEST(HashedRecoveryTest, NumMeasurementsIsWidthTimesDepth) {
  const HashedRecovery hr(HashedRecovery::Variant::kCountMin, 31, 5, 100, 8);
  EXPECT_EQ(hr.NumMeasurements(), 155u);
  EXPECT_EQ(hr.Measure(std::vector<double>(100, 0.0)).size(), 155u);
}

TEST(HashedRecoveryTest, RecoverTopKCapsSupportSize) {
  const uint64_t n = 512;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 128, 5, n,
                          9);
  const SparseVector x =
      MakeSparseSignal(n, 40, SignalValueDistribution::kGaussian, 9);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), 10);
  EXPECT_LE(rec.nnz(), 10u);
}

// Property sweep: recovery succeeds across (k, width multiplier) whenever
// width is comfortably above k.
class HashedRecoveryPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(HashedRecoveryPropertyTest, ExactRecoveryWithAmpleWidth) {
  const auto [k, width_mult] = GetParam();
  const uint64_t n = 4096;
  const HashedRecovery hr(HashedRecovery::Variant::kCountSketch,
                          width_mult * k, 15, n, k * 31 + width_mult);
  const SparseVector x = MakeSparseSignal(
      n, k, SignalValueDistribution::kGaussian, k * 17 + width_mult);
  const SparseVector rec = hr.RecoverTopK(hr.Measure(x), k);
  EXPECT_LT(L2Distance(rec.ToDense(), x.ToDense()),
            1e-6 * L2Norm(x.ToDense()));
}

INSTANTIATE_TEST_SUITE_P(Geometry, HashedRecoveryPropertyTest,
                         ::testing::Combine(::testing::Values(2, 8, 32),
                                            ::testing::Values(8, 16)));

}  // namespace
}  // namespace sketch
