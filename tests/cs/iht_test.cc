#include "cs/iht.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(HardThresholdTest, KeepsKLargestMagnitudes) {
  std::vector<double> x = {1.0, -5.0, 3.0, 0.5, -2.0};
  HardThreshold(&x, 2);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], -5.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
  EXPECT_DOUBLE_EQ(x[3], 0.0);
  EXPECT_DOUBLE_EQ(x[4], 0.0);
}

TEST(HardThresholdTest, KLargerThanSizeIsNoop) {
  std::vector<double> x = {1.0, 2.0};
  HardThreshold(&x, 5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(HardThresholdTest, TiesKeepExactlyK) {
  std::vector<double> x = {1.0, 1.0, 1.0, 1.0};
  HardThreshold(&x, 2);
  int nonzero = 0;
  for (double v : x) nonzero += (v != 0.0);
  EXPECT_EQ(nonzero, 2);
}

TEST(IhtTest, RecoversSparseSignalFromGaussianMeasurements) {
  const uint64_t n = 512, k = 8, m = 160;
  auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, n, 1));
  const LinearOperator op = LinearOperator::FromDense(a);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 1);
  const std::vector<double> y = a->Multiply(x.ToDense());
  IhtOptions options;
  options.sparsity = k;
  const IhtResult result = IhtRecover(op, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-5 * L2Norm(x.ToDense()));
}

TEST(IhtTest, WorksThroughSparseOperatorToo) {
  const uint64_t n = 512, k = 6, m = 150;
  auto a =
      std::make_shared<CsrMatrix>(MakeCountSketchMatrix(m / 3, 3, n, 2));
  const LinearOperator op = LinearOperator::FromCsr(a);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 2);
  const std::vector<double> y = a->Multiply(x.ToDense());
  IhtOptions options;
  options.sparsity = k;
  options.max_iterations = 400;
  const IhtResult result = IhtRecover(op, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-3 * L2Norm(x.ToDense()));
}

TEST(IhtTest, EstimateIsKSparse) {
  const uint64_t n = 256, k = 5, m = 100;
  auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, n, 3));
  const LinearOperator op = LinearOperator::FromDense(a);
  const SparseVector x =
      MakeSparseSignal(n, 2 * k, SignalValueDistribution::kGaussian, 3);
  const std::vector<double> y = a->Multiply(x.ToDense());
  IhtOptions options;
  options.sparsity = k;
  const IhtResult result = IhtRecover(op, y, options);
  EXPECT_LE(result.estimate.nnz(), k);
}

TEST(IhtTest, ZeroMeasurementsGiveZero) {
  const uint64_t n = 128, m = 64;
  auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, n, 4));
  const LinearOperator op = LinearOperator::FromDense(a);
  IhtOptions options;
  options.sparsity = 4;
  const IhtResult result = IhtRecover(op, std::vector<double>(m, 0.0),
                                      options);
  EXPECT_EQ(result.estimate.nnz(), 0u);
}

TEST(IhtTest, FailsGracefullyWhenMeasurementsTooFew) {
  // m < k: recovery impossible; IHT must terminate and report a residual
  // rather than hang or crash.
  const uint64_t n = 256, k = 30, m = 20;
  auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, n, 5));
  const LinearOperator op = LinearOperator::FromDense(a);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 5);
  const std::vector<double> y = a->Multiply(x.ToDense());
  IhtOptions options;
  options.sparsity = k;
  options.max_iterations = 50;
  const IhtResult result = IhtRecover(op, y, options);
  EXPECT_LE(result.iterations_run, 50);
}

TEST(IhtTest, NoisyRecoveryErrorScalesWithNoise) {
  const uint64_t n = 512, k = 8, m = 200;
  auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, n, 6));
  const LinearOperator op = LinearOperator::FromDense(a);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 6);
  std::vector<double> y = a->Multiply(x.ToDense());
  AddGaussianNoise(&y, 0.01, 6);
  IhtOptions options;
  options.sparsity = k;
  const IhtResult result = IhtRecover(op, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()), 0.3);
}

}  // namespace
}  // namespace sketch
