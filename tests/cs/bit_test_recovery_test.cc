#include "cs/bit_test_recovery.h"

#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(BitTestRecoveryTest, SingleSpikeLocatedDirectly) {
  const uint64_t n = 1 << 12;
  const BitTestRecovery btr(8, 2, n, 1);
  const SparseVector x = SparseVector::FromEntries(n, {{2741, 3.5}});
  const auto result = btr.Recover(btr.Measure(x));
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.estimate.nnz(), 1u);
  EXPECT_EQ(result.estimate.entries()[0].index, 2741u);
  EXPECT_NEAR(result.estimate.entries()[0].value, 3.5, 1e-9);
}

TEST(BitTestRecoveryTest, RecoversExactlySparseSignals) {
  const uint64_t n = 1 << 14;
  for (uint64_t k : {4u, 16u, 64u}) {
    const BitTestRecovery btr(4 * k, 3, n, k);
    const SparseVector x =
        MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, k);
    const auto result = btr.Recover(btr.Measure(x));
    EXPECT_TRUE(result.converged) << "k=" << k;
    EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
              1e-8 * L2Norm(x.ToDense()))
        << "k=" << k;
  }
}

TEST(BitTestRecoveryTest, PeelingResolvesCollisions) {
  // Width k/2 guarantees collisions in round 1; depth 3 + peeling must
  // still converge on most instances.
  const uint64_t n = 1 << 12, k = 16;
  const BitTestRecovery btr(k, 3, n, 3);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 3);
  const auto result = btr.Recover(btr.Measure(x), /*max_rounds=*/16);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()), 1e-8);
  EXPECT_GT(result.rounds_used, 1);  // actually needed to peel
}

TEST(BitTestRecoveryTest, MeasurementsCarryLogFactor) {
  const BitTestRecovery btr(32, 3, 1 << 16, 4);
  EXPECT_EQ(btr.NumMeasurements(), 32u * 3u * 17u);
}

TEST(BitTestRecoveryTest, SparseAndDenseMeasureAgree) {
  const uint64_t n = 1 << 10;
  const BitTestRecovery btr(16, 2, n, 5);
  const SparseVector x =
      MakeSparseSignal(n, 8, SignalValueDistribution::kGaussian, 5);
  const auto ys = btr.Measure(x);
  const auto yd = btr.Measure(x.ToDense());
  ASSERT_EQ(ys.size(), yd.size());
  for (size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(BitTestRecoveryTest, ZeroMeasurementsConvergeEmpty) {
  const BitTestRecovery btr(8, 2, 1 << 10, 6);
  const auto result =
      btr.Recover(std::vector<double>(btr.NumMeasurements(), 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.estimate.nnz(), 0u);
}

TEST(BitTestRecoveryTest, ToleratesMildNoise) {
  const uint64_t n = 1 << 12, k = 8;
  const BitTestRecovery btr(8 * k, 3, n, 7);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 7);
  std::vector<double> y = btr.Measure(x);
  AddGaussianNoise(&y, 1e-4, 7);
  const auto result = btr.Recover(y, 16, /*tolerance=*/1e-2);
  std::set<uint64_t> truth, got;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : result.estimate.entries()) got.insert(e.index);
  int hits = 0;
  for (uint64_t i : got) hits += static_cast<int>(truth.count(i));
  EXPECT_GE(hits, static_cast<int>(k) - 1);
}

TEST(BitTestRecoveryTest, UnconvergedReportedWhenUnderProvisioned) {
  // Far too few buckets: every bucket is a collision and nothing peels.
  const uint64_t n = 1 << 12;
  const BitTestRecovery btr(2, 1, n, 8);
  const SparseVector x =
      MakeSparseSignal(n, 32, SignalValueDistribution::kGaussian, 8);
  const auto result = btr.Recover(btr.Measure(x), 8);
  EXPECT_FALSE(result.converged);
}

// Property sweep: recovery across (k, width multiplier, depth).
class BitTestPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t,
                                                 uint64_t>> {};

TEST_P(BitTestPropertyTest, ExactRecovery) {
  const auto [k, width_mult, depth] = GetParam();
  const uint64_t n = 1 << 13;
  const BitTestRecovery btr(width_mult * k, depth, n,
                            17 * k + width_mult + depth);
  const SparseVector x = MakeSparseSignal(
      n, k, SignalValueDistribution::kGaussian, 23 * k + width_mult);
  const auto result = btr.Recover(btr.Measure(x), 20);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-8 * L2Norm(x.ToDense()));
}

INSTANTIATE_TEST_SUITE_P(Geometry, BitTestPropertyTest,
                         ::testing::Combine(::testing::Values(4, 16),
                                            ::testing::Values(2, 4),
                                            ::testing::Values(2, 3)));

}  // namespace
}  // namespace sketch
