#include "cs/omp.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/signals.h"

namespace sketch {
namespace {

TEST(OmpTest, RecoversSparseSignalFromGaussianMeasurements) {
  const uint64_t n = 512, k = 8, m = 128;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 1);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, 1);
  const std::vector<double> y = a.Multiply(x.ToDense());
  OmpOptions options;
  options.sparsity = k;
  const OmpResult result = OmpRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()),
            1e-8 * L2Norm(x.ToDense()));
  EXPECT_LT(result.residual_l2, 1e-8);
}

TEST(OmpTest, SupportExactlyIdentified) {
  const uint64_t n = 256, k = 5, m = 80;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 2);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 2);
  const std::vector<double> y = a.Multiply(x.ToDense());
  OmpOptions options;
  options.sparsity = k;
  const OmpResult result = OmpRecover(a, y, options);
  std::set<uint64_t> truth, found;
  for (const SparseEntry& e : x.entries()) truth.insert(e.index);
  for (const SparseEntry& e : result.estimate.entries()) found.insert(e.index);
  EXPECT_EQ(truth, found);
}

TEST(OmpTest, StopsEarlyOnExactFit) {
  const uint64_t n = 128, m = 60;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 3);
  const SparseVector x =
      MakeSparseSignal(n, 2, SignalValueDistribution::kGaussian, 3);
  const std::vector<double> y = a.Multiply(x.ToDense());
  OmpOptions options;
  options.sparsity = 10;  // allowed more atoms than needed
  const OmpResult result = OmpRecover(a, y, options);
  EXPECT_LE(result.atoms_selected, 3u);
}

TEST(OmpTest, ZeroMeasurementsSelectNothing) {
  const DenseMatrix a = MakeGaussianMatrix(32, 64, 4);
  OmpOptions options;
  options.sparsity = 5;
  const OmpResult result = OmpRecover(a, std::vector<double>(32, 0.0),
                                      options);
  EXPECT_EQ(result.atoms_selected, 0u);
  EXPECT_EQ(result.estimate.nnz(), 0u);
}

TEST(OmpTest, NoisyRecoveryCloseToTruth) {
  const uint64_t n = 256, k = 6, m = 100;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 5);
  const SparseVector x =
      MakeSparseSignal(n, k, SignalValueDistribution::kUniformMagnitude, 5);
  std::vector<double> y = a.Multiply(x.ToDense());
  AddGaussianNoise(&y, 0.01, 5);
  OmpOptions options;
  options.sparsity = k;
  const OmpResult result = OmpRecover(a, y, options);
  EXPECT_LT(L2Distance(result.estimate.ToDense(), x.ToDense()), 0.3);
}

TEST(OmpTest, AtMostSparsityAtoms) {
  const uint64_t n = 128, m = 60;
  const DenseMatrix a = MakeGaussianMatrix(m, n, 6);
  const SparseVector x =
      MakeSparseSignal(n, 30, SignalValueDistribution::kGaussian, 6);
  const std::vector<double> y = a.Multiply(x.ToDense());
  OmpOptions options;
  options.sparsity = 7;
  const OmpResult result = OmpRecover(a, y, options);
  EXPECT_LE(result.atoms_selected, 7u);
  EXPECT_LE(result.estimate.nnz(), 7u);
}

}  // namespace
}  // namespace sketch
