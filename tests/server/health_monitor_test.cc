// Health monitor: Evaluate's distillation of an introspection snapshot
// into the four health scalars and their thresholds, plus RunOnce against
// a live registry (gauges, /healthz JSON, degraded flag).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "server/health_monitor.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "telemetry/prometheus.h"
#include "telemetry/stats.h"

namespace sketch::server {
namespace {

constexpr double kEuler = 2.718281828459045;

StatsSnapshot MakeSnapshot(double occupancy, double collision) {
  StatsSnapshot s;
  s.type = "CountMin";
  s.AddField("occupied_fraction", occupancy);
  s.AddField("estimated_collision_rate", collision);
  return s;
}

TEST(HealthMonitorEvaluateTest, HealthySnapshotIsNotDegraded) {
  const SketchHealth h = HealthMonitor::Evaluate(
      "s", MakeSnapshot(0.5, 0.3), HealthMonitor::Options{});
  EXPECT_FALSE(h.degraded);
  EXPECT_TRUE(h.reasons.empty());
  EXPECT_EQ(h.name, "s");
  EXPECT_EQ(h.type, "CountMin");
  EXPECT_DOUBLE_EQ(h.occupancy, 0.5);
  EXPECT_DOUBLE_EQ(h.collision_rate, 0.3);
  EXPECT_DOUBLE_EQ(h.saturation, 0.0);
  EXPECT_DOUBLE_EQ(h.eps_drift, 0.3 / (kEuler * 0.5));
}

TEST(HealthMonitorEvaluateTest, OccupancyThreshold) {
  HealthMonitor::Options options;
  options.max_occupancy = 0.95;
  EXPECT_FALSE(
      HealthMonitor::Evaluate("s", MakeSnapshot(0.95, 0.0), options).degraded);
  const SketchHealth h =
      HealthMonitor::Evaluate("s", MakeSnapshot(0.96, 0.0), options);
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.reasons, "occupancy");
}

TEST(HealthMonitorEvaluateTest, CollisionRateThresholdAndBloomSpelling) {
  HealthMonitor::Options options;
  // Bloom filters report "fill_ratio" instead of "occupied_fraction";
  // both must feed the occupancy scalar.
  StatsSnapshot bloom;
  bloom.type = "Bloom";
  bloom.AddField("fill_ratio", 0.97);
  const SketchHealth bh = HealthMonitor::Evaluate("b", bloom, options);
  EXPECT_DOUBLE_EQ(bh.occupancy, 0.97);
  EXPECT_TRUE(bh.degraded);

  const SketchHealth ch =
      HealthMonitor::Evaluate("s", MakeSnapshot(0.2, 0.8), options);
  EXPECT_NE(ch.reasons.find("collision_rate"), std::string::npos);
  // 0.8 / (e * 0.2) = 1.47 > 1, so eps_drift trips alongside it.
  EXPECT_NE(ch.reasons.find("eps_drift"), std::string::npos);
  EXPECT_EQ(ch.reasons, "collision_rate,eps_drift");
}

TEST(HealthMonitorEvaluateTest, SaturationFromOccupancyLog2) {
  HealthMonitor::Options options;
  StatsSnapshot s = MakeSnapshot(0.5, 0.1);
  // 100 nonzero cells, 2 of them within 2 bits of the int64 limit.
  s.occupancy_log2.assign(65, 0);
  s.occupancy_log2[0] = 900;  // zero cells don't count
  s.occupancy_log2[5] = 98;
  s.occupancy_log2[62] = 1;
  s.occupancy_log2[63] = 1;
  const SketchHealth h = HealthMonitor::Evaluate("s", s, options);
  EXPECT_DOUBLE_EQ(h.saturation, 0.02);
  EXPECT_TRUE(h.degraded);  // 0.02 > default max_saturation 0.01
  EXPECT_EQ(h.reasons, "saturation");
  // Bit width 61 is still two doublings away — not saturated.
  s.occupancy_log2[62] = 0;
  s.occupancy_log2[63] = 0;
  s.occupancy_log2[61] = 2;
  EXPECT_FALSE(HealthMonitor::Evaluate("s", s, options).degraded);
}

TEST(HealthMonitorEvaluateTest, EmptySketchHasNoDrift) {
  // occupancy == 0 would divide by zero; the contract is drift 0.
  const SketchHealth h = HealthMonitor::Evaluate(
      "s", MakeSnapshot(0.0, 0.0), HealthMonitor::Options{});
  EXPECT_DOUBLE_EQ(h.eps_drift, 0.0);
  EXPECT_FALSE(h.degraded);
}

TEST(HealthMonitorEvaluateTest, WorstChildDominatesTree) {
  StatsSnapshot root;
  root.type = "ShardedCountMin";
  root.children.push_back(MakeSnapshot(0.1, 0.05));
  root.children.push_back(MakeSnapshot(0.99, 0.1));
  root.children.push_back(MakeSnapshot(0.3, 0.2));
  const SketchHealth h =
      HealthMonitor::Evaluate("s", root, HealthMonitor::Options{});
  EXPECT_DOUBLE_EQ(h.occupancy, 0.99);
  EXPECT_DOUBLE_EQ(h.collision_rate, 0.2);
  EXPECT_TRUE(h.degraded);
  EXPECT_EQ(h.reasons, "occupancy");
}

class HealthMonitorServiceTest : public ::testing::Test {
 protected:
  SketchService service_{SketchService::Options{}};

  void Create(const std::string& name, uint64_t width) {
    CreateSketchRequest request;
    request.name = name;
    request.type = SketchType::kCountMin;
    request.params = {width, 4, 42, 0, 0};
    Frame frame;
    FrameDecoder decoder;
    const std::vector<uint8_t> wire = EncodeCreateSketch(request);
    decoder.Feed(wire.data(), wire.size());
    ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
    const std::vector<uint8_t> response = service_.HandleFrame(frame);
    ASSERT_FALSE(response.empty());
    EXPECT_EQ(static_cast<Opcode>(response[4]), Opcode::kOk);
  }

  void IngestDistinct(const std::string& name, uint64_t count) {
    IngestRequest request;
    request.name = name;
    for (uint64_t i = 0; i < count; ++i) request.updates.push_back({i, 1});
    Frame frame;
    FrameDecoder decoder;
    const std::vector<uint8_t> wire = EncodeIngest(request);
    decoder.Feed(wire.data(), wire.size());
    ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
    service_.HandleFrame(frame);
  }
};

TEST_F(HealthMonitorServiceTest, RunOncePublishesGaugesAndHealthz) {
  Create("wide", 1u << 16);
  IngestDistinct("wide", 64);  // near-empty: healthy

  HealthMonitor monitor(&service_, HealthMonitor::Options{});
  monitor.RunOnce();

  EXPECT_FALSE(monitor.degraded());
  const std::vector<SketchHealth> snapshot = monitor.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "wide");
  EXPECT_FALSE(snapshot[0].degraded);

  // Gauges: all five families, labeled by sketch, plus the process flag.
  const std::vector<telemetry::PromGauge> gauges = monitor.Gauges();
  bool found_occupancy = false;
  bool found_process_flag = false;
  for (const telemetry::PromGauge& g : gauges) {
    if (g.name == "sketch_health_occupancy") {
      ASSERT_EQ(g.labels.size(), 1u);
      EXPECT_EQ(g.labels[0].key, "sketch");
      EXPECT_EQ(g.labels[0].value, "wide");
      found_occupancy = true;
    }
    if (g.name == "server_health_degraded") {
      EXPECT_TRUE(g.labels.empty());
      EXPECT_DOUBLE_EQ(g.value, 0.0);
      found_process_flag = true;
    }
  }
  EXPECT_TRUE(found_occupancy);
  EXPECT_TRUE(found_process_flag);

  const std::string healthz = monitor.HealthzJson();
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
}

TEST_F(HealthMonitorServiceTest, OverfilledSketchDegradesHealthz) {
  // Width 16, 4096 distinct keys: every bucket occupied, every key
  // colliding — the monitor must flag it.
  Create("tiny", 16);
  IngestDistinct("tiny", 4096);

  HealthMonitor monitor(&service_, HealthMonitor::Options{});
  monitor.RunOnce();

  EXPECT_TRUE(monitor.degraded());
  const std::string healthz = monitor.HealthzJson();
  EXPECT_NE(healthz.find("\"status\":\"degraded\""), std::string::npos)
      << healthz;
  EXPECT_NE(healthz.find("\"tiny\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("occupancy"), std::string::npos) << healthz;
}

TEST_F(HealthMonitorServiceTest, StartStopIsIdempotent) {
  Create("wide", 1u << 12);
  HealthMonitor::Options options;
  options.period_ms = 5;
  HealthMonitor monitor(&service_, options);
  monitor.Start();
  monitor.Start();  // second Start is a no-op
  monitor.Stop();
  monitor.Stop();  // second Stop is a no-op
  // The first pass runs synchronously at thread start, so a started
  // monitor has a snapshot even if stopped immediately.
  EXPECT_EQ(monitor.Snapshot().size(), 1u);
  monitor.Start();  // restart after stop works
  monitor.Stop();
}

}  // namespace
}  // namespace sketch::server
