// Rejection and death tests for the server's untrusted-input surface:
// hostile frame headers (length overflow, bad version, reserved bits),
// malformed payloads (truncated messages, lying length prefixes, trailing
// bytes), and service-level refusals (unknown opcode, missing sketch,
// geometry mismatch, malformed blobs). Every one must produce a kBadFrame
// or kError — never an abort and never an allocation driven by the
// declared length.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/blob_check.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "sketch/count_min.h"

namespace sketch::server {
namespace {

std::vector<uint8_t> FrameHeader(uint32_t payload_length, uint8_t opcode,
                                 uint8_t version, uint16_t reserved) {
  std::vector<uint8_t> header;
  for (int shift = 0; shift < 32; shift += 8) {
    header.push_back(static_cast<uint8_t>(payload_length >> shift));
  }
  header.push_back(opcode);
  header.push_back(version);
  header.push_back(static_cast<uint8_t>(reserved));
  header.push_back(static_cast<uint8_t>(reserved >> 8));
  return header;
}

ErrorResponse HandleExpectingError(SketchService* service,
                                   const std::vector<uint8_t>& frame_bytes) {
  FrameDecoder decoder;
  decoder.Feed(frame_bytes.data(), frame_bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  Frame response_frame;
  const std::vector<uint8_t> response = service->HandleFrame(frame);
  FrameDecoder response_decoder;
  response_decoder.Feed(response.data(), response.size());
  EXPECT_EQ(response_decoder.Next(&response_frame), DecodeStatus::kFrame);
  ErrorResponse error;
  EXPECT_TRUE(DecodeError(response_frame, &error))
      << "expected a kError response, got "
      << OpcodeName(response_frame.opcode);
  return error;
}

// --- Framing violations ---------------------------------------------------

TEST(FramingRejectionTest, LengthOverflowIsRejectedBeforeBuffering) {
  // Declared length u32::max: the decoder must fail from the header alone
  // (only 8 bytes fed) — buffering or allocating the claimed 4 GiB first
  // would be the vulnerability SL007 lints against.
  const std::vector<uint8_t> header =
      FrameHeader(std::numeric_limits<uint32_t>::max(),
                  static_cast<uint8_t>(Opcode::kIngest), kProtocolVersion, 0);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kFrameTooLarge);
}

TEST(FramingRejectionTest, JustOverTheCapIsRejectedAtTheCapNot) {
  FrameDecoder decoder;
  const std::vector<uint8_t> over = FrameHeader(
      kMaxFramePayloadBytes + 1, static_cast<uint8_t>(Opcode::kPing),
      kProtocolVersion, 0);
  decoder.Feed(over.data(), over.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  // Exactly at the cap the header itself is fine (the payload just never
  // arrives here).
  FrameDecoder at_cap;
  const std::vector<uint8_t> exact = FrameHeader(
      kMaxFramePayloadBytes, static_cast<uint8_t>(Opcode::kPing),
      kProtocolVersion, 0);
  at_cap.Feed(exact.data(), exact.size());
  EXPECT_EQ(at_cap.Next(&frame), DecodeStatus::kNeedMore);
}

TEST(FramingRejectionTest, WrongVersionKillsTheStream) {
  const std::vector<uint8_t> header = FrameHeader(
      0, static_cast<uint8_t>(Opcode::kPing), kProtocolVersion + 1, 0);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kBadFrameHeader);
  // The failure is sticky: the stream cannot be resynchronized.
  const std::vector<uint8_t> good = EncodePing();
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
}

TEST(FramingRejectionTest, ReservedBitsMustBeZero) {
  const std::vector<uint8_t> header = FrameHeader(
      0, static_cast<uint8_t>(Opcode::kPing), kProtocolVersion, 0x8000);
  FrameDecoder decoder;
  decoder.Feed(header.data(), header.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kBadFrameHeader);
}

// --- Payload malformations ------------------------------------------------

TEST(PayloadRejectionTest, ZeroLengthFrameForPayloadOpcode) {
  // A zero-length Ingest frame is structurally a valid frame but an
  // invalid message: the decoder hands it over, the typed decode refuses.
  SketchService service({});
  const ErrorResponse error = HandleExpectingError(
      &service, FrameHeader(0, static_cast<uint8_t>(Opcode::kIngest),
                            kProtocolVersion, 0));
  EXPECT_EQ(error.code, ErrorCode::kMalformedPayload);
}

TEST(PayloadRejectionTest, IngestCountLyingAboutAvailableBytes) {
  // Declared update count of 1000 with bytes for none: DecodeIngest must
  // reject from the length check, before sizing its output vector.
  PayloadWriter writer;
  writer.PutString("victim");
  writer.PutU32(1000);
  Frame frame;
  frame.opcode = Opcode::kIngest;
  frame.payload = writer.bytes();
  IngestRequest request;
  EXPECT_FALSE(DecodeIngest(frame, &request));
  EXPECT_TRUE(request.updates.empty());
}

TEST(PayloadRejectionTest, IngestCountAboveBatchCap) {
  PayloadWriter writer;
  writer.PutString("victim");
  writer.PutU32(kMaxBatchUpdates + 1);
  Frame frame;
  frame.opcode = Opcode::kIngest;
  frame.payload = writer.bytes();
  IngestRequest request;
  EXPECT_FALSE(DecodeIngest(frame, &request));
}

TEST(PayloadRejectionTest, StringLengthPastEndOfPayload) {
  PayloadWriter writer;
  writer.PutU16(200);  // claims 200 name bytes; none follow
  PayloadReader reader(writer.bytes());
  std::string name;
  EXPECT_FALSE(reader.TryReadString(&name));
}

TEST(PayloadRejectionTest, TrailingBytesRejected) {
  PointQueryRequest request;
  request.name = "x";
  request.item = 1;
  std::vector<uint8_t> bytes = EncodePointQuery(request);
  bytes.push_back(0);  // smuggle one extra payload byte
  bytes[0] = static_cast<uint8_t>(bytes[0] + 1);  // fix up declared length
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  PointQueryRequest decoded;
  EXPECT_FALSE(DecodePointQuery(frame, &decoded));
}

// --- Service-level refusals -----------------------------------------------

TEST(ServiceRejectionTest, UnknownOpcode) {
  SketchService service({});
  const ErrorResponse error = HandleExpectingError(
      &service, FrameHeader(0, 0x7f, kProtocolVersion, 0));
  EXPECT_EQ(error.code, ErrorCode::kUnknownOpcode);
}

TEST(ServiceRejectionTest, ResponseOpcodeAsRequest) {
  SketchService service({});
  const ErrorResponse error = HandleExpectingError(
      &service, FrameHeader(0, static_cast<uint8_t>(Opcode::kPong),
                            kProtocolVersion, 0));
  EXPECT_EQ(error.code, ErrorCode::kUnknownOpcode);
}

TEST(ServiceRejectionTest, QueryAgainstNonexistentSketch) {
  SketchService service({});
  PointQueryRequest request;
  request.name = "ghost";
  request.item = 1;
  const ErrorResponse error =
      HandleExpectingError(&service, EncodePointQuery(request));
  EXPECT_EQ(error.code, ErrorCode::kNoSuchSketch);
}

TEST(ServiceRejectionTest, InnerProductGeometryMismatch) {
  SketchService service({});
  auto handle = [&service](const std::vector<uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
    return service.HandleFrame(frame);
  };
  CreateSketchRequest a;
  a.name = "a";
  a.type = SketchType::kCountMin;
  a.params = {1024, 4, 1, 0, 0};
  CreateSketchRequest b = a;
  b.name = "b";
  b.params = {2048, 4, 1, 0, 0};  // different width
  handle(EncodeCreateSketch(a));
  handle(EncodeCreateSketch(b));
  InnerProductRequest request;
  request.left = "a";
  request.right = "b";
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeInnerProduct(request));
  EXPECT_EQ(error.code, ErrorCode::kGeometryMismatch);
}

TEST(ServiceRejectionTest, CreateWithBadGeometry) {
  SketchService service({});
  CreateSketchRequest request;
  request.name = "huge";
  request.type = SketchType::kCountMin;
  request.params = {kMaxSketchCounters + 1, 1, 1, 0, 0};
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeCreateSketch(request));
  EXPECT_EQ(error.code, ErrorCode::kBadGeometry);
  EXPECT_EQ(service.sketch_count(), 0u);
}

TEST(ServiceRejectionTest, CreateWithOverflowingGeometry) {
  SketchService service({});
  CreateSketchRequest request;
  request.name = "overflow";
  request.type = SketchType::kCountSketch;
  request.params = {std::numeric_limits<uint64_t>::max(), 2, 1, 0, 0};
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeCreateSketch(request));
  EXPECT_EQ(error.code, ErrorCode::kBadGeometry);
}

TEST(ServiceRejectionTest, RestoreRejectsTruncatedBlob) {
  SketchService service({});
  CountMinSketch sketch(64, 3, 5);
  std::vector<uint8_t> blob = sketch.Serialize();
  blob.resize(blob.size() - 8);  // drop the last counter word
  RestoreRequest request;
  request.name = "truncated";
  request.type = SketchType::kCountMin;
  request.blob = blob;
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeRestore(request));
  EXPECT_EQ(error.code, ErrorCode::kBadBlob);
  EXPECT_EQ(service.sketch_count(), 0u);
}

TEST(ServiceRejectionTest, RestoreRejectsTypeConfusedBlob) {
  // A valid CountMin blob presented as a CountSketch must fail on the
  // magic check, not construct a confused sketch.
  SketchService service({});
  CountMinSketch sketch(64, 3, 5);
  RestoreRequest request;
  request.name = "confused";
  request.type = SketchType::kCountSketch;
  request.blob = sketch.Serialize();
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeRestore(request));
  EXPECT_EQ(error.code, ErrorCode::kBadBlob);
}

TEST(ServiceRejectionTest, HeavyHittersPhiOutOfRange) {
  SketchService service({});
  HeavyHittersRequest request;
  request.name = "any";
  request.phi = 1.5;
  const ErrorResponse error =
      HandleExpectingError(&service, EncodeHeavyHitters(request));
  EXPECT_EQ(error.code, ErrorCode::kMalformedPayload);
}

// --- Blob validation directly ---------------------------------------------

TEST(BlobCheckTest, AcceptsEveryFamilyRoundTrip) {
  EXPECT_TRUE(CheckSketchBlob(SketchType::kCountMin,
                              CountMinSketch(32, 3, 9).Serialize(), 1 << 20)
                  .ok);
}

TEST(BlobCheckTest, RejectsCounterBudgetOverrun) {
  const BlobCheckResult result = CheckSketchBlob(
      SketchType::kCountMin, CountMinSketch(1024, 4, 9).Serialize(),
      /*max_counters=*/1024);
  EXPECT_FALSE(result.ok);
}

TEST(BlobCheckTest, RejectsNonWordLength) {
  EXPECT_FALSE(
      CheckSketchBlob(SketchType::kCountMin, {1, 2, 3}, 1 << 20).ok);
  EXPECT_FALSE(CheckSketchBlob(SketchType::kCountMin, {}, 1 << 20).ok);
}

// --- Encode-side contract (death) -----------------------------------------

using ProtocolDeathTest = ::testing::Test;

TEST(ProtocolDeathTest, OversizedNameAborts) {
  // Encode-side violations are programming errors in this process, so
  // they CHECK instead of returning a status.
  PayloadWriter writer;
  EXPECT_DEATH(writer.PutString(std::string(kMaxNameBytes + 1, 'x')),
               "kMaxNameBytes");
}

TEST(ProtocolDeathTest, OversizedFrameAborts) {
  const std::vector<uint8_t> payload(kMaxFramePayloadBytes + 1, 0);
  EXPECT_DEATH(EncodeFrame(Opcode::kBlob, payload),
               "kMaxFramePayloadBytes");
}

}  // namespace
}  // namespace sketch::server
