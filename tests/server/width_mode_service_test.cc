// Width-mode plumbing through the service: the create-request mode word
// (params[3], or params[4] for sharded) selects WidthMode::kPow2, the
// rounded width feeds the error bounds and the memory budget, v2 blobs
// snapshot/restore through the blob re-validation layer, and mode
// mismatches are rejected as protocol errors instead of tripping the
// sketch-level geometry CHECKs.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "sketch/count_min.h"
#include "sketch/width_mode.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

Frame Handle(SketchService* service, const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  const std::vector<uint8_t> response = service->HandleFrame(frame);
  FrameDecoder response_decoder;
  response_decoder.Feed(response.data(), response.size());
  Frame response_frame;
  EXPECT_EQ(response_decoder.Next(&response_frame), DecodeStatus::kFrame);
  return response_frame;
}

void ExpectOk(SketchService* service, const std::vector<uint8_t>& bytes) {
  const Frame response = Handle(service, bytes);
  ErrorResponse error;
  if (DecodeError(response, &error)) {
    FAIL() << "server error: " << error.message;
  }
  EXPECT_EQ(response.opcode, Opcode::kOk);
}

ErrorResponse ExpectError(SketchService* service,
                          const std::vector<uint8_t>& bytes) {
  const Frame response = Handle(service, bytes);
  ErrorResponse error;
  EXPECT_TRUE(DecodeError(response, &error))
      << "expected a kError response, got " << OpcodeName(response.opcode);
  return error;
}

void Create(SketchService* service, const std::string& name, SketchType type,
            const std::array<uint64_t, 5>& params) {
  CreateSketchRequest request;
  request.name = name;
  request.type = type;
  request.params = params;
  ExpectOk(service, EncodeCreateSketch(request));
}

uint64_t Ingest(SketchService* service, const std::string& name,
                const std::vector<StreamUpdate>& updates) {
  const Frame response =
      Handle(service, EncodeIngestSpan(name, UpdateSpan(updates)));
  IngestAckResponse ack;
  EXPECT_TRUE(DecodeIngestAck(response, &ack));
  return ack.accepted;
}

PointValueResponse Query(SketchService* service, const std::string& name,
                         uint64_t item) {
  PointQueryRequest request;
  request.name = name;
  request.item = item;
  const Frame response = Handle(service, EncodePointQuery(request));
  PointValueResponse value;
  EXPECT_TRUE(DecodePointValue(response, &value));
  return value;
}

std::vector<uint8_t> Snapshot(SketchService* service,
                              const std::string& name) {
  NamedRequest request;
  request.name = name;
  const Frame response = Handle(service, EncodeSnapshot(request));
  BlobResponse blob;
  EXPECT_TRUE(DecodeBlob(response, &blob));
  return blob.bytes;
}

TEST(WidthModeServiceTest, Pow2CreateRoundsWidthIntoTheBound) {
  SketchService service({});
  // width 1000 -> 1024; params[3] = 1 selects WidthMode::kPow2.
  Create(&service, "cm", SketchType::kCountMin, {1000, 4, 7, 1, 0});
  EXPECT_EQ(Ingest(&service, "cm", {{5, 100}, {9, 70}}), 2u);
  const PointValueResponse value = Query(&service, "cm", 5);
  EXPECT_GE(value.estimate, 100);
  // The bound must use the ROUNDED width (1024), not the requested 1000 —
  // that's the documented pow2 accuracy caveat.
  EXPECT_NEAR(value.error_bound, 2.718281828 / 1024.0 * 170.0, 1e-6);
}

TEST(WidthModeServiceTest, Pow2SnapshotWritesV2AndRestores) {
  SketchService service({});
  Create(&service, "origin", SketchType::kCountMin, {1000, 4, 21, 1, 0});
  Ingest(&service, "origin", {{11, 500}, {12, 250}});
  const std::vector<uint8_t> blob = Snapshot(&service, "origin");
  // v2 magic "SKCMIN02", little-endian.
  uint64_t magic = 0;
  for (int i = 7; i >= 0; --i) magic = (magic << 8) | blob[static_cast<size_t>(i)];
  EXPECT_EQ(magic, 0x534b434d494e3032ULL);

  RestoreRequest restore;
  restore.name = "copy";
  restore.type = SketchType::kCountMin;
  restore.blob = blob;
  ExpectOk(&service, EncodeRestore(restore));
  EXPECT_EQ(Query(&service, "copy", 11).estimate,
            Query(&service, "origin", 11).estimate);
  EXPECT_DOUBLE_EQ(Query(&service, "copy", 11).error_bound,
                   Query(&service, "origin", 11).error_bound);
}

TEST(WidthModeServiceTest, ShardedPow2MatchesPlainPow2) {
  ThreadPool pool(2);
  SketchService service({&pool, 2});
  Create(&service, "plain", SketchType::kCountMin, {1000, 4, 99, 1, 0});
  // Sharded: params[3] is the shard count, params[4] the mode word.
  Create(&service, "sharded", SketchType::kShardedCountMin,
         {1000, 4, 99, 2, 1});
  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 10000; ++i) updates.push_back({i % 300, 1});
  Ingest(&service, "plain", updates);
  Ingest(&service, "sharded", updates);
  EXPECT_EQ(Snapshot(&service, "plain"), Snapshot(&service, "sharded"));

  // The sharded blob (a pow2 v2 CountMin) restores through the sharded
  // blob-validation path too.
  RestoreRequest restore;
  restore.name = "sharded_copy";
  restore.type = SketchType::kShardedCountMin;
  restore.blob = Snapshot(&service, "sharded");
  ExpectOk(&service, EncodeRestore(restore));
  EXPECT_EQ(Query(&service, "sharded_copy", 123).estimate,
            Query(&service, "plain", 123).estimate);
}

TEST(WidthModeServiceTest, UnknownModeWordIsBadGeometry) {
  SketchService service({});
  CreateSketchRequest request;
  request.name = "bad";
  request.type = SketchType::kCountMin;
  request.params = {1024, 4, 7, 2, 0};  // mode word 2 is undefined
  EXPECT_EQ(ExpectError(&service, EncodeCreateSketch(request)).code,
            ErrorCode::kBadGeometry);
  EXPECT_EQ(service.sketch_count(), 0u);
}

TEST(WidthModeServiceTest, Pow2RoundingCannotDodgeTheBudget) {
  SketchService service({});
  CreateSketchRequest request;
  request.name = "huge";
  request.type = SketchType::kCountMin;
  // 131073 * 3 = 393219 counters fits the 2^19 budget as requested, but
  // the pow2 rounding lifts the width to 262144 and 262144 * 3 blows the
  // cap — the budget check must see the rounded width. Division mode
  // accepts the identical request.
  request.params = {131073, 3, 7, 0, 0};
  request.name = "fits_division";
  ExpectOk(&service, EncodeCreateSketch(request));
  request.params = {131073, 3, 7, 1, 0};
  request.name = "huge";
  EXPECT_EQ(ExpectError(&service, EncodeCreateSketch(request)).code,
            ErrorCode::kBadGeometry);
  // And an absurd width must be rejected, not fed to std::bit_ceil
  // (which would abort above 2^63).
  request.params = {~0ULL, 1, 7, 1, 0};
  EXPECT_EQ(ExpectError(&service, EncodeCreateSketch(request)).code,
            ErrorCode::kBadGeometry);
}

TEST(WidthModeServiceTest, MixedModeInnerProductIsGeometryMismatch) {
  SketchService service({});
  // Same width/depth/seed; only the width mode differs (1024 is already a
  // power of two, so the pow2 sketch does not round).
  Create(&service, "div", SketchType::kCountMin, {1024, 4, 5, 0, 0});
  Create(&service, "pow2", SketchType::kCountMin, {1024, 4, 5, 1, 0});
  InnerProductRequest request;
  request.left = "div";
  request.right = "pow2";
  EXPECT_EQ(ExpectError(&service, EncodeInnerProduct(request)).code,
            ErrorCode::kGeometryMismatch);
}

TEST(WidthModeServiceTest, RestoreRejectsCorruptedV2ModeWord) {
  SketchService service({});
  CountMinSketch sketch(1024, 3, 5, WidthMode::kPow2);
  std::vector<uint8_t> blob = sketch.Serialize();
  blob[4 * 8] = 2;  // mode word: kPow2 (1) -> undefined (2)
  RestoreRequest restore;
  restore.name = "corrupt";
  restore.type = SketchType::kCountMin;
  restore.blob = blob;
  EXPECT_EQ(ExpectError(&service, EncodeRestore(restore)).code,
            ErrorCode::kBadBlob);
  EXPECT_EQ(service.sketch_count(), 0u);
}

}  // namespace
}  // namespace sketch::server
