// Conformance tests for the sketchwire/1 framing and message codec: every
// message type round-trips through EncodeX -> FrameDecoder -> DecodeX, and
// the incremental decoder yields identical results under any byte-level
// fragmentation of the stream (the property the fault-injection transport
// later exploits end to end).

#include "server/protocol.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace sketch::server {
namespace {

/// Feeds `bytes` to a decoder in chunks of `chunk` bytes and expects
/// exactly one complete frame.
Frame DecodeOneFrame(const std::vector<uint8_t>& bytes, std::size_t chunk) {
  FrameDecoder decoder;
  Frame frame;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - offset);
    decoder.Feed(bytes.data() + offset, n);
    offset += n;
  }
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(FrameDecoderTest, RoundTripsEmptyPayload) {
  const Frame frame = DecodeOneFrame(EncodePing(), /*chunk=*/1024);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameDecoderTest, SingleByteFragmentation) {
  CreateSketchRequest request;
  request.name = "fragmented";
  request.type = SketchType::kCountSketch;
  request.params = {512, 5, 77, 0, 0};
  const std::vector<uint8_t> bytes = EncodeCreateSketch(request);
  // Byte-at-a-time delivery must produce the identical frame.
  const Frame frame = DecodeOneFrame(bytes, /*chunk=*/1);
  CreateSketchRequest decoded;
  ASSERT_TRUE(DecodeCreateSketch(frame, &decoded));
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.type, request.type);
  EXPECT_EQ(decoded.params, request.params);
}

TEST(FrameDecoderTest, MultipleFramesInOneFeed) {
  std::vector<uint8_t> bytes = EncodePing();
  const std::vector<uint8_t> second = EncodeListSketches();
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kListSketches);
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore);
}

TEST(FrameDecoderTest, NeedsMoreUntilPayloadComplete) {
  PointQueryRequest request;
  request.name = "q";
  request.item = 42;
  const std::vector<uint8_t> bytes = EncodePointQuery(request);
  FrameDecoder decoder;
  Frame frame;
  // Header alone is not enough once a payload is declared.
  decoder.Feed(bytes.data(), kFrameHeaderBytes);
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore);
  decoder.Feed(bytes.data() + kFrameHeaderBytes,
               bytes.size() - kFrameHeaderBytes - 1);
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore);
  decoder.Feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
}

TEST(ProtocolTest, IngestRoundTrip) {
  IngestRequest request;
  request.name = "stream";
  request.updates = {{1, 5}, {2, -3}, {0xffffffffffffffffULL, 1}};
  const Frame frame = DecodeOneFrame(EncodeIngest(request), 7);
  IngestRequest decoded;
  ASSERT_TRUE(DecodeIngest(frame, &decoded));
  EXPECT_EQ(decoded.name, "stream");
  ASSERT_EQ(decoded.updates.size(), 3u);
  EXPECT_EQ(decoded.updates[0].item, 1u);
  EXPECT_EQ(decoded.updates[1].delta, -3);
  EXPECT_EQ(decoded.updates[2].item, 0xffffffffffffffffULL);
}

TEST(ProtocolTest, IngestSpanMatchesVectorEncoding) {
  IngestRequest request;
  request.name = "same";
  request.updates = {{9, 9}, {10, 10}};
  EXPECT_EQ(EncodeIngest(request),
            EncodeIngestSpan("same", UpdateSpan(request.updates)));
}

TEST(ProtocolTest, HeavyHittersRoundTrip) {
  HeavyHittersRequest request;
  request.name = "hh";
  request.phi = 0.03125;
  const Frame frame = DecodeOneFrame(EncodeHeavyHitters(request), 3);
  HeavyHittersRequest decoded;
  ASSERT_TRUE(DecodeHeavyHitters(frame, &decoded));
  EXPECT_EQ(decoded.name, "hh");
  EXPECT_DOUBLE_EQ(decoded.phi, 0.03125);
}

TEST(ProtocolTest, InnerProductRoundTrip) {
  InnerProductRequest request;
  request.left = "a";
  request.right = "b";
  const Frame frame = DecodeOneFrame(EncodeInnerProduct(request), 2);
  InnerProductRequest decoded;
  ASSERT_TRUE(DecodeInnerProduct(frame, &decoded));
  EXPECT_EQ(decoded.left, "a");
  EXPECT_EQ(decoded.right, "b");
}

TEST(ProtocolTest, NamedRequestsShareOneDecoder) {
  NamedRequest request;
  request.name = "snap-me";
  NamedRequest decoded;
  ASSERT_TRUE(
      DecodeNamedRequest(DecodeOneFrame(EncodeSnapshot(request), 5), &decoded));
  EXPECT_EQ(decoded.name, "snap-me");
  ASSERT_TRUE(DecodeNamedRequest(DecodeOneFrame(EncodeDropSketch(request), 5),
                                 &decoded));
  EXPECT_EQ(decoded.name, "snap-me");
}

TEST(ProtocolTest, RestoreRoundTrip) {
  RestoreRequest request;
  request.name = "rebuild";
  request.type = SketchType::kStreamSummary;
  request.blob = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  const Frame frame = DecodeOneFrame(EncodeRestore(request), 4);
  RestoreRequest decoded;
  ASSERT_TRUE(DecodeRestore(frame, &decoded));
  EXPECT_EQ(decoded.name, "rebuild");
  EXPECT_EQ(decoded.type, SketchType::kStreamSummary);
  EXPECT_EQ(decoded.blob, request.blob);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  {
    ErrorResponse response;
    response.code = ErrorCode::kNoSuchSketch;
    response.message = "gone";
    ErrorResponse decoded;
    ASSERT_TRUE(
        DecodeError(DecodeOneFrame(EncodeError(response), 3), &decoded));
    EXPECT_EQ(decoded.code, ErrorCode::kNoSuchSketch);
    EXPECT_EQ(decoded.message, "gone");
  }
  {
    PointValueResponse response;
    response.estimate = -77;
    response.error_bound = 12.5;
    response.bound_kind = BoundKind::kL2;
    PointValueResponse decoded;
    ASSERT_TRUE(DecodePointValue(DecodeOneFrame(EncodePointValue(response), 6),
                                 &decoded));
    EXPECT_EQ(decoded.estimate, -77);
    EXPECT_DOUBLE_EQ(decoded.error_bound, 12.5);
    EXPECT_EQ(decoded.bound_kind, BoundKind::kL2);
  }
  {
    ItemsResponse response;
    response.items = {3, 1, 4, 1, 5};
    ItemsResponse decoded;
    ASSERT_TRUE(
        DecodeItems(DecodeOneFrame(EncodeItems(response), 9), &decoded));
    EXPECT_EQ(decoded.items, response.items);
  }
  {
    BlobResponse response;
    response.bytes = {1, 2, 3};
    BlobResponse decoded;
    ASSERT_TRUE(DecodeBlob(DecodeOneFrame(EncodeBlob(response), 2), &decoded));
    EXPECT_EQ(decoded.bytes, response.bytes);
  }
  {
    TextResponse response;
    response.text = "{\"sketches\":[]}";
    TextResponse decoded;
    ASSERT_TRUE(DecodeText(DecodeOneFrame(EncodeText(response), 5), &decoded));
    EXPECT_EQ(decoded.text, response.text);
  }
  {
    IngestAckResponse response;
    response.accepted = 8192;
    IngestAckResponse decoded;
    ASSERT_TRUE(DecodeIngestAck(DecodeOneFrame(EncodeIngestAck(response), 1),
                                &decoded));
    EXPECT_EQ(decoded.accepted, 8192u);
  }
}

TEST(ProtocolTest, DecodeRejectsWrongOpcode) {
  // A perfectly well-formed frame must still be rejected by a typed
  // decoder for a different message.
  const Frame frame = DecodeOneFrame(EncodePing(), 100);
  PointQueryRequest point;
  EXPECT_FALSE(DecodePointQuery(frame, &point));
  IngestRequest ingest;
  EXPECT_FALSE(DecodeIngest(frame, &ingest));
}

TEST(PayloadReaderTest, PrimitivesAreLittleEndianAndBoundsChecked) {
  PayloadWriter writer;
  writer.PutU8(0xab);
  writer.PutU16(0x1234);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-5);
  writer.PutF64(0.5);
  const std::vector<uint8_t>& bytes = writer.bytes();
  // Spot-check the wire layout: u16 0x1234 is 34 12 on the wire.
  EXPECT_EQ(bytes[1], 0x34);
  EXPECT_EQ(bytes[2], 0x12);
  PayloadReader reader(bytes);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0.0;
  EXPECT_TRUE(reader.TryReadU8(&u8));
  EXPECT_TRUE(reader.TryReadU16(&u16));
  EXPECT_TRUE(reader.TryReadU32(&u32));
  EXPECT_TRUE(reader.TryReadU64(&u64));
  EXPECT_TRUE(reader.TryReadI64(&i64));
  EXPECT_TRUE(reader.TryReadF64(&f64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -5);
  EXPECT_DOUBLE_EQ(f64, 0.5);
  EXPECT_TRUE(reader.AtEnd());
  // Reading past the end fails without moving the cursor.
  EXPECT_FALSE(reader.TryReadU8(&u8));
}

TEST(PayloadReaderTest, StringAndBytesRoundTrip) {
  PayloadWriter writer;
  writer.PutString(std::string(kMaxNameBytes, 'n'));
  writer.PutBytes({9, 8, 7});
  PayloadReader reader(writer.bytes());
  std::string name;
  std::vector<uint8_t> blob;
  EXPECT_TRUE(reader.TryReadString(&name));
  EXPECT_EQ(name.size(), kMaxNameBytes);
  EXPECT_TRUE(reader.TryReadBytes(&blob, 16));
  EXPECT_EQ(blob, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolTest, OpcodeNamesCoverRequestRange) {
  EXPECT_TRUE(IsKnownRequestOpcode(static_cast<uint8_t>(Opcode::kPing)));
  EXPECT_TRUE(IsKnownRequestOpcode(static_cast<uint8_t>(Opcode::kShutdown)));
  EXPECT_FALSE(IsKnownRequestOpcode(0x00));
  EXPECT_FALSE(IsKnownRequestOpcode(0x7f));
  EXPECT_FALSE(IsKnownRequestOpcode(static_cast<uint8_t>(Opcode::kOk)));
  EXPECT_STREQ(OpcodeName(Opcode::kIngest), "Ingest");
  EXPECT_STREQ(SketchTypeName(SketchType::kBloom), "Bloom");
}

}  // namespace
}  // namespace sketch::server
