// End-to-end integration over the in-process loopback transport: a real
// ServeConnection loop on a server thread, the real SketchClient on the
// test thread, and a FaultyStream between them when the test wants the
// wire to misbehave. Covers the full ingest -> query -> snapshot ->
// restore round trip for every sketch type the daemon serves, plus
// fault-injection scenarios: fragmented reads/writes, mid-frame
// disconnects in both directions, slow clients, and garbage framing.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/connection.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/sketch_service.h"
#include "server/transport.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

/// One live connection: a service, a server thread running the real
/// connection loop over loopback, and a client bound to the other end.
class LoopbackConnection {
 public:
  explicit LoopbackConnection(SketchService* service,
                              const FaultPlan* client_faults = nullptr) {
    auto [client_end, server_end] = MakeLoopbackPair();
    if (client_faults != nullptr) {
      client_end = std::make_unique<FaultyStream>(std::move(client_end),
                                                  *client_faults);
    }
    client_ = std::make_unique<SketchClient>(std::move(client_end));
    server_thread_ = std::thread([this, service,
                                  stream = std::move(server_end)]() mutable {
      result_ = ServeConnection(stream.get(), service);
    });
  }

  ~LoopbackConnection() {
    client_->Close();
    if (server_thread_.joinable()) server_thread_.join();
  }

  SketchClient& client() { return *client_; }

  /// Closes the client end and joins the server loop, returning its
  /// ConnectionResult. The connection is unusable afterwards.
  ConnectionResult Finish() {
    client_->Close();
    if (server_thread_.joinable()) server_thread_.join();
    return result_;
  }

 private:
  std::unique_ptr<SketchClient> client_;
  std::thread server_thread_;
  ConnectionResult result_;
};

struct TypeCase {
  const char* name;
  SketchType type;
  std::array<uint64_t, 5> params;
};

/// Creates a sketch, streams a workload, round-trips a point query, then
/// snapshot -> restore under a new name and checks the restored copy
/// answers identically.
void RoundTrip(SketchClient& client, const TypeCase& c) {
  SCOPED_TRACE(c.name);
  ASSERT_TRUE(client.CreateSketch(c.name, c.type, c.params))
      << client.last_error().message;

  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 512; ++i) updates.push_back({i % 97, 2});
  updates.push_back({7, 500});
  uint64_t accepted = 0;
  ASSERT_TRUE(client.Ingest(c.name, UpdateSpan(updates), &accepted))
      << client.last_error().message;
  EXPECT_EQ(accepted, updates.size());

  PointValueResponse before;
  ASSERT_TRUE(client.PointQuery(c.name, 7, &before));

  std::vector<uint8_t> blob;
  ASSERT_TRUE(client.Snapshot(c.name, &blob));
  EXPECT_FALSE(blob.empty());

  const std::string copy = std::string(c.name) + "-copy";
  ASSERT_TRUE(client.Restore(copy, c.type, blob))
      << client.last_error().message;
  PointValueResponse after;
  ASSERT_TRUE(client.PointQuery(copy, 7, &after));
  EXPECT_EQ(after.estimate, before.estimate);
  EXPECT_EQ(after.bound_kind, before.bound_kind);
  EXPECT_DOUBLE_EQ(after.error_bound, before.error_bound);
}

const TypeCase kAllTypes[] = {
    {"cm", SketchType::kCountMin, {2048, 4, 7, 0, 0}},
    {"cs", SketchType::kCountSketch, {2048, 5, 11, 0, 0}},
    {"bloom", SketchType::kBloom, {16384, 4, 3, 0, 0}},
    {"summary", SketchType::kStreamSummary, {16, 256, 4, 2048, 13}},
    {"sharded", SketchType::kShardedCountMin, {2048, 4, 7, 4, 0}},
};

TEST(LoopbackIntegrationTest, AllFiveTypesRoundTripOverTheWire) {
  ThreadPool pool(4);
  SketchService service({&pool, 4});
  LoopbackConnection conn(&service);
  ASSERT_TRUE(conn.client().Ping());
  for (const TypeCase& c : kAllTypes) RoundTrip(conn.client(), c);
  // Five originals + five restored copies.
  EXPECT_EQ(service.sketch_count(), 10u);
}

TEST(LoopbackIntegrationTest, HeavyHittersOverTheWire) {
  SketchService service({});
  LoopbackConnection conn(&service);
  ASSERT_TRUE(conn.client().CreateSketch(
      "hh", SketchType::kStreamSummary, {16, 512, 4, 4096, 21}));
  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 4000; ++i) updates.push_back({i % 1000, 1});
  updates.push_back({33, 5000});
  ASSERT_TRUE(conn.client().Ingest("hh", UpdateSpan(updates)));
  std::vector<uint64_t> items;
  ASSERT_TRUE(conn.client().HeavyHitters("hh", 0.3, &items));
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], 33u);
}

TEST(LoopbackIntegrationTest, InnerProductAndIntrospectionOverTheWire) {
  SketchService service({});
  LoopbackConnection conn(&service);
  ASSERT_TRUE(
      conn.client().CreateSketch("a", SketchType::kCountMin, {1024, 4, 5, 0, 0}));
  ASSERT_TRUE(
      conn.client().CreateSketch("b", SketchType::kCountMin, {1024, 4, 5, 0, 0}));
  ASSERT_TRUE(conn.client().Ingest(
      "a", UpdateSpan(std::vector<StreamUpdate>{{1, 6}})));
  ASSERT_TRUE(conn.client().Ingest(
      "b", UpdateSpan(std::vector<StreamUpdate>{{1, 7}})));
  int64_t product = 0;
  ASSERT_TRUE(conn.client().InnerProduct("a", "b", &product));
  EXPECT_EQ(product, 42);

  std::string json;
  ASSERT_TRUE(conn.client().ListSketches(&json));
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  ASSERT_TRUE(conn.client().Statsz(&json));
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  ASSERT_TRUE(conn.client().TraceDump(&json));
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(LoopbackIntegrationTest, ServerErrorsSurfaceThroughTheClient) {
  SketchService service({});
  LoopbackConnection conn(&service);
  PointValueResponse value;
  EXPECT_FALSE(conn.client().PointQuery("ghost", 1, &value));
  EXPECT_EQ(conn.client().last_error().code, ErrorCode::kNoSuchSketch);
  // The connection survives an application-level error.
  EXPECT_TRUE(conn.client().Ping());
}

TEST(LoopbackIntegrationTest, ShutdownFrameStopsTheConnectionLoop) {
  SketchService service({});
  LoopbackConnection conn(&service);
  ASSERT_TRUE(conn.client().Ping());
  EXPECT_TRUE(conn.client().Shutdown());
  EXPECT_TRUE(service.shutdown_requested());
  const ConnectionResult result = conn.Finish();
  EXPECT_EQ(result.frames_handled, 2u);
  EXPECT_FALSE(result.framing_error);
  EXPECT_FALSE(result.transport_error);
}

// --- Fault injection ------------------------------------------------------

TEST(LoopbackIntegrationTest, SurvivesSingleByteFragmentation) {
  // Every read and write on the client side is capped to 1 byte, so each
  // frame crosses the wire in ~dozens of fragments and the server-side
  // decoder resumes from every possible split point.
  SketchService service({});
  FaultPlan plan;
  plan.max_read_chunk = 1;
  plan.max_write_chunk = 1;
  LoopbackConnection conn(&service, &plan);
  ASSERT_TRUE(conn.client().CreateSketch("frag", SketchType::kCountMin,
                                         {256, 4, 9, 0, 0}));
  ASSERT_TRUE(conn.client().Ingest(
      "frag", UpdateSpan(std::vector<StreamUpdate>{{5, 10}, {6, 20}})));
  PointValueResponse value;
  ASSERT_TRUE(conn.client().PointQuery("frag", 6, &value));
  EXPECT_GE(value.estimate, 20);
}

TEST(LoopbackIntegrationTest, SlowClientStillCompletes) {
  SketchService service({});
  FaultPlan plan;
  plan.max_write_chunk = 7;
  plan.delay_micros = 200;
  LoopbackConnection conn(&service, &plan);
  ASSERT_TRUE(conn.client().CreateSketch("slow", SketchType::kBloom,
                                         {1024, 3, 1, 0, 0}));
  ASSERT_TRUE(conn.client().Ingest(
      "slow", UpdateSpan(std::vector<StreamUpdate>{{99, 1}})));
  PointValueResponse value;
  ASSERT_TRUE(conn.client().PointQuery("slow", 99, &value));
  EXPECT_EQ(value.estimate, 1);
}

TEST(LoopbackIntegrationTest, MidFrameWriteFailureLeavesServiceUsable) {
  // The client's stream dies partway through writing an ingest frame. The
  // server sees a truncated stream, drops the connection, and the service
  // keeps working for the next client.
  SketchService service({});
  {
    LoopbackConnection healthy(&service);
    ASSERT_TRUE(healthy.client().CreateSketch("durable", SketchType::kCountMin,
                                              {512, 4, 3, 0, 0}));
  }
  {
    FaultPlan plan;
    plan.fail_write_after_bytes = 20;  // dies inside the second frame
    LoopbackConnection doomed(&service, &plan);
    ASSERT_TRUE(doomed.client().Ping());  // first frame: 8 bytes, fits
    std::vector<StreamUpdate> batch;
    for (uint64_t i = 0; i < 100; ++i) batch.push_back({i, 1});
    EXPECT_FALSE(doomed.client().Ingest("durable", UpdateSpan(batch)));
  }
  // A fresh connection finds the registry intact and fully functional.
  LoopbackConnection fresh(&service);
  ASSERT_TRUE(fresh.client().Ingest(
      "durable", UpdateSpan(std::vector<StreamUpdate>{{1, 4}})));
  PointValueResponse value;
  ASSERT_TRUE(fresh.client().PointQuery("durable", 1, &value));
  EXPECT_GE(value.estimate, 4);
}

TEST(LoopbackIntegrationTest, MidFrameReadFailureIsATransportError) {
  // The client stops being able to read mid-response: from the client's
  // side the call fails; the server's write eventually fails or the close
  // tears the stream, and the loop exits with a transport error rather
  // than a crash.
  SketchService service({});
  FaultPlan plan;
  plan.fail_read_after_bytes = 4;  // dies inside the first response header
  LoopbackConnection conn(&service, &plan);
  EXPECT_FALSE(conn.client().Ping());
  const ConnectionResult result = conn.Finish();
  EXPECT_EQ(result.frames_handled, 1u);  // the ping was still served
  EXPECT_FALSE(result.framing_error);
}

TEST(LoopbackIntegrationTest, GarbageFramingGetsErrorResponseThenClose) {
  SketchService service({});
  auto [client_end, server_end] = MakeLoopbackPair();
  ConnectionResult result;
  std::thread server_thread([&service, stream = std::move(server_end),
                             &result]() mutable {
    result = ServeConnection(stream.get(), &service);
  });

  // A header claiming a 4 GiB payload: rejected from the header alone.
  const uint8_t bad_header[8] = {0xff, 0xff, 0xff, 0xff, 0x01, 0x01, 0, 0};
  ASSERT_TRUE(WriteAll(client_end.get(), bad_header, sizeof(bad_header)));

  // The server sends a best-effort kError frame, then closes.
  FrameDecoder decoder;
  Frame frame;
  uint8_t buffer[256];
  DecodeStatus status = DecodeStatus::kNeedMore;
  while (status == DecodeStatus::kNeedMore) {
    const std::ptrdiff_t got = client_end->Read(buffer, sizeof(buffer));
    ASSERT_GT(got, 0);
    decoder.Feed(buffer, static_cast<std::size_t>(got));
    status = decoder.Next(&frame);
  }
  ASSERT_EQ(status, DecodeStatus::kFrame);
  ErrorResponse error;
  ASSERT_TRUE(DecodeError(frame, &error));
  EXPECT_EQ(error.code, ErrorCode::kFrameTooLarge);

  server_thread.join();
  EXPECT_TRUE(result.framing_error);
  EXPECT_EQ(result.frames_handled, 0u);
  client_end->Close();
}

// --- Kernel sockets -------------------------------------------------------

TEST(LoopbackIntegrationTest, TcpServerEndToEnd) {
  SketchServer::Options options;
  options.tcp_port = 0;  // pick a free port
  SketchServer server(options);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  SketchClient client(std::move(stream));
  ASSERT_TRUE(client.Ping());
  ASSERT_TRUE(client.CreateSketch("tcp", SketchType::kCountMin,
                                  {1024, 4, 17, 0, 0}));
  ASSERT_TRUE(client.Ingest(
      "tcp", UpdateSpan(std::vector<StreamUpdate>{{8, 3}})));
  PointValueResponse value;
  ASSERT_TRUE(client.PointQuery("tcp", 8, &value));
  EXPECT_GE(value.estimate, 3);
  EXPECT_TRUE(client.Shutdown());
  server.Wait();
}

TEST(LoopbackIntegrationTest, UnixSocketServerEndToEnd) {
  const std::string path =
      ::testing::TempDir() + "/sketch_serverd_test.sock";
  SketchServer::Options options;
  options.unix_path = path;
  SketchServer server(options);
  ASSERT_TRUE(server.Start());

  auto stream = ConnectUnix(path);
  ASSERT_NE(stream, nullptr);
  SketchClient client(std::move(stream));
  ASSERT_TRUE(client.Ping());
  ASSERT_TRUE(client.CreateSketch("uds", SketchType::kBloom,
                                  {4096, 4, 5, 0, 0}));
  ASSERT_TRUE(client.Ingest(
      "uds", UpdateSpan(std::vector<StreamUpdate>{{77, 1}})));
  PointValueResponse value;
  ASSERT_TRUE(client.PointQuery("uds", 77, &value));
  EXPECT_EQ(value.estimate, 1);
  EXPECT_TRUE(client.Shutdown());
  server.Wait();
}

}  // namespace
}  // namespace sketch::server
