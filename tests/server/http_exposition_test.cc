// HTTP exposition listener: the request handler's routing/status/content
// types (unit, no sockets), then a real TCP round trip against the
// background accept loop.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "server/http_exposition.h"
#include "server/transport.h"

namespace sketch::server {
namespace {

HttpExposition::Handlers TestHandlers(bool healthy = true) {
  HttpExposition::Handlers handlers;
  handlers.metrics = [] { return std::string("metric_total 1\n"); };
  handlers.statsz = [] { return std::string("{\"sketches\":[]}"); };
  handlers.tracez = [] { return std::string("{\"traceEvents\":[]}"); };
  handlers.healthz = [healthy] {
    return healthy ? std::string("{\"status\":\"ok\"}")
                   : std::string("{\"status\":\"degraded\"}");
  };
  handlers.healthy = [healthy] { return healthy; };
  return handlers;
}

TEST(HttpExpositionHandlerTest, RoutesEndpointsWithContentTypes) {
  HttpExposition http(TestHandlers());
  const std::string metrics = http.HandleRequest("GET", "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("metric_total 1\n"), std::string::npos);
  EXPECT_NE(metrics.find("Connection: close"), std::string::npos);

  const std::string statsz = http.HandleRequest("GET", "/statsz");
  EXPECT_NE(statsz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(statsz.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(statsz.find("{\"sketches\":[]}"), std::string::npos);

  const std::string tracez = http.HandleRequest("GET", "/tracez");
  EXPECT_NE(tracez.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("{\"traceEvents\":[]}"), std::string::npos);
}

TEST(HttpExpositionHandlerTest, HealthzStatusTracksHealthyCallback) {
  HttpExposition ok(TestHandlers(true));
  EXPECT_NE(ok.HandleRequest("GET", "/healthz").find("HTTP/1.0 200 OK"),
            std::string::npos);

  HttpExposition degraded(TestHandlers(false));
  const std::string response = degraded.HandleRequest("GET", "/healthz");
  EXPECT_NE(response.find("HTTP/1.0 503"), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\":\"degraded\""), std::string::npos);
}

TEST(HttpExpositionHandlerTest, RejectsUnknownPathsAndMethods) {
  HttpExposition http(TestHandlers());
  const std::string not_found = http.HandleRequest("GET", "/nope");
  EXPECT_NE(not_found.find("HTTP/1.0 404"), std::string::npos) << not_found;
  // The 404 body lists the endpoints that do exist.
  EXPECT_NE(not_found.find("/metrics"), std::string::npos);

  const std::string post = http.HandleRequest("POST", "/metrics");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos) << post;
}

TEST(HttpExpositionHandlerTest, StripsQueryString) {
  HttpExposition http(TestHandlers());
  const std::string response =
      http.HandleRequest("GET", "/metrics?format=prometheus");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("metric_total 1\n"), std::string::npos);
}

TEST(HttpExpositionHandlerTest, ResponsesCarryExactContentLength) {
  HttpExposition http(TestHandlers());
  const std::string response = http.HandleRequest("GET", "/statsz");
  const std::string body = "{\"sketches\":[]}";
  const std::string expected =
      "Content-Length: " + std::to_string(body.size());
  EXPECT_NE(response.find(expected), std::string::npos) << response;
  // Body starts right after the blank line and matches the declared length.
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(response.substr(split + 4), body);
}

TEST(HttpExpositionSocketTest, ServesOverRealTcp) {
  HttpExposition http(TestHandlers());
  ASSERT_TRUE(http.Start(0));  // 0 = pick any free port
  ASSERT_NE(http.port(), 0);

  // One request per connection, HTTP/1.0 style.
  for (int i = 0; i < 2; ++i) {
    std::unique_ptr<ByteStream> stream = ConnectTcp("127.0.0.1", http.port());
    ASSERT_NE(stream, nullptr);
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_TRUE(WriteAll(stream.get(),
                         reinterpret_cast<const uint8_t*>(request.data()),
                         request.size()));
    std::string response;
    uint8_t buffer[1024];
    for (;;) {
      const std::ptrdiff_t n = stream->Read(buffer, sizeof(buffer));
      if (n <= 0) break;
      response.append(reinterpret_cast<const char*>(buffer),
                      static_cast<std::size_t>(n));
    }
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("metric_total 1\n"), std::string::npos);
  }

  http.Stop();
  http.Stop();  // idempotent
}

}  // namespace
}  // namespace sketch::server
