// Service-level tests driven directly through HandleFrame (no transport):
// create/ingest/query semantics per sketch family, error-bound reporting,
// snapshot/restore equivalence, registry management, and the statsz /
// trace introspection endpoints.

#include "server/sketch_service.h"

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "sketch/count_min.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

/// Round-trips `request_bytes` through the service and returns the
/// decoded response frame.
Frame Handle(SketchService* service, const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  const std::vector<uint8_t> response = service->HandleFrame(frame);
  FrameDecoder response_decoder;
  response_decoder.Feed(response.data(), response.size());
  Frame response_frame;
  EXPECT_EQ(response_decoder.Next(&response_frame), DecodeStatus::kFrame);
  return response_frame;
}

void ExpectOk(SketchService* service, const std::vector<uint8_t>& bytes) {
  const Frame response = Handle(service, bytes);
  ErrorResponse error;
  if (DecodeError(response, &error)) {
    FAIL() << "server error: " << error.message;
  }
  EXPECT_EQ(response.opcode, Opcode::kOk);
}

void Create(SketchService* service, const std::string& name, SketchType type,
            const std::array<uint64_t, 5>& params) {
  CreateSketchRequest request;
  request.name = name;
  request.type = type;
  request.params = params;
  ExpectOk(service, EncodeCreateSketch(request));
}

uint64_t Ingest(SketchService* service, const std::string& name,
                const std::vector<StreamUpdate>& updates) {
  const Frame response =
      Handle(service, EncodeIngestSpan(name, UpdateSpan(updates)));
  IngestAckResponse ack;
  EXPECT_TRUE(DecodeIngestAck(response, &ack));
  return ack.accepted;
}

PointValueResponse Query(SketchService* service, const std::string& name,
                         uint64_t item) {
  PointQueryRequest request;
  request.name = name;
  request.item = item;
  const Frame response = Handle(service, EncodePointQuery(request));
  PointValueResponse value;
  EXPECT_TRUE(DecodePointValue(response, &value));
  return value;
}

std::vector<uint8_t> Snapshot(SketchService* service,
                              const std::string& name) {
  NamedRequest request;
  request.name = name;
  const Frame response = Handle(service, EncodeSnapshot(request));
  BlobResponse blob;
  EXPECT_TRUE(DecodeBlob(response, &blob));
  return blob.bytes;
}

TEST(SketchServiceTest, CountMinIngestQueryAndBound) {
  SketchService service({});
  Create(&service, "cm", SketchType::kCountMin, {4096, 4, 7, 0, 0});
  EXPECT_EQ(Ingest(&service, "cm", {{5, 100}, {9, 50}, {5, 20}}), 3u);
  const PointValueResponse value = Query(&service, "cm", 5);
  // Count-Min never underestimates.
  EXPECT_GE(value.estimate, 120);
  EXPECT_EQ(value.bound_kind, BoundKind::kL1);
  // eps * ||x||_1 with eps = e / width and L1 = 170.
  EXPECT_NEAR(value.error_bound, 2.718281828 / 4096.0 * 170.0, 1e-6);
}

TEST(SketchServiceTest, CountSketchReportsL2Bound) {
  SketchService service({});
  Create(&service, "cs", SketchType::kCountSketch, {2048, 5, 11, 0, 0});
  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 100; ++i) updates.push_back({i, 10});
  Ingest(&service, "cs", updates);
  const PointValueResponse value = Query(&service, "cs", 3);
  EXPECT_EQ(value.bound_kind, BoundKind::kL2);
  // F2 = 100 * 10^2 = 10^4; bound = sqrt(3 * F2 / width) ~ 3.8. The
  // counter-based F2 estimate is noisy, so allow a wide band.
  EXPECT_GT(value.error_bound, 0.0);
  EXPECT_LT(value.error_bound, 50.0);
}

TEST(SketchServiceTest, BloomMembershipAndFprBound) {
  SketchService service({});
  Create(&service, "bloom", SketchType::kBloom, {8192, 4, 3, 0, 0});
  Ingest(&service, "bloom", {{42, 1}, {77, 1}});
  EXPECT_EQ(Query(&service, "bloom", 42).estimate, 1);
  EXPECT_EQ(Query(&service, "bloom", 77).estimate, 1);
  const PointValueResponse absent = Query(&service, "bloom", 123456);
  EXPECT_EQ(absent.estimate, 0);
  EXPECT_EQ(absent.bound_kind, BoundKind::kFpr);
  // 8 set bits out of 8192 at most: fpr bound is tiny but positive.
  EXPECT_GT(absent.error_bound, 0.0);
  EXPECT_LT(absent.error_bound, 1e-6);
}

TEST(SketchServiceTest, StreamSummaryHeavyHittersAndUniverseGuard) {
  SketchService service({});
  Create(&service, "sum", SketchType::kStreamSummary, {16, 512, 4, 4096, 13});
  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 2000; ++i) updates.push_back({i % 500, 1});
  updates.push_back({7, 3000});  // one heavy item
  EXPECT_EQ(Ingest(&service, "sum", updates), updates.size());

  HeavyHittersRequest hh;
  hh.name = "sum";
  hh.phi = 0.3;
  ItemsResponse items;
  ASSERT_TRUE(DecodeItems(Handle(&service, EncodeHeavyHitters(hh)), &items));
  ASSERT_EQ(items.items.size(), 1u);
  EXPECT_EQ(items.items[0], 7u);

  // Batches with out-of-universe items are rejected atomically.
  const Frame rejected = Handle(
      &service, EncodeIngestSpan("sum", std::vector<StreamUpdate>{
                                            {1ULL << 20, 1}}));
  ErrorResponse error;
  ASSERT_TRUE(DecodeError(rejected, &error));
  EXPECT_EQ(error.code, ErrorCode::kMalformedPayload);
  // Out-of-universe queries answer zero without touching the sketch.
  EXPECT_EQ(Query(&service, "sum", 1ULL << 30).estimate, 0);
}

TEST(SketchServiceTest, ShardedCountMinMatchesPlainCountMin) {
  ThreadPool pool(4);
  SketchService service({&pool, 4});
  Create(&service, "plain", SketchType::kCountMin, {1024, 4, 99, 0, 0});
  Create(&service, "sharded", SketchType::kShardedCountMin,
         {1024, 4, 99, 4, 0});
  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 10000; ++i) updates.push_back({i % 300, 1});
  Ingest(&service, "plain", updates);
  Ingest(&service, "sharded", updates);
  // Merge-linearity: the collapsed sharded sketch is counter-identical to
  // the sequential one, so the snapshots are bit-identical.
  EXPECT_EQ(Snapshot(&service, "plain"), Snapshot(&service, "sharded"));
  EXPECT_EQ(Query(&service, "plain", 123).estimate,
            Query(&service, "sharded", 123).estimate);
}

TEST(SketchServiceTest, SnapshotRestoreRoundTripPreservesQueries) {
  SketchService service({});
  Create(&service, "origin", SketchType::kCountMin, {2048, 4, 21, 0, 0});
  Ingest(&service, "origin", {{11, 500}, {12, 250}});
  const std::vector<uint8_t> blob = Snapshot(&service, "origin");

  RestoreRequest restore;
  restore.name = "copy";
  restore.type = SketchType::kCountMin;
  restore.blob = blob;
  ExpectOk(&service, EncodeRestore(restore));
  EXPECT_EQ(Query(&service, "copy", 11).estimate,
            Query(&service, "origin", 11).estimate);
  // The restored sketch recovered the L1 mass from its counters, so the
  // bound matches too.
  EXPECT_DOUBLE_EQ(Query(&service, "copy", 11).error_bound,
                   Query(&service, "origin", 11).error_bound);
  // And the copy keeps evolving independently.
  Ingest(&service, "copy", {{11, 1}});
  EXPECT_EQ(Query(&service, "copy", 11).estimate,
            Query(&service, "origin", 11).estimate + 1);
}

TEST(SketchServiceTest, InnerProductBetweenIdenticalGeometry) {
  SketchService service({});
  Create(&service, "x", SketchType::kCountMin, {4096, 4, 5, 0, 0});
  Create(&service, "y", SketchType::kCountMin, {4096, 4, 5, 0, 0});
  Ingest(&service, "x", {{1, 3}, {2, 4}});
  Ingest(&service, "y", {{1, 10}, {3, 7}});
  InnerProductRequest request;
  request.left = "x";
  request.right = "y";
  PointValueResponse value;
  ASSERT_TRUE(
      DecodePointValue(Handle(&service, EncodeInnerProduct(request)), &value));
  // True <x, y> = 3 * 10 = 30; Count-Min overestimates only on
  // collisions, which are negligible at this width.
  EXPECT_EQ(value.estimate, 30);
}

TEST(SketchServiceTest, DropAndListManageRegistry) {
  SketchService service({});
  Create(&service, "keep", SketchType::kCountMin, {64, 2, 1, 0, 0});
  Create(&service, "drop", SketchType::kBloom, {512, 3, 1, 0, 0});
  EXPECT_EQ(service.sketch_count(), 2u);

  TextResponse text;
  ASSERT_TRUE(DecodeText(Handle(&service, EncodeListSketches()), &text));
  EXPECT_NE(text.text.find("\"keep\""), std::string::npos);
  EXPECT_NE(text.text.find("\"Bloom\""), std::string::npos);

  NamedRequest request;
  request.name = "drop";
  ExpectOk(&service, EncodeDropSketch(request));
  EXPECT_EQ(service.sketch_count(), 1u);
  ASSERT_TRUE(DecodeText(Handle(&service, EncodeListSketches()), &text));
  EXPECT_EQ(text.text.find("\"drop\""), std::string::npos);
}

TEST(SketchServiceTest, StatszAndTraceEndpointsReturnJson) {
  SketchService service({});
  Create(&service, "observed", SketchType::kCountMin, {128, 2, 1, 0, 0});
  Ingest(&service, "observed", {{1, 1}});
  TextResponse statsz;
  ASSERT_TRUE(DecodeText(Handle(&service, EncodeStatsz()), &statsz));
  EXPECT_EQ(statsz.text.front(), '{');
  EXPECT_NE(statsz.text.find("\"sketches\""), std::string::npos);
  EXPECT_NE(statsz.text.find("\"observed\""), std::string::npos);
  EXPECT_NE(statsz.text.find("\"metrics\""), std::string::npos);

  TextResponse trace;
  ASSERT_TRUE(DecodeText(Handle(&service, EncodeTraceDump()), &trace));
  // Chrome trace JSON: an object with a traceEvents array (possibly
  // empty when telemetry is compiled out).
  EXPECT_NE(trace.text.find("traceEvents"), std::string::npos);
}

TEST(SketchServiceTest, JsonEscapesHostileNames) {
  SketchService service({});
  Create(&service, "quote\"back\\slash", SketchType::kCountMin,
         {64, 2, 1, 0, 0});
  TextResponse text;
  ASSERT_TRUE(DecodeText(Handle(&service, EncodeListSketches()), &text));
  EXPECT_NE(text.text.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(SketchServiceTest, PingAndShutdown) {
  SketchService service({});
  EXPECT_EQ(Handle(&service, EncodePing()).opcode, Opcode::kPong);
  EXPECT_FALSE(service.shutdown_requested());
  ExpectOk(&service, EncodeShutdown());
  EXPECT_TRUE(service.shutdown_requested());
}

}  // namespace
}  // namespace sketch::server
