// /statsz schema contract: every key path dashboards rely on, pinned in
// a checked-in schema file (tests/server/testdata/statsz_schema.txt).
// The values are live and nondeterministic, so the contract is the set
// of keys, not a byte-for-byte golden.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/sketch_service.h"

namespace sketch::server {
namespace {

Frame DecodeOne(const std::vector<uint8_t>& wire) {
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  return frame;
}

std::vector<std::string> LoadSchema() {
  const std::string path =
      std::string(SKETCH_TESTDATA_DIR) + "/statsz_schema.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing schema file " << path;
  std::vector<std::string> required;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    required.push_back(line);
  }
  return required;
}

TEST(StatszSchemaTest, PopulatedServiceEmitsEveryRequiredKey) {
  SketchService service{SketchService::Options{}};

  // Populate every section the schema requires: a sketch, a gauge, and
  // (via the handled frames themselves) slow-query entries.
  CreateSketchRequest create;
  create.name = "schema-sketch";
  create.type = SketchType::kCountMin;
  create.params = {1024, 4, 42, 0, 0};
  service.HandleFrame(DecodeOne(EncodeCreateSketch(create)));

  IngestRequest ingest;
  ingest.name = "schema-sketch";
  for (uint64_t i = 0; i < 32; ++i) ingest.updates.push_back({i, 1});
  std::vector<uint8_t> ingest_wire = EncodeIngest(ingest);
  StampTraceId(&ingest_wire, 0xabc);  // a traced entry for the slow log
  service.HandleFrame(DecodeOne(ingest_wire));

  service.RegisterGauge("test.gauge", [] { return uint64_t{7}; });

  const std::string json = service.StatszJson();
  const std::vector<std::string> required = LoadSchema();
  ASSERT_FALSE(required.empty());
  for (const std::string& fragment : required) {
    EXPECT_NE(json.find(fragment), std::string::npos)
        << "missing required /statsz fragment: " << fragment << "\nin: "
        << json;
  }
}

TEST(StatszSchemaTest, EmptyServiceStillHasTopLevelSections) {
  SketchService service{SketchService::Options{}};
  const std::string json = service.StatszJson();
  EXPECT_NE(json.find("\"sketches\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow_queries\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace sketch::server
