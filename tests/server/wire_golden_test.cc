// Golden-file pin of the sketchwire/1 frame encoding. Every message kind
// the protocol can carry is encoded and compared byte-for-byte against
// tests/server/testdata/wire_golden.txt. A failure here means the wire
// format changed: either fix the regression, or — for a deliberate schema
// change — bump kProtocolVersion and regenerate the golden file from the
// "ACTUAL" lines this test prints on mismatch.

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/protocol.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

std::string ToHex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xf]);
  }
  return hex;
}

std::map<std::string, std::string> LoadGolden() {
  const std::string path =
      std::string(SKETCH_TESTDATA_DIR) + "/wire_golden.txt";
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing golden file: " << path;
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed golden line: " << line;
      continue;
    }
    golden[line.substr(0, space)] = line.substr(space + 1);
  }
  return golden;
}

/// Every message kind, encoded with the fixed inputs the golden file was
/// generated from.
std::map<std::string, std::vector<uint8_t>> EncodeAll() {
  std::map<std::string, std::vector<uint8_t>> frames;
  frames["ping"] = EncodePing();
  frames["list_sketches"] = EncodeListSketches();
  frames["statsz"] = EncodeStatsz();
  frames["trace_dump"] = EncodeTraceDump();
  frames["shutdown"] = EncodeShutdown();

  CreateSketchRequest create;
  create.name = "events";
  create.type = SketchType::kCountMin;
  create.params = {1024, 4, 42, 0, 0};
  frames["create_sketch"] = EncodeCreateSketch(create);

  IngestRequest ingest;
  ingest.name = "events";
  ingest.updates = {{3, 5}, {0xdeadbeef, -2}};
  frames["ingest"] = EncodeIngest(ingest);

  PointQueryRequest query;
  query.name = "events";
  query.item = 12345;
  frames["point_query"] = EncodePointQuery(query);

  PointQueryBatchRequest batch_query;
  batch_query.name = "events";
  batch_query.items = {1, 0xdeadbeef};
  frames["point_query_batch"] = EncodePointQueryBatch(batch_query);

  HeavyHittersRequest hh;
  hh.name = "events";
  hh.phi = 0.125;  // exactly representable: the f64 encoding is stable
  frames["heavy_hitters"] = EncodeHeavyHitters(hh);

  InnerProductRequest inner;
  inner.left = "a";
  inner.right = "b";
  frames["inner_product"] = EncodeInnerProduct(inner);

  NamedRequest named;
  named.name = "events";
  frames["drop_sketch"] = EncodeDropSketch(named);
  frames["snapshot"] = EncodeSnapshot(named);

  RestoreRequest restore;
  restore.name = "copy";
  restore.type = SketchType::kCountSketch;
  restore.blob = {1, 2, 3, 4};
  frames["restore"] = EncodeRestore(restore);

  frames["ok"] = EncodeOk();
  frames["pong"] = EncodePong();

  ErrorResponse error;
  error.code = ErrorCode::kNoSuchSketch;
  error.message = "no such sketch";
  frames["error"] = EncodeError(error);

  PointValueResponse value;
  value.estimate = -7;
  value.error_bound = 0.5;
  value.bound_kind = BoundKind::kL1;
  frames["point_value"] = EncodePointValue(value);

  ItemsResponse items;
  items.items = {1, 2, 3};
  frames["items"] = EncodeItems(items);

  BlobResponse blob;
  blob.bytes = {0xaa, 0xbb};
  frames["blob"] = EncodeBlob(blob);

  TextResponse text;
  text.text = "hi";
  frames["text"] = EncodeText(text);

  IngestAckResponse ack;
  ack.accepted = 2;
  frames["ingest_ack"] = EncodeIngestAck(ack);

  ValueBatchResponse value_batch;
  value_batch.values = {{-7, 0.5, BoundKind::kL1}, {9, 0.25, BoundKind::kL2}};
  frames["value_batch"] = EncodeValueBatch(value_batch);
  return frames;
}

TEST(WireGoldenTest, EveryMessageKindMatchesTheGoldenBytes) {
  const std::map<std::string, std::string> golden = LoadGolden();
  const std::map<std::string, std::vector<uint8_t>> frames = EncodeAll();

  for (const auto& [name, bytes] : frames) {
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "no golden entry for '" << name << "'";
    EXPECT_EQ(ToHex(bytes), it->second)
        << "wire format drifted for '" << name << "'\nACTUAL " << name << " "
        << ToHex(bytes);
  }
  // And the golden file names nothing this test forgot to cover.
  for (const auto& [name, hex] : golden) {
    EXPECT_TRUE(frames.count(name))
        << "golden entry '" << name << "' has no encoder in this test";
  }
}

TEST(WireGoldenTest, GoldenFramesDecodeAndReencodeBitIdentically) {
  // Decode -> re-encode stability: the structs capture everything on the
  // wire, so yesterday's bytes survive a round trip through today's code.
  const std::map<std::string, std::string> golden = LoadGolden();
  for (const auto& [name, hex] : golden) {
    SCOPED_TRACE(name);
    std::vector<uint8_t> bytes;
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      bytes.push_back(static_cast<uint8_t>(
          std::stoi(hex.substr(i, 2), nullptr, 16)));
    }
    FrameDecoder decoder;
    decoder.Feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
    EXPECT_EQ(EncodeFrame(frame.opcode, frame.payload), bytes);
  }
}

TEST(WireGoldenTest, ProtocolConstantsArePinned) {
  // The header layout and caps are part of the schema too.
  EXPECT_EQ(kProtocolVersion, 1);
  EXPECT_EQ(kFrameHeaderBytes, 8u);
  EXPECT_EQ(kMaxFramePayloadBytes, 8u << 20);
  EXPECT_EQ(kMaxNameBytes, 256u);
  EXPECT_EQ(kMaxBatchUpdates, 1u << 18);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPing), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kShutdown), 0x0d);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kOk), 0x80);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kIngestAck), 0x87);
}

}  // namespace
}  // namespace sketch::server
