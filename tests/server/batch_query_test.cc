// Conformance tests for kPointQueryBatch (E26): a batched point query
// must be observationally identical to issuing the same keys as
// individual kPointQuery frames — same estimates (bit-identical; the
// batch rides EstimateBatch over the same BlockHasher kernels), same
// bound kinds, and bit-identical error bounds — for every sketch type
// the daemon serves. Plus payload-validation edges: the empty batch and
// the oversized batch.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

struct TypeCase {
  const char* name;
  SketchType type;
  std::array<uint64_t, 5> params;
};

// Width 4096 in the CountMin case is a power of two, so the kPow2 mask
// reduction path is covered alongside the division path (2000-wide CS).
const TypeCase kAllTypes[] = {
    {"cm", SketchType::kCountMin, {4096, 4, 7, 0, 0}},
    {"cs", SketchType::kCountSketch, {2000, 5, 11, 0, 0}},
    {"bloom", SketchType::kBloom, {16384, 4, 3, 0, 0}},
    {"summary", SketchType::kStreamSummary, {16, 256, 4, 2048, 13}},
    {"sharded", SketchType::kShardedCountMin, {2048, 4, 7, 4, 0}},
};

/// Runs one encoded request through the service and decodes the single
/// response frame into *out.
void Dispatch(SketchService& service, const std::vector<uint8_t>& encoded,
              Frame* out) {
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  Frame request;
  ASSERT_EQ(decoder.Next(&request), DecodeStatus::kFrame);
  const std::vector<uint8_t> response = service.HandleFrame(request);
  FrameDecoder response_decoder;
  response_decoder.Feed(response.data(), response.size());
  ASSERT_EQ(response_decoder.Next(out), DecodeStatus::kFrame);
}

void CreateAndFill(SketchService& service, const TypeCase& c) {
  CreateSketchRequest create;
  create.name = c.name;
  create.type = c.type;
  create.params = c.params;
  Frame frame;
  Dispatch(service, EncodeCreateSketch(create), &frame);
  ASSERT_EQ(frame.opcode, Opcode::kOk);

  IngestRequest ingest;
  ingest.name = c.name;
  for (uint64_t i = 0; i < 2048; ++i) {
    ingest.updates.push_back({(i * i) % 997, static_cast<int64_t>(i % 7) + 1});
  }
  ingest.updates.push_back({42, 1000});
  Dispatch(service, EncodeIngest(ingest), &frame);
  ASSERT_EQ(frame.opcode, Opcode::kIngestAck);
}

TEST(BatchQueryTest, BatchMatchesLoopedPointQueriesForEveryType) {
  SketchService service({});
  // Present keys, absent keys, and the heavy key — the batch must agree
  // with per-key queries on all of them.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 64; ++i) keys.push_back((i * 131) % 1500);
  keys.push_back(42);

  for (const TypeCase& c : kAllTypes) {
    SCOPED_TRACE(c.name);
    CreateAndFill(service, c);

    PointQueryBatchRequest batch;
    batch.name = c.name;
    batch.items = keys;
    Frame frame;
    Dispatch(service, EncodePointQueryBatch(batch), &frame);
    ValueBatchResponse values;
    ASSERT_TRUE(DecodeValueBatch(frame, &values));
    ASSERT_EQ(values.values.size(), keys.size());

    for (std::size_t i = 0; i < keys.size(); ++i) {
      PointQueryRequest single;
      single.name = c.name;
      single.item = keys[i];
      Dispatch(service, EncodePointQuery(single), &frame);
      PointValueResponse expected;
      ASSERT_TRUE(DecodePointValue(frame, &expected)) << "key " << keys[i];
      EXPECT_EQ(values.values[i].estimate, expected.estimate)
          << "key " << keys[i];
      EXPECT_EQ(values.values[i].bound_kind, expected.bound_kind);
      // Bit-identical, not approximately equal: the batch kernel must
      // compute the same bound the scalar path does.
      EXPECT_EQ(values.values[i].error_bound, expected.error_bound);
    }
  }
}

TEST(BatchQueryTest, BatchSeesUpdatesAppliedBetweenBatches) {
  // Guards the sharded entry's materialized-cache invalidation: a batch
  // query materializes the collapsed sketch, and a later ingest must
  // invalidate that cache so the next batch sees the new counts.
  SketchService service({});
  TypeCase c = {"sharded-dirty", SketchType::kShardedCountMin,
                {1024, 4, 5, 2, 0}};
  CreateAndFill(service, c);

  PointQueryBatchRequest batch;
  batch.name = c.name;
  batch.items = {42};
  Frame frame;
  Dispatch(service, EncodePointQueryBatch(batch), &frame);
  ValueBatchResponse before;
  ASSERT_TRUE(DecodeValueBatch(frame, &before));
  ASSERT_EQ(before.values.size(), 1u);

  IngestRequest ingest;
  ingest.name = c.name;
  ingest.updates = {{42, 500}};
  Dispatch(service, EncodeIngest(ingest), &frame);
  ASSERT_EQ(frame.opcode, Opcode::kIngestAck);

  Dispatch(service, EncodePointQueryBatch(batch), &frame);
  ValueBatchResponse after;
  ASSERT_TRUE(DecodeValueBatch(frame, &after));
  EXPECT_EQ(after.values[0].estimate, before.values[0].estimate + 500);
}

TEST(BatchQueryTest, EmptyBatchReturnsEmptyValueBatch) {
  SketchService service({});
  TypeCase c = {"empty", SketchType::kCountMin, {512, 4, 3, 0, 0}};
  CreateAndFill(service, c);
  PointQueryBatchRequest batch;
  batch.name = c.name;
  Frame frame;
  Dispatch(service, EncodePointQueryBatch(batch), &frame);
  ValueBatchResponse values;
  ASSERT_TRUE(DecodeValueBatch(frame, &values));
  EXPECT_TRUE(values.values.empty());
}

TEST(BatchQueryTest, OversizedBatchIsRejectedNotAllocated) {
  // A count field past kMaxBatchQueryItems must be rejected from the
  // header alone (before any resize) — the encoder refuses to build such
  // a frame, so it is assembled by hand here.
  SketchService service({});
  TypeCase c = {"big", SketchType::kCountMin, {512, 4, 3, 0, 0}};
  CreateAndFill(service, c);

  PayloadWriter writer;
  writer.PutString("big");
  writer.PutU32(kMaxBatchQueryItems + 1);  // lying count, no item bytes
  Frame frame;
  Dispatch(service, EncodeFrame(Opcode::kPointQueryBatch, writer.bytes()),
           &frame);
  ErrorResponse error;
  ASSERT_TRUE(DecodeError(frame, &error));
  EXPECT_EQ(error.code, ErrorCode::kMalformedPayload);
}

TEST(BatchQueryTest, BatchForMissingSketchIsNoSuchSketch) {
  SketchService service({});
  PointQueryBatchRequest batch;
  batch.name = "ghost";
  batch.items = {1, 2, 3};
  Frame frame;
  Dispatch(service, EncodePointQueryBatch(batch), &frame);
  ErrorResponse error;
  ASSERT_TRUE(DecodeError(frame, &error));
  EXPECT_EQ(error.code, ErrorCode::kNoSuchSketch);
}

}  // namespace
}  // namespace sketch::server
