// Concurrency stress: many client threads, each on its own loopback
// connection, hammer one shared sketch with ingest batches while reader
// threads fire point queries the whole time. Because every served sketch
// is a linear function of the update stream and the service serializes
// sketch access, the final state must be *bit-identical* to a sequential
// replay of the same updates into a local sketch — Serialize() equality,
// not just query-level agreement. Runs under TSan in CI, so it also
// doubles as a data-race detector for the connection/service/transport
// stack.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/connection.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "server/transport.h"
#include "sketch/count_min.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr uint64_t kBatchesPerWriter = 20;
constexpr uint64_t kBatchSize = 256;
constexpr uint64_t kUniverse = 1 << 12;

/// The deterministic batch written by `writer` at step `step`: disjoint
/// (writer, step) pairs produce different updates, and the full multiset
/// is reproducible for the sequential replay.
std::vector<StreamUpdate> BatchFor(int writer, uint64_t step) {
  std::vector<StreamUpdate> batch;
  batch.reserve(kBatchSize);
  for (uint64_t i = 0; i < kBatchSize; ++i) {
    const uint64_t n =
        static_cast<uint64_t>(writer) * 1000003 + step * 8191 + i;
    batch.push_back({n % kUniverse, static_cast<int64_t>(n % 5) + 1});
  }
  return batch;
}

/// Serves one loopback connection on a dedicated thread; hands back the
/// client end.
class Connection {
 public:
  explicit Connection(SketchService* service) {
    auto [client_end, server_end] = MakeLoopbackPair();
    client_ = std::make_unique<SketchClient>(std::move(client_end));
    thread_ = std::thread([service, stream = std::move(server_end)]() mutable {
      ServeConnection(stream.get(), service);
    });
  }
  ~Connection() {
    client_->Close();
    thread_.join();
  }
  SketchClient& client() { return *client_; }

 private:
  std::unique_ptr<SketchClient> client_;
  std::thread thread_;
};

/// Runs the concurrent ingest+query workload against `name`, then returns
/// the server's final snapshot of it.
std::vector<uint8_t> RunWorkload(SketchService* service,
                                 const std::string& name) {
  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([service, &name, w] {
      Connection conn(service);
      for (uint64_t step = 0; step < kBatchesPerWriter; ++step) {
        const std::vector<StreamUpdate> batch = BatchFor(w, step);
        uint64_t accepted = 0;
        ASSERT_TRUE(conn.client().Ingest(name, UpdateSpan(batch), &accepted));
        ASSERT_EQ(accepted, batch.size());
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([service, &name, &done, &queries, r] {
      Connection conn(service);
      uint64_t item = 0;
      while (!done.load(std::memory_order_relaxed)) {
        if (r % 2 == 0) {
          PointValueResponse value;
          ASSERT_TRUE(
              conn.client().PointQuery(name, item % kUniverse, &value));
          ASSERT_GE(value.estimate, 0);  // nonnegative stream
        } else {
          // Batched read path: shares the same (shared) entry lock and
          // must be race-free against concurrent exclusive ingests.
          std::vector<uint64_t> keys;
          for (uint64_t k = 0; k < 8; ++k) {
            keys.push_back((item + k) % kUniverse);
          }
          std::vector<PointValueResponse> values;
          ASSERT_TRUE(conn.client().PointQueryBatch(name, keys, &values));
          ASSERT_EQ(values.size(), keys.size());
          for (const PointValueResponse& value : values) {
            ASSERT_GE(value.estimate, 0);
          }
        }
        ++item;
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::thread& t : writers) t.join();
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);

  Connection conn(service);
  std::vector<uint8_t> blob;
  EXPECT_TRUE(conn.client().Snapshot(name, &blob));
  return blob;
}

/// The same updates applied sequentially to a local sketch, in writer-major
/// order. Order is irrelevant to the final counters (the sketch is
/// linear), which is exactly why bit-identity is a fair assertion.
std::vector<uint8_t> SequentialReplay(uint64_t width, uint64_t depth,
                                      uint64_t seed) {
  CountMinSketch local(width, depth, seed);
  for (int w = 0; w < kWriters; ++w) {
    for (uint64_t step = 0; step < kBatchesPerWriter; ++step) {
      local.UpdateAll(BatchFor(w, step));
    }
  }
  return local.Serialize();
}

TEST(ServerStressTest, ConcurrentIngestMatchesSequentialReplayCountMin) {
  SketchService service({});
  Connection admin(&service);
  ASSERT_TRUE(admin.client().CreateSketch("stress", SketchType::kCountMin,
                                          {1024, 4, 77, 0, 0}));
  const std::vector<uint8_t> served = RunWorkload(&service, "stress");
  EXPECT_EQ(served, SequentialReplay(1024, 4, 77));
}

TEST(ServerStressTest, ConcurrentIngestMatchesSequentialReplaySharded) {
  ThreadPool pool(4);
  SketchService service({&pool, 4});
  Connection admin(&service);
  ASSERT_TRUE(admin.client().CreateSketch(
      "stress-sharded", SketchType::kShardedCountMin, {1024, 4, 77, 4, 0}));
  const std::vector<uint8_t> served = RunWorkload(&service, "stress-sharded");
  // A sharded sketch collapses to the same counters: merge-linearity
  // makes the snapshot bit-identical to the unsharded sequential replay.
  EXPECT_EQ(served, SequentialReplay(1024, 4, 77));
}

TEST(ServerStressTest, SharedLocksMatchExclusiveOracleBitIdentically) {
  // The E26 read path takes shared entry locks; the exclusive_queries
  // oracle restores PR5's one-at-a-time behavior. Both run the same
  // concurrent mixed query/ingest workload (point, batched, statsz
  // readers against concurrent writers) and both snapshots must be
  // bit-identical to each other and to the sequential replay — shared
  // locking must change scheduling only, never observable sketch state.
  // Under TSan this is also the data-race certificate for the
  // reader-writer locking itself.
  std::vector<uint8_t> snapshots[2];
  for (int mode = 0; mode < 2; ++mode) {
    SketchService::Options options;
    options.exclusive_queries = (mode == 1);
    SketchService service(options);
    Connection admin(&service);
    ASSERT_TRUE(admin.client().CreateSketch("oracle", SketchType::kCountMin,
                                            {1024, 4, 77, 0, 0}));
    std::atomic<bool> done{false};
    std::thread statsz_reader([&service, &done] {
      Connection conn(&service);
      while (!done.load(std::memory_order_relaxed)) {
        std::string json;
        ASSERT_TRUE(conn.client().Statsz(&json));
        ASSERT_NE(json.find("\"oracle\""), std::string::npos);
      }
    });
    snapshots[mode] = RunWorkload(&service, "oracle");
    done.store(true);
    statsz_reader.join();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], SequentialReplay(1024, 4, 77));
}

TEST(ServerStressTest, RegistryChurnWhileQuerying) {
  // Create/drop churn on other names must never perturb the sketch under
  // test or race the registry.
  SketchService service({});
  Connection admin(&service);
  ASSERT_TRUE(admin.client().CreateSketch("anchor", SketchType::kCountMin,
                                          {512, 4, 5, 0, 0}));
  std::atomic<bool> done{false};
  std::thread churn([&service, &done] {
    Connection conn(&service);
    int round = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const std::string name = "churn-" + std::to_string(round % 8);
      conn.client().CreateSketch(name, SketchType::kBloom, {512, 3, 1, 0, 0});
      conn.client().DropSketch(name);
      ++round;
    }
  });
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(admin.client().Ingest(
        "anchor", UpdateSpan(std::vector<StreamUpdate>{{i % 64, 1}})));
    PointValueResponse value;
    ASSERT_TRUE(admin.client().PointQuery("anchor", i % 64, &value));
    ASSERT_GE(value.estimate, 1);
  }
  done.store(true);
  churn.join();
  PointValueResponse value;
  ASSERT_TRUE(admin.client().PointQuery("anchor", 0, &value));
  EXPECT_GE(value.estimate, 8);  // 500 updates over 64 items
}

}  // namespace
}  // namespace sketch::server
