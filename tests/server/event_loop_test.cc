// Integration tests for the E26 epoll front door over real kernel TCP
// sockets: many concurrent clients against one daemon, bit-identity of
// the served sketch with a sequential replay, pipelined-frame batching,
// slow-client backpressure/eviction, fragmented frames, and shutdown
// draining. Tests that specifically require the epoll transport skip
// themselves when SKETCH_FORCE_BLOCKING=1 pins the daemon to the
// thread-per-connection path; the rest run under both transports (the
// forced-blocking ctest re-run covers the fallback).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/transport.h"
#include "sketch/count_min.h"
#include "stream/update.h"

namespace sketch::server {
namespace {

constexpr int kClients = 64;
constexpr uint64_t kBatchesPerClient = 8;
constexpr uint64_t kBatchSize = 128;
constexpr uint64_t kUniverse = 1 << 12;

bool ForcedBlocking() {
  const char* value = std::getenv("SKETCH_FORCE_BLOCKING");
  return value != nullptr && std::strcmp(value, "1") == 0;
}

/// Deterministic batch for (client, step): the full multiset is
/// reproducible for the sequential replay.
std::vector<StreamUpdate> BatchFor(int client, uint64_t step) {
  std::vector<StreamUpdate> batch;
  batch.reserve(kBatchSize);
  for (uint64_t i = 0; i < kBatchSize; ++i) {
    const uint64_t n =
        static_cast<uint64_t>(client) * 1000003 + step * 8191 + i;
    batch.push_back({n % kUniverse, static_cast<int64_t>(n % 5) + 1});
  }
  return batch;
}

/// Reads frames off `stream` until `count` responses have been decoded
/// (or the stream ends, which fails the calling test).
bool ReadResponses(ByteStream* stream, std::size_t count,
                   std::vector<Frame>* out) {
  FrameDecoder decoder;
  uint8_t chunk[4096];
  while (out->size() < count) {
    Frame frame;
    const DecodeStatus status = decoder.Next(&frame);
    if (status == DecodeStatus::kFrame) {
      out->push_back(std::move(frame));
      continue;
    }
    if (status == DecodeStatus::kBadFrame) return false;
    const std::ptrdiff_t n = stream->Read(chunk, sizeof(chunk));
    if (n <= 0) return false;
    decoder.Feed(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

TEST(EventLoopTest, SixtyFourConcurrentClientsMatchSequentialReplay) {
  // 64 clients over real TCP, all ingesting into one shared CountMin
  // while interleaving point queries. The sketch is linear, so the final
  // snapshot must be bit-identical to a sequential replay regardless of
  // arrival order — under either transport.
  SketchServer server({});
  ASSERT_TRUE(server.Start());
  EXPECT_EQ(server.using_event_loop(), !ForcedBlocking());

  {
    auto admin = ConnectTcp("127.0.0.1", server.port());
    ASSERT_NE(admin, nullptr);
    SketchClient client(std::move(admin));
    ASSERT_TRUE(client.CreateSketch("shared", SketchType::kCountMin,
                                    {1024, 4, 77, 0, 0}));
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, port = server.port()] {
      auto stream = ConnectTcp("127.0.0.1", port);
      ASSERT_NE(stream, nullptr);
      SketchClient client(std::move(stream));
      for (uint64_t step = 0; step < kBatchesPerClient; ++step) {
        const std::vector<StreamUpdate> batch = BatchFor(c, step);
        uint64_t accepted = 0;
        ASSERT_TRUE(client.Ingest("shared", UpdateSpan(batch), &accepted));
        ASSERT_EQ(accepted, batch.size());
        PointValueResponse value;
        ASSERT_TRUE(client.PointQuery("shared", step % kUniverse, &value));
        ASSERT_GE(value.estimate, 0);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  SketchClient client(std::move(stream));
  std::vector<uint8_t> served;
  ASSERT_TRUE(client.Snapshot("shared", &served));

  CountMinSketch local(1024, 4, 77);
  for (int c = 0; c < kClients; ++c) {
    for (uint64_t step = 0; step < kBatchesPerClient; ++step) {
      local.UpdateAll(BatchFor(c, step));
    }
  }
  EXPECT_EQ(served, local.Serialize());
  server.Stop();
}

TEST(EventLoopTest, PipelinedFramesEachGetAnOrderedResponse) {
  // One write carrying 16 ingest frames plus a trailing ping: the server
  // must answer every frame, in order — the epoll path applies the whole
  // ingest run under one entry lock but still acks per frame.
  SketchServer server({});
  ASSERT_TRUE(server.Start());
  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);

  CreateSketchRequest create;
  create.name = "pipe";
  create.type = SketchType::kCountMin;
  create.params = {512, 4, 9, 0, 0};
  ASSERT_TRUE(WriteAll(stream.get(), EncodeCreateSketch(create)));
  std::vector<Frame> created;
  ASSERT_TRUE(ReadResponses(stream.get(), 1, &created));
  ASSERT_EQ(created[0].opcode, Opcode::kOk);

  constexpr std::size_t kPipelined = 16;
  std::vector<uint8_t> wire;
  for (std::size_t i = 0; i < kPipelined; ++i) {
    IngestRequest ingest;
    ingest.name = "pipe";
    ingest.updates = {{i, 1}, {i + 1, 2}};
    const std::vector<uint8_t> frame = EncodeIngest(ingest);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  const std::vector<uint8_t> ping = EncodePing();
  wire.insert(wire.end(), ping.begin(), ping.end());
  ASSERT_TRUE(WriteAll(stream.get(), wire));

  std::vector<Frame> responses;
  ASSERT_TRUE(ReadResponses(stream.get(), kPipelined + 1, &responses));
  for (std::size_t i = 0; i < kPipelined; ++i) {
    IngestAckResponse ack;
    ASSERT_TRUE(DecodeIngestAck(responses[i], &ack)) << "frame " << i;
    EXPECT_EQ(ack.accepted, 2u);
  }
  EXPECT_EQ(responses[kPipelined].opcode, Opcode::kPong);
  server.Stop();
}

TEST(EventLoopTest, SlowClientBackpressureEvictsTheConnection) {
  // A client that pipelines large batched queries without ever reading
  // responses must be evicted once its outbound backlog exceeds the
  // configured cap — not buffered without bound. Epoll-path specific:
  // the blocking transport applies backpressure by blocking the
  // connection thread in write() instead.
  if (ForcedBlocking()) {
    GTEST_SKIP() << "eviction is an event-loop behavior";
  }
  SketchServer::Options options;
  options.max_outbound_bytes = 16 * 1024;  // tiny cap: evict quickly
  options.io_threads = 1;
  SketchServer server(options);
  ASSERT_TRUE(server.Start());
  ASSERT_TRUE(server.using_event_loop());

  {
    auto admin = ConnectTcp("127.0.0.1", server.port());
    ASSERT_NE(admin, nullptr);
    SketchClient client(std::move(admin));
    ASSERT_TRUE(client.CreateSketch("victim", SketchType::kCountMin,
                                    {1024, 4, 3, 0, 0}));
  }

  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  // Each response to a 4096-key batch query is ~70 KiB — far past the
  // 16 KiB cap once the kernel socket buffers fill. Keep writing without
  // reading until the server gives up on us.
  PointQueryBatchRequest query;
  query.name = "victim";
  query.items.resize(4096);
  for (std::size_t i = 0; i < query.items.size(); ++i) query.items[i] = i;
  const std::vector<uint8_t> frame = EncodePointQueryBatch(query);
  bool write_failed = false;
  for (int i = 0; i < 512 && !write_failed; ++i) {
    write_failed = !WriteAll(stream.get(), frame);
  }
  // Whether or not the writes managed to fail first, the server must
  // have closed the connection: draining what it already sent ends in
  // EOF/reset rather than blocking forever.
  uint8_t sink[64 * 1024];
  std::ptrdiff_t n;
  do {
    n = stream->Read(sink, sizeof(sink));
  } while (n > 0);
  EXPECT_LE(n, 0);
  server.Stop();
}

TEST(EventLoopTest, SingleByteWritesStillDecodeAndServe) {
  // Frames dribbled one byte per send exercise the decoder's resumption
  // inside the event loop (every read boundary splits a frame).
  SketchServer server({});
  ASSERT_TRUE(server.Start());
  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);

  CreateSketchRequest create;
  create.name = "frag";
  create.type = SketchType::kCountMin;
  create.params = {256, 4, 5, 0, 0};
  std::vector<uint8_t> wire = EncodeCreateSketch(create);
  IngestRequest ingest;
  ingest.name = "frag";
  ingest.updates = {{5, 10}};
  const std::vector<uint8_t> ingest_frame = EncodeIngest(ingest);
  wire.insert(wire.end(), ingest_frame.begin(), ingest_frame.end());
  PointQueryRequest query;
  query.name = "frag";
  query.item = 5;
  const std::vector<uint8_t> query_frame = EncodePointQuery(query);
  wire.insert(wire.end(), query_frame.begin(), query_frame.end());

  for (const uint8_t byte : wire) {
    ASSERT_TRUE(WriteAll(stream.get(), &byte, 1));
  }
  std::vector<Frame> responses;
  ASSERT_TRUE(ReadResponses(stream.get(), 3, &responses));
  EXPECT_EQ(responses[0].opcode, Opcode::kOk);
  IngestAckResponse ack;
  ASSERT_TRUE(DecodeIngestAck(responses[1], &ack));
  EXPECT_EQ(ack.accepted, 1u);
  PointValueResponse value;
  ASSERT_TRUE(DecodePointValue(responses[2], &value));
  EXPECT_GE(value.estimate, 10);
  server.Stop();
}

TEST(EventLoopTest, ShutdownFrameDrainsAndStopsTheServer) {
  SketchServer server({});
  ASSERT_TRUE(server.Start());
  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  SketchClient client(std::move(stream));
  ASSERT_TRUE(client.Ping());
  EXPECT_TRUE(client.Shutdown());  // response delivered before the close
  server.Wait();                   // must return: the daemon drained
}

TEST(EventLoopTest, FramingViolationGetsErrorThenClose) {
  SketchServer server({});
  ASSERT_TRUE(server.Start());
  auto stream = ConnectTcp("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);

  // A header claiming a 4 GiB payload: rejected from the header alone.
  const uint8_t bad_header[8] = {0xff, 0xff, 0xff, 0xff, 0x01, 0x01, 0, 0};
  ASSERT_TRUE(WriteAll(stream.get(), bad_header, sizeof(bad_header)));
  std::vector<Frame> responses;
  ASSERT_TRUE(ReadResponses(stream.get(), 1, &responses));
  ErrorResponse error;
  ASSERT_TRUE(DecodeError(responses[0], &error));
  EXPECT_EQ(error.code, ErrorCode::kFrameTooLarge);
  // After the best-effort diagnostic the server closes the stream.
  uint8_t sink[256];
  std::ptrdiff_t n;
  do {
    n = stream->Read(sink, sizeof(sink));
  } while (n > 0);
  EXPECT_LE(n, 0);
  server.Stop();
}

}  // namespace
}  // namespace sketch::server
