// End-to-end wire tracing: a sampling client stamps trace ids, the real
// connection loop decodes them, and the service's spans come out of the
// trace export tagged with the same id — the property that makes one
// Perfetto query collect a request's full life across threads.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.h"
#include "server/connection.h"
#include "server/sketch_service.h"
#include "server/transport.h"
#include "stream/update.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace sketch::server {
namespace {

[[maybe_unused]] std::string HexId(uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, id);
  return std::string(buffer);
}

TEST(TraceSpanE2eTest, SampledRequestSpansCarryWireTraceId) {
#if !SKETCH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (SKETCH_TELEMETRY=OFF)";
#else
  telemetry::TraceRecorder::Instance().Clear();
  telemetry::TraceRecorder::Instance().SetEnabled(true);

  SketchService service{SketchService::Options{}};
  auto [client_end, server_end] = MakeLoopbackPair();
  SketchClient client(std::move(client_end));
  std::thread server_thread(
      [&service, stream = std::move(server_end)]() mutable {
        ServeConnection(stream.get(), &service);
      });

  client.SetTraceSampling(1, 0xace1);  // every request stamped
  ASSERT_TRUE(client.CreateSketch("traced", SketchType::kCountMin,
                                  {1024, 4, 42, 0, 0}));
  ASSERT_NE(client.last_trace_id(), 0u);

  std::vector<StreamUpdate> updates;
  for (uint64_t i = 0; i < 64; ++i) updates.push_back({i, 1});
  uint64_t accepted = 0;
  ASSERT_TRUE(client.Ingest("traced", UpdateSpan(updates), &accepted));
  const uint64_t ingest_id = client.last_trace_id();
  ASSERT_NE(ingest_id, 0u);

  PointValueResponse value;
  ASSERT_TRUE(client.PointQuery("traced", 7, &value));
  const uint64_t query_id = client.last_trace_id();
  ASSERT_NE(query_id, 0u);
  ASSERT_NE(query_id, ingest_id);  // distinct draws from the sampler rng

  client.Close();
  server_thread.join();

  // Every sampled request must have produced a handle_frame span tagged
  // with its wire id, and the kernel span of the query must carry the
  // same id — the decode -> dispatch -> kernel chain joins on it.
  const std::vector<telemetry::TraceEvent> events =
      telemetry::TraceRecorder::Instance().CollectEvents();
  bool query_handle_span = false;
  bool query_kernel_span = false;
  bool ingest_span = false;
  for (const telemetry::TraceEvent& event : events) {
    const std::string name = event.name == nullptr ? "" : event.name;
    if (event.correlation_id == query_id) {
      if (name == "server.handle_frame") query_handle_span = true;
      if (name == "server.kernel") query_kernel_span = true;
    }
    if (event.correlation_id == ingest_id) ingest_span = true;
  }
  EXPECT_TRUE(query_handle_span);
  EXPECT_TRUE(query_kernel_span);
  EXPECT_TRUE(ingest_span);

  // The Chrome-trace export tags those spans with args.trace_id so the
  // id is queryable in Perfetto.
  const std::string json =
      telemetry::TraceRecorder::Instance().ExportChromeTraceJson();
  EXPECT_NE(json.find("\"trace_id\":\"" + HexId(query_id) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"" + HexId(ingest_id) + "\""),
            std::string::npos);
#endif
}

TEST(TraceSpanE2eTest, UnsampledRequestsProduceNoTaggedSpans) {
#if !SKETCH_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out (SKETCH_TELEMETRY=OFF)";
#else
  telemetry::TraceRecorder::Instance().Clear();
  telemetry::TraceRecorder::Instance().SetEnabled(true);

  SketchService service{SketchService::Options{}};
  auto [client_end, server_end] = MakeLoopbackPair();
  SketchClient client(std::move(client_end));
  std::thread server_thread(
      [&service, stream = std::move(server_end)]() mutable {
        ServeConnection(stream.get(), &service);
      });

  // Sampling off (the default): no stamping, so last_trace_id stays 0
  // and no span carries a correlation id.
  ASSERT_TRUE(client.CreateSketch("untraced", SketchType::kCountMin,
                                  {1024, 4, 42, 0, 0}));
  EXPECT_EQ(client.last_trace_id(), 0u);
  PointValueResponse value;
  ASSERT_TRUE(client.PointQuery("untraced", 7, &value));
  EXPECT_EQ(client.last_trace_id(), 0u);

  client.Close();
  server_thread.join();

  for (const telemetry::TraceEvent& event :
       telemetry::TraceRecorder::Instance().CollectEvents()) {
    EXPECT_EQ(event.correlation_id, 0u)
        << (event.name == nullptr ? "<null>" : event.name);
  }
#endif
}

}  // namespace
}  // namespace sketch::server
