// Slow-query log: per-opcode retention of the slowest requests, the
// atomic-floor fast-reject on the hot path, and the JSON surface the
// /statsz and /tracez endpoints splice in.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "server/slow_query_log.h"

namespace sketch::server {
namespace {

TEST(SlowQueryLogTest, DisabledLogRejectsEverything) {
  SlowQueryLog log(0);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.WouldRecord(Opcode::kIngest, UINT64_MAX));
  log.Record(Opcode::kIngest, 1000, "s", 64, 0);
  EXPECT_TRUE(log.SnapshotSorted().empty());
  EXPECT_EQ(log.ToJson(), "[]");
}

TEST(SlowQueryLogTest, RetainsSlowestPerOpcode) {
  SlowQueryLog log(2);
  log.Record(Opcode::kPointQuery, 10, "a", 8, 0);
  log.Record(Opcode::kPointQuery, 30, "b", 8, 0);
  log.Record(Opcode::kPointQuery, 20, "c", 8, 0);
  // Capacity 2: the 10ns entry must have been evicted by the 20ns one.
  const std::vector<SlowQueryLog::Entry> entries = log.SnapshotSorted();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].latency_ns, 30u);
  EXPECT_EQ(entries[0].sketch_name, "b");
  EXPECT_EQ(entries[1].latency_ns, 20u);
  EXPECT_EQ(entries[1].sketch_name, "c");
}

TEST(SlowQueryLogTest, OpcodesDoNotEvictEachOther) {
  // A storm of slow ingests must not evict the one slow point query —
  // the reason the log is per-opcode at all.
  SlowQueryLog log(1);
  log.Record(Opcode::kPointQuery, 5, "q", 8, 0);
  for (uint64_t i = 0; i < 100; ++i) {
    log.Record(Opcode::kIngest, 1000 + i, "ing", 64, 0);
  }
  const std::vector<SlowQueryLog::Entry> entries = log.SnapshotSorted();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].opcode, Opcode::kIngest);
  EXPECT_EQ(entries[0].latency_ns, 1099u);
  EXPECT_EQ(entries[1].opcode, Opcode::kPointQuery);
  EXPECT_EQ(entries[1].latency_ns, 5u);
}

TEST(SlowQueryLogTest, FloorFastRejectTracksHeapMinimum) {
  SlowQueryLog log(2);
  // Not yet full: everything would be recorded (floor is 0, and any
  // latency > 0 beats it).
  EXPECT_TRUE(log.WouldRecord(Opcode::kIngest, 1));
  log.Record(Opcode::kIngest, 100, "", 0, 0);
  log.Record(Opcode::kIngest, 200, "", 0, 0);
  // Full with retained latencies {100, 200}: the floor is 100.
  EXPECT_FALSE(log.WouldRecord(Opcode::kIngest, 50));
  EXPECT_FALSE(log.WouldRecord(Opcode::kIngest, 100));  // ties lose
  EXPECT_TRUE(log.WouldRecord(Opcode::kIngest, 101));
  // Displacing the 100 raises the floor to 150.
  log.Record(Opcode::kIngest, 150, "", 0, 0);
  EXPECT_FALSE(log.WouldRecord(Opcode::kIngest, 150));
  EXPECT_TRUE(log.WouldRecord(Opcode::kIngest, 151));
  // The other opcode's floor is untouched.
  EXPECT_TRUE(log.WouldRecord(Opcode::kPointQuery, 1));
}

TEST(SlowQueryLogTest, ToJsonCarriesTraceIdAndEscapes) {
  SlowQueryLog log(4);
  log.Record(Opcode::kPointQuery, 777, "evil\"name\\x", 24,
             0x00ace1de00c0ffeeULL);
  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"opcode\":\"PointQuery\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_ns\":777"), std::string::npos) << json;
  // Trace ids are 16 hex digits, zero-padded, so log lines join against
  // Perfetto's args.trace_id without normalization.
  EXPECT_NE(json.find("\"trace_id\":\"00ace1de00c0ffee\""), std::string::npos)
      << json;
  // Hostile sketch names must come out as valid JSON string contents.
  EXPECT_NE(json.find("evil\\\"name\\\\x"), std::string::npos) << json;
  EXPECT_NE(json.find("\"payload_bytes\":24"), std::string::npos) << json;
  EXPECT_NE(json.find("\"age_ns\":"), std::string::npos) << json;
}

TEST(SlowQueryLogTest, UntracedEntriesReportZeroTraceId) {
  SlowQueryLog log(1);
  log.Record(Opcode::kIngest, 10, "s", 8, 0);
  EXPECT_NE(log.ToJson().find("\"trace_id\":\"0000000000000000\""),
            std::string::npos);
}

// Concurrent offers must never lose the single slowest request: the
// fast-reject is advisory, but the locked path re-checks.
TEST(SlowQueryLogTest, ConcurrentOffersKeepGlobalMaximum) {
  SlowQueryLog log(4);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Record(Opcode::kIngest, t * kPerThread + i, "s", 8, 0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SlowQueryLog::Entry> entries = log.SnapshotSorted();
  ASSERT_EQ(entries.size(), 4u);
  // The global maximum latency offered was kThreads * kPerThread - 1.
  EXPECT_EQ(entries[0].latency_ns, kThreads * kPerThread - 1);
}

}  // namespace
}  // namespace sketch::server
