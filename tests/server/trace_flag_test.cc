// Wire trace-id propagation: the kFrameFlagTraceId framing bit, the
// post-hoc StampTraceId decorator, and the decoder's stripping of the
// trailing id before typed decoding. The flag is framing, not message —
// a stamped frame must decode to byte-identical message payload.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/sketch_service.h"

namespace sketch::server {
namespace {

Frame DecodeOne(const std::vector<uint8_t>& wire) {
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(TraceFlagTest, StampedFrameRoundTripsThroughDecoder) {
  PointQueryRequest request;
  request.name = "s";
  request.item = 7;
  const std::vector<uint8_t> plain = EncodePointQuery(request);
  std::vector<uint8_t> stamped = plain;
  StampTraceId(&stamped, 0x0123456789abcdefULL);

  // On the wire: 8 extra payload bytes and the flag bit.
  EXPECT_EQ(stamped.size(), plain.size() + kTraceIdBytes);

  const Frame plain_frame = DecodeOne(plain);
  const Frame traced_frame = DecodeOne(stamped);
  EXPECT_EQ(plain_frame.trace_id, 0u);
  EXPECT_EQ(traced_frame.trace_id, 0x0123456789abcdefULL);
  // The id is framing metadata: the message payload the codecs see is
  // byte-identical to the unstamped encoding.
  EXPECT_EQ(traced_frame.opcode, plain_frame.opcode);
  EXPECT_EQ(traced_frame.payload, plain_frame.payload);
}

TEST(TraceFlagTest, StampWorksOnEmptyPayloadFrames) {
  std::vector<uint8_t> ping = EncodePing();
  StampTraceId(&ping, 42);
  const Frame frame = DecodeOne(ping);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  EXPECT_EQ(frame.trace_id, 42u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(TraceFlagTest, FlaggedFrameShorterThanIdIsBadFrame) {
  // Hand-built header: payload length 4 < kTraceIdBytes with the trace
  // flag set — the frame cannot contain the id it claims to carry.
  std::vector<uint8_t> wire = {0x04, 0x00, 0x00, 0x00,   // payload_len = 4
                               0x01,                      // opcode = Ping
                               0x01,                      // version
                               0x01, 0x00,                // flags = trace id
                               0xaa, 0xbb, 0xcc, 0xdd};   // 4 payload bytes
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kBadFrameHeader);
  EXPECT_NE(decoder.error().find("trace-id flag set"), std::string::npos)
      << decoder.error();
}

TEST(TraceFlagTest, UnknownFlagBitsStayFatal) {
  // Bit 1 is not a known flag; a decoder that silently accepted it could
  // never be given a new meaning for it later.
  std::vector<uint8_t> ping = EncodePing();
  ping[6] = 0x02;
  FrameDecoder decoder;
  decoder.Feed(ping.data(), ping.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kBadFrame);
  EXPECT_NE(decoder.error().find("reserved frame-header bits"),
            std::string::npos)
      << decoder.error();
}

TEST(TraceFlagTest, IngestDecodeCarriesFrameTraceId) {
  IngestRequest request;
  request.name = "s";
  request.updates.push_back({1, 2});
  std::vector<uint8_t> wire = EncodeIngest(request);
  StampTraceId(&wire, 0xfeedULL);
  const Frame frame = DecodeOne(wire);
  IngestRequest decoded;
  ASSERT_TRUE(DecodeIngest(frame, &decoded));
  EXPECT_EQ(decoded.trace_id, 0xfeedULL);
  EXPECT_EQ(decoded.name, "s");
  ASSERT_EQ(decoded.updates.size(), 1u);
}

TEST(TraceFlagTest, ServiceAnswersStampedFramesNormally) {
  // The service must be trace-oblivious at the protocol level: a stamped
  // request gets the same response as an unstamped one.
  SketchService service{SketchService::Options{}};
  CreateSketchRequest create;
  create.name = "s";
  create.type = SketchType::kCountMin;
  create.params = {1024, 4, 42, 0, 0};
  std::vector<uint8_t> create_wire = EncodeCreateSketch(create);
  StampTraceId(&create_wire, 9);
  const std::vector<uint8_t> create_response =
      service.HandleFrame(DecodeOne(create_wire));
  EXPECT_EQ(static_cast<Opcode>(create_response[4]), Opcode::kOk);

  PointQueryRequest query;
  query.name = "s";
  query.item = 1;
  const std::vector<uint8_t> plain_response =
      service.HandleFrame(DecodeOne(EncodePointQuery(query)));
  std::vector<uint8_t> traced_wire = EncodePointQuery(query);
  StampTraceId(&traced_wire, 10);
  const std::vector<uint8_t> traced_response =
      service.HandleFrame(DecodeOne(traced_wire));
  EXPECT_EQ(traced_response, plain_response);
}

TEST(TraceFlagTest, StampSurvivesFragmentedDelivery) {
  PointQueryRequest request;
  request.name = "fragmented";
  request.item = 77;
  std::vector<uint8_t> wire = EncodePointQuery(request);
  StampTraceId(&wire, 0xc0ffeeULL);
  FrameDecoder decoder;
  Frame frame;
  // One byte at a time: the id must still be stripped off the tail.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(&wire[i], 1);
    EXPECT_EQ(decoder.Next(&frame), DecodeStatus::kNeedMore);
  }
  decoder.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.trace_id, 0xc0ffeeULL);
  EXPECT_EQ(frame.payload, DecodeOne(EncodePointQuery(request)).payload);
}

}  // namespace
}  // namespace sketch::server
