#include "stream/generators.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"

namespace sketch {
namespace {

TEST(ZipfStreamTest, LengthAndUniverseRespected) {
  const auto updates = MakeZipfStream(1000, 1.1, 5000, 1);
  EXPECT_EQ(updates.size(), 5000u);
  for (const StreamUpdate& u : updates) {
    EXPECT_LT(u.item, 1000u);
    EXPECT_EQ(u.delta, 1);
  }
}

TEST(ZipfStreamTest, SkewProducesAHeavyItem) {
  const auto updates = MakeZipfStream(10000, 1.5, 20000, 2);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  const auto top = oracle.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  // With alpha = 1.5 the top item should hold a sizable share of the mass.
  EXPECT_GT(oracle.Count(top[0]), 20000 / 20);
}

TEST(ZipfStreamTest, ShuffledIdsDifferFromRanks) {
  const auto shuffled = MakeZipfStream(1 << 16, 1.3, 5000, 3, true);
  const auto plain = MakeZipfStream(1 << 16, 1.3, 5000, 3, false);
  FrequencyOracle a, b;
  a.UpdateAll(shuffled);
  b.UpdateAll(plain);
  // Unshuffled stream's top item is rank 0; shuffled should (w.h.p.) not be.
  EXPECT_EQ(b.TopK(1)[0], 0u);
  EXPECT_NE(a.TopK(1)[0], 0u);
  // But the frequency *profile* is identical.
  EXPECT_EQ(a.TotalCount(), b.TotalCount());
  EXPECT_EQ(a.DistinctCount(), b.DistinctCount());
}

TEST(ZipfStreamTest, DeterministicForSeed) {
  const auto a = MakeZipfStream(100, 1.0, 1000, 7);
  const auto b = MakeZipfStream(100, 1.0, 1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].item, b[i].item);
}

TEST(TurnstileStreamTest, NeverDrivesCountsNegative) {
  const auto updates = MakeTurnstileStream(500, 1.1, 10000, 0.8, 4);
  std::unordered_map<uint64_t, int64_t> live;
  for (const StreamUpdate& u : updates) {
    live[u.item] += u.delta;
    EXPECT_GE(live[u.item], 0) << "strict turnstile violated";
  }
}

TEST(TurnstileStreamTest, DeletionFractionApproximatelyHonored) {
  const uint64_t inserts = 10000;
  const auto updates = MakeTurnstileStream(500, 1.1, inserts, 0.5, 5);
  uint64_t deletions = 0;
  for (const StreamUpdate& u : updates) deletions += (u.delta < 0);
  EXPECT_NEAR(static_cast<double>(deletions), inserts / 2, inserts / 50);
}

TEST(TurnstileStreamTest, ZeroDeleteFractionIsInsertOnly) {
  const auto updates = MakeTurnstileStream(100, 1.0, 1000, 0.0, 6);
  EXPECT_EQ(updates.size(), 1000u);
  for (const StreamUpdate& u : updates) EXPECT_EQ(u.delta, 1);
}

TEST(SingleItemStreamTest, AllUpdatesHitOneKey) {
  const auto updates = MakeSingleItemStream(42, 100);
  EXPECT_EQ(updates.size(), 100u);
  for (const StreamUpdate& u : updates) {
    EXPECT_EQ(u.item, 42u);
    EXPECT_EQ(u.delta, 1);
  }
}

TEST(UniformStreamTest, CoversUniverse) {
  const auto updates = MakeUniformStream(10, 10000, 7);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  EXPECT_EQ(oracle.DistinctCount(), 10u);
  // No item should dominate: max frequency within 3x of the mean.
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_LT(oracle.Count(i), 3 * 1000);
    EXPECT_GT(oracle.Count(i), 1000 / 3);
  }
}

}  // namespace
}  // namespace sketch
