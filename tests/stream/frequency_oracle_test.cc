#include "stream/frequency_oracle.h"

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(FrequencyOracleTest, CountsUpdates) {
  FrequencyOracle oracle;
  oracle.Update({5, 3});
  oracle.Update({5, 2});
  oracle.Update({7, 1});
  EXPECT_EQ(oracle.Count(5), 5);
  EXPECT_EQ(oracle.Count(7), 1);
  EXPECT_EQ(oracle.Count(99), 0);
}

TEST(FrequencyOracleTest, SupportsDeletions) {
  FrequencyOracle oracle;
  oracle.Update({1, 5});
  oracle.Update({1, -5});
  EXPECT_EQ(oracle.Count(1), 0);
  EXPECT_EQ(oracle.DistinctCount(), 0u);
}

TEST(FrequencyOracleTest, TotalAndL1) {
  FrequencyOracle oracle;
  oracle.Update({1, 3});
  oracle.Update({2, -2});
  EXPECT_EQ(oracle.TotalCount(), 1);
  EXPECT_EQ(oracle.L1(), 5);
}

TEST(FrequencyOracleTest, ItemsAboveThreshold) {
  FrequencyOracle oracle;
  oracle.Update({10, 5});
  oracle.Update({20, 3});
  oracle.Update({30, 5});
  const auto items = oracle.ItemsAbove(5);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 10u);
  EXPECT_EQ(items[1], 30u);
}

TEST(FrequencyOracleTest, TopKOrdersByCountThenId) {
  FrequencyOracle oracle;
  oracle.Update({3, 10});
  oracle.Update({1, 10});
  oracle.Update({2, 20});
  const auto top = oracle.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 1u);  // tie broken by smaller id
}

TEST(FrequencyOracleTest, TopKLargerThanDistinct) {
  FrequencyOracle oracle;
  oracle.Update({1, 1});
  EXPECT_EQ(oracle.TopK(5).size(), 1u);
}

TEST(FrequencyOracleTest, UpdateAllBatch) {
  FrequencyOracle oracle;
  oracle.UpdateAll({{1, 1}, {1, 1}, {2, 1}});
  EXPECT_EQ(oracle.Count(1), 2);
  EXPECT_EQ(oracle.Count(2), 1);
}

}  // namespace
}  // namespace sketch
