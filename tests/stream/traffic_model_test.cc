#include "stream/traffic_model.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "sketch/dyadic_count_min.h"
#include "stream/frequency_oracle.h"

namespace sketch {
namespace {

TrafficModelOptions SmallModel() {
  TrafficModelOptions options;
  options.num_flows = 2000;
  options.max_flow_packets = 5000;
  options.seed = 7;
  return options;
}

TEST(TrafficModelTest, GroundTruthMatchesPacketStream) {
  const TrafficTrace trace = GenerateTrafficTrace(SmallModel());
  ASSERT_EQ(trace.flow_ids.size(), trace.flow_sizes.size());
  EXPECT_EQ(trace.packets.size(), trace.total_packets);
  FrequencyOracle oracle;
  oracle.UpdateAll(trace.packets);
  EXPECT_EQ(oracle.DistinctCount(), trace.flow_ids.size());
  for (size_t i = 0; i < trace.flow_ids.size(); ++i) {
    ASSERT_EQ(oracle.Count(trace.flow_ids[i]),
              static_cast<int64_t>(trace.flow_sizes[i]));
  }
}

TEST(TrafficModelTest, SizesRespectBounds) {
  TrafficModelOptions options = SmallModel();
  options.min_flow_packets = 3;
  options.max_flow_packets = 1000;
  const TrafficTrace trace = GenerateTrafficTrace(options);
  for (uint64_t size : trace.flow_sizes) {
    EXPECT_GE(size, 3u);
    EXPECT_LE(size, 1000u);
  }
}

TEST(TrafficModelTest, HeavyTailElephantsCarryMostTraffic) {
  TrafficModelOptions options;
  options.num_flows = 20000;
  options.pareto_shape = 1.1;
  options.max_flow_packets = 1 << 20;
  options.seed = 9;
  const TrafficTrace trace = GenerateTrafficTrace(options);
  // The classic traffic observation: a small fraction of flows carries
  // most packets (top 1% of flows here hold just under half).
  EXPECT_GT(TopFlowShare(trace, 200), 0.4);
  EXPECT_GT(TopFlowShare(trace, 2000), 0.7);  // top 10% carry the bulk
  EXPECT_LT(TopFlowShare(trace, 200), 1.0);
}

TEST(TrafficModelTest, LighterTailIsMoreUniform) {
  TrafficModelOptions heavy = SmallModel();
  heavy.pareto_shape = 1.0;
  TrafficModelOptions light = SmallModel();
  light.pareto_shape = 2.5;
  EXPECT_GT(TopFlowShare(GenerateTrafficTrace(heavy), 20),
            TopFlowShare(GenerateTrafficTrace(light), 20));
}

TEST(TrafficModelTest, PacketsAreInterleaved) {
  const TrafficTrace trace = GenerateTrafficTrace(SmallModel());
  // If flows were emitted contiguously, adjacent packets would share a
  // flow almost always; after shuffling the expected match rate is tiny.
  uint64_t adjacent_same = 0;
  for (size_t i = 1; i < trace.packets.size(); ++i) {
    adjacent_same += (trace.packets[i].item == trace.packets[i - 1].item);
  }
  EXPECT_LT(static_cast<double>(adjacent_same) /
                static_cast<double>(trace.packets.size()),
            0.1);
}

TEST(TrafficModelTest, DeterministicPerSeed) {
  const TrafficTrace a = GenerateTrafficTrace(SmallModel());
  const TrafficTrace b = GenerateTrafficTrace(SmallModel());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (size_t i = 0; i < a.packets.size(); ++i) {
    ASSERT_EQ(a.packets[i].item, b.packets[i].item);
  }
}

TEST(TrafficModelTest, SketchesFindTheElephantsInTheTrace) {
  // End-to-end: the dyadic Count-Min finds every flow above 0.5% of a
  // realistic trace.
  TrafficModelOptions options;
  options.num_flows = 5000;
  options.flow_id_space = 1ULL << 20;
  options.max_flow_packets = 1 << 16;
  options.seed = 11;
  const TrafficTrace trace = GenerateTrafficTrace(options);
  DyadicCountMin dcm(20, 2048, 4, 1);
  dcm.UpdateAll(trace.packets);
  const auto threshold =
      static_cast<int64_t>(0.005 * static_cast<double>(trace.total_packets));
  const auto found = dcm.HeavyHitters(threshold);
  FrequencyOracle oracle;
  oracle.UpdateAll(trace.packets);
  for (uint64_t flow : oracle.ItemsAbove(threshold)) {
    EXPECT_NE(std::find(found.begin(), found.end(), flow), found.end())
        << "missed elephant " << flow;
  }
}

}  // namespace
}  // namespace sketch
