#include "fft/real_fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"

namespace sketch {
namespace {

std::vector<double> RandomReal(uint64_t n, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();
  return x;
}

TEST(RealFftTest, MatchesComplexFftHalfSpectrum) {
  for (uint64_t n : {2u, 4u, 16u, 128u, 100u, 258u}) {
    const std::vector<double> x = RandomReal(n, n);
    const std::vector<Complex> half = RealFft(x);
    std::vector<Complex> cx(n);
    for (uint64_t t = 0; t < n; ++t) cx[t] = Complex(x[t], 0.0);
    const std::vector<Complex> full = Fft(cx);
    ASSERT_EQ(half.size(), n / 2 + 1);
    for (uint64_t f = 0; f <= n / 2; ++f) {
      ASSERT_NEAR(std::abs(half[f] - full[f]), 0.0, 1e-8) << "n=" << n;
    }
  }
}

TEST(RealFftTest, RoundTrip) {
  for (uint64_t n : {8u, 64u, 130u}) {
    const std::vector<double> x = RandomReal(n, 100 + n);
    const std::vector<double> back = InverseRealFft(RealFft(x), n);
    ASSERT_EQ(back.size(), n);
    for (uint64_t t = 0; t < n; ++t) {
      ASSERT_NEAR(back[t], x[t], 1e-9) << "n=" << n;
    }
  }
}

TEST(RealFftTest, DcComponentIsSum) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<Complex> half = RealFft(x);
  EXPECT_NEAR(half[0].real(), 10.0, 1e-12);
  EXPECT_NEAR(half[0].imag(), 0.0, 1e-12);
  // Nyquist bin of a real signal is also real.
  EXPECT_NEAR(half[2].imag(), 0.0, 1e-12);
}

TEST(CircularConvolveTest, MatchesNaiveConvolution) {
  for (uint64_t n : {4u, 7u, 16u, 33u}) {
    const std::vector<double> a = RandomReal(n, 200 + n);
    const std::vector<double> b = RandomReal(n, 300 + n);
    const std::vector<double> fast = CircularConvolve(a, b);
    std::vector<double> naive(n, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t j = 0; j < n; ++j) {
        naive[(i + j) % n] += a[i] * b[j];
      }
    }
    ASSERT_EQ(fast.size(), n);
    for (uint64_t t = 0; t < n; ++t) {
      ASSERT_NEAR(fast[t], naive[t], 1e-8 * (1.0 + std::abs(naive[t])))
          << "n=" << n;
    }
  }
}

TEST(CircularConvolveTest, DeltaIsIdentity) {
  std::vector<double> delta(16, 0.0);
  delta[0] = 1.0;
  const std::vector<double> x = RandomReal(16, 5);
  const std::vector<double> out = CircularConvolve(x, delta);
  for (uint64_t t = 0; t < 16; ++t) EXPECT_NEAR(out[t], x[t], 1e-10);
}

TEST(CircularConvolveTest, ShiftedDeltaRotates) {
  std::vector<double> delta(8, 0.0);
  delta[3] = 1.0;
  const std::vector<double> x = RandomReal(8, 6);
  const std::vector<double> out = CircularConvolve(x, delta);
  for (uint64_t t = 0; t < 8; ++t) {
    EXPECT_NEAR(out[(t + 3) % 8], x[t], 1e-10);
  }
}

}  // namespace
}  // namespace sketch
