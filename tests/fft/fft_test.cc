#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"

namespace sketch {
namespace {

std::vector<Complex> RandomSignal(uint64_t n, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.NextGaussian(), rng.NextGaussian());
  return x;
}

TEST(FftTest, MatchesNaiveDftOnPowerOfTwo) {
  for (uint64_t n : {1u, 2u, 4u, 8u, 64u, 256u}) {
    const std::vector<Complex> x = RandomSignal(n, n);
    const std::vector<Complex> fast = Fft(x);
    const std::vector<Complex> naive = NaiveDft(x);
    EXPECT_LT(L2Distance(fast, naive), 1e-8 * (1 + L2Norm(naive))) << n;
  }
}

TEST(FftTest, MatchesNaiveDftOnArbitrarySizes) {
  for (uint64_t n : {3u, 5u, 6u, 7u, 12u, 100u, 255u}) {
    const std::vector<Complex> x = RandomSignal(n, 1000 + n);
    const std::vector<Complex> fast = Fft(x);
    const std::vector<Complex> naive = NaiveDft(x);
    EXPECT_LT(L2Distance(fast, naive), 1e-7 * (1 + L2Norm(naive))) << n;
  }
}

TEST(FftTest, InverseRoundTripPowerOfTwo) {
  const std::vector<Complex> x = RandomSignal(128, 3);
  const std::vector<Complex> back = InverseFft(Fft(x));
  EXPECT_LT(L2Distance(x, back), 1e-10);
}

TEST(FftTest, InverseRoundTripArbitrarySize) {
  const std::vector<Complex> x = RandomSignal(77, 4);
  const std::vector<Complex> back = InverseFft(Fft(x));
  EXPECT_LT(L2Distance(x, back), 1e-9);
}

TEST(FftTest, ParsevalIdentity) {
  const std::vector<Complex> x = RandomSignal(256, 5);
  const std::vector<Complex> xhat = Fft(x);
  // ||xhat||^2 = n ||x||^2 with the unnormalized forward transform.
  EXPECT_NEAR(L2Norm(xhat) * L2Norm(xhat),
              256.0 * L2Norm(x) * L2Norm(x),
              1e-6 * L2Norm(xhat) * L2Norm(xhat));
}

TEST(FftTest, Linearity) {
  const std::vector<Complex> x = RandomSignal(64, 6);
  const std::vector<Complex> y = RandomSignal(64, 7);
  std::vector<Complex> combo(64);
  const Complex alpha(2.0, -1.0);
  for (int i = 0; i < 64; ++i) combo[i] = alpha * x[i] + y[i];
  const std::vector<Complex> lhs = Fft(combo);
  const std::vector<Complex> fx = Fft(x);
  const std::vector<Complex> fy = Fft(y);
  std::vector<Complex> rhs(64);
  for (int i = 0; i < 64; ++i) rhs[i] = alpha * fx[i] + fy[i];
  EXPECT_LT(L2Distance(lhs, rhs), 1e-9 * (1 + L2Norm(rhs)));
}

TEST(FftTest, DeltaTransformsToAllOnes) {
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  const std::vector<Complex> xhat = Fft(x);
  for (const Complex& v : xhat) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, PureToneHasSingleCoefficient) {
  const uint64_t n = 64, f0 = 5;
  std::vector<Complex> x(n);
  for (uint64_t t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>(f0 * t) /
                         static_cast<double>(n);
    x[t] = Complex(std::cos(angle), std::sin(angle));
  }
  const std::vector<Complex> xhat = Fft(x);
  for (uint64_t f = 0; f < n; ++f) {
    if (f == f0) {
      EXPECT_NEAR(std::abs(xhat[f]), static_cast<double>(n), 1e-8);
    } else {
      EXPECT_NEAR(std::abs(xhat[f]), 0.0, 1e-8);
    }
  }
}

TEST(FftTest, TimeShiftMultipliesSpectrumByPhase) {
  const uint64_t n = 128;
  const std::vector<Complex> x = RandomSignal(n, 8);
  std::vector<Complex> shifted(n);
  for (uint64_t t = 0; t < n; ++t) shifted[t] = x[(t + 1) % n];
  const std::vector<Complex> fx = Fft(x);
  const std::vector<Complex> fs = Fft(shifted);
  for (uint64_t f = 0; f < n; ++f) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(f) /
                         static_cast<double>(n);
    const Complex expected = fx[f] * Complex(std::cos(angle), std::sin(angle));
    EXPECT_NEAR(std::abs(fs[f] - expected), 0.0, 1e-8);
  }
}

TEST(FftTest, BluesteinAgreesWithRadix2OnPowersOfTwo) {
  // Both paths must produce the same transform; force Bluestein by
  // comparing a power-of-two prefix against a Bluestein-computed n.
  const std::vector<Complex> x = RandomSignal(64, 9);
  const std::vector<Complex> direct = Fft(x);
  // Compute the same DFT via the naive oracle as cross-check for both.
  const std::vector<Complex> naive = NaiveDft(x);
  EXPECT_LT(L2Distance(direct, naive), 1e-8 * (1 + L2Norm(naive)));
}

TEST(FftTest, SingleElementIsIdentity) {
  const std::vector<Complex> x = {Complex(3.5, -2.0)};
  const std::vector<Complex> xhat = Fft(x);
  EXPECT_NEAR(std::abs(xhat[0] - x[0]), 0.0, 1e-15);
  const std::vector<Complex> back = InverseFft(xhat);
  EXPECT_NEAR(std::abs(back[0] - x[0]), 0.0, 1e-15);
}

TEST(FftPow2InPlaceTest, ForwardBackwardInPlace) {
  std::vector<Complex> x = RandomSignal(32, 10);
  const std::vector<Complex> original = x;
  FftPow2InPlace(&x, /*inverse=*/false);
  FftPow2InPlace(&x, /*inverse=*/true);
  EXPECT_LT(L2Distance(x, original), 1e-11);
}

TEST(FftTest, IsPowerOfTwoHelper) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

}  // namespace
}  // namespace sketch
