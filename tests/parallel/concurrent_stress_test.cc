// Concurrency stress tests, designed to run under ThreadSanitizer
// (configure with -DSKETCH_SANITIZE=thread). They hammer the thread
// pool's synchronization surface — concurrent producers, task-spawned
// tasks, rapid construct/destroy cycles — and drive the sharded
// ingestion engine through many small batches, where any data race in
// the Submit/Wait handshake or in shard ownership would be loudest.
// Correctness of the *answers* is asserted too, so the tests are useful
// (if less interesting) in uninstrumented builds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "parallel/sharded_sketch.h"
#include "sketch/count_min.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(ConcurrentStressTest, ManyProducersManyTasks) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 2000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&sum, p, i] {
          sum.fetch_add(static_cast<uint64_t>(p * kTasksPerProducer + i),
                        std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  const uint64_t n = kProducers * kTasksPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ConcurrentStressTest, WaitRacesWithSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::atomic<bool> stop{false};
  // One thread repeatedly Waits while others keep submitting; Wait must
  // neither hang nor miss the final quiescent state.
  std::thread waiter([&pool, &stop] {
    while (!stop.load(std::memory_order_acquire)) pool.Wait();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&pool, &done] {
      for (int i = 0; i < 1000; ++i) {
        pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  stop.store(true, std::memory_order_release);
  waiter.join();
  EXPECT_EQ(done.load(), 3000);
}

TEST(ConcurrentStressTest, RapidPoolConstructDestroy) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must drain the queue before joining.
  }
}

TEST(ConcurrentStressTest, TasksSpawningTasksUnderLoad) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&pool, &leaves] {
      for (int j = 0; j < 4; ++j) {
        pool.Submit(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(leaves.load(), 800);
}

TEST(ConcurrentStressTest, ShardedIngestionManySmallBatches) {
  ThreadPool pool(4);
  const auto stream =
      MakeZipfStream(1 << 12, 1.1, /*length=*/100000, /*seed=*/5);
  const UpdateSpan all(stream);

  CountMinSketch sequential(1024, 4, /*seed=*/5);
  sequential.ApplyBatch(all);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, 5), &pool);
  // Many small batches maximizes Submit/Wait churn per unit work — the
  // worst case for the pool's handshake, the best case for TSAN.
  constexpr size_t kBatch = 257;
  for (size_t offset = 0; offset < all.size(); offset += kBatch) {
    sharded.Ingest(all.subspan(offset, std::min(kBatch, all.size() - offset)));
  }
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST(ConcurrentStressTest, InterleavedIngestAndCollapse) {
  ThreadPool pool(4);
  const auto stream =
      MakeZipfStream(1 << 12, 1.1, /*length=*/80000, /*seed=*/17);
  const UpdateSpan all(stream);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(512, 4, 17), &pool);
  constexpr size_t kChunks = 16;
  const size_t chunk = all.size() / kChunks;
  int64_t running_mass = 0;
  for (size_t c = 0; c < kChunks; ++c) {
    const UpdateSpan block = all.subspan(c * chunk, chunk);
    sharded.Ingest(block);
    for (const StreamUpdate& u : block) running_mass += u.delta;
    // Collapse between batches (same driver thread — the supported
    // discipline) and check the running total via row-0 mass.
    const CountMinSketch snapshot = sharded.Collapse();
    int64_t row0 = 0;
    for (uint64_t b = 0; b < snapshot.width(); ++b) {
      row0 += snapshot.CounterAt(0, b);
    }
    ASSERT_EQ(row0, running_mass) << "after chunk " << c;
  }
}

TEST(ConcurrentStressTest, ParallelForUnderConcurrentSubmit) {
  ThreadPool pool(4);
  std::atomic<int> background{0};
  std::thread submitter([&pool, &background] {
    for (int i = 0; i < 500; ++i) {
      pool.Submit(
          [&background] { background.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  std::vector<std::atomic<int>> hits(1024);
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(0, hits.size(), [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  submitter.join();
  pool.Wait();
  EXPECT_EQ(background.load(), 500);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 10);
}

}  // namespace
}  // namespace sketch
