// Sharded-vs-sequential equivalence: ingesting a stream through the
// parallel sharded engine must give *exactly* the same sketch state —
// bit-identical counters, identical query answers — as sequential
// single-threaded ingestion, for every thread count. Linearity makes the
// shard-and-merge composition exact (see DESIGN.md, "Sharded ingestion"),
// so equality here is EXPECT_EQ, not a tolerance.

#include "parallel/sharded_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 14;
constexpr uint64_t kSeed = 99;

const std::vector<StreamUpdate>& ZipfStream() {
  static const auto* stream = new std::vector<StreamUpdate>(
      MakeZipfStream(kUniverse, 1.1, /*length=*/200000, kSeed));
  return *stream;
}

class ShardedSketchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedSketchTest, CountMinMatchesSequentialBitForBit) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto& stream = ZipfStream();

  CountMinSketch sequential(2048, 5, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(2048, 5, kSeed),
                                        &pool);
  EXPECT_EQ(sharded.num_shards(), threads);
  sharded.Ingest(stream);
  const CountMinSketch collapsed = sharded.Collapse();

  EXPECT_EQ(collapsed.Serialize(), sequential.Serialize());
  for (uint64_t item = 0; item < 1024; ++item) {
    ASSERT_EQ(collapsed.Estimate(item), sequential.Estimate(item));
  }
}

TEST_P(ShardedSketchTest, CountSketchMatchesSequentialBitForBit) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto& stream = ZipfStream();

  CountSketch sequential(2048, 5, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<CountSketch> sharded(CountSketch(2048, 5, kSeed), &pool);
  sharded.Ingest(stream);
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST_P(ShardedSketchTest, BloomFilterMatchesSequentialBitForBit) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto& stream = ZipfStream();

  BloomFilter sequential(1 << 16, 5, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<BloomFilter> sharded(BloomFilter(1 << 16, 5, kSeed), &pool);
  sharded.Ingest(stream);
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST_P(ShardedSketchTest, AmsMatchesSequentialF2) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto& stream = ZipfStream();

  AmsSketch sequential(512, 5, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<AmsSketch> sharded(AmsSketch(512, 5, kSeed), &pool);
  sharded.Ingest(stream);
  EXPECT_EQ(sharded.Collapse().EstimateF2(), sequential.EstimateF2());
}

TEST_P(ShardedSketchTest, DyadicHeavyHittersMatchSequentialExactly) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  const auto& stream = ZipfStream();

  DyadicCountMin sequential(14, 1024, 4, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<DyadicCountMin> sharded(DyadicCountMin(14, 1024, 4, kSeed),
                                        &pool);
  sharded.Ingest(stream);
  const DyadicCountMin collapsed = sharded.Collapse();

  EXPECT_EQ(collapsed.TotalCount(), sequential.TotalCount());
  const auto threshold = static_cast<int64_t>(
      0.005 * static_cast<double>(sequential.TotalCount()));
  EXPECT_EQ(collapsed.HeavyHitters(threshold),
            sequential.HeavyHitters(threshold));
  for (uint64_t item = 0; item < 512; ++item) {
    ASSERT_EQ(collapsed.Estimate(item), sequential.Estimate(item));
  }
  EXPECT_EQ(collapsed.Quantile(0.9), sequential.Quantile(0.9));
}

INSTANTIATE_TEST_SUITE_P(Threads, ShardedSketchTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ShardedSketchTest, RepeatedIngestAccumulates) {
  ThreadPool pool(4);
  const auto& stream = ZipfStream();
  const UpdateSpan all(stream);

  CountMinSketch sequential(1024, 4, kSeed);
  sequential.ApplyBatch(all);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, kSeed),
                                        &pool);
  // Feed the same stream in many unevenly-sized batches.
  size_t offset = 0;
  size_t batch = 1;
  while (offset < all.size()) {
    const size_t len = std::min(batch, all.size() - offset);
    sharded.Ingest(all.subspan(offset, len));
    offset += len;
    batch = batch * 3 + 1;
  }
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST(ShardedSketchTest, CollapseIsNonDestructiveAndRepeatable) {
  ThreadPool pool(2);
  const auto& stream = ZipfStream();

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, kSeed),
                                        &pool);
  sharded.Ingest(stream);
  const auto first = sharded.Collapse().Serialize();
  const auto second = sharded.Collapse().Serialize();
  EXPECT_EQ(first, second);
}

TEST(ShardedSketchTest, NullPoolRunsInline) {
  const auto& stream = ZipfStream();
  CountMinSketch sequential(1024, 4, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, kSeed),
                                        /*pool=*/nullptr);
  EXPECT_EQ(sharded.num_shards(), 1u);
  sharded.Ingest(stream);
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST(ShardedSketchTest, MoreShardsThanPoolThreadsStillExact) {
  ThreadPool pool(2);
  const auto& stream = ZipfStream();
  CountMinSketch sequential(1024, 4, kSeed);
  sequential.ApplyBatch(stream);

  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, kSeed),
                                        /*num_shards=*/7, &pool);
  sharded.Ingest(stream);
  EXPECT_EQ(sharded.Collapse().Serialize(), sequential.Serialize());
}

TEST(ShardedSketchTest, WorkActuallySpreadsAcrossShards) {
  ThreadPool pool(4);
  const auto& stream = ZipfStream();
  ShardedSketch<CountMinSketch> sharded(CountMinSketch(1024, 4, kSeed),
                                        &pool);
  sharded.Ingest(stream);
  // Every replica saw roughly |stream| / num_shards updates; in
  // particular no replica is empty (an empty Count-Min has all-zero rows
  // and total mass 0 in row 0).
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    int64_t row0_mass = 0;
    for (uint64_t b = 0; b < sharded.shard(s).width(); ++b) {
      row0_mass += sharded.shard(s).CounterAt(0, b);
    }
    EXPECT_GT(row0_mass, 0) << "shard " << s << " never ingested";
  }
}

}  // namespace
}  // namespace sketch
