#include "sketch/iblt.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

TEST(IbltTest, GetFindsInsertedPair) {
  Iblt iblt(60, 3, 1);
  iblt.Insert(10, 100);
  const auto value = iblt.Get(10);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 100u);
}

TEST(IbltTest, GetOnEmptyTableReturnsAbsent) {
  Iblt iblt(60, 3, 2);
  EXPECT_FALSE(iblt.Get(42).has_value());
}

TEST(IbltTest, DeleteCancelsInsertExactly) {
  Iblt iblt(60, 3, 3);
  iblt.Insert(5, 50);
  iblt.Delete(5, 50);
  EXPECT_FALSE(iblt.Get(5).has_value());
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_TRUE(complete);
  EXPECT_TRUE(entries.empty());
}

TEST(IbltTest, ListEntriesRecoversAllPairsUnderThreshold) {
  // 3 hashes, load 1/1.5: comfortably below the ~0.81 peeling threshold.
  const uint64_t pairs = 100;
  Iblt iblt(150, 3, 4);
  for (uint64_t k = 0; k < pairs; ++k) iblt.Insert(k + 1, k * k + 7);
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_TRUE(complete);
  ASSERT_EQ(entries.size(), pairs);
  std::map<uint64_t, uint64_t> recovered;
  for (const Iblt::Entry& e : entries) {
    EXPECT_EQ(e.sign, +1);
    recovered[e.key] = e.value;
  }
  for (uint64_t k = 0; k < pairs; ++k) {
    ASSERT_TRUE(recovered.count(k + 1));
    EXPECT_EQ(recovered[k + 1], k * k + 7);
  }
}

TEST(IbltTest, OverloadedTableReportsIncomplete) {
  // 200 pairs in 60 cells: far beyond the peeling threshold.
  Iblt iblt(60, 3, 5);
  for (uint64_t k = 0; k < 200; ++k) iblt.Insert(k + 1, k);
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_FALSE(complete);
}

TEST(IbltTest, ListEntriesDoesNotMutateTable) {
  Iblt iblt(90, 3, 6);
  for (uint64_t k = 0; k < 20; ++k) iblt.Insert(k + 1, k);
  (void)iblt.ListEntries();
  // Listing again must still work (const method peels a copy).
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_TRUE(complete);
  EXPECT_EQ(entries.size(), 20u);
}

TEST(IbltTest, SubtractYieldsSymmetricDifference) {
  Iblt a(120, 3, 7);
  Iblt b(120, 3, 7);  // same seed => same hash functions
  // Shared pairs cancel; uniques survive with signs.
  for (uint64_t k = 0; k < 30; ++k) {
    a.Insert(k + 1, k);
    b.Insert(k + 1, k);
  }
  a.Insert(1000, 11);
  a.Insert(1001, 12);
  b.Insert(2000, 21);
  a.Subtract(b);
  const auto [entries, complete] = a.ListEntries();
  EXPECT_TRUE(complete);
  ASSERT_EQ(entries.size(), 3u);
  std::map<uint64_t, std::pair<uint64_t, int>> by_key;
  for (const Iblt::Entry& e : entries) by_key[e.key] = {e.value, e.sign};
  EXPECT_EQ(by_key[1000], (std::pair<uint64_t, int>{11, +1}));
  EXPECT_EQ(by_key[1001], (std::pair<uint64_t, int>{12, +1}));
  EXPECT_EQ(by_key[2000], (std::pair<uint64_t, int>{21, -1}));
}

TEST(IbltTest, PeelingSucceedsNearClassicThreshold) {
  // With 3 hashes, peeling succeeds w.h.p. at m = 1.4n (threshold ~1.23n).
  const uint64_t pairs = 500;
  Iblt iblt(static_cast<uint64_t>(pairs * 1.4), 3, 8);
  Xoshiro256StarStar rng(8);
  std::map<uint64_t, uint64_t> truth;
  while (truth.size() < pairs) truth[rng.Next() | 1] = rng.Next();
  for (const auto& [k, v] : truth) iblt.Insert(k, v);
  const auto [entries, complete] = iblt.ListEntries();
  EXPECT_TRUE(complete);
  EXPECT_EQ(entries.size(), pairs);
}

TEST(IbltTest, GetUnresolvableInDenseTable) {
  Iblt iblt(6, 3, 9);
  for (uint64_t k = 0; k < 50; ++k) iblt.Insert(k + 1, k);
  // With 50 keys in 6 cells, every cell is multi-occupied; Get on a
  // present key cannot resolve (returns nullopt rather than a wrong value).
  const auto v = iblt.Get(1);
  if (v.has_value()) {
    EXPECT_EQ(*v, 0u);  // if resolvable, must be correct
  }
}

TEST(IbltTest, DuplicateKeyInsertionsAreNotSingletons) {
  Iblt iblt(60, 3, 10);
  iblt.Insert(7, 70);
  iblt.Insert(7, 70);  // count 2 in every probed cell
  const auto [entries, complete] = iblt.ListEntries();
  // A doubly-inserted pair cannot be peeled as count==1; the listing must
  // report incomplete rather than hallucinate.
  EXPECT_FALSE(complete);
}

}  // namespace
}  // namespace sketch
