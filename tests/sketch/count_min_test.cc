#include "sketch/count_min.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(CountMinTest, SingleItemExact) {
  CountMinSketch cm(128, 4, 1);
  for (int i = 0; i < 10; ++i) cm.Update({42, 1});
  EXPECT_EQ(cm.Estimate(42), 10);
}

TEST(CountMinTest, UnseenItemBoundedByCollisions) {
  CountMinSketch cm(1024, 5, 2);
  cm.Update({1, 100});
  // An unseen item either misses all of item 1's buckets (estimate 0) or
  // collides; it can never be negative in an insert-only stream.
  EXPECT_GE(cm.Estimate(999), 0);
  EXPECT_LE(cm.Estimate(999), 100);
}

TEST(CountMinTest, NeverUnderestimatesOnInsertOnlyStream) {
  const auto updates = MakeZipfStream(1 << 14, 1.2, 20000, 3);
  CountMinSketch cm(256, 4, 3);
  FrequencyOracle oracle;
  cm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  for (const auto& [item, count] : oracle.counts()) {
    EXPECT_GE(cm.Estimate(item), count) << "item " << item;
  }
}

TEST(CountMinTest, ErrorBoundHoldsWithHighProbability) {
  // width = ceil(e/eps) gives error <= eps * N w.p. >= 1 - delta per item.
  const double eps = 0.01, delta = 0.01;
  CountMinSketch cm = CountMinSketch::FromErrorBounds(eps, delta, 4);
  const auto updates = MakeZipfStream(1 << 12, 1.1, 50000, 4);
  FrequencyOracle oracle;
  cm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  const double bound = eps * 50000;
  int violations = 0, total = 0;
  for (const auto& [item, count] : oracle.counts()) {
    ++total;
    if (static_cast<double>(cm.Estimate(item) - count) > bound) ++violations;
  }
  // Expected violation rate <= delta; allow 3x slack.
  EXPECT_LE(violations, 3 * delta * total + 3);
}

TEST(CountMinTest, SupportsDeletionsInStrictTurnstile) {
  const auto updates = MakeTurnstileStream(1000, 1.1, 20000, 0.7, 5);
  CountMinSketch cm(512, 5, 5);
  FrequencyOracle oracle;
  cm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  for (const auto& [item, count] : oracle.counts()) {
    EXPECT_GE(cm.Estimate(item), count);
  }
}

TEST(CountMinTest, MergeEqualsConcatenatedStream) {
  const auto part1 = MakeZipfStream(1000, 1.0, 5000, 6);
  const auto part2 = MakeZipfStream(1000, 1.0, 5000, 7);
  CountMinSketch a(128, 4, 8);
  CountMinSketch b(128, 4, 8);
  CountMinSketch whole(128, 4, 8);
  a.UpdateAll(part1);
  b.UpdateAll(part2);
  whole.UpdateAll(part1);
  whole.UpdateAll(part2);
  a.Merge(b);
  for (uint64_t item = 0; item < 1000; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
}

TEST(CountMinTest, ConservativeUpdateNeverUnderestimates) {
  const auto updates = MakeZipfStream(1 << 12, 1.1, 20000, 9);
  CountMinSketch cm(256, 4, 9);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    cm.UpdateConservative(u.item, u.delta);
    oracle.Update(u);
  }
  for (const auto& [item, count] : oracle.counts()) {
    EXPECT_GE(cm.Estimate(item), count);
  }
}

TEST(CountMinTest, ConservativeUpdateTightensEstimates) {
  const auto updates = MakeZipfStream(1 << 12, 1.1, 50000, 10);
  CountMinSketch standard(128, 4, 10);
  CountMinSketch conservative(128, 4, 10);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    standard.Update(u);
    conservative.UpdateConservative(u.item, u.delta);
    oracle.Update(u);
  }
  int64_t standard_err = 0, conservative_err = 0;
  for (const auto& [item, count] : oracle.counts()) {
    standard_err += standard.Estimate(item) - count;
    conservative_err += conservative.Estimate(item) - count;
  }
  EXPECT_LT(conservative_err, standard_err);
}

TEST(CountMinTest, FromErrorBoundsGeometry) {
  const CountMinSketch cm = CountMinSketch::FromErrorBounds(0.01, 0.01, 1);
  EXPECT_GE(cm.width(), static_cast<uint64_t>(std::exp(1.0) / 0.01));
  EXPECT_GE(cm.depth(), static_cast<uint64_t>(std::log(100.0)));
}

TEST(CountMinTest, BucketOfMatchesEstimatePath) {
  CountMinSketch cm(64, 3, 11);
  cm.Update({123, 7});
  for (uint64_t row = 0; row < 3; ++row) {
    EXPECT_EQ(cm.CounterAt(row, cm.BucketOf(row, 123)), 7);
  }
}

TEST(CountMinTest, DepthOneIsASingleHashedArray) {
  CountMinSketch cm(16, 1, 12);
  cm.Update({1, 5});
  EXPECT_GE(cm.Estimate(1), 5);
}

TEST(CountMinTest, EstimateBatchMatchesScalarEstimates) {
  // The batched query kernel must be bit-identical to per-item
  // Estimate() in both width modes (division reduction and pow2 mask):
  // the server's kPointQueryBatch path rides it.
  for (const WidthMode mode : {WidthMode::kDivision, WidthMode::kPow2}) {
    SCOPED_TRACE(static_cast<int>(mode));
    CountMinSketch cm(1000, 4, 21, mode);
    const auto updates = MakeZipfStream(1 << 14, 1.2, 20000, 5);
    cm.UpdateAll(updates);
    std::vector<uint64_t> items;
    for (uint64_t i = 0; i < 513; ++i) items.push_back(i * 31);  // odd count
    std::vector<int64_t> batch(items.size());
    cm.EstimateBatch(items.data(), items.size(), batch.data());
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_EQ(batch[i], cm.Estimate(items[i])) << "item " << items[i];
    }
  }
}

TEST(CountMinTest, EstimateBatchHandlesEmptyAndSingle) {
  CountMinSketch cm(256, 4, 9);
  cm.Update({5, 3});
  cm.EstimateBatch(nullptr, 0, nullptr);  // must be a no-op, not a crash
  const uint64_t item = 5;
  int64_t out = -1;
  cm.EstimateBatch(&item, 1, &out);
  EXPECT_EQ(out, 3);
}

TEST(CountMinTest, SizeInCounters) {
  EXPECT_EQ(CountMinSketch(100, 7, 1).SizeInCounters(), 700u);
}

// Property sweep: the overestimate-only invariant must hold across widths,
// depths, and stream skews.
class CountMinPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, double>> {
};

TEST_P(CountMinPropertyTest, OverestimateOnlyAndAccuracyScalesWithWidth) {
  const auto [width, depth, alpha] = GetParam();
  const uint64_t seed = width * 31 + depth * 7 + static_cast<uint64_t>(alpha);
  const auto updates = MakeZipfStream(1 << 12, alpha, 20000, seed);
  CountMinSketch cm(width, depth, seed);
  FrequencyOracle oracle;
  cm.UpdateAll(updates);
  oracle.UpdateAll(updates);
  double total_over = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    const int64_t est = cm.Estimate(item);
    ASSERT_GE(est, count);
    total_over += static_cast<double>(est - count);
  }
  // Mean overestimate is at most ~ depth-independent N/width in
  // expectation; allow generous 4x slack for skew.
  const double mean_over =
      total_over / static_cast<double>(oracle.DistinctCount());
  EXPECT_LE(mean_over, 4.0 * 20000.0 / static_cast<double>(width));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, CountMinPropertyTest,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(0.8, 1.1, 1.5)));

}  // namespace
}  // namespace sketch
