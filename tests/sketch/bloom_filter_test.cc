#include "sketch/bloom_filter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1 << 14, 5, 1);
  for (uint64_t k = 0; k < 1000; ++k) bf.Insert(k * 7 + 1);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bf.MayContain(k * 7 + 1)) << "false negative at " << k;
  }
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter bf(1024, 4, 2);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(bf.MayContain(k));
}

TEST(BloomFilterTest, MeasuredFprTracksTheory) {
  const uint64_t keys = 5000;
  BloomFilter bf = BloomFilter::FromFalsePositiveRate(keys, 0.02, 3);
  for (uint64_t k = 0; k < keys; ++k) bf.Insert(k);
  int false_positives = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    false_positives += bf.MayContain(keys + 1 + i);
  }
  const double measured = static_cast<double>(false_positives) / probes;
  EXPECT_LT(measured, 0.04);   // within 2x of target
  EXPECT_GT(measured, 0.005);  // and not suspiciously perfect
  EXPECT_NEAR(measured, bf.TheoreticalFpr(keys), 0.015);
}

TEST(BloomFilterTest, FromFprPicksReasonableGeometry) {
  const BloomFilter bf = BloomFilter::FromFalsePositiveRate(1000, 0.01, 4);
  // 1% FPR needs ~9.6 bits/key and ~7 hashes.
  EXPECT_NEAR(static_cast<double>(bf.num_bits()) / 1000.0, 9.6, 0.5);
  EXPECT_EQ(bf.num_hashes(), 7);
}

TEST(BloomFilterTest, MergeIsUnion) {
  BloomFilter a(4096, 4, 5);
  BloomFilter b(4096, 4, 5);
  a.Insert(1);
  b.Insert(2);
  a.Merge(b);
  EXPECT_TRUE(a.MayContain(1));
  EXPECT_TRUE(a.MayContain(2));
}

TEST(BloomFilterTest, FillRatioGrowsWithInsertions) {
  BloomFilter bf(4096, 4, 6);
  EXPECT_DOUBLE_EQ(bf.FillRatio(), 0.0);
  for (uint64_t k = 0; k < 100; ++k) bf.Insert(k);
  const double after_100 = bf.FillRatio();
  EXPECT_GT(after_100, 0.0);
  for (uint64_t k = 100; k < 1000; ++k) bf.Insert(k);
  EXPECT_GT(bf.FillRatio(), after_100);
}

TEST(BloomFilterTest, HalfFullAtOptimalLoad) {
  // At the FPR-optimal configuration the fill ratio converges to 1/2
  // (up to the rounding of the hash count to an integer, which biases it
  // slightly upward: k = 7 instead of 6.64 here gives ~0.52).
  const uint64_t keys = 20000;
  BloomFilter bf = BloomFilter::FromFalsePositiveRate(keys, 0.01, 7);
  for (uint64_t k = 0; k < keys; ++k) bf.Insert(k);
  EXPECT_NEAR(bf.FillRatio(), 0.52, 0.04);
}

TEST(BloomFilterTest, MoreBitsPerKeyLowerFpr) {
  const uint64_t keys = 2000;
  double prev_fpr = 1.0;
  for (double target : {0.1, 0.01, 0.001}) {
    BloomFilter bf = BloomFilter::FromFalsePositiveRate(keys, target, 8);
    for (uint64_t k = 0; k < keys; ++k) bf.Insert(k);
    int fp = 0;
    const int probes = 100000;
    for (int i = 0; i < probes; ++i) fp += bf.MayContain(keys + 1 + i);
    const double fpr = static_cast<double>(fp) / probes;
    EXPECT_LT(fpr, prev_fpr + 1e-9);
    prev_fpr = fpr;
  }
}

}  // namespace
}  // namespace sketch
