#include "sketch/stream_summary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"
#include "stream/traffic_model.h"

namespace sketch {
namespace {

StreamSummary::Options DefaultOptions() {
  StreamSummary::Options options;
  options.log_universe = 16;
  options.seed = 3;
  return options;
}

TEST(StreamSummaryTest, PointEstimatesTrackTruth) {
  StreamSummary summary(DefaultOptions());
  const auto updates = MakeZipfStream(1 << 16, 1.2, 50000, 1);
  FrequencyOracle oracle;
  summary.UpdateAll(updates);
  oracle.UpdateAll(updates);
  EXPECT_EQ(summary.TotalCount(), 50000);
  for (uint64_t item : oracle.TopK(50)) {
    const double truth = static_cast<double>(oracle.Count(item));
    EXPECT_NEAR(static_cast<double>(summary.EstimateCount(item)), truth,
                0.02 * 50000 + 0.05 * truth)
        << "item " << item;
  }
}

TEST(StreamSummaryTest, HeavyHittersHaveFullRecallAndHighPrecision) {
  StreamSummary summary(DefaultOptions());
  const auto updates = MakeZipfStream(1 << 16, 1.3, 80000, 2);
  FrequencyOracle oracle;
  summary.UpdateAll(updates);
  oracle.UpdateAll(updates);
  const double phi = 0.002;
  const auto truth =
      oracle.ItemsAbove(static_cast<int64_t>(phi * 80000));
  const auto found = summary.HeavyHitters(phi);
  const PrecisionRecall pr = ComputePrecisionRecall(found, truth);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_GE(pr.precision, 0.9);  // CS verification suppresses CM ghosts
}

TEST(StreamSummaryTest, QuantilesAndRangesAreConsistent) {
  StreamSummary summary(DefaultOptions());
  summary.UpdateAll(MakeUniformStream(1 << 16, 60000, 3));
  const uint64_t median = summary.Quantile(0.5);
  EXPECT_NEAR(static_cast<double>(median), (1 << 16) / 2.0,
              0.05 * (1 << 16));
  EXPECT_GE(summary.RangeCount(0, median), 60000 / 2 - 3000);
}

TEST(StreamSummaryTest, F2MatchesOracle) {
  StreamSummary summary(DefaultOptions());
  const auto updates = MakeZipfStream(1 << 14, 1.1, 40000, 4);
  FrequencyOracle oracle;
  summary.UpdateAll(updates);
  oracle.UpdateAll(updates);
  double f2 = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  EXPECT_NEAR(summary.EstimateF2() / f2, 1.0, 0.2);
}

TEST(StreamSummaryTest, ShardedMergeEqualsSingleSummary) {
  const auto part1 = MakeZipfStream(1 << 16, 1.2, 20000, 5);
  const auto part2 = MakeZipfStream(1 << 16, 1.2, 20000, 6);
  StreamSummary a(DefaultOptions());
  StreamSummary b(DefaultOptions());
  StreamSummary whole(DefaultOptions());
  a.UpdateAll(part1);
  b.UpdateAll(part2);
  whole.UpdateAll(part1);
  whole.UpdateAll(part2);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), whole.TotalCount());
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
  for (uint64_t item = 0; item < 200; ++item) {
    EXPECT_EQ(a.EstimateCount(item), whole.EstimateCount(item));
  }
  EXPECT_EQ(a.HeavyHitters(0.001), whole.HeavyHitters(0.001));
}

TEST(StreamSummaryTest, SupportsDeletions) {
  StreamSummary summary(DefaultOptions());
  summary.Update({42, 100});
  summary.Update({42, -100});
  EXPECT_EQ(summary.TotalCount(), 0);
  EXPECT_EQ(summary.EstimateCount(42), 0);
}

TEST(StreamSummaryTest, WorksOnRealisticTraffic) {
  TrafficModelOptions traffic;
  traffic.num_flows = 3000;
  traffic.flow_id_space = 1ULL << 16;
  traffic.max_flow_packets = 1 << 14;
  traffic.seed = 8;
  const TrafficTrace trace = GenerateTrafficTrace(traffic);
  StreamSummary summary(DefaultOptions());
  summary.UpdateAll(trace.packets);
  FrequencyOracle oracle;
  oracle.UpdateAll(trace.packets);
  const double phi = 0.005;
  const auto truth = oracle.ItemsAbove(
      static_cast<int64_t>(phi * static_cast<double>(trace.total_packets)));
  const PrecisionRecall pr =
      ComputePrecisionRecall(summary.HeavyHitters(phi), truth);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(StreamSummaryTest, SizeIsSumOfParts) {
  StreamSummary summary(DefaultOptions());
  EXPECT_GT(summary.SizeInCounters(), 0u);
  // Far smaller than one counter per universe item.
  EXPECT_LT(summary.SizeInCounters(), 1u << 18);
}

}  // namespace
}  // namespace sketch
