// Serialization round-trip tests: the hash state reconstructs from the
// persisted seed, so a deserialized sketch must answer every query
// identically and remain mergeable with live sketches of the same seed.

#include <gtest/gtest.h>

#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(SerializationTest, CountMinRoundTripPreservesEstimates) {
  CountMinSketch original(256, 5, 42);
  original.UpdateAll(MakeZipfStream(1 << 12, 1.1, 10000, 1));
  const CountMinSketch restored =
      CountMinSketch::Deserialize(original.Serialize());
  EXPECT_EQ(restored.width(), original.width());
  EXPECT_EQ(restored.depth(), original.depth());
  EXPECT_EQ(restored.seed(), original.seed());
  for (uint64_t item = 0; item < (1 << 12); ++item) {
    ASSERT_EQ(restored.Estimate(item), original.Estimate(item)) << item;
  }
}

TEST(SerializationTest, CountMinRestoredSketchIsStillUpdatable) {
  CountMinSketch original(64, 3, 7);
  original.Update({5, 10});
  CountMinSketch restored = CountMinSketch::Deserialize(original.Serialize());
  restored.Update({5, 5});
  EXPECT_EQ(restored.Estimate(5), 15);
}

TEST(SerializationTest, CountMinRestoredSketchMergesWithLiveOne) {
  CountMinSketch a(128, 4, 9);
  CountMinSketch b(128, 4, 9);
  a.Update({1, 3});
  b.Update({1, 4});
  CountMinSketch restored = CountMinSketch::Deserialize(a.Serialize());
  restored.Merge(b);
  EXPECT_EQ(restored.Estimate(1), 7);
}

TEST(SerializationTest, CountSketchRoundTripPreservesEstimates) {
  CountSketch original(256, 5, 43);
  original.UpdateAll(MakeTurnstileStream(1 << 10, 1.0, 5000, 0.5, 2));
  const CountSketch restored =
      CountSketch::Deserialize(original.Serialize());
  for (uint64_t item = 0; item < (1 << 10); ++item) {
    ASSERT_EQ(restored.Estimate(item), original.Estimate(item)) << item;
  }
}

TEST(SerializationTest, BloomRoundTripPreservesMembership) {
  BloomFilter original(1 << 12, 5, 44);
  for (uint64_t k = 0; k < 500; ++k) original.Insert(k * 3);
  const BloomFilter restored = BloomFilter::Deserialize(original.Serialize());
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_EQ(restored.MayContain(k), original.MayContain(k)) << k;
  }
  EXPECT_DOUBLE_EQ(restored.FillRatio(), original.FillRatio());
}

TEST(SerializationTest, AmsRoundTripPreservesEstimateAndMerges) {
  AmsSketch original(128, 5, 45);
  original.UpdateAll(MakeZipfStream(1 << 10, 1.2, 4000, 3));
  const AmsSketch restored = AmsSketch::Deserialize(original.Serialize());
  EXPECT_EQ(restored.width(), original.width());
  EXPECT_EQ(restored.depth(), original.depth());
  EXPECT_EQ(restored.seed(), original.seed());
  EXPECT_DOUBLE_EQ(restored.EstimateF2(), original.EstimateF2());

  AmsSketch live(128, 5, 45);
  live.Update({1, 2});
  AmsSketch merged = AmsSketch::Deserialize(original.Serialize());
  merged.Merge(live);
  EXPECT_EQ(merged.Serialize().size(), original.Serialize().size());
}

// MemoryFootprintBytes() must track reality: it covers everything
// Serialize() persists (so it is never smaller than the buffer) plus the
// object body, hashers, and container slack — bounded here by a fixed
// allowance so the accounting cannot silently drift from the actual
// allocations.
template <typename S>
void ExpectFootprintTracksSerializedSize(const S& sketch) {
  constexpr uint64_t kOverheadSlack = 4096;
  const uint64_t footprint = sketch.MemoryFootprintBytes();
  const uint64_t serialized = sketch.Serialize().size();
  EXPECT_GE(footprint, serialized);
  EXPECT_LE(footprint, serialized + kOverheadSlack);
}

TEST(SerializationTest, FootprintTracksSerializedSize) {
  CountMinSketch cm(256, 5, 42);
  cm.UpdateAll(MakeZipfStream(1 << 12, 1.1, 10000, 1));
  ExpectFootprintTracksSerializedSize(cm);

  CountSketch cs(256, 5, 43);
  cs.UpdateAll(MakeZipfStream(1 << 10, 1.0, 5000, 2));
  ExpectFootprintTracksSerializedSize(cs);

  BloomFilter bf(1 << 12, 5, 44);
  for (uint64_t k = 0; k < 500; ++k) bf.Insert(k * 3);
  ExpectFootprintTracksSerializedSize(bf);

  AmsSketch ams(128, 5, 45);
  ams.UpdateAll(MakeZipfStream(1 << 10, 1.2, 4000, 3));
  ExpectFootprintTracksSerializedSize(ams);
}

TEST(SerializationTest, BufferSizesAreExact) {
  CountMinSketch cm(10, 3, 1);
  EXPECT_EQ(cm.Serialize().size(), 32u + 30u * 8u);
  BloomFilter bf(128, 2, 1);
  EXPECT_EQ(bf.Serialize().size(), 32u + 2u * 8u);  // 128 bits = 2 words
}

TEST(SerializationDeathTest, WrongMagicAborts) {
  CountMinSketch cm(8, 2, 1);
  std::vector<uint8_t> bytes = cm.Serialize();
  bytes[0] ^= 0xff;
  EXPECT_DEATH(CountMinSketch::Deserialize(bytes), "not a CountMinSketch");
}

TEST(SerializationDeathTest, TruncatedBufferAborts) {
  CountSketch cs(8, 2, 1);
  std::vector<uint8_t> bytes = cs.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_DEATH(CountSketch::Deserialize(bytes),
               "buffer size does not match geometry");
}

TEST(SerializationDeathTest, CrossTypeBufferAborts) {
  BloomFilter bf(64, 2, 1);
  EXPECT_DEATH(CountMinSketch::Deserialize(bf.Serialize()),
               "not a CountMinSketch");
}

}  // namespace
}  // namespace sketch
