// Tests for sketched inner-product / join-size estimation [CM04 §4.2]:
// the linear-sketch view makes <x, y> estimable from two sketches alone.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

int64_t ExactInnerProduct(const FrequencyOracle& a,
                          const FrequencyOracle& b) {
  int64_t total = 0;
  for (const auto& [item, count] : a.counts()) {
    total += count * b.Count(item);
  }
  return total;
}

struct JoinInstance {
  FrequencyOracle oracle_r, oracle_s;
  std::vector<StreamUpdate> stream_r, stream_s;
  int64_t exact = 0;
};

JoinInstance MakeJoin(uint64_t universe, double alpha, uint64_t len,
                      uint64_t seed) {
  JoinInstance inst;
  // Same key domain for both relations (no id shuffle): the heads align,
  // as in a real equi-join over a shared key distribution.
  inst.stream_r = MakeZipfStream(universe, alpha, len, seed, false);
  inst.stream_s = MakeZipfStream(universe, alpha, len, seed + 1, false);
  inst.oracle_r.UpdateAll(inst.stream_r);
  inst.oracle_s.UpdateAll(inst.stream_s);
  inst.exact = ExactInnerProduct(inst.oracle_r, inst.oracle_s);
  return inst;
}

TEST(CountMinInnerProductTest, NeverUnderestimatesJoinSize) {
  const JoinInstance join = MakeJoin(1 << 14, 1.2, 30000, 1);
  CountMinSketch r(4096, 5, 7), s(4096, 5, 7);
  r.UpdateAll(join.stream_r);
  s.UpdateAll(join.stream_s);
  const int64_t estimate = r.EstimateInnerProduct(s);
  EXPECT_GE(estimate, join.exact);
}

TEST(CountMinInnerProductTest, ErrorBoundedByL1Product) {
  const JoinInstance join = MakeJoin(1 << 14, 1.2, 30000, 2);
  CountMinSketch r(8192, 5, 8), s(8192, 5, 8);
  r.UpdateAll(join.stream_r);
  s.UpdateAll(join.stream_s);
  const int64_t estimate = r.EstimateInnerProduct(s);
  // Error <= (e/width)*||x||_1*||y||_1 w.h.p.; allow 4x slack.
  const double bound = 4.0 * std::exp(1.0) / 8192.0 * 30000.0 * 30000.0;
  EXPECT_LE(estimate - join.exact, bound);
}

TEST(CountMinInnerProductTest, WiderSketchTightensEstimate) {
  const JoinInstance join = MakeJoin(1 << 12, 1.1, 20000, 3);
  int64_t prev_overshoot = -1;
  for (uint64_t width : {256u, 1024u, 4096u}) {
    CountMinSketch r(width, 5, 9), s(width, 5, 9);
    r.UpdateAll(join.stream_r);
    s.UpdateAll(join.stream_s);
    const int64_t overshoot = r.EstimateInnerProduct(s) - join.exact;
    EXPECT_GE(overshoot, 0);
    if (prev_overshoot >= 0) {
      EXPECT_LE(overshoot, prev_overshoot);
    }
    prev_overshoot = overshoot;
  }
}

TEST(CountSketchInnerProductTest, MedianAcrossSeedsTracksTruth) {
  // The per-row estimator is unbiased but heavy-tailed on skewed streams
  // (a collision of two head items adds a huge +- cross term), so the
  // sample mean converges very slowly — concentrate with the median, as
  // the estimator itself does across rows.
  const JoinInstance join = MakeJoin(1 << 12, 1.1, 10000, 4);
  std::vector<double> ratios;
  const int seeds = 60;
  for (int seed = 0; seed < seeds; ++seed) {
    CountSketch r(512, 1, 100 + seed), s(512, 1, 100 + seed);
    r.UpdateAll(join.stream_r);
    s.UpdateAll(join.stream_s);
    ratios.push_back(static_cast<double>(r.EstimateInnerProduct(s)) /
                     static_cast<double>(join.exact));
  }
  std::nth_element(ratios.begin(), ratios.begin() + seeds / 2, ratios.end());
  EXPECT_NEAR(ratios[seeds / 2], 1.0, 0.1);
}

TEST(CountSketchInnerProductTest, CloseToExactWithAmpleWidth) {
  const JoinInstance join = MakeJoin(1 << 12, 1.3, 30000, 5);
  CountSketch r(1 << 14, 7, 11), s(1 << 14, 7, 11);
  r.UpdateAll(join.stream_r);
  s.UpdateAll(join.stream_s);
  const auto estimate = static_cast<double>(r.EstimateInnerProduct(s));
  EXPECT_NEAR(estimate / static_cast<double>(join.exact), 1.0, 0.05);
}

TEST(CountSketchInnerProductTest, SelfInnerProductEstimatesF2) {
  const auto updates = MakeZipfStream(1 << 12, 1.1, 20000, 6);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  double f2 = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  CountSketch cs(1 << 13, 7, 12);
  cs.UpdateAll(updates);
  EXPECT_NEAR(static_cast<double>(cs.EstimateInnerProduct(cs)) / f2, 1.0,
              0.05);
}

TEST(InnerProductTest, DisjointStreamsGiveNearZero) {
  // Items of R in [0, 2^10), items of S in [2^10, 2^11): exact join 0.
  auto r_updates = MakeUniformStream(1 << 10, 5000, 7);
  auto s_updates = MakeUniformStream(1 << 10, 5000, 8);
  for (StreamUpdate& u : s_updates) u.item += 1 << 10;
  CountSketch r(4096, 7, 13), s(4096, 7, 13);
  r.UpdateAll(r_updates);
  s.UpdateAll(s_updates);
  EXPECT_LT(std::abs(r.EstimateInnerProduct(s)), 5000 * 5000 / 1000);
}

}  // namespace
}  // namespace sketch
