#include "sketch/ams_sketch.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

double ExactF2(const FrequencyOracle& oracle) {
  double f2 = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  return f2;
}

TEST(AmsSketchTest, SingleItemF2Exact) {
  AmsSketch ams(64, 5, 1);
  ams.Update({3, 10});
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 100.0);
}

TEST(AmsSketchTest, EstimatesF2WithinRelativeError) {
  const auto updates = MakeZipfStream(1 << 12, 1.1, 50000, 2);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  const double truth = ExactF2(oracle);
  AmsSketch ams(512, 7, 2);
  ams.UpdateAll(updates);
  EXPECT_NEAR(ams.EstimateF2() / truth, 1.0, 0.15);
}

TEST(AmsSketchTest, EstimateIsUnbiasedOverSeeds) {
  FrequencyOracle oracle;
  const auto updates = MakeZipfStream(256, 1.0, 2000, 3);
  oracle.UpdateAll(updates);
  const double truth = ExactF2(oracle);
  double sum = 0.0;
  const int seeds = 200;
  for (int s = 0; s < seeds; ++s) {
    AmsSketch ams(16, 1, 100 + s);  // single row: the raw estimator
    ams.UpdateAll(updates);
    sum += ams.EstimateF2();
  }
  EXPECT_NEAR(sum / seeds / truth, 1.0, 0.1);
}

TEST(AmsSketchTest, DeletionsCancel) {
  AmsSketch ams(128, 5, 4);
  const auto updates = MakeZipfStream(100, 1.0, 1000, 4);
  ams.UpdateAll(updates);
  for (const StreamUpdate& u : updates) ams.Update({u.item, -u.delta});
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 0.0);
}

TEST(AmsSketchTest, MergeEqualsUnion) {
  const auto part1 = MakeZipfStream(500, 1.0, 3000, 5);
  const auto part2 = MakeZipfStream(500, 1.0, 3000, 6);
  AmsSketch a(256, 5, 7);
  AmsSketch b(256, 5, 7);
  AmsSketch whole(256, 5, 7);
  a.UpdateAll(part1);
  b.UpdateAll(part2);
  whole.UpdateAll(part1);
  whole.UpdateAll(part2);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(AmsSketchTest, WiderSketchReducesVariance) {
  const auto updates = MakeZipfStream(1 << 10, 1.0, 20000, 8);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  const double truth = ExactF2(oracle);
  double narrow_sse = 0.0, wide_sse = 0.0;
  for (int s = 0; s < 30; ++s) {
    AmsSketch narrow(8, 1, 500 + s);
    AmsSketch wide(256, 1, 500 + s);
    narrow.UpdateAll(updates);
    wide.UpdateAll(updates);
    narrow_sse += std::pow(narrow.EstimateF2() - truth, 2);
    wide_sse += std::pow(wide.EstimateF2() - truth, 2);
  }
  EXPECT_LT(wide_sse, narrow_sse);
}

}  // namespace
}  // namespace sketch
