#include "sketch/counter_braids.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(SolveBraidTest, SingleVariableSingleCounter) {
  const BraidDecodeOutput out = SolveBraid({{0}}, {7}, 10);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.values[0], 7u);
}

TEST(SolveBraidTest, TwoVariablesDisambiguatedByPrivateCounters) {
  // v0 in counters {0,1}, v1 in counters {1,2}: totals 3, 8, 5.
  const BraidDecodeOutput out = SolveBraid({{0, 1}, {1, 2}}, {3, 8, 5}, 20);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.values[0], 3u);
  EXPECT_EQ(out.values[1], 5u);
}

TEST(SolveBraidTest, UnderdeterminedSystemReportsInexact) {
  // Two variables share both counters: infinitely many solutions.
  const BraidDecodeOutput out = SolveBraid({{0, 1}, {0, 1}}, {5, 5}, 20);
  EXPECT_FALSE(out.exact);
}

TEST(SolveBraidTest, ChainPropagatesInformation) {
  // v0:{0,1}, v1:{1,2}, v2:{2,3}: true values 2, 4, 6.
  const BraidDecodeOutput out =
      SolveBraid({{0, 1}, {1, 2}, {2, 3}}, {2, 6, 10, 6}, 30);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.values[0], 2u);
  EXPECT_EQ(out.values[1], 4u);
  EXPECT_EQ(out.values[2], 6u);
}

TEST(SolveBraidTest, ZeroTotalsForceZeroVariables) {
  const BraidDecodeOutput out = SolveBraid({{0, 1}, {1, 2}}, {0, 0, 0}, 10);
  EXPECT_TRUE(out.exact);
  EXPECT_EQ(out.values[0], 0u);
  EXPECT_EQ(out.values[1], 0u);
}

class CounterBraidsTest : public ::testing::Test {
 protected:
  static CounterBraids::Options AmpleOptions() {
    CounterBraids::Options options;
    options.layer1_counters = 1 << 13;
    options.layer1_bits = 8;
    options.layer2_counters = 1 << 10;
    options.seed = 3;
    return options;
  }
};

TEST_F(CounterBraidsTest, ExactRecoveryOfSparseFlows) {
  CounterBraids braids(AmpleOptions());
  std::unordered_map<uint64_t, uint64_t> truth;
  std::vector<uint64_t> flows;
  for (uint64_t f = 0; f < 500; ++f) {
    const uint64_t flow_id = f * 977 + 13;
    const uint64_t count = 1 + (f % 97);
    braids.Update(flow_id, count);
    truth[flow_id] = count;
    flows.push_back(flow_id);
  }
  const CounterBraids::DecodeResult decoded = braids.Decode(flows);
  EXPECT_TRUE(decoded.exact);
  for (const auto& [flow, count] : truth) {
    EXPECT_EQ(decoded.counts.at(flow), count) << "flow " << flow;
  }
}

TEST_F(CounterBraidsTest, OverflowPathExercisedAndStillExact) {
  CounterBraids::Options options = AmpleOptions();
  options.layer1_bits = 4;  // counters saturate at 15: overflows guaranteed
  CounterBraids braids(options);
  std::vector<uint64_t> flows;
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t f = 0; f < 300; ++f) {
    const uint64_t flow_id = f + 1;
    const uint64_t count = 50 + 31 * f % 1000;  // far above 15
    braids.Update(flow_id, count);
    truth[flow_id] = count;
    flows.push_back(flow_id);
  }
  const CounterBraids::DecodeResult decoded = braids.Decode(flows);
  EXPECT_TRUE(decoded.exact);
  for (const auto& [flow, count] : truth) {
    EXPECT_EQ(decoded.counts.at(flow), count);
  }
}

TEST_F(CounterBraidsTest, ZipfTrafficRecoveredExactly) {
  CounterBraids braids(AmpleOptions());
  const auto updates = MakeZipfStream(1 << 16, 1.2, 30000, 5);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    braids.Update(u.item, static_cast<uint64_t>(u.delta));
    oracle.Update(u);
  }
  std::vector<uint64_t> flows;
  for (const auto& [flow, count] : oracle.counts()) flows.push_back(flow);
  const CounterBraids::DecodeResult decoded = braids.Decode(flows);
  EXPECT_TRUE(decoded.exact);
  for (const auto& [flow, count] : oracle.counts()) {
    EXPECT_EQ(decoded.counts.at(flow), static_cast<uint64_t>(count));
  }
}

TEST_F(CounterBraidsTest, UnseenFlowsDecodeToZero) {
  CounterBraids braids(AmpleOptions());
  braids.Update(1, 10);
  const CounterBraids::DecodeResult decoded = braids.Decode({1, 2, 3});
  EXPECT_EQ(decoded.counts.at(1), 10u);
  EXPECT_EQ(decoded.counts.at(2), 0u);
  EXPECT_EQ(decoded.counts.at(3), 0u);
}

TEST_F(CounterBraidsTest, OverloadedBraidReportsInexact) {
  CounterBraids::Options options;
  options.layer1_counters = 64;  // far too small for 2000 flows
  options.layer2_counters = 32;
  options.seed = 7;
  CounterBraids braids(options);
  std::vector<uint64_t> flows;
  for (uint64_t f = 0; f < 2000; ++f) {
    braids.Update(f, 1 + f % 5);
    flows.push_back(f);
  }
  const CounterBraids::DecodeResult decoded = braids.Decode(flows);
  EXPECT_FALSE(decoded.exact);
}

TEST_F(CounterBraidsTest, SpaceIsBelowExactPerFlowCounters) {
  // 8192 flows at 64 bits each would be 524288 bits; the braid with the
  // default geometry is smaller.
  CounterBraids braids(AmpleOptions());
  EXPECT_LT(braids.SizeInBits(), 8192ULL * 64ULL);
}

TEST_F(CounterBraidsTest, DecodeIsRepeatable) {
  CounterBraids braids(AmpleOptions());
  for (uint64_t f = 0; f < 100; ++f) braids.Update(f, f + 1);
  std::vector<uint64_t> flows;
  for (uint64_t f = 0; f < 100; ++f) flows.push_back(f);
  const auto a = braids.Decode(flows);
  const auto b = braids.Decode(flows);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
}  // namespace sketch
