#include "sketch/spectral_bloom.h"

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(SpectralBloomTest, MultiplicityOfSingleKey) {
  SpectralBloomFilter sbf(1024, 4, 1);
  for (int i = 0; i < 9; ++i) sbf.Update(5, 1);
  EXPECT_GE(sbf.Estimate(5), 9);
}

TEST(SpectralBloomTest, AbsentKeyEstimatesZeroInSparseTable) {
  SpectralBloomFilter sbf(1 << 14, 4, 2);
  for (uint64_t k = 0; k < 50; ++k) sbf.Update(k, 1);
  int nonzero = 0;
  for (uint64_t k = 1000; k < 2000; ++k) nonzero += (sbf.Estimate(k) > 0);
  // 50 keys in 16k counters: virtually no collisions.
  EXPECT_LE(nonzero, 5);
}

TEST(SpectralBloomTest, NeverUnderestimates) {
  const auto updates = MakeZipfStream(1 << 10, 1.1, 10000, 3);
  SpectralBloomFilter sbf(2048, 4, 3);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    sbf.Update(u);
    oracle.Update(u);
  }
  for (const auto& [item, count] : oracle.counts()) {
    EXPECT_GE(sbf.Estimate(item), count) << "item " << item;
  }
}

TEST(SpectralBloomTest, DeletionRestoresAbsence) {
  SpectralBloomFilter sbf(4096, 4, 4);
  sbf.Update(77, 3);
  EXPECT_TRUE(sbf.MayContain(77));
  sbf.Update(77, -3);
  EXPECT_FALSE(sbf.MayContain(77));
}

TEST(SpectralBloomTest, MembershipSemanticsMatchCountingBloom) {
  SpectralBloomFilter sbf(4096, 3, 5);
  sbf.Update(1, 1);
  sbf.Update(2, 2);
  EXPECT_TRUE(sbf.MayContain(1));
  EXPECT_TRUE(sbf.MayContain(2));
  sbf.Update(1, -1);
  EXPECT_FALSE(sbf.MayContain(1));
  EXPECT_TRUE(sbf.MayContain(2));
}

}  // namespace
}  // namespace sketch
