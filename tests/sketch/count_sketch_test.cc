#include "sketch/count_sketch.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(CountSketchTest, SingleItemExact) {
  CountSketch cs(128, 5, 1);
  for (int i = 0; i < 10; ++i) cs.Update({42, 1});
  EXPECT_EQ(cs.Estimate(42), 10);
}

TEST(CountSketchTest, RowEstimatesAreUnbiasedAcrossSeeds) {
  // E[row estimate] = true count: average over many independent sketches.
  const int seeds = 600;
  double sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    CountSketch cs(16, 1, 1000 + s);  // narrow: lots of collisions
    cs.Update({1, 50});
    cs.Update({2, 30});
    cs.Update({3, 20});
    sum += static_cast<double>(cs.EstimateRow(0, 1));
  }
  // Colliding mass is +-30 or +-20 per collision; std of the mean is
  // modest with 600 seeds.
  EXPECT_NEAR(sum / seeds, 50.0, 4.0);
}

TEST(CountSketchTest, SupportsNegativeFrequencies) {
  // Unlike Count-Min's min estimator, Count-Sketch handles general
  // turnstile streams where counts can be negative.
  CountSketch cs(256, 5, 2);
  cs.Update({7, -25});
  EXPECT_EQ(cs.Estimate(7), -25);
}

TEST(CountSketchTest, ErrorBoundedByL2Tail) {
  const auto updates = MakeZipfStream(1 << 12, 1.3, 50000, 3);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  double f2 = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  const double l2 = std::sqrt(f2);
  const uint64_t width = 1024;
  CountSketch cs(width, 5, 3);
  cs.UpdateAll(updates);
  // Per-item error should be O(l2/sqrt(width)) w.h.p.; check the 99th
  // percentile stays within a small constant of that.
  const double bound = 8.0 * l2 / std::sqrt(static_cast<double>(width));
  int violations = 0, total = 0;
  for (const auto& [item, count] : oracle.counts()) {
    ++total;
    if (std::abs(static_cast<double>(cs.Estimate(item) - count)) > bound) {
      ++violations;
    }
  }
  EXPECT_LE(violations, total / 100 + 3);
}

TEST(CountSketchTest, MergeEqualsConcatenatedStream) {
  const auto part1 = MakeZipfStream(1000, 1.0, 5000, 4);
  const auto part2 = MakeZipfStream(1000, 1.0, 5000, 5);
  CountSketch a(128, 5, 6);
  CountSketch b(128, 5, 6);
  CountSketch whole(128, 5, 6);
  a.UpdateAll(part1);
  b.UpdateAll(part2);
  whole.UpdateAll(part1);
  whole.UpdateAll(part2);
  a.Merge(b);
  for (uint64_t item = 0; item < 1000; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
}

TEST(CountSketchTest, DeletionsCancelExactly) {
  CountSketch cs(64, 3, 7);
  const auto updates = MakeZipfStream(100, 1.0, 1000, 7);
  cs.UpdateAll(updates);
  for (const StreamUpdate& u : updates) cs.Update({u.item, -u.delta});
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(cs.Estimate(item), 0);
  }
}

TEST(CountSketchTest, FromErrorBoundsHasOddDepth) {
  const CountSketch cs = CountSketch::FromErrorBounds(0.1, 0.05, 8);
  EXPECT_EQ(cs.depth() % 2, 1u);
  EXPECT_GE(cs.width(), static_cast<uint64_t>(3.0 / (0.1 * 0.1)));
}

TEST(CountSketchTest, SignAndBucketConsistentWithCounters) {
  CountSketch cs(64, 3, 9);
  cs.Update({55, 11});
  for (uint64_t row = 0; row < 3; ++row) {
    const int64_t counter = cs.CounterAt(row, cs.BucketOf(row, 55));
    EXPECT_EQ(counter, cs.SignOf(row, 55) * 11);
  }
}

TEST(CountSketchTest, EstimateBatchMatchesScalarEstimates) {
  // Median-of-rows per item, computed by the batched kernel, must agree
  // bit-for-bit with Estimate() in both width modes — including negative
  // frequencies, where the signed row estimates exercise the sign hash.
  for (const WidthMode mode : {WidthMode::kDivision, WidthMode::kPow2}) {
    SCOPED_TRACE(static_cast<int>(mode));
    CountSketch cs(1000, 5, 17, mode);
    const auto updates = MakeZipfStream(1 << 14, 1.2, 20000, 7);
    cs.UpdateAll(updates);
    for (uint64_t i = 0; i < 500; ++i) cs.Update({i * 3, -2});
    std::vector<uint64_t> items;
    for (uint64_t i = 0; i < 257; ++i) items.push_back(i * 29);
    std::vector<int64_t> batch(items.size());
    cs.EstimateBatch(items.data(), items.size(), batch.data());
    for (std::size_t i = 0; i < items.size(); ++i) {
      ASSERT_EQ(batch[i], cs.Estimate(items[i])) << "item " << items[i];
    }
  }
}

TEST(CountSketchTest, MedianBeatsWorstRow) {
  // With depth 5, the median estimate should track the truth better than
  // the worst row on a heavy-collision configuration.
  const auto updates = MakeZipfStream(1 << 12, 1.1, 30000, 10);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  CountSketch cs(64, 5, 10);
  cs.UpdateAll(updates);
  double median_err = 0.0, worst_row_err = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    median_err +=
        std::abs(static_cast<double>(cs.Estimate(item) - count));
    double worst = 0.0;
    for (uint64_t row = 0; row < 5; ++row) {
      worst = std::max(
          worst, std::abs(static_cast<double>(cs.EstimateRow(row, item) -
                                              count)));
    }
    worst_row_err += worst;
  }
  EXPECT_LT(median_err, worst_row_err);
}

// Property sweep: error decays as width grows, for several depths/skews.
class CountSketchPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t, double>> {
};

TEST_P(CountSketchPropertyTest, MeanAbsoluteErrorScalesWithWidth) {
  const auto [width, depth, alpha] = GetParam();
  const uint64_t seed = width * 13 + depth * 3 + static_cast<uint64_t>(alpha);
  const auto updates = MakeZipfStream(1 << 12, alpha, 20000, seed);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  double f2 = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  CountSketch cs(width, depth, seed);
  cs.UpdateAll(updates);
  double total_err = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    total_err += std::abs(static_cast<double>(cs.Estimate(item) - count));
  }
  const double mean_err =
      total_err / static_cast<double>(oracle.DistinctCount());
  // Typical error is ~ sqrt(F2/width); allow 4x.
  EXPECT_LE(mean_err, 4.0 * std::sqrt(f2 / static_cast<double>(width)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, CountSketchPropertyTest,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(0.8, 1.1, 1.5)));

}  // namespace
}  // namespace sketch
