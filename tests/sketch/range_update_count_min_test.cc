#include "sketch/range_update_count_min.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

TEST(RangeUpdateCountMinTest, SingleRangeUpdateHitsEveryItemInside) {
  RangeUpdateCountMin sketch(10, 512, 4, 1);
  sketch.UpdateRange(100, 199, 7);
  EXPECT_EQ(sketch.TotalMass(), 700);
  for (uint64_t item : {100u, 150u, 199u}) {
    EXPECT_GE(sketch.Estimate(item), 7) << item;
  }
  // Outside the range: (over)estimates come only from hash collisions.
  EXPECT_LE(sketch.Estimate(99), 7);
  EXPECT_LE(sketch.Estimate(200), 7);
}

TEST(RangeUpdateCountMinTest, PointUpdateIsRangeOfOne) {
  RangeUpdateCountMin sketch(10, 512, 4, 2);
  sketch.Update(42, 5);
  EXPECT_GE(sketch.Estimate(42), 5);
  EXPECT_EQ(sketch.TotalMass(), 5);
}

TEST(RangeUpdateCountMinTest, FullUniverseRangeIsOneNode) {
  RangeUpdateCountMin sketch(8, 64, 3, 3);
  sketch.UpdateRange(0, 255, 2);
  for (uint64_t item = 0; item < 256; item += 37) {
    EXPECT_GE(sketch.Estimate(item), 2);
  }
}

TEST(RangeUpdateCountMinTest, NeverUnderestimatesAgainstOracle) {
  const int log_n = 12;
  RangeUpdateCountMin sketch(log_n, 1024, 4, 4);
  std::vector<int64_t> truth(1 << log_n, 0);
  Xoshiro256StarStar rng(4);
  for (int u = 0; u < 300; ++u) {
    uint64_t lo = rng.NextBounded(1 << log_n);
    uint64_t hi = rng.NextBounded(1 << log_n);
    if (lo > hi) std::swap(lo, hi);
    const int64_t delta = 1 + static_cast<int64_t>(rng.NextBounded(5));
    sketch.UpdateRange(lo, hi, delta);
    for (uint64_t i = lo; i <= hi; ++i) truth[i] += delta;
  }
  for (uint64_t item = 0; item < (1 << log_n); item += 13) {
    ASSERT_GE(sketch.Estimate(item), truth[item]) << "item " << item;
  }
}

TEST(RangeUpdateCountMinTest, EstimatesTrackTruthWithinBound) {
  const int log_n = 12;
  const uint64_t width = 2048;
  RangeUpdateCountMin sketch(log_n, width, 4, 5);
  std::vector<int64_t> truth(1 << log_n, 0);
  Xoshiro256StarStar rng(5);
  int64_t mass = 0;
  for (int u = 0; u < 200; ++u) {
    uint64_t lo = rng.NextBounded(1 << log_n);
    uint64_t hi = std::min<uint64_t>((1 << log_n) - 1,
                                     lo + rng.NextBounded(256));
    sketch.UpdateRange(lo, hi, 3);
    for (uint64_t i = lo; i <= hi; ++i) truth[i] += 3;
    mass += 3 * static_cast<int64_t>(hi - lo + 1);
  }
  EXPECT_EQ(sketch.TotalMass(), mass);
  // Overestimate bounded by ~ e/width * (canonical-node mass) per level;
  // use a generous levels * e * mass / width budget.
  const double bound = 4.0 * (log_n + 1) * std::exp(1.0) *
                       static_cast<double>(mass) / width;
  for (uint64_t item = 0; item < (1 << log_n); item += 11) {
    ASSERT_LE(static_cast<double>(sketch.Estimate(item) - truth[item]),
              bound);
  }
}

TEST(RangeUpdateCountMinTest, SupportsNegativeDeltasStrictTurnstile) {
  RangeUpdateCountMin sketch(8, 256, 4, 6);
  sketch.UpdateRange(10, 20, 5);
  sketch.UpdateRange(10, 20, -5);
  EXPECT_EQ(sketch.TotalMass(), 0);
  for (uint64_t item = 10; item <= 20; ++item) {
    EXPECT_EQ(sketch.Estimate(item), 0);
  }
}

TEST(RangeUpdateCountMinTest, ReversedRangeAborts) {
  RangeUpdateCountMin sketch(8, 64, 2, 7);
  EXPECT_DEATH(sketch.UpdateRange(20, 10, 1), "");
}

}  // namespace
}  // namespace sketch
