#include "sketch/dyadic_count_min.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(DyadicCountMinTest, PointEstimateMatchesLeafCountMin) {
  DyadicCountMin dcm(10, 256, 4, 1);
  for (int i = 0; i < 25; ++i) dcm.Update({77, 1});
  EXPECT_GE(dcm.Estimate(77), 25);
}

TEST(DyadicCountMinTest, HeavyHittersFindsAllTrueHeavyItems) {
  const int log_n = 16;
  const auto updates = MakeZipfStream(1ULL << log_n, 1.3, 50000, 2);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  DyadicCountMin dcm(log_n, 2048, 4, 2);
  dcm.UpdateAll(updates);

  const int64_t threshold = 500;  // phi = 1%
  const auto truth = oracle.ItemsAbove(threshold);
  const auto found = dcm.HeavyHitters(threshold);
  const PrecisionRecall pr = ComputePrecisionRecall(found, truth);
  // Count-Min never underestimates => recall 1 (every heavy item survives
  // the descent); precision may dip slightly from overestimates.
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_GE(pr.precision, 0.5);
}

TEST(DyadicCountMinTest, NoHeavyHittersInUniformStream) {
  const int log_n = 14;
  const auto updates = MakeUniformStream(1ULL << log_n, 20000, 3);
  DyadicCountMin dcm(log_n, 1024, 4, 3);
  dcm.UpdateAll(updates);
  // Uniform stream: ~1.2 occurrences per item; nothing close to 200.
  EXPECT_TRUE(dcm.HeavyHitters(200).empty());
}

TEST(DyadicCountMinTest, SingleItemStreamYieldsSingleHitter) {
  DyadicCountMin dcm(12, 512, 4, 4);
  dcm.UpdateAll(MakeSingleItemStream(1234, 5000));
  const auto found = dcm.HeavyHitters(4000);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], 1234u);
}

TEST(DyadicCountMinTest, RangeSumOverestimatesButTracksTruth) {
  const int log_n = 12;
  const auto updates = MakeZipfStream(1ULL << log_n, 1.0, 30000, 5, false);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);
  DyadicCountMin dcm(log_n, 1024, 4, 5);
  dcm.UpdateAll(updates);

  for (const auto& [lo, hi] :
       std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 100}, {5, 5}, {1000, 4000}, {0, (1ULL << log_n) - 1}}) {
    int64_t truth = 0;
    for (uint64_t i = lo; i <= hi; ++i) truth += oracle.Count(i);
    const int64_t est = dcm.RangeSum(lo, hi);
    EXPECT_GE(est, truth) << "[" << lo << ", " << hi << "]";
    EXPECT_LE(est, truth + 30000 / 10) << "[" << lo << ", " << hi << "]";
  }
}

TEST(DyadicCountMinTest, FullRangeEqualsTotal) {
  DyadicCountMin dcm(10, 256, 4, 6);
  const auto updates = MakeZipfStream(1ULL << 10, 1.0, 5000, 6, false);
  dcm.UpdateAll(updates);
  EXPECT_EQ(dcm.TotalCount(), 5000);
  EXPECT_GE(dcm.RangeSum(0, (1ULL << 10) - 1), 5000);
}

TEST(DyadicCountMinTest, QuantilesAreMonotoneAndBracketed) {
  const int log_n = 12;
  // Uniform over the universe => q-quantile ~ q * universe.
  const auto updates = MakeUniformStream(1ULL << log_n, 50000, 7);
  DyadicCountMin dcm(log_n, 1024, 4, 7);
  dcm.UpdateAll(updates);
  uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const uint64_t x = dcm.Quantile(q);
    EXPECT_GE(x, prev);  // monotone in q
    EXPECT_NEAR(static_cast<double>(x), q * (1ULL << log_n),
                0.05 * (1ULL << log_n))
        << "q=" << q;
    prev = x;
  }
}

TEST(DyadicCountMinTest, MedianOfPointMass) {
  DyadicCountMin dcm(10, 256, 4, 8);
  dcm.UpdateAll(MakeSingleItemStream(300, 1000));
  EXPECT_EQ(dcm.Quantile(0.5), 300u);
}

TEST(DyadicCountMinTest, SupportsDeletions) {
  DyadicCountMin dcm(10, 256, 4, 9);
  dcm.Update({5, 10});
  dcm.Update({5, -10});
  EXPECT_EQ(dcm.TotalCount(), 0);
  EXPECT_TRUE(dcm.HeavyHitters(5).empty());
}

TEST(DyadicCountMinTest, SizeAccountsAllLevels) {
  DyadicCountMin dcm(8, 100, 2, 10);
  EXPECT_EQ(dcm.SizeInCounters(), 8u * 100u * 2u);
}

}  // namespace
}  // namespace sketch
