// WidthMode::kPow2 property tests: the rounded-width mask mode must agree
// bucket-for-bucket with a division-mode sketch of the same (power-of-two)
// width, round-trip through the v2 serialization format, refuse to merge
// or inner-product across modes, and abort on malformed v2 buffers —
// while division-mode buffers stay byte-identical to the v1 layout.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/width_mode.h"
#include "stream/generators.h"
#include "stream/update.h"

namespace sketch {
namespace {

std::vector<StreamUpdate> TestStream(uint64_t seed) {
  return MakeTurnstileStream(1 << 16, 1.1, 20000, /*delete_fraction=*/0.25,
                             seed);
}

TEST(WidthModeTest, ApplyWidthModeRoundsUpOnlyInPow2) {
  EXPECT_EQ(ApplyWidthMode(WidthMode::kDivision, 1000), 1000u);
  EXPECT_EQ(ApplyWidthMode(WidthMode::kPow2, 1000), 1024u);
  EXPECT_EQ(ApplyWidthMode(WidthMode::kPow2, 1024), 1024u);
  EXPECT_EQ(ApplyWidthMode(WidthMode::kPow2, 1), 1u);
  EXPECT_EQ(ApplyWidthMode(WidthMode::kPow2, (1ULL << 40) + 1),
            1ULL << 41);
  EXPECT_EQ(WidthModeMask(WidthMode::kDivision, 1000), 0u);
  EXPECT_EQ(WidthModeMask(WidthMode::kPow2, 1024), 1023u);
}

TEST(WidthModeTest, WidthModeNames) {
  EXPECT_STREQ(WidthModeName(WidthMode::kDivision), "division");
  EXPECT_STREQ(WidthModeName(WidthMode::kPow2), "pow2");
}

// At an already-power-of-two width, division mode and pow2 mode hash every
// key to the same bucket (FastDiv64::Mod == mask there), so the counter
// arrays must match exactly; only the serialized header differs.
TEST(WidthModeTest, Pow2MatchesDivisionAtPow2Width) {
  const std::vector<StreamUpdate> stream = TestStream(3);
  CountMinSketch cm_div(4096, 5, 17);
  CountMinSketch cm_pow2(4096, 5, 17, WidthMode::kPow2);
  cm_div.ApplyBatch(stream);
  cm_pow2.ApplyBatch(stream);
  EXPECT_EQ(cm_pow2.width(), 4096u);
  Xoshiro256StarStar rng(9);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t item = rng.Next();
    ASSERT_EQ(cm_div.Estimate(item), cm_pow2.Estimate(item)) << item;
  }

  CountSketch cs_div(4096, 5, 19);
  CountSketch cs_pow2(4096, 5, 19, WidthMode::kPow2);
  cs_div.ApplyBatch(stream);
  cs_pow2.ApplyBatch(stream);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t item = rng.Next();
    ASSERT_EQ(cs_div.Estimate(item), cs_pow2.Estimate(item)) << item;
  }

  BloomFilter bf_div(1 << 16, 5, 23);
  BloomFilter bf_pow2(1 << 16, 5, 23, WidthMode::kPow2);
  for (const StreamUpdate& u : stream) {
    bf_div.Insert(u.item);
    bf_pow2.Insert(u.item);
  }
  for (int i = 0; i < 2000; ++i) {
    const uint64_t item = rng.Next();
    ASSERT_EQ(bf_div.MayContain(item), bf_pow2.MayContain(item)) << item;
  }
}

TEST(WidthModeTest, NonPow2RequestIsRoundedUp) {
  CountMinSketch cm(1000, 3, 1, WidthMode::kPow2);
  EXPECT_EQ(cm.width(), 1024u);
  EXPECT_EQ(cm.width_mode(), WidthMode::kPow2);
  CountSketch cs(5000, 3, 1, WidthMode::kPow2);
  EXPECT_EQ(cs.width(), 8192u);
  BloomFilter bf(100000, 4, 1, WidthMode::kPow2);
  EXPECT_EQ(bf.num_bits(), 131072u);
}

TEST(WidthModeTest, V2SerializationRoundTrips) {
  const std::vector<StreamUpdate> stream = TestStream(5);

  CountMinSketch cm(1000, 4, 31, WidthMode::kPow2);
  cm.ApplyBatch(stream);
  const CountMinSketch cm2 = CountMinSketch::Deserialize(cm.Serialize());
  EXPECT_EQ(cm2.width(), cm.width());
  EXPECT_EQ(cm2.width_mode(), WidthMode::kPow2);
  EXPECT_EQ(cm2.Serialize(), cm.Serialize());

  CountSketch cs(1000, 4, 37, WidthMode::kPow2);
  cs.ApplyBatch(stream);
  const CountSketch cs2 = CountSketch::Deserialize(cs.Serialize());
  EXPECT_EQ(cs2.width_mode(), WidthMode::kPow2);
  EXPECT_EQ(cs2.Serialize(), cs.Serialize());

  BloomFilter bf(100000, 5, 41, WidthMode::kPow2);
  for (const StreamUpdate& u : stream) bf.Insert(u.item);
  const BloomFilter bf2 = BloomFilter::Deserialize(bf.Serialize());
  EXPECT_EQ(bf2.width_mode(), WidthMode::kPow2);
  EXPECT_EQ(bf2.Serialize(), bf.Serialize());
}

// Division-mode sketches must keep writing the exact v1 header so every
// buffer serialized before the width-mode change still round-trips and
// golden wire fixtures stay valid.
TEST(WidthModeTest, DivisionModeKeepsV1Magic) {
  const CountMinSketch cm(100, 3, 1);
  const std::vector<uint8_t> bytes = cm.Serialize();
  uint64_t magic = 0;
  for (int i = 7; i >= 0; --i) magic = (magic << 8) | bytes[i];
  EXPECT_EQ(magic, 0x534b434d494e3031ULL);  // "SKCMIN01", v1
  const CountMinSketch cm2 = CountMinSketch::Deserialize(bytes);
  EXPECT_EQ(cm2.width_mode(), WidthMode::kDivision);
}

TEST(WidthModeDeathTest, MergeAcrossModesAborts) {
  // Same width so only the mode differs: 1024 is a power of two, so the
  // pow2 sketch does not round and the geometries match exactly.
  CountMinSketch a(1024, 3, 7);
  CountMinSketch b(1024, 3, 7, WidthMode::kPow2);
  EXPECT_DEATH(a.Merge(b), "identical geometry and seed");
  CountSketch c(1024, 3, 7);
  CountSketch d(1024, 3, 7, WidthMode::kPow2);
  EXPECT_DEATH(c.Merge(d), "identical geometry and seed");
  BloomFilter e(1024, 3, 7);
  BloomFilter f(1024, 3, 7, WidthMode::kPow2);
  EXPECT_DEATH(e.Merge(f), "identical geometry and seed");
}

std::vector<uint8_t> WithWord(std::vector<uint8_t> bytes, size_t word,
                              uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes[word * 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(value >> (8 * i));
  }
  return bytes;
}

TEST(WidthModeDeathTest, MalformedV2BuffersAbort) {
  CountMinSketch cm(1024, 3, 7, WidthMode::kPow2);
  const std::vector<uint8_t> good = cm.Serialize();
  // Word 4 is the mode word; anything but kPow2 (=1) is malformed.
  EXPECT_DEATH(CountMinSketch::Deserialize(WithWord(good, 4, 0)),
               "invalid CountMinSketch width mode");
  EXPECT_DEATH(CountMinSketch::Deserialize(WithWord(good, 4, 2)),
               "invalid CountMinSketch width mode");
  // Word 1 is the width; a v2 buffer whose width is not a power of two
  // must die before any counter allocation.
  EXPECT_DEATH(CountMinSketch::Deserialize(WithWord(good, 1, 1000)),
               "not a power of two");

  CountSketch cs(1024, 3, 7, WidthMode::kPow2);
  const std::vector<uint8_t> cs_good = cs.Serialize();
  EXPECT_DEATH(CountSketch::Deserialize(WithWord(cs_good, 4, 0)),
               "invalid CountSketch width mode");
  EXPECT_DEATH(CountSketch::Deserialize(WithWord(cs_good, 1, 1000)),
               "not a power of two");

  BloomFilter bf(1024, 3, 7, WidthMode::kPow2);
  const std::vector<uint8_t> bf_good = bf.Serialize();
  EXPECT_DEATH(BloomFilter::Deserialize(WithWord(bf_good, 4, 0)),
               "invalid BloomFilter width mode");
  EXPECT_DEATH(BloomFilter::Deserialize(WithWord(bf_good, 1, 1000)),
               "not a power of two");
}

TEST(WidthModeDeathTest, InnerProductAcrossModesAborts) {
  const std::vector<StreamUpdate> stream = TestStream(11);
  CountMinSketch a(1024, 3, 7);
  CountMinSketch b(1024, 3, 7, WidthMode::kPow2);
  a.ApplyBatch(stream);
  b.ApplyBatch(stream);
  EXPECT_DEATH(a.EstimateInnerProduct(b), "identical geometry and seed");
}

}  // namespace
}  // namespace sketch
