// Merge-linearity property tests: for every mergeable sketch,
// sketch(A ++ B) and Merge(sketch(A), sketch(B)) must agree
// *bit-identically* — same counters, same query answers — for any split
// of the stream and any seed. This is the linearity property (survey §1)
// that makes the sharded ingestion engine in `src/parallel` exact rather
// than approximate, so it gets pinned down here per sketch, across
// randomized shard splits and seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/prng.h"

#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/stream_summary.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 14;

std::vector<StreamUpdate> TestStream(uint64_t seed) {
  // Turnstile stream so the property is exercised with deletions too.
  return MakeTurnstileStream(kUniverse, 1.1, /*insert_count=*/20000,
                             /*delete_fraction=*/0.25, seed);
}

// Random cut points for a `parts`-way contiguous split of [0, n).
std::vector<size_t> RandomCuts(size_t n, size_t parts, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<size_t> cuts{0, n};
  for (size_t i = 0; i + 1 < parts; ++i) {
    cuts.push_back(static_cast<size_t>(rng.NextBounded(n + 1)));
  }
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

// Builds `Make()`-produced sketches over each piece of a random split,
// merges them left-to-right, and returns the pair (merged, whole-stream).
template <typename S, typename MakeFn>
std::pair<S, S> MergedAndWhole(const std::vector<StreamUpdate>& stream,
                               size_t parts, uint64_t split_seed,
                               MakeFn make) {
  const std::vector<size_t> cuts =
      RandomCuts(stream.size(), parts, split_seed);
  const UpdateSpan all(stream);
  S merged = make();
  {
    S first = make();
    first.ApplyBatch(all.subspan(cuts[0], cuts[1] - cuts[0]));
    merged = first;
  }
  for (size_t p = 1; p + 1 < cuts.size(); ++p) {
    S piece = make();
    piece.ApplyBatch(all.subspan(cuts[p], cuts[p + 1] - cuts[p]));
    merged.Merge(piece);
  }
  S whole = make();
  whole.ApplyBatch(all);
  return {merged, whole};
}

class MergeLinearityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeLinearityTest, CountMinBitIdentical) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  for (size_t parts : {2, 3, 8}) {
    auto [merged, whole] = MergedAndWhole<CountMinSketch>(
        stream, parts, /*split_seed=*/seed * 31 + parts,
        [&] { return CountMinSketch(512, 4, seed); });
    // Serialize() captures geometry, seed, and every counter, so byte
    // equality is counter-for-counter bit identity.
    EXPECT_EQ(merged.Serialize(), whole.Serialize()) << "parts=" << parts;
    EXPECT_EQ(merged.Estimate(stream[0].item), whole.Estimate(stream[0].item));
  }
}

TEST_P(MergeLinearityTest, CountSketchBitIdentical) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  for (size_t parts : {2, 5}) {
    auto [merged, whole] = MergedAndWhole<CountSketch>(
        stream, parts, seed * 17 + parts,
        [&] { return CountSketch(512, 5, seed); });
    EXPECT_EQ(merged.Serialize(), whole.Serialize()) << "parts=" << parts;
    for (uint64_t item = 0; item < 64; ++item) {
      ASSERT_EQ(merged.Estimate(item), whole.Estimate(item));
    }
  }
}

TEST_P(MergeLinearityTest, BloomFilterBitIdentical) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  for (size_t parts : {2, 4}) {
    auto [merged, whole] = MergedAndWhole<BloomFilter>(
        stream, parts, seed * 13 + parts,
        [&] { return BloomFilter(1 << 14, 5, seed); });
    // Bloom merge is bitwise OR of set bits; the union filter must equal
    // the filter of the union exactly.
    EXPECT_EQ(merged.Serialize(), whole.Serialize()) << "parts=" << parts;
    for (uint64_t item = 0; item < 256; ++item) {
      ASSERT_EQ(merged.MayContain(item), whole.MayContain(item));
    }
  }
}

TEST_P(MergeLinearityTest, AmsIdenticalF2) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  auto [merged, whole] = MergedAndWhole<AmsSketch>(
      stream, /*parts=*/4, seed * 7 + 4,
      [&] { return AmsSketch(256, 5, seed); });
  // EstimateF2 is a deterministic function of the counters, so exact
  // (not approximate) equality here certifies identical counter state.
  EXPECT_EQ(merged.EstimateF2(), whole.EstimateF2());
}

TEST_P(MergeLinearityTest, DyadicCountMinIdenticalAnswers) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  auto [merged, whole] = MergedAndWhole<DyadicCountMin>(
      stream, /*parts=*/3, seed * 11 + 3,
      [&] { return DyadicCountMin(14, 512, 4, seed); });
  EXPECT_EQ(merged.TotalCount(), whole.TotalCount());
  for (uint64_t item = 0; item < 512; ++item) {
    ASSERT_EQ(merged.Estimate(item), whole.Estimate(item));
  }
  EXPECT_EQ(merged.RangeSum(0, kUniverse / 2), whole.RangeSum(0, kUniverse / 2));
  EXPECT_EQ(merged.Quantile(0.5), whole.Quantile(0.5));
  const auto threshold =
      static_cast<int64_t>(0.01 * static_cast<double>(whole.TotalCount()));
  EXPECT_EQ(merged.HeavyHitters(threshold), whole.HeavyHitters(threshold));
}

TEST_P(MergeLinearityTest, StreamSummaryIdenticalAnswers) {
  const uint64_t seed = GetParam();
  const auto stream = TestStream(seed);
  StreamSummary::Options options;
  options.log_universe = 14;
  options.seed = seed;
  auto [merged, whole] = MergedAndWhole<StreamSummary>(
      stream, /*parts=*/2, seed * 5 + 2,
      [&] { return StreamSummary(options); });
  for (uint64_t item = 0; item < 256; ++item) {
    ASSERT_EQ(merged.EstimateCount(item), whole.EstimateCount(item));
  }
  EXPECT_EQ(merged.HeavyHitters(0.01), whole.HeavyHitters(0.01));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeLinearityTest,
                         ::testing::Values(1, 7, 42, 1234567));

}  // namespace
}  // namespace sketch
