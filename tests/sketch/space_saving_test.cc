#include "sketch/space_saving.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(SpaceSavingTest, ExactWhenCapacitySuffices) {
  SpaceSaving ss(10);
  for (int i = 0; i < 7; ++i) ss.Update(1);
  for (int i = 0; i < 3; ++i) ss.Update(2);
  EXPECT_EQ(ss.Estimate(1), 7);
  EXPECT_EQ(ss.Estimate(2), 3);
  EXPECT_EQ(ss.ErrorBound(1), 0);
}

TEST(SpaceSavingTest, NeverUnderestimatesTrackedItems) {
  const auto updates = MakeZipfStream(1 << 12, 1.2, 30000, 1);
  SpaceSaving ss(64);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    ss.Update(u.item);
    oracle.Update(u);
  }
  for (uint64_t item : ss.ItemsAbove(0)) {
    EXPECT_GE(ss.Estimate(item), oracle.Count(item)) << "item " << item;
  }
}

TEST(SpaceSavingTest, OverestimateBoundedByNOverCapacity) {
  const uint64_t capacity = 50;
  const int64_t stream_len = 20000;
  const auto updates = MakeZipfStream(1 << 12, 1.1, stream_len, 2);
  SpaceSaving ss(capacity);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    ss.Update(u.item);
    oracle.Update(u);
  }
  for (uint64_t item : ss.ItemsAbove(0)) {
    EXPECT_LE(ss.Estimate(item) - oracle.Count(item),
              stream_len / static_cast<int64_t>(capacity))
        << "item " << item;
  }
}

TEST(SpaceSavingTest, ErrorBoundDominatesActualError) {
  const auto updates = MakeZipfStream(1 << 10, 1.0, 10000, 3);
  SpaceSaving ss(32);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    ss.Update(u.item);
    oracle.Update(u);
  }
  for (uint64_t item : ss.ItemsAbove(0)) {
    EXPECT_LE(ss.Estimate(item) - oracle.Count(item), ss.ErrorBound(item));
  }
}

TEST(SpaceSavingTest, TracksAtMostCapacityItems) {
  SpaceSaving ss(16);
  const auto updates = MakeUniformStream(1000, 20000, 4);
  for (const StreamUpdate& u : updates) ss.Update(u.item);
  EXPECT_LE(ss.TrackedCount(), 16u);
}

TEST(SpaceSavingTest, HeavyItemsAlwaysTracked) {
  const uint64_t capacity = 20;
  const int64_t stream_len = 10000;
  const auto updates = MakeZipfStream(1 << 10, 1.5, stream_len, 5);
  SpaceSaving ss(capacity);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    ss.Update(u.item);
    oracle.Update(u);
  }
  const auto heavy =
      oracle.ItemsAbove(stream_len / static_cast<int64_t>(capacity) + 1);
  for (uint64_t item : heavy) {
    EXPECT_GT(ss.Estimate(item), 0) << "heavy item " << item << " evicted";
  }
}

TEST(SpaceSavingTest, TopKReturnsHighestEstimates) {
  SpaceSaving ss(10);
  ss.Update(1, 100);
  ss.Update(2, 50);
  ss.Update(3, 75);
  const auto top = ss.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(SpaceSavingTest, EvictionInheritsMinimumCount) {
  SpaceSaving ss(2);
  ss.Update(1, 10);
  ss.Update(2, 5);
  ss.Update(3);  // evicts item 2 (min count 5); item 3 gets 5 + 1 = 6
  EXPECT_EQ(ss.Estimate(3), 6);
  EXPECT_EQ(ss.ErrorBound(3), 5);
  EXPECT_EQ(ss.Estimate(2), 0);  // evicted
}

TEST(SpaceSavingTest, TopKSmallerThanK) {
  SpaceSaving ss(5);
  ss.Update(1);
  EXPECT_EQ(ss.TopK(10).size(), 1u);
}

}  // namespace
}  // namespace sketch
