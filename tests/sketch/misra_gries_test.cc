#include "sketch/misra_gries.h"

#include <gtest/gtest.h>

#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(MisraGriesTest, ExactWhenCapacitySuffices) {
  MisraGries mg(10);
  for (int i = 0; i < 5; ++i) mg.Update(1);
  for (int i = 0; i < 3; ++i) mg.Update(2);
  EXPECT_EQ(mg.Estimate(1), 5);
  EXPECT_EQ(mg.Estimate(2), 3);
}

TEST(MisraGriesTest, NeverOverestimates) {
  const auto updates = MakeZipfStream(1 << 12, 1.1, 30000, 1);
  MisraGries mg(100);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    mg.Update(u.item);
    oracle.Update(u);
  }
  for (const auto& [item, count] : mg.counters()) {
    EXPECT_LE(count, oracle.Count(item)) << "item " << item;
  }
}

TEST(MisraGriesTest, DeterministicErrorBound) {
  // Estimate >= count - N/(capacity+1) for every item.
  const uint64_t capacity = 50;
  const int64_t stream_len = 20000;
  const auto updates = MakeZipfStream(1 << 12, 1.2, stream_len, 2);
  MisraGries mg(capacity);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    mg.Update(u.item);
    oracle.Update(u);
  }
  const int64_t max_error = stream_len / static_cast<int64_t>(capacity + 1);
  for (const auto& [item, count] : oracle.counts()) {
    EXPECT_GE(mg.Estimate(item), count - max_error) << "item " << item;
  }
}

TEST(MisraGriesTest, RetainsAllSufficientlyHeavyItems) {
  const uint64_t capacity = 20;
  const int64_t stream_len = 10000;
  const auto updates = MakeZipfStream(1 << 10, 1.5, stream_len, 3);
  MisraGries mg(capacity);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) {
    mg.Update(u.item);
    oracle.Update(u);
  }
  // Any item with count > N/(capacity+1) must be tracked.
  const auto heavy = oracle.ItemsAbove(stream_len / (capacity + 1) + 1);
  for (uint64_t item : heavy) {
    EXPECT_GT(mg.Estimate(item), 0) << "heavy item " << item << " lost";
  }
}

TEST(MisraGriesTest, NeverTracksMoreThanCapacity) {
  MisraGries mg(8);
  const auto updates = MakeUniformStream(1000, 10000, 4);
  for (const StreamUpdate& u : updates) mg.Update(u.item);
  EXPECT_LE(mg.counters().size(), 8u);
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries mg(2);
  mg.Update(1, 100);
  mg.Update(2, 50);
  mg.Update(3, 30);  // forces a decrement round of min(30, 50, 100) = 30
  EXPECT_EQ(mg.Estimate(1), 70);
  EXPECT_EQ(mg.Estimate(2), 20);
  EXPECT_EQ(mg.Estimate(3), 0);
}

TEST(MisraGriesTest, ItemsAboveThreshold) {
  MisraGries mg(5);
  mg.Update(1, 10);
  mg.Update(2, 5);
  const auto items = mg.ItemsAbove(6);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], 1u);
}

TEST(MisraGriesTest, CapacityOneDegeneratesToMajorityCandidate) {
  MisraGries mg(1);
  // Majority element survives the Boyer–Moore-style process.
  for (int i = 0; i < 6; ++i) mg.Update(9);
  for (int i = 0; i < 2; ++i) mg.Update(1);
  for (int i = 0; i < 2; ++i) mg.Update(2);
  EXPECT_GT(mg.Estimate(9), 0);
}

}  // namespace
}  // namespace sketch
