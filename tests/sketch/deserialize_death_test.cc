// Adversarial deserialization tests: every sketch's Deserialize() must
// reject malformed buffers with a SKETCH_CHECK abort BEFORE allocating
// counter storage from untrusted geometry. Three malformed classes per
// sketch, mirroring the fuzz driver's deterministic mutations:
//
//   * truncated   — a prefix of a valid buffer (header or payload cut)
//   * bit-flipped — a valid buffer with one header bit flipped (magic or a
//                   geometry word, so the payload no longer matches)
//   * inflated    — a valid buffer with extra trailing bytes
//
// Payload bit flips are deliberately NOT death cases: counters are arbitrary
// user data and any payload word pattern is a valid sketch state.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"

namespace sketch {
namespace {

std::vector<uint8_t> Truncated(std::vector<uint8_t> bytes, size_t keep) {
  bytes.resize(keep);
  return bytes;
}

std::vector<uint8_t> BitFlipped(std::vector<uint8_t> bytes, size_t bit) {
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  return bytes;
}

std::vector<uint8_t> Inflated(std::vector<uint8_t> bytes, size_t extra) {
  bytes.resize(bytes.size() + extra, 0xa5);
  return bytes;
}

// Header layout (shared by all four sketches): word 0 = magic,
// words 1-2 = geometry, word 3 = seed. Bit 8*8 is the lowest bit of the
// first geometry word; flipping it breaks the geometry/payload size match.
constexpr size_t kGeometryBit = 64;
// A high bit of the first geometry word: turns the claimed size astronomical,
// exercising the overflow-checked size computation.
constexpr size_t kGeometryHighBit = 64 + 62;
// A bit inside the magic word.
constexpr size_t kMagicBit = 3;

TEST(DeserializeDeathTest, CountMinRejectsMalformedBuffers) {
  const CountMinSketch sk(16, 3, 7);
  const std::vector<uint8_t> good = sk.Serialize();
  EXPECT_DEATH(CountMinSketch::Deserialize(Truncated(good, 24)),
               "truncated sketch buffer");
  EXPECT_DEATH(CountMinSketch::Deserialize(Truncated(good, good.size() - 8)),
               "buffer size does not match geometry");
  EXPECT_DEATH(CountMinSketch::Deserialize(BitFlipped(good, kMagicBit)),
               "not a CountMinSketch");
  EXPECT_DEATH(CountMinSketch::Deserialize(BitFlipped(good, kGeometryBit)),
               "buffer size does not match geometry");
  EXPECT_DEATH(CountMinSketch::Deserialize(BitFlipped(good, kGeometryHighBit)),
               "does not match geometry|geometry overflows");
  EXPECT_DEATH(CountMinSketch::Deserialize(Inflated(good, 8)),
               "buffer size does not match geometry");
}

TEST(DeserializeDeathTest, CountSketchRejectsMalformedBuffers) {
  const CountSketch sk(16, 3, 7);
  const std::vector<uint8_t> good = sk.Serialize();
  EXPECT_DEATH(CountSketch::Deserialize(Truncated(good, 0)),
               "truncated sketch buffer");
  EXPECT_DEATH(CountSketch::Deserialize(Truncated(good, good.size() - 1)),
               "buffer size does not match geometry");
  EXPECT_DEATH(CountSketch::Deserialize(BitFlipped(good, kMagicBit)),
               "not a CountSketch");
  EXPECT_DEATH(CountSketch::Deserialize(BitFlipped(good, kGeometryBit)),
               "buffer size does not match geometry");
  EXPECT_DEATH(CountSketch::Deserialize(BitFlipped(good, kGeometryHighBit)),
               "does not match geometry|geometry overflows");
  EXPECT_DEATH(CountSketch::Deserialize(Inflated(good, 1)),
               "buffer size does not match geometry");
}

TEST(DeserializeDeathTest, BloomFilterRejectsMalformedBuffers) {
  const BloomFilter filter(256, 4, 7);
  const std::vector<uint8_t> good = filter.Serialize();
  EXPECT_DEATH(BloomFilter::Deserialize(Truncated(good, 31)),
               "truncated sketch buffer");
  EXPECT_DEATH(BloomFilter::Deserialize(Truncated(good, good.size() - 8)),
               "buffer size does not match geometry");
  EXPECT_DEATH(BloomFilter::Deserialize(BitFlipped(good, kMagicBit)),
               "not a BloomFilter");
  // Flipping a high bit of num_bits claims an astronomically large filter.
  EXPECT_DEATH(BloomFilter::Deserialize(BitFlipped(good, kGeometryHighBit)),
               "does not match geometry|invalid BloomFilter bit count");
  EXPECT_DEATH(BloomFilter::Deserialize(Inflated(good, 8)),
               "buffer size does not match geometry");
  // num_hashes beyond the sanity cap is rejected even with a matching size.
  std::vector<uint8_t> huge_hashes = good;
  huge_hashes[2 * 8 + 2] = 0xff;  // num_hashes word |= 0xff0000 -> > 1024
  EXPECT_DEATH(BloomFilter::Deserialize(huge_hashes),
               "invalid BloomFilter hash count");
}

TEST(DeserializeDeathTest, AmsRejectsMalformedBuffers) {
  const AmsSketch sk(32, 5, 7);
  const std::vector<uint8_t> good = sk.Serialize();
  EXPECT_DEATH(AmsSketch::Deserialize(Truncated(good, 16)),
               "truncated sketch buffer");
  EXPECT_DEATH(AmsSketch::Deserialize(Truncated(good, good.size() - 8)),
               "buffer size does not match geometry");
  EXPECT_DEATH(AmsSketch::Deserialize(BitFlipped(good, kMagicBit)),
               "not an AmsSketch");
  EXPECT_DEATH(AmsSketch::Deserialize(BitFlipped(good, kGeometryBit)),
               "buffer size does not match geometry");
  EXPECT_DEATH(AmsSketch::Deserialize(BitFlipped(good, kGeometryHighBit)),
               "does not match geometry|geometry overflows");
  EXPECT_DEATH(AmsSketch::Deserialize(Inflated(good, 4096)),
               "buffer size does not match geometry");
}

TEST(DeserializeDeathTest, ZeroGeometryIsRejected) {
  // Hand-built buffer: valid CountMin magic, width = 0, depth = 0.
  std::vector<uint8_t> bytes(32, 0);
  const uint64_t magic = 0x534b434d494e3031ULL;
  for (size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>((magic >> (8 * i)) & 0xff);
  }
  EXPECT_DEATH(CountMinSketch::Deserialize(bytes),
               "invalid CountMinSketch geometry");
}

}  // namespace
}  // namespace sketch
