#include "sketch/topk_monitor.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

TEST(TopKMonitorTest, TracksTopItemsOnSkewedStream) {
  TopKMonitor monitor(10, 4096, 5, 1);
  const auto updates = MakeZipfStream(1 << 16, 1.3, 60000, 1);
  FrequencyOracle oracle;
  monitor.UpdateAll(updates);
  oracle.UpdateAll(updates);
  std::vector<uint64_t> got;
  for (const auto& [item, est] : monitor.TopK()) got.push_back(item);
  const PrecisionRecall pr = ComputePrecisionRecall(got, oracle.TopK(10));
  EXPECT_GE(pr.recall, 0.9);
}

TEST(TopKMonitorTest, EstimatesAreClose) {
  TopKMonitor monitor(5, 8192, 5, 2);
  const auto updates = MakeZipfStream(1 << 14, 1.4, 50000, 2);
  FrequencyOracle oracle;
  monitor.UpdateAll(updates);
  oracle.UpdateAll(updates);
  for (const auto& [item, est] : monitor.TopK()) {
    EXPECT_NEAR(static_cast<double>(est),
                static_cast<double>(oracle.Count(item)),
                0.02 * 50000)
        << "item " << item;
  }
}

TEST(TopKMonitorTest, SurvivesDeletionOfFormerHeavyItem) {
  TopKMonitor monitor(3, 2048, 5, 3);
  // Item 1 dominates, then is fully deleted; items 2-4 take over.
  for (int i = 0; i < 1000; ++i) monitor.Update({1, 1});
  for (int i = 0; i < 300; ++i) monitor.Update({2, 1});
  for (int i = 0; i < 200; ++i) monitor.Update({3, 1});
  for (int i = 0; i < 100; ++i) monitor.Update({4, 1});
  monitor.Update({1, -1000});
  monitor.Update({1, 1});  // touch so the pool refreshes its view of 1
  const auto top = monitor.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 4u);
}

TEST(TopKMonitorTest, TopKAvailableMidStream) {
  TopKMonitor monitor(2, 1024, 5, 4);
  for (int i = 0; i < 100; ++i) monitor.Update({7, 1});
  for (int i = 0; i < 50; ++i) monitor.Update({9, 1});
  auto top = monitor.TopK();
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].first, 7u);
  // Shift the balance; the monitor must follow without a rebuild.
  for (int i = 0; i < 200; ++i) monitor.Update({9, 1});
  top = monitor.TopK();
  EXPECT_EQ(top[0].first, 9u);
}

TEST(TopKMonitorTest, PoolStaysBounded) {
  TopKMonitor monitor(8, 1024, 5, 5);
  monitor.UpdateAll(MakeUniformStream(1 << 16, 50000, 5));
  EXPECT_LE(monitor.PoolSize(), 4u * 8u);
}

TEST(TopKMonitorTest, FewerThanKItemsReportsAll) {
  TopKMonitor monitor(10, 512, 5, 6);
  monitor.Update({1, 5});
  monitor.Update({2, 3});
  const auto top = monitor.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);
}

}  // namespace
}  // namespace sketch
