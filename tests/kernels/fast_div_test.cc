// FastDiv64 exactness tests: the magic-number reduction must agree with
// the hardware `%` and `/` for EVERY divisor >= 1 and every 64-bit input.
// The sketches rely on this unconditionally — a single wrong bucket would
// silently corrupt bit-exactness of the kernelized update path — so the
// divisors below concentrate on the boundary cases of the mulhi proof:
// 1, 2, powers of two, 2^k ± 1, and large primes where the correction
// subtract fires most often.

#include "kernels/fast_div.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

// Edge inputs exercised for every divisor: wrap points of q̂ = mulhi(x, m)
// sit at multiples of the divisor and at the extremes of the 64-bit range.
std::vector<uint64_t> EdgeInputs(uint64_t divisor) {
  std::vector<uint64_t> xs = {0,    1,          2,
                              62,   63,         64,
                              1000, UINT64_MAX, UINT64_MAX - 1,
                              UINT64_MAX / 2,   UINT64_MAX / 2 + 1};
  for (uint64_t mult : {1ULL, 2ULL, 3ULL, 1000ULL}) {
    if (divisor > UINT64_MAX / mult) break;
    const uint64_t m = divisor * mult;
    xs.push_back(m);
    xs.push_back(m - 1);
    if (m != UINT64_MAX) xs.push_back(m + 1);
  }
  return xs;
}

void ExpectExactForDivisor(uint64_t divisor, uint64_t rng_seed) {
  const FastDiv64 div(divisor);
  EXPECT_EQ(div.divisor(), divisor);
  for (uint64_t x : EdgeInputs(divisor)) {
    ASSERT_EQ(div.Mod(x), x % divisor) << "x=" << x << " d=" << divisor;
    ASSERT_EQ(div.Div(x), x / divisor) << "x=" << x << " d=" << divisor;
  }
  Xoshiro256StarStar rng(rng_seed);
  for (int i = 0; i < 4096; ++i) {
    const uint64_t x = rng.Next();
    ASSERT_EQ(div.Mod(x), x % divisor) << "x=" << x << " d=" << divisor;
    ASSERT_EQ(div.Div(x), x / divisor) << "x=" << x << " d=" << divisor;
  }
}

TEST(FastDiv64Test, DivisorOneAndTwo) {
  ExpectExactForDivisor(1, 101);
  ExpectExactForDivisor(2, 102);
}

TEST(FastDiv64Test, AllPowersOfTwo) {
  for (int k = 0; k < 64; ++k) {
    ExpectExactForDivisor(1ULL << k, 200 + static_cast<uint64_t>(k));
  }
}

TEST(FastDiv64Test, PowersOfTwoPlusMinusOne) {
  for (int k = 1; k < 64; ++k) {
    ExpectExactForDivisor((1ULL << k) - 1, 300 + static_cast<uint64_t>(k));
    if (k < 63) {
      ExpectExactForDivisor((1ULL << k) + 1, 400 + static_cast<uint64_t>(k));
    }
  }
  ExpectExactForDivisor(UINT64_MAX, 499);  // 2^64 - 1
}

TEST(FastDiv64Test, LargePrimes) {
  const uint64_t primes[] = {
      1000000007ULL,           // common 32-bit prime
      4294967291ULL,           // largest prime below 2^32
      (1ULL << 61) - 1,        // Mersenne prime used by the hash field
      9223372036854775783ULL,  // largest prime below 2^63
      18446744073709551557ULL  // largest 64-bit prime
  };
  uint64_t seed = 500;
  for (uint64_t p : primes) ExpectExactForDivisor(p, seed++);
}

TEST(FastDiv64Test, TypicalSketchWidths) {
  // The widths sketches actually construct: small tables, benchmark
  // geometries, and odd non-power-of-two widths from FromErrorBounds.
  const uint64_t widths[] = {3,    5,    7,     10,     100,   272,
                             1024, 2719, 65536, 262144, 1000000};
  uint64_t seed = 600;
  for (uint64_t w : widths) ExpectExactForDivisor(w, seed++);
}

TEST(FastDiv64Test, RandomDivisors) {
  Xoshiro256StarStar rng(777);
  for (int i = 0; i < 256; ++i) {
    const uint64_t divisor = rng.Next() | 1;  // avoid zero
    const FastDiv64 div(divisor);
    for (int j = 0; j < 64; ++j) {
      const uint64_t x = rng.Next();
      ASSERT_EQ(div.Mod(x), x % divisor) << "x=" << x << " d=" << divisor;
      ASSERT_EQ(div.Div(x), x / divisor) << "x=" << x << " d=" << divisor;
    }
  }
}

}  // namespace
}  // namespace sketch
