// BlockHasher must be bit-identical to the scalar KWiseHash it snapshots:
// same hashes, same buckets, same signs, for every independence k (the
// unrolled k=2/k=4 paths and the generic fallback), every block length
// (including tails shorter than the 4-way unroll), and adversarial keys
// around the Mersenne-fold boundaries.

#include "kernels/block_hasher.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "hash/kwise_hash.h"
#include "kernels/fast_div.h"

namespace sketch {
namespace {

std::vector<uint64_t> TestKeys(uint64_t seed, std::size_t n) {
  std::vector<uint64_t> keys = {0,
                                1,
                                2,
                                kMersennePrime61 - 1,
                                kMersennePrime61,
                                kMersennePrime61 + 1,
                                2 * kMersennePrime61,
                                UINT64_MAX,
                                UINT64_MAX - 1};
  Xoshiro256StarStar rng(seed);
  while (keys.size() < n) keys.push_back(rng.Next());
  return keys;
}

TEST(BlockHasherTest, HashOneMatchesScalarForAllIndependence) {
  for (int k = 1; k <= 6; ++k) {
    for (uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
      const KWiseHash scalar(k, seed);
      const BlockHasher kernel(scalar);
      ASSERT_EQ(kernel.independence(), k);
      for (uint64_t key : TestKeys(seed + static_cast<uint64_t>(k), 2000)) {
        ASSERT_EQ(kernel.HashOne(key), scalar.Hash(key))
            << "k=" << k << " seed=" << seed << " key=" << key;
      }
    }
  }
}

TEST(BlockHasherTest, BucketOneMatchesScalarAcrossWidths) {
  for (int k : {2, 4}) {
    const KWiseHash scalar(k, 99);
    const BlockHasher kernel(scalar);
    for (uint64_t width : {1ULL, 2ULL, 3ULL, 7ULL, 256ULL, 2719ULL,
                           1000003ULL, (1ULL << 61) - 1}) {
      const FastDiv64 div(width);
      for (uint64_t key : TestKeys(width, 500)) {
        ASSERT_EQ(kernel.BucketOne(key, div), scalar.Bucket(key, width))
            << "k=" << k << " width=" << width << " key=" << key;
      }
    }
  }
}

TEST(BlockHasherTest, SignOneMatchesScalar) {
  for (int k : {2, 4}) {
    const KWiseHash scalar(k, 7);
    const BlockHasher kernel(scalar);
    for (uint64_t key : TestKeys(13, 2000)) {
      ASSERT_EQ(kernel.SignOne(key), scalar.Sign(key));
    }
  }
}

TEST(BlockHasherTest, BlockMethodsMatchScalarElementwise) {
  // Block lengths straddle the 4-way unroll boundary and the 256-key
  // sketch block size.
  const std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 255, 256, 257};
  for (int k = 1; k <= 5; ++k) {
    const KWiseHash scalar(k, 1234 + static_cast<uint64_t>(k));
    const BlockHasher kernel(scalar);
    const FastDiv64 div(2719);
    for (std::size_t n : lengths) {
      const std::vector<uint64_t> keys = TestKeys(n, n);
      std::vector<uint64_t> hashes(n + 1, ~0ULL);
      std::vector<uint64_t> buckets(n + 1, ~0ULL);
      std::vector<int64_t> signs(n + 1, 0);
      kernel.HashBlock(keys.data(), n, hashes.data());
      kernel.BucketBlock(keys.data(), n, div, buckets.data());
      kernel.SignBlock(keys.data(), n, signs.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hashes[i], scalar.Hash(keys[i])) << "k=" << k << " i=" << i;
        ASSERT_EQ(buckets[i], scalar.Bucket(keys[i], 2719));
        ASSERT_EQ(signs[i], scalar.Sign(keys[i]));
      }
      // The block kernels must not write past n.
      EXPECT_EQ(hashes[n], ~0ULL);
      EXPECT_EQ(buckets[n], ~0ULL);
      EXPECT_EQ(signs[n], 0);
    }
  }
}

TEST(BlockHasherTest, ForEachHashVisitsEveryIndexOnce) {
  const KWiseHash scalar(2, 5);
  const BlockHasher kernel(scalar);
  const std::vector<uint64_t> keys = TestKeys(5, 259);
  std::vector<int> visits(keys.size(), 0);
  kernel.ForEachHash(keys.data(), keys.size(),
                     [&](std::size_t i, uint64_t h) {
                       ASSERT_LT(i, keys.size());
                       ASSERT_EQ(h, scalar.Hash(keys[i]));
                       ++visits[i];
                     });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(BlockHasherTest, CopyIsIndependentOfSourceHash) {
  // The snapshot must not dangle: the BlockHasher keeps working after the
  // source KWiseHash is gone.
  BlockHasher kernel = [] {
    const KWiseHash temp(4, 321);
    return BlockHasher(temp);
  }();
  const KWiseHash reference(4, 321);
  for (uint64_t key : TestKeys(17, 100)) {
    EXPECT_EQ(kernel.HashOne(key), reference.Hash(key));
  }
}

}  // namespace
}  // namespace sketch
