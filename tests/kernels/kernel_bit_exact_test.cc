// Kernel-path bit-exactness property tests: for every sketch whose
// ApplyBatch routes through the batched hashing kernels, the batch path
// must produce the SAME sketch as the scalar per-item path — not close,
// identical. Serialize() bytes are compared where available (CountMin,
// CountSketch, AMS, Bloom); DyadicCountMin (no serializer) is compared
// through exhaustive point estimates and range sums. Geometries, seeds,
// and streams are randomized, with turnstile streams so deletions are
// exercised too.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "stream/update.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 16;
constexpr uint64_t kStreamLength = 30000;

std::vector<StreamUpdate> TurnstileStream(uint64_t seed) {
  return MakeTurnstileStream(kUniverse, 1.1, kStreamLength,
                             /*delete_fraction=*/0.3, seed);
}

// Random non-power-of-two-friendly geometry: widths land on primes,
// powers of two, and arbitrary values so FastDiv64 sees varied divisors.
struct Geometry {
  uint64_t width;
  uint64_t depth;
  uint64_t seed;
};

std::vector<Geometry> RandomGeometries(uint64_t seed) {
  const uint64_t widths[] = {1, 2, 3, 64, 100, 2719, 4096, 65537};
  std::vector<Geometry> out;
  Xoshiro256StarStar rng(seed);
  for (uint64_t w : widths) {
    out.push_back({w, 1 + rng.NextBounded(6), rng.Next()});
  }
  return out;
}

template <typename S>
void ExpectSerializedBytesMatch(const char* name) {
  for (uint64_t trial = 0; trial < 4; ++trial) {
    for (const Geometry& g : RandomGeometries(1000 + trial)) {
      const std::vector<StreamUpdate> stream = TurnstileStream(trial * 31 + g.width);
      S scalar(g.width, g.depth, g.seed);
      S kernel(g.width, g.depth, g.seed);
      for (const StreamUpdate& u : stream) scalar.Update(u);
      kernel.ApplyBatch(stream);
      ASSERT_EQ(scalar.Serialize(), kernel.Serialize())
          << name << " diverged: width=" << g.width << " depth=" << g.depth
          << " seed=" << g.seed << " trial=" << trial;
    }
  }
}

TEST(KernelBitExactTest, CountMinSerializeMatchesScalar) {
  ExpectSerializedBytesMatch<CountMinSketch>("CountMinSketch");
}

TEST(KernelBitExactTest, CountSketchSerializeMatchesScalar) {
  ExpectSerializedBytesMatch<CountSketch>("CountSketch");
}

TEST(KernelBitExactTest, AmsSerializeMatchesScalar) {
  ExpectSerializedBytesMatch<AmsSketch>("AmsSketch");
}

TEST(KernelBitExactTest, BloomSerializeMatchesScalar) {
  for (uint64_t trial = 0; trial < 4; ++trial) {
    const std::vector<StreamUpdate> stream =
        MakeZipfStream(kUniverse, 1.1, kStreamLength, 900 + trial);
    for (int num_hashes : {1, 3, 7}) {
      for (uint64_t num_bits : {1ULL, 63ULL, 64ULL, 65536ULL, 100003ULL}) {
        BloomFilter scalar(num_bits, num_hashes, trial * 17 + num_bits);
        BloomFilter kernel(num_bits, num_hashes, trial * 17 + num_bits);
        for (const StreamUpdate& u : stream) scalar.Insert(u.item);
        kernel.ApplyBatch(stream);
        ASSERT_EQ(scalar.Serialize(), kernel.Serialize())
            << "BloomFilter diverged: bits=" << num_bits
            << " hashes=" << num_hashes << " trial=" << trial;
      }
    }
  }
}

TEST(KernelBitExactTest, DyadicEstimatesMatchScalar) {
  for (uint64_t trial = 0; trial < 3; ++trial) {
    const std::vector<StreamUpdate> stream = TurnstileStream(700 + trial);
    DyadicCountMin scalar(/*log_universe=*/16, 512, 3, 55 + trial);
    DyadicCountMin kernel(/*log_universe=*/16, 512, 3, 55 + trial);
    for (const StreamUpdate& u : stream) scalar.Update(u);
    kernel.ApplyBatch(stream);
    Xoshiro256StarStar rng(trial);
    for (int probe = 0; probe < 4096; ++probe) {
      const uint64_t item = rng.NextBounded(kUniverse);
      ASSERT_EQ(scalar.Estimate(item), kernel.Estimate(item))
          << "item=" << item << " trial=" << trial;
    }
    for (int probe = 0; probe < 256; ++probe) {
      uint64_t lo = rng.NextBounded(kUniverse);
      uint64_t hi = rng.NextBounded(kUniverse);
      if (lo > hi) std::swap(lo, hi);
      ASSERT_EQ(scalar.RangeSum(lo, hi), kernel.RangeSum(lo, hi));
    }
  }
}

TEST(KernelBitExactTest, BatchSplitsAgreeWithWholeStream) {
  // Applying the stream as many small ApplyBatch calls (forcing partial
  // tail blocks inside the kernels) must equal one whole-stream call.
  const std::vector<StreamUpdate> stream = TurnstileStream(321);
  CountMinSketch whole(2719, 5, 9);
  CountMinSketch pieces(2719, 5, 9);
  whole.ApplyBatch(stream);
  Xoshiro256StarStar rng(8);
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t len =
        std::min<std::size_t>(1 + rng.NextBounded(700), stream.size() - pos);
    pieces.ApplyBatch(UpdateSpan(stream.data() + pos, len));
    pos += len;
  }
  EXPECT_EQ(whole.Serialize(), pieces.Serialize());
}

}  // namespace
}  // namespace sketch
