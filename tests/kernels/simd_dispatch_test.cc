// SIMD dispatch tier tests: whatever tier `ActiveSimdTier()` picked, the
// BlockHasher batch entry points must be bit-identical to the scalar
// `KWiseHash` reference, for every lane-remainder length (the AVX2 kernels
// process 4 keys per vector, so n mod 4 exercises the padded tail), for
// every independence class (k=1 constant, k=2/k=4 vectorized, k=5 generic
// scalar), and for keys straddling the Mersenne-61 fold boundaries where
// the vector reduction could disagree with the scalar one by a
// non-canonical residue. Running this suite a second time with
// SKETCH_FORCE_SCALAR=1 (the `*_forced_scalar` ctest entries) pins the
// scalar fallback against the same reference, which transitively proves
// the two tiers agree byte for byte.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "hash/kwise_hash.h"
#include "kernels/block_hasher.h"
#include "kernels/fast_div.h"
#include "kernels/simd_dispatch.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/update.h"

namespace sketch {
namespace {

constexpr uint64_t kP61 = kMersennePrime61;

// Lengths around the 4-lane vector width plus the sketches' 256-key block.
const std::size_t kLengths[] = {0, 1, 2,   3,   4,   5,  6,
                                7, 8, 9,   255, 256, 257};

// Keys that stress the fold: 0, small, every neighborhood of p = 2^61-1
// (p-1, p, p+1 — note Hash(p) == Hash(0) because the reduction is mod p),
// 2p, and the top of the 64-bit range where (key >> 61) is maximal.
std::vector<uint64_t> FoldBoundaryKeys() {
  std::vector<uint64_t> keys = {0,       1,         2,        kP61 - 2,
                                kP61 - 1, kP61,     kP61 + 1, kP61 + 2,
                                2 * kP61, 2 * kP61 + 1,       ~0ULL,
                                ~0ULL - 1, 1ULL << 61,        1ULL << 62};
  Xoshiro256StarStar rng(42);
  for (int i = 0; i < 300; ++i) keys.push_back(rng.Next());
  return keys;
}

// Builds a key block of length n by cycling through the boundary set so
// every length still sees fold-boundary values.
std::vector<uint64_t> KeyBlock(std::size_t n, std::size_t offset) {
  const std::vector<uint64_t> pool = FoldBoundaryKeys();
  std::vector<uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = pool[(offset + i) % pool.size()];
  }
  return keys;
}

constexpr uint64_t kSentinel = 0xfeedfacecafebeefULL;

TEST(SimdDispatchTest, TierIsConsistentWithProbeAndOverride) {
  const simd::SimdTier tier = simd::ActiveSimdTier();
  const char* forced = std::getenv("SKETCH_FORCE_SCALAR");
  if (forced != nullptr && forced[0] != '\0' && forced[0] != '0') {
    EXPECT_EQ(tier, simd::SimdTier::kScalar);
  }
  if (tier == simd::SimdTier::kAvx2) {
    EXPECT_TRUE(simd::Avx2KernelsCompiled());
    EXPECT_TRUE(simd::Avx2Supported());
  }
  // The name round-trips for both tiers.
  EXPECT_STREQ(simd::SimdTierName(simd::SimdTier::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdTierName(simd::SimdTier::kAvx2), "avx2");
}

TEST(SimdDispatchTest, HashBlockMatchesKWiseReference) {
  for (int k : {1, 2, 4, 5}) {
    const KWiseHash hash(k, 0x1234u + static_cast<uint64_t>(k));
    const BlockHasher hasher(hash);
    for (std::size_t n : kLengths) {
      const std::vector<uint64_t> keys = KeyBlock(n, n);
      std::vector<uint64_t> out(n + 4, kSentinel);
      hasher.HashBlock(keys.data(), n, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], hash.Hash(keys[i]))
            << "k=" << k << " n=" << n << " i=" << i << " key=" << keys[i];
      }
      // The kernels must never write past n (the AVX2 tail pads into a
      // stack buffer instead of over-storing).
      for (std::size_t i = n; i < out.size(); ++i) {
        ASSERT_EQ(out[i], kSentinel) << "k=" << k << " n=" << n;
      }
    }
  }
}

TEST(SimdDispatchTest, BucketBlockMatchesKWiseReference) {
  const uint64_t widths[] = {1, 2, 3, 100, 2719, 4096, 65537};
  for (int k : {1, 2, 4, 5}) {
    const KWiseHash hash(k, 0x9876u + static_cast<uint64_t>(k));
    const BlockHasher hasher(hash);
    for (uint64_t w : widths) {
      const FastDiv64 div(w);
      for (std::size_t n : kLengths) {
        const std::vector<uint64_t> keys = KeyBlock(n, w + n);
        std::vector<uint64_t> out(n + 4, kSentinel);
        hasher.BucketBlock(keys.data(), n, div, out.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], hash.Bucket(keys[i], w))
              << "k=" << k << " w=" << w << " n=" << n << " i=" << i;
        }
        for (std::size_t i = n; i < out.size(); ++i) {
          ASSERT_EQ(out[i], kSentinel);
        }
      }
    }
  }
}

TEST(SimdDispatchTest, BucketBlockPow2MatchesDivision) {
  // For power-of-two widths the mask path must agree with FastDiv64
  // division exactly — this is the invariant that lets WidthMode::kPow2
  // skip the divide without changing any bucket.
  const uint64_t widths[] = {1, 2, 4, 64, 4096, 1ULL << 20, 1ULL << 40};
  for (int k : {1, 2, 4, 5}) {
    const KWiseHash hash(k, 0x5555u + static_cast<uint64_t>(k));
    const BlockHasher hasher(hash);
    for (uint64_t w : widths) {
      const FastDiv64 div(w);
      for (std::size_t n : kLengths) {
        const std::vector<uint64_t> keys = KeyBlock(n, w % 97 + n);
        std::vector<uint64_t> via_div(n + 4, kSentinel);
        std::vector<uint64_t> via_mask(n + 4, kSentinel);
        hasher.BucketBlock(keys.data(), n, div, via_div.data());
        hasher.BucketBlockPow2(keys.data(), n, w - 1, via_mask.data());
        ASSERT_EQ(via_div, via_mask) << "k=" << k << " w=" << w
                                     << " n=" << n;
      }
    }
  }
}

TEST(SimdDispatchTest, SignBlockMatchesKWiseReference) {
  for (int k : {1, 2, 4, 5}) {
    const KWiseHash hash(k, 0xabcdu + static_cast<uint64_t>(k));
    const BlockHasher hasher(hash);
    for (std::size_t n : kLengths) {
      const std::vector<uint64_t> keys = KeyBlock(n, 3 * n + 1);
      std::vector<int64_t> out(n + 4, -7);
      hasher.SignBlock(keys.data(), n, out.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], hash.Sign(keys[i]))
            << "k=" << k << " n=" << n << " i=" << i << " key=" << keys[i];
      }
      for (std::size_t i = n; i < out.size(); ++i) {
        ASSERT_EQ(out[i], -7);
      }
    }
  }
}

// End-to-end tier invariance: a sketch filled through the dispatched batch
// path serializes to the same bytes as one filled through the per-item
// scalar path. Under the forced-scalar re-run this pins the fallback; on
// an AVX2 host it pins the vector tier — so the committed expectation is
// identical across tiers.
TEST(SimdDispatchTest, ApplyBatchSerializesIdenticallyToUpdate) {
  std::vector<StreamUpdate> stream;
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 4096; ++i) {
    stream.push_back({rng.Next(), static_cast<int64_t>(rng.NextBounded(9)) - 4});
  }
  for (const uint64_t p : FoldBoundaryKeys()) stream.push_back({p, 1});
  for (WidthMode mode : {WidthMode::kDivision, WidthMode::kPow2}) {
    CountMinSketch cm_item(1000, 4, 11, mode);
    CountMinSketch cm_batch(1000, 4, 11, mode);
    for (const StreamUpdate& u : stream) cm_item.Update(u);
    cm_batch.ApplyBatch(stream);
    EXPECT_EQ(cm_item.Serialize(), cm_batch.Serialize());

    CountSketch cs_item(1000, 4, 13, mode);
    CountSketch cs_batch(1000, 4, 13, mode);
    for (const StreamUpdate& u : stream) cs_item.Update(u);
    cs_batch.ApplyBatch(stream);
    EXPECT_EQ(cs_item.Serialize(), cs_batch.Serialize());
  }
}

}  // namespace
}  // namespace sketch
