#include "common/prng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(SplitMix64Test, IsDeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int diff = 0;
  for (int i = 0; i < 64; ++i) diff += (a.Next() != b.Next());
  EXPECT_GE(diff, 60);
}

TEST(SplitMix64Test, StatelessMixerMatchesKnownProperties) {
  // Mixer must be a bijection-like scrambler: no collisions on a small
  // domain and not the identity.
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 4096; ++x) outputs.insert(SplitMix64Once(x));
  EXPECT_EQ(outputs.size(), 4096u);
  EXPECT_NE(SplitMix64Once(0), 0u);
}

TEST(Xoshiro256Test, DeterministicAndSeedSensitive) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  Xoshiro256StarStar c(8);
  bool all_equal = true;
  for (int i = 0; i < 50; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    all_equal &= (va == c.Next());
  }
  EXPECT_FALSE(all_equal);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleMeanIsHalf) {
  Xoshiro256StarStar rng(13);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Xoshiro256Test, NextBoundedStaysInRange) {
  Xoshiro256StarStar rng(17);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Xoshiro256Test, NextBoundedIsApproximatelyUniform) {
  Xoshiro256StarStar rng(19);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], trials / static_cast<double>(bound),
                5 * std::sqrt(trials / static_cast<double>(bound)));
  }
}

TEST(Xoshiro256Test, GaussianMomentsMatchStandardNormal) {
  Xoshiro256StarStar rng(23);
  const int trials = 200000;
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum2 / trials, 1.0, 0.03);
  EXPECT_NEAR(sum4 / trials, 3.0, 0.15);  // normal kurtosis
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGeneratorInterface) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() == ~0ULL);
  Xoshiro256StarStar rng(3);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace sketch
