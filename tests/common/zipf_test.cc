#include "common/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(1000, 1.1, 1);
  double total = 0.0;
  for (uint64_t r = 0; r < 1000; ++r) total += zipf.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, ProbabilityDecreasesWithRank) {
  ZipfGenerator zipf(100, 1.0, 2);
  for (uint64_t r = 1; r < 100; ++r) {
    EXPECT_GE(zipf.Probability(r - 1), zipf.Probability(r));
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfGenerator zipf(50, 0.0, 3);
  for (uint64_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 1.0 / 50, 1e-12);
  }
}

TEST(ZipfTest, SamplesStayInUniverse) {
  ZipfGenerator zipf(17, 1.3, 4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 17u);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesPmf) {
  const uint64_t n = 100;
  ZipfGenerator zipf(n, 1.2, 5);
  const int trials = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < trials; ++i) ++counts[zipf.Next()];
  // Head ranks should match their analytic probability within 4 sigma.
  for (uint64_t r = 0; r < 5; ++r) {
    const double p = zipf.Probability(r);
    const double sigma = std::sqrt(trials * p * (1 - p));
    EXPECT_NEAR(counts[r], trials * p, 4 * sigma) << "rank " << r;
  }
}

TEST(ZipfTest, HigherAlphaConcentratesMoreMassOnHead) {
  ZipfGenerator mild(1000, 0.8, 6);
  ZipfGenerator heavy(1000, 1.6, 6);
  EXPECT_LT(mild.Probability(0), heavy.Probability(0));
}

TEST(ZipfTest, SingletonUniverse) {
  ZipfGenerator zipf(1, 1.0, 7);
  EXPECT_EQ(zipf.Next(), 0u);
  EXPECT_NEAR(zipf.Probability(0), 1.0, 1e-12);
}

TEST(ZipfTest, DeterministicForSameSeed) {
  ZipfGenerator a(64, 1.1, 99);
  ZipfGenerator b(64, 1.1, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace sketch
