#include "common/timer.h"

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  const double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double last = first;
  for (int i = 0; i < 5; ++i) {
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(TimerTest, ResetRestartsFromZero) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(TimerTest, MillisecondsAreSecondsTimesThousand) {
  Timer timer;
  const double s = timer.ElapsedSeconds();
  const double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // same order; both monotone
}

}  // namespace
}  // namespace sketch
