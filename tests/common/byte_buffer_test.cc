#include "common/byte_buffer.h"

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(ByteBufferTest, U64RoundTrip) {
  std::vector<uint8_t> buffer;
  AppendU64(0, &buffer);
  AppendU64(1, &buffer);
  AppendU64(0xdeadbeefcafef00dULL, &buffer);
  AppendU64(~0ULL, &buffer);
  EXPECT_EQ(buffer.size(), 32u);
  ByteReader reader(buffer);
  EXPECT_EQ(reader.ReadU64(), 0u);
  EXPECT_EQ(reader.ReadU64(), 1u);
  EXPECT_EQ(reader.ReadU64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(reader.ReadU64(), ~0ULL);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferTest, I64RoundTripNegative) {
  std::vector<uint8_t> buffer;
  AppendI64(-1, &buffer);
  AppendI64(-123456789012345LL, &buffer);
  AppendI64(42, &buffer);
  ByteReader reader(buffer);
  EXPECT_EQ(reader.ReadI64(), -1);
  EXPECT_EQ(reader.ReadI64(), -123456789012345LL);
  EXPECT_EQ(reader.ReadI64(), 42);
}

TEST(ByteBufferTest, LittleEndianLayout) {
  std::vector<uint8_t> buffer;
  AppendU64(0x0102030405060708ULL, &buffer);
  EXPECT_EQ(buffer[0], 0x08);
  EXPECT_EQ(buffer[7], 0x01);
}

TEST(ByteBufferTest, AtEndTracksPosition) {
  std::vector<uint8_t> buffer;
  AppendU64(5, &buffer);
  ByteReader reader(buffer);
  EXPECT_FALSE(reader.AtEnd());
  reader.ReadU64();
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteBufferDeathTest, TruncatedReadAborts) {
  std::vector<uint8_t> buffer = {1, 2, 3};  // < 8 bytes
  ByteReader reader(buffer);
  EXPECT_DEATH(reader.ReadU64(), "truncated");
}

}  // namespace
}  // namespace sketch
