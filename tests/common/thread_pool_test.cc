#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

namespace sketch {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.Submit(
          [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(0, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 3, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSafe) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must finish everything before joining.
  }
  EXPECT_EQ(count.load(), 500);
}

}  // namespace
}  // namespace sketch
