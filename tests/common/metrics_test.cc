#include "common/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(NormsTest, L1L2LInfOnKnownVector) {
  const std::vector<double> x = {3.0, -4.0, 0.0};
  EXPECT_DOUBLE_EQ(L1Norm(x), 7.0);
  EXPECT_DOUBLE_EQ(L2Norm(x), 5.0);
  EXPECT_DOUBLE_EQ(LInfNorm(x), 4.0);
}

TEST(NormsTest, EmptyVectorHasZeroNorm) {
  const std::vector<double> x;
  EXPECT_DOUBLE_EQ(L1Norm(x), 0.0);
  EXPECT_DOUBLE_EQ(L2Norm(x), 0.0);
  EXPECT_DOUBLE_EQ(LInfNorm(x), 0.0);
}

TEST(NormsTest, ComplexL2Norm) {
  const std::vector<std::complex<double>> x = {{3.0, 4.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(L2Norm(x), 5.0);
}

TEST(DistancesTest, L1AndL2Distance) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 0.0, 7.0};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 6.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), std::sqrt(4.0 + 16.0));
}

TEST(DistancesTest, ComplexL2Distance) {
  const std::vector<std::complex<double>> a = {{1.0, 0.0}};
  const std::vector<std::complex<double>> b = {{0.0, 1.0}};
  EXPECT_DOUBLE_EQ(L2Distance(a, b), std::sqrt(2.0));
}

TEST(BestKTermErrorTest, ZeroWhenKCoversSupport) {
  const std::vector<double> x = {0.0, 5.0, 0.0, -2.0};
  EXPECT_DOUBLE_EQ(BestKTermError(x, 2, 1), 0.0);
  EXPECT_DOUBLE_EQ(BestKTermError(x, 4, 2), 0.0);
}

TEST(BestKTermErrorTest, TailNormForSmallK) {
  const std::vector<double> x = {4.0, -3.0, 2.0, 1.0};
  // Best 2-term approximation keeps {4, -3}; the tail is {2, 1}.
  EXPECT_DOUBLE_EQ(BestKTermError(x, 2, 1), 3.0);
  EXPECT_DOUBLE_EQ(BestKTermError(x, 2, 2), std::sqrt(5.0));
}

TEST(BestKTermErrorTest, KZeroIsFullNorm) {
  const std::vector<double> x = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(BestKTermError(x, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(BestKTermError(x, 0, 2), std::sqrt(2.0));
}

TEST(PrecisionRecallTest, PerfectRetrieval) {
  const PrecisionRecall pr = ComputePrecisionRecall({1, 2, 3}, {3, 2, 1});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(PrecisionRecallTest, PartialOverlap) {
  const PrecisionRecall pr = ComputePrecisionRecall({1, 2, 4, 5}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_NEAR(pr.recall, 2.0 / 3.0, 1e-12);
}

TEST(PrecisionRecallTest, EmptyRetrievedGivesFullPrecisionZeroRecall) {
  const PrecisionRecall pr = ComputePrecisionRecall({}, {1});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(PrecisionRecallTest, EmptyTruthGivesZeroPrecisionFullRecall) {
  const PrecisionRecall pr = ComputePrecisionRecall({1}, {});
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(PrecisionRecallTest, BothEmpty) {
  const PrecisionRecall pr = ComputePrecisionRecall({}, {});
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

}  // namespace
}  // namespace sketch
