#include "linalg/sparse_vector.h"

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(SparseVectorTest, FromEntriesSortsAndMerges) {
  const SparseVector v =
      SparseVector::FromEntries(10, {{7, 1.0}, {2, 3.0}, {7, 2.0}});
  EXPECT_EQ(v.dimension(), 10u);
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.entries()[0].index, 2u);
  EXPECT_DOUBLE_EQ(v.entries()[0].value, 3.0);
  EXPECT_EQ(v.entries()[1].index, 7u);
  EXPECT_DOUBLE_EQ(v.entries()[1].value, 3.0);
}

TEST(SparseVectorTest, ZeroSumsAreDropped) {
  const SparseVector v =
      SparseVector::FromEntries(5, {{1, 2.0}, {1, -2.0}, {3, 1.0}});
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.entries()[0].index, 3u);
}

TEST(SparseVectorTest, DenseRoundTrip) {
  const std::vector<double> dense = {0.0, 1.5, 0.0, -2.0, 0.0};
  const SparseVector v = SparseVector::FromDense(dense);
  EXPECT_EQ(v.nnz(), 2u);
  const std::vector<double> back = v.ToDense();
  ASSERT_EQ(back.size(), dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], dense[i]);
  }
}

TEST(SparseVectorTest, FromDenseRespectsTolerance) {
  const std::vector<double> dense = {1e-12, 0.5, -1e-12};
  const SparseVector v = SparseVector::FromDense(dense, 1e-9);
  ASSERT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.entries()[0].index, 1u);
}

TEST(SparseVectorTest, EmptyVector) {
  const SparseVector v(4);
  EXPECT_EQ(v.dimension(), 4u);
  EXPECT_EQ(v.nnz(), 0u);
  const std::vector<double> dense = v.ToDense();
  for (double d : dense) EXPECT_DOUBLE_EQ(d, 0.0);
}

}  // namespace
}  // namespace sketch
