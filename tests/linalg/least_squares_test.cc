#include "linalg/least_squares.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/prng.h"

namespace sketch {
namespace {

TEST(LeastSquaresTest, ExactSolveOnSquareSystem) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 3.0;
  // Solution of [2 1; 1 3] x = [5; 10] is x = [1, 3].
  const std::vector<double> x = SolveLeastSquaresQr(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LeastSquaresTest, RecoversPlantedSolutionInOverdeterminedSystem) {
  const uint64_t m = 60, n = 10;
  DenseMatrix a(m, n);
  a.FillGaussian(5);
  std::vector<double> x_true(n);
  for (uint64_t i = 0; i < n; ++i) {
    x_true[i] = std::sin(static_cast<double>(i) + 1.0);
  }
  const std::vector<double> b = a.Multiply(x_true);
  const std::vector<double> x = SolveLeastSquaresQr(a, b);
  EXPECT_LT(L2Distance(x, x_true), 1e-9);
}

TEST(LeastSquaresTest, ResidualIsOrthogonalToColumnSpace) {
  const uint64_t m = 30, n = 5;
  DenseMatrix a(m, n);
  a.FillGaussian(7);
  Xoshiro256StarStar rng(9);
  std::vector<double> b(m);
  for (auto& v : b) v = rng.NextGaussian();
  const std::vector<double> x = SolveLeastSquaresQr(a, b);
  const std::vector<double> ax = a.Multiply(x);
  std::vector<double> r(m);
  for (uint64_t i = 0; i < m; ++i) r[i] = b[i] - ax[i];
  // A^T r must vanish at the minimizer.
  const std::vector<double> atr = a.MultiplyTranspose(r);
  for (uint64_t i = 0; i < n; ++i) EXPECT_NEAR(atr[i], 0.0, 1e-9);
}

TEST(LeastSquaresTest, MinimizerBeatsPerturbations) {
  const uint64_t m = 25, n = 4;
  DenseMatrix a(m, n);
  a.FillGaussian(13);
  Xoshiro256StarStar rng(17);
  std::vector<double> b(m);
  for (auto& v : b) v = rng.NextGaussian();
  const std::vector<double> x = SolveLeastSquaresQr(a, b);
  const double best = L2Distance(a.Multiply(x), b);
  for (uint64_t j = 0; j < n; ++j) {
    std::vector<double> x_pert = x;
    x_pert[j] += 0.01;
    EXPECT_GE(L2Distance(a.Multiply(x_pert), b), best);
  }
}

TEST(LeastSquaresTest, SingleColumn) {
  DenseMatrix a(3, 1);
  a.At(0, 0) = 1.0;
  a.At(1, 0) = 2.0;
  a.At(2, 0) = 2.0;
  // min ||a t - b||: t = <a,b>/<a,a> = (1*3 + 2*0 + 2*3)/9 = 1.
  const std::vector<double> x = SolveLeastSquaresQr(a, {3.0, 0.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace sketch
