#include "linalg/dense_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sketch {
namespace {

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(3, 4);
  for (uint64_t r = 0; r < 3; ++r) {
    for (uint64_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 0.0);
  }
}

TEST(DenseMatrixTest, MultiplyKnownValues) {
  DenseMatrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 0, -1] = [-2, -2]
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  const std::vector<double> y = m.Multiply({1.0, 0.0, -1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrixTest, MultiplyTransposeKnownValues) {
  DenseMatrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  const std::vector<double> y = m.MultiplyTranspose({1.0, 1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(DenseMatrixTest, TransposeIsAdjoint) {
  // <Ax, y> == <x, A^T y> for random data.
  DenseMatrix m(5, 7);
  m.FillGaussian(3);
  std::vector<double> x(7), y(5);
  for (int i = 0; i < 7; ++i) x[i] = 0.1 * (i + 1);
  for (int i = 0; i < 5; ++i) y[i] = 0.3 * (i - 2);
  EXPECT_NEAR(Dot(m.Multiply(x), y), Dot(x, m.MultiplyTranspose(y)), 1e-12);
}

TEST(DenseMatrixTest, GaussianFillHasExpectedScale) {
  const uint64_t rows = 200, cols = 100;
  DenseMatrix m(rows, cols);
  m.FillGaussian(11);
  // Column norms should concentrate around 1 (variance 1/rows per entry).
  double total = 0.0;
  for (uint64_t c = 0; c < cols; ++c) {
    double norm2 = 0.0;
    for (uint64_t r = 0; r < rows; ++r) norm2 += m.At(r, c) * m.At(r, c);
    total += norm2;
  }
  EXPECT_NEAR(total / cols, 1.0, 0.05);
}

TEST(DenseMatrixTest, RademacherEntriesHaveCorrectMagnitude) {
  DenseMatrix m(16, 8);
  m.FillRademacher(9);
  const double mag = 1.0 / std::sqrt(16.0);
  for (uint64_t r = 0; r < 16; ++r) {
    for (uint64_t c = 0; c < 8; ++c) {
      EXPECT_DOUBLE_EQ(std::abs(m.At(r, c)), mag);
    }
  }
}

TEST(DotAxpyTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0}, {3.0, -1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(DotAxpyTest, AxpyAccumulates) {
  std::vector<double> y = {1.0, 1.0};
  Axpy(2.0, {3.0, -1.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

}  // namespace
}  // namespace sketch
