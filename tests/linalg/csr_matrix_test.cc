#include "linalg/csr_matrix.h"

#include <gtest/gtest.h>

namespace sketch {
namespace {

CsrMatrix MakeExample() {
  // [1 0 2]
  // [0 3 0]
  return CsrMatrix::FromTriplets(2, 3,
                                 {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
}

TEST(CsrMatrixTest, DimensionsAndNnz) {
  const CsrMatrix m = MakeExample();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(CsrMatrixTest, MultiplyDense) {
  const CsrMatrix m = MakeExample();
  const std::vector<double> y = m.Multiply(std::vector<double>{1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrMatrixTest, MultiplyTranspose) {
  const CsrMatrix m = MakeExample();
  const std::vector<double> y = m.MultiplyTranspose({1.0, 1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(CsrMatrixTest, MultiplySparseMatchesDense) {
  const CsrMatrix m = MakeExample();
  const SparseVector x =
      SparseVector::FromEntries(3, {{0, 1.0}, {2, 3.0}});
  const std::vector<double> y_sparse = m.Multiply(x);
  const std::vector<double> y_dense = m.Multiply(x.ToDense());
  ASSERT_EQ(y_sparse.size(), y_dense.size());
  for (size_t i = 0; i < y_sparse.size(); ++i) {
    EXPECT_DOUBLE_EQ(y_sparse[i], y_dense[i]);
  }
}

TEST(CsrMatrixTest, DuplicateTripletsAreSummed) {
  const CsrMatrix m =
      CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.Multiply(std::vector<double>{1.0})[0], 4.0);
}

TEST(CsrMatrixTest, RowViewExposesEntries) {
  const CsrMatrix m = MakeExample();
  const CsrMatrix::RowView row0 = m.Row(0);
  ASSERT_EQ(row0.size, 2u);
  EXPECT_EQ(row0.cols[0], 0u);
  EXPECT_DOUBLE_EQ(row0.values[0], 1.0);
  EXPECT_EQ(row0.cols[1], 2u);
  EXPECT_DOUBLE_EQ(row0.values[1], 2.0);
  const CsrMatrix::RowView row1 = m.Row(1);
  ASSERT_EQ(row1.size, 1u);
  EXPECT_EQ(row1.cols[0], 1u);
}

TEST(CsrMatrixTest, EmptyRowsHandled) {
  const CsrMatrix m = CsrMatrix::FromTriplets(3, 2, {{2, 1, 5.0}});
  EXPECT_EQ(m.Row(0).size, 0u);
  EXPECT_EQ(m.Row(1).size, 0u);
  EXPECT_EQ(m.Row(2).size, 1u);
  const std::vector<double> y = m.Multiply(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  const CsrMatrix m = MakeExample();
  const CsrMatrix mt = m.Transpose();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt.cols(), 2u);
  EXPECT_EQ(mt.nnz(), 3u);
  const CsrMatrix mtt = mt.Transpose();
  // A^TT == A: compare via products with a probe vector.
  const std::vector<double> probe = {1.0, -2.0, 0.5};
  const std::vector<double> a = m.Multiply(probe);
  const std::vector<double> b = mtt.Multiply(probe);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(CsrMatrixTest, TransposeIsAdjoint) {
  const CsrMatrix m = MakeExample();
  const std::vector<double> x = {1.0, 2.0, -1.0};
  const std::vector<double> y = {0.5, -3.0};
  double lhs = 0.0;
  const std::vector<double> ax = m.Multiply(x);
  for (size_t i = 0; i < y.size(); ++i) lhs += ax[i] * y[i];
  double rhs = 0.0;
  const std::vector<double> aty = m.MultiplyTranspose(y);
  for (size_t i = 0; i < x.size(); ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

}  // namespace
}  // namespace sketch
