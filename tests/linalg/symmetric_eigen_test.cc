#include "linalg/symmetric_eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"

namespace sketch {
namespace {

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  DenseMatrix a(3, 3);
  a.At(0, 0) = 5.0;
  a.At(1, 1) = -2.0;
  a.At(2, 2) = 1.0;
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  EXPECT_NEAR(eigen.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 1.0, 1e-12);
  EXPECT_NEAR(eigen.values[2], -2.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  EXPECT_NEAR(eigen.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 1.0, 1e-12);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eigen.vectors.At(0, 0)), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(JacobiEigenTest, ReconstructsRandomSymmetricMatrix) {
  const uint64_t n = 12;
  Xoshiro256StarStar rng(3);
  DenseMatrix a(n, n);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  // A == V diag(lam) V^T.
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = 0; j < n; ++j) {
      double recon = 0.0;
      for (uint64_t t = 0; t < n; ++t) {
        recon += eigen.vectors.At(i, t) * eigen.values[t] *
                 eigen.vectors.At(j, t);
      }
      ASSERT_NEAR(recon, a.At(i, j), 1e-9);
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsAreOrthonormal) {
  const uint64_t n = 10;
  Xoshiro256StarStar rng(4);
  DenseMatrix a(n, n);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  for (uint64_t c1 = 0; c1 < n; ++c1) {
    for (uint64_t c2 = c1; c2 < n; ++c2) {
      double dot = 0.0;
      for (uint64_t r = 0; r < n; ++r) {
        dot += eigen.vectors.At(r, c1) * eigen.vectors.At(r, c2);
      }
      ASSERT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiEigenTest, ValuesSortedDescending) {
  Xoshiro256StarStar rng(5);
  DenseMatrix a(8, 8);
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = i; j < 8; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  for (size_t t = 1; t < eigen.values.size(); ++t) {
    EXPECT_GE(eigen.values[t - 1], eigen.values[t]);
  }
}

TEST(JacobiEigenTest, TraceAndEigenvalueSumAgree) {
  Xoshiro256StarStar rng(6);
  const uint64_t n = 9;
  DenseMatrix a(n, n);
  double trace = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
    trace += a.At(i, i);
  }
  const SymmetricEigen eigen = JacobiEigenDecomposition(a);
  double sum = 0.0;
  for (double v : eigen.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

TEST(JacobiEigenTest, ZeroMatrix) {
  const SymmetricEigen eigen = JacobiEigenDecomposition(DenseMatrix(4, 4));
  for (double v : eigen.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace sketch
