// Network monitoring scenario (the survey's motivating application, cf.
// [EV02]): find the "elephant flows" in a packet stream using a dyadic
// Count-Min sketch, then merge sketches from two routers — something the
// counter-based algorithms cannot do.
//
// Build & run:   ./build/examples/network_heavy_hitters

#include <cstdio>

#include "sketch/dyadic_count_min.h"
#include "sketch/space_saving.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace {

constexpr int kLogFlows = 20;  // flow ids are 20-bit (e.g., hashed 5-tuples)

sketch::DyadicCountMin MakeRouterSketch() {
  // All routers share the seed so their sketches are mergeable.
  return sketch::DyadicCountMin(kLogFlows, /*width=*/4096, /*depth=*/4,
                                /*seed=*/2026);
}

}  // namespace

int main() {
  // Two routers each see half the traffic.
  const auto traffic_a =
      sketch::MakeZipfStream(1ULL << kLogFlows, 1.3, 300000, /*seed=*/1);
  const auto traffic_b =
      sketch::MakeZipfStream(1ULL << kLogFlows, 1.3, 300000, /*seed=*/1);

  sketch::DyadicCountMin router_a = MakeRouterSketch();
  sketch::DyadicCountMin router_b = MakeRouterSketch();
  router_a.UpdateAll(traffic_a);
  router_b.UpdateAll(traffic_b);

  // Heavy hitters at each router: flows above 0.5% of local traffic.
  const int64_t local_threshold = 300000 / 200;
  std::printf("router A sees %zu heavy flows, router B sees %zu\n",
              router_a.HeavyHitters(local_threshold).size(),
              router_b.HeavyHitters(local_threshold).size());

  // Network-wide view: stream the remaining updates of B into A's sketch
  // (linear sketches of the same geometry simply add; here we re-apply
  // B's updates to keep the example self-contained).
  sketch::DyadicCountMin global = MakeRouterSketch();
  global.UpdateAll(traffic_a);
  global.UpdateAll(traffic_b);

  const int64_t global_threshold = 600000 / 200;
  const auto heavy = global.HeavyHitters(global_threshold);
  std::printf("global heavy flows (>0.5%% of total): %zu\n", heavy.size());

  // Cross-check against exact counting and a counter-based alternative.
  sketch::FrequencyOracle exact;
  exact.UpdateAll(traffic_a);
  exact.UpdateAll(traffic_b);
  sketch::SpaceSaving ss(1024);
  for (const auto& u : traffic_a) ss.Update(u.item);
  for (const auto& u : traffic_b) ss.Update(u.item);

  std::printf("%12s %10s %10s %12s\n", "flow", "exact", "dyadicCM",
              "SpaceSaving");
  int shown = 0;
  for (uint64_t flow : exact.TopK(8)) {
    std::printf("%12llu %10lld %10lld %12lld\n",
                static_cast<unsigned long long>(flow),
                static_cast<long long>(exact.Count(flow)),
                static_cast<long long>(global.Estimate(flow)),
                static_cast<long long>(ss.Estimate(flow)));
    if (++shown >= 8) break;
  }

  // Quantiles of the flow-id distribution come for free from the dyadic
  // structure (useful for range-based traffic partitioning).
  std::printf("median flow id: %llu, p95 flow id: %llu\n",
              static_cast<unsigned long long>(global.Quantile(0.5)),
              static_cast<unsigned long long>(global.Quantile(0.95)));
  return 0;
}
