// Set reconciliation with Invertible Bloom Lookup Tables [GM11]: two
// replicas holding almost-identical key/value stores exchange a fixed-size
// IBLT — sized by the expected *difference*, not the store size — and each
// side lists exactly what the other is missing.
//
// Build & run:   ./build/examples/set_reconciliation

#include <cstdio>
#include <map>

#include "common/prng.h"
#include "sketch/iblt.h"

int main() {
  const uint64_t shared_keys = 1000000;  // 1M common entries
  const uint64_t diff_budget = 200;      // expected divergence

  // Each replica folds its whole store into an IBLT sized for the diff.
  // (Same seed => same hash functions => subtractable.)
  const uint64_t cells = static_cast<uint64_t>(diff_budget * 1.5);
  sketch::Iblt replica_a(cells, 3, /*seed=*/99);
  sketch::Iblt replica_b(cells, 3, /*seed=*/99);

  sketch::Xoshiro256StarStar rng(1);
  std::map<uint64_t, uint64_t> only_a, only_b;
  for (uint64_t i = 0; i < shared_keys; ++i) {
    const uint64_t key = rng.Next() | 1;
    const uint64_t value = rng.Next();
    replica_a.Insert(key, value);
    replica_b.Insert(key, value);
  }
  // Divergence: A has 60 keys B lacks; B has 40 keys A lacks.
  for (uint64_t i = 0; i < 60; ++i) {
    const uint64_t key = 0xA000000000000000ULL + i;
    only_a[key] = i;
    replica_a.Insert(key, i);
  }
  for (uint64_t i = 0; i < 40; ++i) {
    const uint64_t key = 0xB000000000000000ULL + i;
    only_b[key] = i * 7;
    replica_b.Insert(key, i * 7);
  }

  std::printf("stores: %llu shared entries + %zu/%zu unique\n",
              static_cast<unsigned long long>(shared_keys), only_a.size(),
              only_b.size());
  std::printf("exchanged IBLT: %llu cells (~%llu KiB) — independent of "
              "store size\n",
              static_cast<unsigned long long>(replica_a.num_cells()),
              static_cast<unsigned long long>(replica_a.num_cells() * 32 /
                                              1024));

  // B sends its IBLT to A; A subtracts and lists the symmetric difference.
  replica_a.Subtract(replica_b);
  const auto [entries, complete] = replica_a.ListEntries();
  std::printf("peeling %s; %zu differences listed\n",
              complete ? "complete" : "INCOMPLETE", entries.size());

  size_t a_correct = 0, b_correct = 0;
  for (const sketch::Iblt::Entry& e : entries) {
    if (e.sign > 0) {
      a_correct += (only_a.count(e.key) && only_a[e.key] == e.value);
    } else {
      b_correct += (only_b.count(e.key) && only_b[e.key] == e.value);
    }
  }
  std::printf("verified: %zu/%zu entries A must push, %zu/%zu entries A "
              "must pull\n",
              a_correct, only_a.size(), b_correct, only_b.size());
  return 0;
}
