// Full stream-analytics pipeline on realistic traffic: one StreamSummary
// answers point, range, quantile, heavy-hitter, and F2 queries from a
// single pass, and a TopKMonitor tracks the leaders continuously — all
// from a few hundred kilobytes of state regardless of flow count.
//
// Build & run:   ./build/examples/stream_analytics

#include <cstdio>

#include "sketch/stream_summary.h"
#include "sketch/topk_monitor.h"
#include "stream/frequency_oracle.h"
#include "stream/traffic_model.h"

int main() {
  // A realistic trace: heavy-tailed flow sizes, interleaved packets.
  sketch::TrafficModelOptions model;
  model.num_flows = 50000;
  model.flow_id_space = 1ULL << 24;
  model.pareto_shape = 1.15;
  model.max_flow_packets = 1 << 18;
  model.seed = 42;
  const sketch::TrafficTrace trace = sketch::GenerateTrafficTrace(model);
  std::printf("trace: %llu packets across %zu flows (top 1%% of flows carry "
              "%.0f%% of traffic)\n",
              static_cast<unsigned long long>(trace.total_packets),
              trace.flow_ids.size(),
              100 * sketch::TopFlowShare(trace, model.num_flows / 100));

  // One pass through both structures.
  sketch::StreamSummary::Options options;
  options.log_universe = 24;
  options.seed = 7;
  sketch::StreamSummary summary(options);
  sketch::TopKMonitor monitor(/*k=*/5, /*sketch_width=*/1 << 14,
                              /*sketch_depth=*/5, /*seed=*/7);
  for (const auto& packet : trace.packets) {
    summary.Update(packet);
    monitor.Update(packet);
  }
  std::printf("state: %llu counters (~%.1f MB) for a 2^24 flow space\n",
              static_cast<unsigned long long>(summary.SizeInCounters()),
              static_cast<double>(summary.SizeInCounters()) * 8.0 / 1e6);

  // Query the summary.
  std::printf("\ntotal packets (exact):     %lld\n",
              static_cast<long long>(summary.TotalCount()));
  std::printf("self-join size (F2, est):  %.3e\n", summary.EstimateF2());
  std::printf("median flow id (est):      %llu\n",
              static_cast<unsigned long long>(summary.Quantile(0.5)));
  const auto heavy = summary.HeavyHitters(/*phi=*/0.005);
  std::printf("flows above 0.5%% traffic:  %zu\n", heavy.size());

  // Continuous top-k agrees with the exact ranking.
  sketch::FrequencyOracle oracle;
  oracle.UpdateAll(trace.packets);
  std::printf("\n%14s %12s %12s\n", "flow", "exact", "monitor");
  for (const auto& [flow, estimate] : monitor.TopK()) {
    std::printf("%14llu %12lld %12lld\n",
                static_cast<unsigned long long>(flow),
                static_cast<long long>(oracle.Count(flow)),
                static_cast<long long>(estimate));
  }
  return 0;
}
