// Spectrum sensing scenario (survey §4): a wideband signal occupies only
// a handful of frequency channels. The sparse FFT identifies them reading
// a small fraction of the samples, far faster than a full FFT.
//
// Build & run:   ./build/examples/spectrum_sensing

#include <cstdio>

#include "common/timer.h"
#include "sfft/sfft.h"

int main() {
  const uint64_t n = 1 << 20;  // one million time samples
  const uint64_t k = 6;        // occupied channels

  // Synthesize: 6 carriers at unknown frequencies + mild noise.
  sketch::SparseSpectrumSignal signal =
      sketch::MakeSparseSpectrumSignal(n, k, /*seed=*/77);
  std::vector<sketch::Complex> samples = signal.time_domain;
  sketch::AddComplexNoise(&samples, 1e-3 / static_cast<double>(n),
                          /*seed=*/78);

  std::printf("true occupied channels:\n ");
  for (const auto& c : signal.coefficients) {
    std::printf(" %llu", static_cast<unsigned long long>(c.frequency));
  }
  std::printf("\n\n");

  // Full FFT baseline.
  sketch::Timer timer;
  const sketch::SfftResult fft = sketch::DenseFftTopK(samples, k);
  const double fft_ms = timer.ElapsedMillis();

  // Exact (aliasing) sparse FFT.
  sketch::SfftOptions options;
  options.sparsity = k;
  options.magnitude_tolerance = 1e-3;
  timer.Reset();
  const sketch::SfftResult sparse = sketch::ExactSparseFft(samples, options);
  const double sfft_ms = timer.ElapsedMillis();

  std::printf("%12s %12s %14s %14s\n", "method", "time (ms)", "samples read",
              "err (L2)");
  std::printf("%12s %12.2f %14llu %14.2e\n", "full FFT", fft_ms,
              static_cast<unsigned long long>(fft.samples_read),
              sketch::SpectrumL2Error(fft.coefficients, signal));
  std::printf("%12s %12.2f %14llu %14.2e\n", "sparse FFT", sfft_ms,
              static_cast<unsigned long long>(sparse.samples_read),
              sketch::SpectrumL2Error(sparse.coefficients, signal));

  std::printf("\nsparse FFT found channels:\n ");
  for (const auto& c : sparse.coefficients) {
    printf(" %llu", static_cast<unsigned long long>(c.frequency));
  }
  std::printf("\n(read %.3f%% of the input, %dx faster)\n",
              100.0 * static_cast<double>(sparse.samples_read) /
                  static_cast<double>(n),
              static_cast<int>(fft_ms / (sfft_ms > 0 ? sfft_ms : 1e-3)));
  return 0;
}
