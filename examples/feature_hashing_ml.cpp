// Machine-learning scenario (survey §3, cf. [WDL+09]): train a linear
// model over a string feature space using the hashing trick, then solve
// the regression in sketch space [CW13]. No feature dictionary is ever
// built, and the solve never touches the full design matrix.
//
// Build & run:   ./build/examples/feature_hashing_ml

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/prng.h"
#include "dimred/feature_hashing.h"
#include "dimred/sketched_regression.h"
#include "linalg/dense_matrix.h"
#include "linalg/least_squares.h"

namespace {

constexpr uint64_t kVocab = 128;       // token universe
constexpr uint64_t kHashedDim = 64;    // hashed feature space
constexpr int kSignalTokens = 10;      // tokens that drive the label

// A synthetic "document": a bag of token features with a linear label
// driven by the signal tokens (weight +2 / -2 alternating).
struct Document {
  std::vector<std::pair<std::string, double>> features;
  double label = 0.0;
};

std::vector<Document> MakeCorpus(int docs, uint64_t seed) {
  sketch::Xoshiro256StarStar rng(seed);
  std::vector<Document> corpus(docs);
  for (Document& doc : corpus) {
    const int len = 20 + static_cast<int>(rng.NextBounded(30));
    for (int t = 0; t < len; ++t) {
      const uint64_t token = rng.NextBounded(kVocab);
      doc.features.push_back({"tok" + std::to_string(token), 1.0});
      if (token < kSignalTokens) {
        doc.label += (token % 2 == 0 ? 2.0 : -2.0);
      }
    }
    doc.label += 0.1 * rng.NextGaussian();
  }
  return corpus;
}

std::vector<double> HashedRow(const sketch::FeatureHasher& hasher,
                              const Document& doc) {
  std::vector<double> row(kHashedDim, 0.0);
  for (const auto& [name, value] : doc.features) {
    hasher.AddFeature(name, value, &row);
  }
  return row;
}

double HeldOutR2(const sketch::FeatureHasher& hasher,
                 const std::vector<double>& weights, uint64_t seed) {
  const auto test = MakeCorpus(1000, seed);
  double mean = 0.0;
  for (const Document& doc : test) mean += doc.label;
  mean /= static_cast<double>(test.size());
  double sse = 0.0, var = 0.0;
  for (const Document& doc : test) {
    const std::vector<double> row = HashedRow(hasher, doc);
    double pred = 0.0;
    for (uint64_t c = 0; c < kHashedDim; ++c) pred += row[c] * weights[c];
    sse += (pred - doc.label) * (pred - doc.label);
    var += (doc.label - mean) * (doc.label - mean);
  }
  return 1.0 - sse / var;
}

}  // namespace

int main() {
  const auto corpus = MakeCorpus(/*docs=*/20000, /*seed=*/3);
  const sketch::FeatureHasher hasher(kHashedDim, /*seed=*/17);

  // Design matrix in hashed feature space — one pass, no dictionary.
  // Ridge-augmented with sqrt(lambda)*I rows: empty hash buckets would
  // otherwise make the least-squares system rank deficient.
  const double ridge = 1.0;
  sketch::DenseMatrix design(corpus.size() + kHashedDim, kHashedDim);
  std::vector<double> labels(corpus.size() + kHashedDim, 0.0);
  for (size_t d = 0; d < corpus.size(); ++d) {
    const std::vector<double> row = HashedRow(hasher, corpus[d]);
    for (uint64_t c = 0; c < kHashedDim; ++c) design.At(d, c) = row[c];
    labels[d] = corpus[d].label;
  }
  for (uint64_t c = 0; c < kHashedDim; ++c) {
    design.At(corpus.size() + c, c) = std::sqrt(ridge);
  }

  // Exact least squares on the hashed features (baseline)...
  const std::vector<double> exact = sketch::SolveLeastSquaresQr(design, labels);
  // ...versus solving through a Count-Sketch subspace embedding (needs
  // m = O(d^2) rows for a subspace guarantee — cheap at this d) — the
  // second hashing layer.
  const sketch::SketchedRegressionResult sketched =
      sketch::SolveSketchedRegression(
          design, labels, /*sketch_rows=*/8192,
          sketch::RegressionSketchType::kCountSketch, /*seed=*/23);

  std::printf("vocab %llu tokens -> %llu hashed dims (no dictionary built)\n",
              static_cast<unsigned long long>(kVocab),
              static_cast<unsigned long long>(kHashedDim));
  std::printf("%18s %16s %16s\n", "solver", "train residual", "held-out R^2");
  std::printf("%18s %16.4f %16.4f\n", "exact QR",
              sketch::RegressionResidual(design, exact, labels),
              HeldOutR2(hasher, exact, /*seed=*/4));
  std::printf("%18s %16.4f %16.4f\n", "CS sketch-and-solve",
              sketch::RegressionResidual(design, sketched.solution, labels),
              HeldOutR2(hasher, sketched.solution, /*seed=*/4));
  std::printf("sketch time %.1f ms + solve %.1f ms (design is 20000 x 64)\n",
              1e3 * sketched.sketch_seconds, 1e3 * sketched.solve_seconds);
  std::printf("(signal: %d planted tokens with weights +-2; hashing\n"
              " collisions cost a little accuracy but no dictionary memory)\n",
              kSignalTokens);
  return 0;
}
