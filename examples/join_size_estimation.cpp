// Database join-size estimation [CM04]: a query optimizer needs
// |R ⋈ S| = <freq_R, freq_S> without scanning either relation twice.
// Each relation keeps one small linear sketch of its join-key column;
// the inner product of the two sketches estimates the join size.
//
// Build & run:   ./build/examples/join_size_estimation

#include <cinttypes>
#include <cstdio>

#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

int main() {
  const uint64_t key_domain = 1 << 16;
  const uint64_t rows_r = 400000, rows_s = 250000;

  // Key columns of the two relations (skewed, shared domain).
  const auto keys_r = sketch::MakeZipfStream(key_domain, 1.1, rows_r,
                                             /*seed=*/1, false);
  const auto keys_s = sketch::MakeZipfStream(key_domain, 1.3, rows_s,
                                             /*seed=*/2, false);

  // Exact join size (what the optimizer cannot afford to compute online).
  sketch::FrequencyOracle exact_r, exact_s;
  exact_r.UpdateAll(keys_r);
  exact_s.UpdateAll(keys_s);
  int64_t exact_join = 0;
  for (const auto& [key, count] : exact_r.counts()) {
    exact_join += count * exact_s.Count(key);
  }

  std::printf("R: %" PRIu64 " rows, S: %" PRIu64
              " rows, exact |R join S| = %lld\n",
              rows_r, rows_s, static_cast<long long>(exact_join));
  std::printf("%10s %14s %16s %10s\n", "width", "CM estimate",
              "CS estimate", "CM space");

  for (uint64_t width : {1u << 10, 1u << 12, 1u << 14}) {
    sketch::CountMinSketch cm_r(width, 5, 7), cm_s(width, 5, 7);
    sketch::CountSketch cs_r(width, 5, 7), cs_s(width, 5, 7);
    cm_r.UpdateAll(keys_r);
    cm_s.UpdateAll(keys_s);
    cs_r.UpdateAll(keys_r);
    cs_s.UpdateAll(keys_s);
    std::printf("%10llu %14lld %16lld %8.0fKB\n",
                static_cast<unsigned long long>(width),
                static_cast<long long>(cm_r.EstimateInnerProduct(cm_s)),
                static_cast<long long>(cs_r.EstimateInnerProduct(cs_s)),
                static_cast<double>(width * 5) * 8.0 / 1024);
  }
  std::printf("\nCount-Min always overestimates (safe for memory grants);\n"
              "Count-Sketch is unbiased (better point estimate). Both\n"
              "converge to the exact size as width grows, from sketches\n"
              "thousands of times smaller than the relations.\n");
  return 0;
}
