// Compressed sensing scenario (survey §2): acquire a k-sparse signal from
// far fewer measurements than its dimension, with a *hashing-based*
// measurement matrix, and reconstruct it in near-linear time.
//
// Build & run:   ./build/examples/compressed_sensing_demo

#include <cstdio>

#include "common/metrics.h"
#include "cs/ensembles.h"
#include "cs/hashed_recovery.h"
#include "cs/signals.h"
#include "cs/ssmp.h"

int main() {
  const uint64_t n = 1 << 14;  // signal dimension
  const uint64_t k = 12;       // nonzeros

  // A k-sparse "spike train" signal.
  const sketch::SparseVector x = sketch::MakeSparseSignal(
      n, k, sketch::SignalValueDistribution::kUniformMagnitude, /*seed=*/5);
  std::printf("signal: n = %llu, k = %llu nonzeros\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(k));

  // --- Path 1: Count-Sketch measurements + top-k point estimation [CM06].
  const sketch::HashedRecovery sensor(
      sketch::HashedRecovery::Variant::kCountSketch, /*width=*/16 * k,
      /*depth=*/15, n, /*seed=*/9);
  const std::vector<double> y = sensor.Measure(x);
  std::printf("count-sketch sensor: m = %llu measurements (%.2f%% of n)\n",
              static_cast<unsigned long long>(sensor.NumMeasurements()),
              100.0 * static_cast<double>(sensor.NumMeasurements()) /
                  static_cast<double>(n));
  const sketch::SparseVector rec1 = sensor.RecoverTopK(y, k);
  std::printf("  recovery l2 error: %.2e\n",
              sketch::L2Distance(rec1.ToDense(), x.ToDense()));

  // --- Path 2: sparse binary (expander) matrix + SSMP [BIR08].
  const uint64_t m = 20 * k;
  const sketch::CsrMatrix a = sketch::MakeSparseBinaryMatrix(m, n, 8, 11);
  const std::vector<double> y2 = a.Multiply(x.ToDense());
  sketch::SsmpOptions opt;
  opt.sparsity = k;
  const sketch::SsmpResult rec2 = sketch::SsmpRecover(a, y2, opt);
  std::printf("sparse-binary sensor: m = %llu measurements (%.2f%% of n)\n",
              static_cast<unsigned long long>(m), 100.0 * m / n);
  std::printf("  SSMP l2 error: %.2e (residual l1 %.2e, %d phases)\n",
              sketch::L2Distance(rec2.estimate.ToDense(), x.ToDense()),
              rec2.residual_l1, rec2.phases_run);

  // --- Robustness: noisy measurements.
  std::vector<double> y_noisy = y2;
  sketch::AddGaussianNoise(&y_noisy, 0.01, 13);
  const sketch::SsmpResult rec3 = sketch::SsmpRecover(a, y_noisy, opt);
  std::printf("with 1%%-scale measurement noise: SSMP l2 error %.3f\n",
              sketch::L2Distance(rec3.estimate.ToDense(), x.ToDense()));

  std::printf("\nrecovered support (SSMP, noiseless):\n");
  for (const sketch::SparseEntry& e : rec2.estimate.entries()) {
    std::printf("  x[%llu] = %+.4f\n",
                static_cast<unsigned long long>(e.index), e.value);
  }
  return 0;
}
