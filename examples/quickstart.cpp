// Quickstart: estimate item frequencies from a single pass over a stream
// using a Count-Min sketch, in a few kilobytes of state.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "sketch/count_min.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

int main() {
  // A skewed stream: 200k updates over a universe of a million items.
  const auto stream = sketch::MakeZipfStream(/*universe=*/1 << 20,
                                             /*alpha=*/1.2,
                                             /*length=*/200000,
                                             /*seed=*/42);

  // (eps, delta) sizing: estimates within eps*N of truth w.p. 1-delta.
  sketch::CountMinSketch sketch_ =
      sketch::CountMinSketch::FromErrorBounds(/*eps=*/0.001, /*delta=*/0.01,
                                              /*seed=*/7);
  std::printf("sketch: %llu x %llu counters (%.1f KiB) for 2^20 items\n",
              static_cast<unsigned long long>(sketch_.depth()),
              static_cast<unsigned long long>(sketch_.width()),
              static_cast<double>(sketch_.SizeInCounters()) * 8.0 / 1024);

  // One pass.
  sketch_.UpdateAll(stream);

  // Compare a few estimates against exact counts.
  sketch::FrequencyOracle exact;
  exact.UpdateAll(stream);
  std::printf("%12s %10s %10s\n", "item", "exact", "estimate");
  for (uint64_t item : exact.TopK(10)) {
    std::printf("%12llu %10lld %10lld\n",
                static_cast<unsigned long long>(item),
                static_cast<long long>(exact.Count(item)),
                static_cast<long long>(sketch_.Estimate(item)));
  }
  return 0;
}
