// Standalone driver for the fuzz harnesses on toolchains without libFuzzer
// (the container and CI build-test jobs use g++). Replays every file in the
// corpus directories passed on the command line, then runs a deterministic
// mutation sweep over each seed input:
//
//   * every prefix truncation (length 0 .. n-1),
//   * every single-bit flip,
//   * length inflation by 1, 8, and 4096 trailing bytes.
//
// This is not coverage-guided fuzzing — the clang CI job does that — but it
// executes the exact malformed-input classes the deserializers must reject
// (truncated, bit-flipped, length-inflated) on every compiler, so the fuzz
// smoke test never silently disappears from a build.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunOne(const std::vector<uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

uint64_t SweepSeed(const std::vector<uint8_t>& seed) {
  uint64_t executions = 0;
  RunOne(seed);
  ++executions;
  for (size_t length = 0; length < seed.size(); ++length) {
    std::vector<uint8_t> truncated(seed.begin(),
                                   seed.begin() + static_cast<long>(length));
    RunOne(truncated);
    ++executions;
  }
  for (size_t bit = 0; bit < seed.size() * 8; ++bit) {
    std::vector<uint8_t> flipped = seed;
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    RunOne(flipped);
    ++executions;
  }
  for (size_t extra : {size_t{1}, size_t{8}, size_t{4096}}) {
    std::vector<uint8_t> inflated = seed;
    inflated.resize(seed.size() + extra, 0xa5);
    RunOne(inflated);
    ++executions;
  }
  return executions;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t files = 0;
  uint64_t executions = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        ++files;
        executions += SweepSeed(ReadFile(entry.path()));
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      ++files;
      executions += SweepSeed(ReadFile(arg));
    } else {
      std::fprintf(stderr, "fuzz_driver: no such corpus: %s\n", argv[i]);
      return 2;
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "fuzz_driver: empty corpus\n");
    return 2;
  }
  std::printf("fuzz_driver: %llu seed file(s), %llu executions, no crash\n",
              static_cast<unsigned long long>(files),
              static_cast<unsigned long long>(executions));
  return 0;
}
