// Fuzz harness: HashedRecovery input validation.
//
// The CS decoders consume measurement vectors that may come from outside
// the process, so the contract under test is: a measurement vector of the
// wrong length is rejected by a SKETCH_CHECK, and a right-length vector —
// with ANY bit patterns, including NaN and infinity — decodes without
// undefined behavior and returns a top-k estimate that respects the
// dimension and sparsity bounds.
//
// Input layout (little-endian, zero-padded past the end):
//   byte 0      variant (even = kCountSketch, odd = kCountMin)
//   byte 1      width   (clamped to [1, 32])
//   byte 2      depth   (clamped to [1, 8])
//   byte 3      dimension (clamped to [1, 64])
//   byte 4      k
//   bytes 5..12 seed
//   rest        doubles for the measurement vector y (count taken from the
//               input, so y.size() usually mismatches width * depth)

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "cs/hashed_recovery.h"
#include "fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sketch::fuzz::InputReader input(data, size);
  const auto variant = input.NextU8() % 2 == 0
                           ? sketch::HashedRecovery::Variant::kCountSketch
                           : sketch::HashedRecovery::Variant::kCountMin;
  const uint64_t width = 1 + input.NextU8() % 32;
  const uint64_t depth = 1 + input.NextU8() % 8;
  const uint64_t dimension = 1 + input.NextU8() % 64;
  const uint64_t k = input.NextU8();
  const uint64_t seed = input.NextU64();

  const sketch::HashedRecovery recovery(variant, width, depth, dimension,
                                        seed);
  std::vector<double> y;
  y.reserve(input.Remaining() / 8);
  while (input.Remaining() >= 8) y.push_back(input.NextDouble());

  try {
    const sketch::SparseVector recovered = recovery.RecoverTopK(y, k);
    // Only a correctly sized y may reach here, and the result must respect
    // the decoder's own bounds; anything else is a harness trap.
    if (y.size() != recovery.NumMeasurements()) __builtin_trap();
    if (recovered.entries().size() > k) __builtin_trap();
    for (const sketch::SparseEntry& e : recovered.entries()) {
      if (e.index >= dimension) __builtin_trap();
    }
    (void)recovery.EstimateCoordinate(y, 0);
  } catch (const sketch::CheckFailure&) {
    // Wrong-length measurement vector rejected — expected for most inputs.
  }
  return 0;
}
