#ifndef SKETCH_FUZZ_FUZZ_UTIL_H_
#define SKETCH_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

/// \file
/// Shared helpers for the libFuzzer harnesses under fuzz/.
///
/// Fuzz builds compile the whole library with SKETCH_FUZZING_ABORT_THROWS
/// (see common/check.h): a failed SKETCH_CHECK throws sketch::CheckFailure
/// instead of aborting, so "malformed buffer rejected" is an ordinary,
/// non-crashing outcome for a harness. Anything else that kills the process
/// — a sanitizer report, an uncaught exception, a __builtin_trap from a
/// violated round-trip invariant — is a real finding.

namespace sketch::fuzz {

/// Copies the raw fuzz input into the vector<uint8_t> the Deserialize()
/// entry points take.
inline std::vector<uint8_t> ToBytes(const uint8_t* data, size_t size) {
  return std::vector<uint8_t>(data, data + size);
}

/// Structured little-endian reader for harnesses that decode a geometry
/// prefix from the fuzz input. Returns zeros past the end (harnesses clamp
/// all geometry anyway).
class InputReader {
 public:
  InputReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t NextU8() {
    if (position_ >= size_) return 0;
    return data_[position_++];
  }

  uint64_t NextU64() {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(NextU8()) << (8 * i);
    }
    return value;
  }

  /// Reinterprets the next 8 bytes as a double (any bit pattern, including
  /// NaN/inf — decoders must tolerate them without undefined behavior).
  double NextDouble() {
    const uint64_t bits = NextU64();
    double value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
  }

  size_t Remaining() const {
    return position_ < size_ ? size_ - position_ : 0;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t position_ = 0;
};

/// Round-trip invariant shared by the Deserialize harnesses: if a buffer is
/// accepted, re-serializing the result must reproduce it bit for bit.
/// Trap (not SKETCH_CHECK) so the failure is visible even though checks
/// throw in fuzz builds.
inline void RequireIdentical(const std::vector<uint8_t>& accepted,
                             const std::vector<uint8_t>& reserialized) {
  if (accepted != reserialized) __builtin_trap();
}

}  // namespace sketch::fuzz

#endif  // SKETCH_FUZZ_FUZZ_UTIL_H_
