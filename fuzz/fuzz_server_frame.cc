// Fuzz harness: the sketchwire/1 frame decoder, the typed message
// decoders, and the full service dispatch behind them.
//
// The input is fed to a FrameDecoder in two fragments (exercising header /
// payload resumption), and every extracted frame is pushed through every
// typed decoder and then through SketchService::HandleFrame. Invariants
// enforced with a trap (a real finding, not a rejection):
//
//   * the service always answers with exactly one well-formed frame,
//   * the answer always carries a response opcode (0x80-0xff),
//   * no decode path allocates from a hostile length prefix — an
//     oversized declared length is rejected before the allocation, so the
//     harness runs clean under ASan's allocator limits.
//
// Malformed inputs ending in DecodeStatus::kBadFrame or a false return
// from a typed decoder are the expected outcome for most of the corpus.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "fuzz/fuzz_util.h"
#include "server/protocol.h"
#include "server/sketch_service.h"

namespace {

/// Every typed decoder must either reject the frame or fill the struct;
/// it must never read out of bounds (ASan's job to notice).
void TryAllDecoders(const sketch::server::Frame& frame) {
  using namespace sketch::server;
  CreateSketchRequest create;
  (void)DecodeCreateSketch(frame, &create);
  IngestRequest ingest;
  (void)DecodeIngest(frame, &ingest);
  PointQueryRequest query;
  (void)DecodePointQuery(frame, &query);
  HeavyHittersRequest hh;
  (void)DecodeHeavyHitters(frame, &hh);
  InnerProductRequest inner;
  (void)DecodeInnerProduct(frame, &inner);
  NamedRequest named;
  (void)DecodeNamedRequest(frame, &named);
  RestoreRequest restore;
  (void)DecodeRestore(frame, &restore);
  ErrorResponse error;
  (void)DecodeError(frame, &error);
  PointValueResponse value;
  (void)DecodePointValue(frame, &value);
  ItemsResponse items;
  (void)DecodeItems(frame, &items);
  BlobResponse blob;
  (void)DecodeBlob(frame, &blob);
  TextResponse text;
  (void)DecodeText(frame, &text);
  IngestAckResponse ack;
  (void)DecodeIngestAck(frame, &ack);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace sketch::server;
  try {
    SketchService service({});
    FrameDecoder decoder;
    // Split the input so every frame boundary can land mid-header or
    // mid-payload at least some of the time.
    const size_t half = size / 2;
    decoder.Feed(data, half);
    decoder.Feed(data + half, size - half);

    Frame frame;
    // Cap the frames handled per input so a frame-dense input cannot
    // create an unbounded registry.
    for (int handled = 0; handled < 64; ++handled) {
      if (decoder.Next(&frame) != DecodeStatus::kFrame) break;
      TryAllDecoders(frame);

      const std::vector<uint8_t> response = service.HandleFrame(frame);
      FrameDecoder response_decoder;
      response_decoder.Feed(response.data(), response.size());
      Frame response_frame;
      if (response_decoder.Next(&response_frame) != DecodeStatus::kFrame) {
        __builtin_trap();  // the server emitted a malformed frame
      }
      if (static_cast<uint8_t>(response_frame.opcode) < 0x80) {
        __builtin_trap();  // the server answered with a request opcode
      }
      if (response_decoder.buffered_bytes() != 0) {
        __builtin_trap();  // trailing bytes after the response frame
      }
    }
  } catch (const sketch::CheckFailure&) {
    // A SKETCH_CHECK rejected something downstream — acceptable only in
    // fuzz builds, where checks throw instead of aborting.
  }
  return 0;
}
