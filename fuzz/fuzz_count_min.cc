// Fuzz harness: CountMinSketch::Deserialize round-trip.
//
// Accepts arbitrary bytes; a well-formed buffer must round-trip bit-exactly
// through Deserialize → Serialize, survive a point query and a self-merge
// (which doubles every counter, exercising the linear-merge path under the
// sanitizers); a malformed buffer must be rejected by a SKETCH_CHECK with
// no memory access before the check fires.

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "fuzz/fuzz_util.h"
#include "sketch/count_min.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> bytes = sketch::fuzz::ToBytes(data, size);
  try {
    sketch::CountMinSketch sk = sketch::CountMinSketch::Deserialize(bytes);
    sketch::fuzz::RequireIdentical(bytes, sk.Serialize());
    (void)sk.Estimate(0);
    sk.Merge(sketch::CountMinSketch::Deserialize(bytes));
  } catch (const sketch::CheckFailure&) {
    // Malformed buffer rejected — the expected path for most inputs.
  }
  return 0;
}
