// Fuzz harness: BloomFilter::Deserialize round-trip (see fuzz_count_min.cc
// for the harness contract).
//
// One subtlety: a Bloom buffer's trailing bit-array word may carry bits
// above num_bits, which Serialize would faithfully reproduce, so the
// round-trip identity holds for arbitrary accepted word contents.

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "fuzz/fuzz_util.h"
#include "sketch/bloom_filter.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> bytes = sketch::fuzz::ToBytes(data, size);
  try {
    sketch::BloomFilter filter = sketch::BloomFilter::Deserialize(bytes);
    sketch::fuzz::RequireIdentical(bytes, filter.Serialize());
    (void)filter.MayContain(0);
    (void)filter.FillRatio();
    filter.Merge(sketch::BloomFilter::Deserialize(bytes));
  } catch (const sketch::CheckFailure&) {
    // Malformed buffer rejected — the expected path for most inputs.
  }
  return 0;
}
