// Fuzz harness: CountSketch::Deserialize round-trip (see fuzz_count_min.cc
// for the harness contract).

#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "fuzz/fuzz_util.h"
#include "sketch/count_sketch.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> bytes = sketch::fuzz::ToBytes(data, size);
  try {
    sketch::CountSketch sk = sketch::CountSketch::Deserialize(bytes);
    sketch::fuzz::RequireIdentical(bytes, sk.Serialize());
    (void)sk.Estimate(0);
    sk.Merge(sketch::CountSketch::Deserialize(bytes));
  } catch (const sketch::CheckFailure&) {
    // Malformed buffer rejected — the expected path for most inputs.
  }
  return 0;
}
