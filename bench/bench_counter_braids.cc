// E16 (extension): Counter Braids space vs exact-decode success [LMP+08].
//
// The per-flow measurement claim: braided shallow counters + message-
// passing decoding recover every flow count exactly using far fewer bits
// than one deep counter per flow, with a sharp decoding threshold as the
// braid shrinks.

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "sketch/counter_braids.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t universe = 1 << 18;
  const uint64_t stream_len = 40000;

  bench::PrintHeader(
      "E16 (extension): Counter Braids — bits per flow vs exact decode",
      "[LMP+08] braided counters + message passing count every flow "
      "exactly in ~half the bits of per-flow counters, with a sharp "
      "threshold below which decoding fails",
      "Zipf(1.2) stream, N=4e4 packets; layer-1 8-bit counters, layer-2 "
      "64-bit; exact = all flows recovered");

  const auto updates = MakeZipfStream(universe, 1.2, stream_len, 1);
  FrequencyOracle oracle;
  for (const StreamUpdate& u : updates) oracle.Update(u);
  std::vector<uint64_t> flows;
  for (const auto& [flow, count] : oracle.counts()) flows.push_back(flow);
  const double num_flows = static_cast<double>(flows.size());

  bench::Row("flows: %zu, exact per-flow counting would need %.1f bits/flow",
             flows.size(), 64.0);
  bench::Row("%10s %10s %12s %10s %12s", "m1", "m2", "bits/flow", "exact",
             "max |err|");
  for (double ratio : {0.6, 0.8, 1.0, 1.4, 2.0}) {
    CounterBraids::Options options;
    options.layer1_counters = static_cast<uint64_t>(ratio * num_flows);
    options.layer1_bits = 8;
    options.layer2_counters =
        static_cast<uint64_t>(0.15 * ratio * num_flows);
    options.seed = 7;
    CounterBraids braids(options);
    for (const StreamUpdate& u : updates) {
      braids.Update(u.item, static_cast<uint64_t>(u.delta));
    }
    const CounterBraids::DecodeResult decoded = braids.Decode(flows);
    uint64_t max_err = 0;
    for (const auto& [flow, count] : oracle.counts()) {
      const uint64_t est = decoded.counts.at(flow);
      const auto truth = static_cast<uint64_t>(count);
      max_err = std::max(max_err, est > truth ? est - truth : truth - est);
    }
    bench::Row("%10llu %10llu %12.2f %10s %12llu",
               static_cast<unsigned long long>(options.layer1_counters),
               static_cast<unsigned long long>(options.layer2_counters),
               static_cast<double>(braids.SizeInBits()) / num_flows,
               decoded.exact ? "yes" : "no",
               static_cast<unsigned long long>(max_err));
  }
  bench::Row("");
  bench::Row("Expected shape: exact decoding above ~1.2-1.4 layer-1 counters");
  bench::Row("per flow (~15-25 bits/flow, vs 64 for exact counters); below");
  bench::Row("the threshold decoding degrades, visibly in max |err|.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
