// E27: observability-plane overhead — tracing, slow-query log, health
// monitor, and HTTP exposition must be near-free on the serving path and
// must never perturb sketch state.
//
// Two claims, both checked here:
//
//  1. Bit-identity. The E26 mixed workload is run twice against a fresh
//     daemon: once with the full observability plane ON (HTTP exposition
//     + health monitor at 50ms, slow-query log, 1/1024 wire trace
//     sampling) and once with everything OFF. Count-Min ingest is
//     commutative, so both runs must leave byte-identical sketch state:
//     the Snapshot() blobs are digested with FNV-1a and compared. A
//     mismatch exits nonzero unconditionally — observation must not
//     mutate.
//
//  2. Throughput. ON should be within a few percent of OFF; measured
//     best-of-kReps runs land within noise of zero (ON sometimes wins).
//     The --gate threshold is deliberately loose (15%) for the same
//     reason as the E26 gate: a full mixed TCP workload on a shared
//     runner swings ±10-20% run to run, and the gate exists to catch a
//     collapsed plane (tracing accidentally unconditional, a runaway
//     health period), not a few percent. The gate is opt-in via --gate
//     so local runs don't fail on an unlucky box; CI passes --gate.
//
// During the ON run the /metrics endpoint is scraped once mid-flight to
// confirm the exposition path serves under load.
//
// Usage: bench_server_e27 [--gate] [--out PATH]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/prng.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "stream/generators.h"

namespace sketch::server {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kIngestBatch = 64;
constexpr std::size_t kQueryBatch = 16;
constexpr std::size_t kWindow = 32;       // pipelined ops per round trip
constexpr std::size_t kConnections = 16;
constexpr std::size_t kTotalOps = 24576;  // split across connections
constexpr uint64_t kTraceEvery = 1024;    // ON-run wire-trace sampling
constexpr int kReps = 5;                  // best-of to damp scheduler noise

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct RunResult {
  double ops_per_second = 0.0;
  double p99_us = 0.0;
  uint64_t state_digest = 0;
  bool scrape_ok = false;
  bool ok = false;
};

/// One E26-shaped mixed run. `observability` turns on every plane at
/// once: HTTP exposition, health monitor, slow-query log, and client-side
/// wire trace stamping at 1/kTraceEvery.
RunResult RunMixed(bool observability) {
  SketchServer::Options options;
  options.io_threads = 1;
  options.enable_http = observability;
  options.health_period_ms = 50;
  options.slow_query_log_size = observability ? 8 : 0;
  SketchServer server(options);
  RunResult result;
  if (!server.Start()) return result;
  const uint16_t port = server.port();

  {
    auto admin_stream = ConnectTcp("127.0.0.1", port);
    if (admin_stream == nullptr) return result;
    SketchClient admin(std::move(admin_stream));
    if (!admin.CreateSketch("bench", SketchType::kCountMin,
                            {16384, 4, 42, 0, 0})) {
      return result;
    }
  }

  const std::size_t windows_per_conn = kTotalOps / (kConnections * kWindow);
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> latencies(kConnections);

  constexpr std::size_t kBatchPool = 16;
  std::vector<std::vector<uint8_t>> ingest_frames(kBatchPool);
  {
    const std::vector<StreamUpdate> zipf =
        MakeZipfStream(kUniverse, 1.1, kIngestBatch * kBatchPool, 900);
    for (std::size_t b = 0; b < kBatchPool; ++b) {
      IngestRequest request;
      request.name = "bench";
      request.updates.assign(zipf.begin() + b * kIngestBatch,
                             zipf.begin() + (b + 1) * kIngestBatch);
      ingest_frames[b] = EncodeIngest(request);
    }
  }

  std::latch ready(static_cast<std::ptrdiff_t>(kConnections));
  std::latch go(1);

  Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(kConnections);
  for (std::size_t c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      auto stream = ConnectTcp("127.0.0.1", port);
      if (stream == nullptr) {
        failed.store(true, std::memory_order_relaxed);
        ready.count_down();
        return;
      }
      Xoshiro256StarStar rng(0xe27 + c);
      SplitMix64 trace_rng(0xace1 + c);
      FrameDecoder decoder;
      std::vector<uint8_t> chunk(64 * 1024);
      std::vector<uint64_t> keys(kQueryBatch);
      latencies[c].reserve(windows_per_conn);
      std::size_t writes = c;  // stagger the shared ingest-frame pool
      uint64_t op_count = 0;
      ready.count_down();
      go.wait();
      for (std::size_t w = 0; w < windows_per_conn; ++w) {
        std::vector<uint8_t> wire;
        for (std::size_t op = 0; op < kWindow; ++op) {
          const bool traced =
              observability && op_count++ % kTraceEvery == 0;
          if (rng.NextDouble() < 0.5) {
            PointQueryBatchRequest request;
            request.name = "bench";
            for (uint64_t& k : keys) k = rng.NextBounded(kUniverse);
            request.items = keys;
            std::vector<uint8_t> frame = EncodePointQueryBatch(request);
            if (traced) StampTraceId(&frame, trace_rng.Next() | 1);
            wire.insert(wire.end(), frame.begin(), frame.end());
          } else {
            const std::vector<uint8_t>& pooled =
                ingest_frames[writes % kBatchPool];
            ++writes;
            if (traced) {
              std::vector<uint8_t> frame = pooled;  // pool stays unstamped
              StampTraceId(&frame, trace_rng.Next() | 1);
              wire.insert(wire.end(), frame.begin(), frame.end());
            } else {
              wire.insert(wire.end(), pooled.begin(), pooled.end());
            }
          }
        }
        const uint64_t start = MonotonicNowNs();
        if (!WriteAll(stream.get(), wire)) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        std::size_t responses = 0;
        while (responses < kWindow) {
          Frame frame;
          const DecodeStatus status = decoder.Next(&frame);
          if (status == DecodeStatus::kFrame) {
            if (frame.opcode == Opcode::kError) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            ++responses;
            continue;
          }
          if (status == DecodeStatus::kBadFrame) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          const std::ptrdiff_t n = stream->Read(chunk.data(), chunk.size());
          if (n <= 0) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          decoder.Feed(chunk.data(), static_cast<std::size_t>(n));
        }
        latencies[c].push_back(
            static_cast<double>(MonotonicNowNs() - start) * 1e-3);
        total_ops.fetch_add(kWindow, std::memory_order_relaxed);
      }
    });
  }
  ready.wait();
  timer.Reset();
  go.count_down();

  if (observability) {
    // Scrape /metrics mid-flight: the exposition path must serve while
    // the daemon is under full load.
    auto http = ConnectTcp("127.0.0.1", server.http_port());
    if (http != nullptr) {
      const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
      if (WriteAll(http.get(), reinterpret_cast<const uint8_t*>(request),
                   sizeof(request) - 1)) {
        std::string response;
        uint8_t buf[4096];
        std::ptrdiff_t n;
        while ((n = http->Read(buf, sizeof(buf))) > 0) {
          response.append(reinterpret_cast<const char*>(buf),
                          static_cast<std::size_t>(n));
        }
        result.scrape_ok = response.rfind("HTTP/1.0 200", 0) == 0;
      }
    }
  }

  for (std::thread& t : clients) t.join();
  const double elapsed = timer.ElapsedSeconds();
  if (failed.load(std::memory_order_relaxed)) {
    server.Stop();
    return result;
  }

  {
    auto admin_stream = ConnectTcp("127.0.0.1", port);
    if (admin_stream == nullptr) {
      server.Stop();
      return result;
    }
    SketchClient admin(std::move(admin_stream));
    std::vector<uint8_t> blob;
    if (!admin.Snapshot("bench", &blob)) {
      server.Stop();
      return result;
    }
    result.state_digest = Fnv1a(blob);
  }
  server.Stop();

  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all.begin(), all.end());
  result.ops_per_second =
      static_cast<double>(total_ops.load(std::memory_order_relaxed)) /
      elapsed;
  if (!all.empty()) result.p99_us = all[all.size() * 99 / 100];
  result.ok = true;
  return result;
}

int Main(int argc, char** argv) {
  std::string out_path;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    }
  }

  bench::PrintHeader(
      "E27: observability-plane overhead (tracing + slow log + health "
      "monitor + /metrics)",
      "the full observability plane costs a few percent of mixed-workload "
      "throughput at most and leaves sketch state byte-identical",
      "16 connections x 32-op pipelined windows (E26 shape), one shared "
      "CountMin, 127.0.0.1 TCP, 1/1024 wire-trace sampling");

  RunResult best_off, best_on;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunResult off = RunMixed(false);
    const RunResult on = RunMixed(true);
    if (!off.ok || !on.ok) {
      bench::Row("E27: workload failed (rep %d)", rep);
      return 1;
    }
    if (off.state_digest != on.state_digest) {
      bench::Row("E27: STATE DIVERGENCE rep %d: off=%016llx on=%016llx", rep,
                 static_cast<unsigned long long>(off.state_digest),
                 static_cast<unsigned long long>(on.state_digest));
      return 1;
    }
    if (!on.scrape_ok) {
      bench::Row("E27: /metrics scrape under load failed (rep %d)", rep);
      return 1;
    }
    bench::Row("rep %d   off %8.1f Kops/s (p99 %7.1f us)   on %8.1f Kops/s "
               "(p99 %7.1f us)",
               rep, off.ops_per_second / 1e3, off.p99_us,
               on.ops_per_second / 1e3, on.p99_us);
    if (off.ops_per_second > best_off.ops_per_second) best_off = off;
    if (on.ops_per_second > best_on.ops_per_second) best_on = on;
  }

  const double overhead =
      1.0 - best_on.ops_per_second / best_off.ops_per_second;
  bench::Row("");
  bench::Row("best-of-%d: off %.1f Kops/s, on %.1f Kops/s -> overhead %.2f%%",
             kReps, best_off.ops_per_second / 1e3,
             best_on.ops_per_second / 1e3, overhead * 100.0);
  bench::Row("state digest %016llx (identical across all runs)",
             static_cast<unsigned long long>(best_off.state_digest));

  bench::BenchReporter reporter;
  reporter.Add("E27/observability_off", best_off.ops_per_second,
               1e9 / best_off.ops_per_second, "plane off");
  reporter.Add("E27/observability_on", best_on.ops_per_second,
               1e9 / best_on.ops_per_second, "plane on");
  bench::Row("");
  reporter.PrintTable();
  if (!out_path.empty() && !reporter.WriteSnapshot(out_path)) return 1;

  // Loose on purpose: mixed-TCP throughput on a shared box swings
  // ±10-20% run to run, so a tight gate would flake. 15% still catches
  // a collapsed plane (unconditional tracing, a runaway health period).
  if (gate && overhead > 0.15) {
    bench::Row("E27: GATE FAILED: overhead %.2f%% > 15%%", overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sketch::server

int main(int argc, char** argv) { return sketch::server::Main(argc, argv); }
