#ifndef SKETCH_BENCH_BENCH_UTIL_H_
#define SKETCH_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

/// \file
/// Minimal fixed-width table printer shared by the experiment harnesses
/// (bench_* binaries). Each harness prints the table or series that
/// reproduces one experiment from DESIGN.md's E1-E12 index.

namespace sketch::bench {

/// Prints the experiment banner: id, claim, and workload description.
inline void PrintHeader(const char* experiment_id, const char* claim,
                        const char* workload) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("Claim:    %s\n", claim);
  std::printf("Workload: %s\n", workload);
  std::printf("==============================================================================\n");
}

/// printf-style row helper so harness code reads as a table.
inline void Row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace sketch::bench

#endif  // SKETCH_BENCH_BENCH_UTIL_H_
