// E5: recovery time scaling — sparse-matrix recovery is near-linear in n,
// dense-matrix recovery is Omega(n*m) per iteration (survey §2).
//
// Claim [CM06, BIR08]: thanks to the sparsity of A, the k-sparse
// approximation can be computed in O(n log n) time, versus O(n m) for
// dense ensembles — the gap widens as n grows.

#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "cs/ensembles.h"
#include "cs/hashed_recovery.h"
#include "cs/omp.h"
#include "cs/signals.h"
#include "cs/ssmp.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t k = 10;
  bench::PrintHeader(
      "E5: encode+decode wall-clock vs signal dimension n (k = 10)",
      "sparse-matrix recovery runs in O~(n); dense-matrix algorithms pay "
      "Omega(n m) per correlation/iteration — the ratio grows with n",
      "k=10 Gaussian-valued sparse signals, m = 24k measurements");

  bench::Row("%8s %8s %16s %16s %16s %14s", "n", "m", "CountSketch (ms)",
             "SSMP (ms)", "OMP dense (ms)", "dense/hash");
  for (int log_n = 10; log_n <= 16; ++log_n) {
    const uint64_t n = 1ULL << log_n;
    const uint64_t m = 24 * k;
    const SparseVector x =
        MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, log_n);

    // Count-Sketch hashing: measure + top-k decode.
    double hash_ms = 0.0;
    {
      const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 2 * m / 12,
                              12, n, log_n);
      Timer timer;
      const auto y = hr.Measure(x);
      const SparseVector rec = hr.RecoverTopK(y, k);
      hash_ms = timer.ElapsedMillis();
      (void)rec;
    }

    // SSMP on sparse binary.
    double ssmp_ms = 0.0;
    {
      const CsrMatrix a = MakeSparseBinaryMatrix(m, n, 8, log_n);
      SsmpOptions opt;
      opt.sparsity = k;
      Timer timer;
      const auto y = a.Multiply(x.ToDense());
      const SsmpResult rec = SsmpRecover(a, y, opt);
      ssmp_ms = timer.ElapsedMillis();
      (void)rec;
    }

    // OMP on dense Gaussian (encode O(nm) + k correlation passes O(knm)).
    double omp_ms = 0.0;
    {
      const DenseMatrix a = MakeGaussianMatrix(m, n, log_n);
      OmpOptions opt;
      opt.sparsity = k;
      Timer timer;
      const auto y = a.Multiply(x.ToDense());
      const OmpResult rec = OmpRecover(a, y, opt);
      omp_ms = timer.ElapsedMillis();
      (void)rec;
    }

    bench::Row("%8llu %8llu %16.2f %16.2f %16.2f %14.1f",
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(m), hash_ms, ssmp_ms, omp_ms,
               omp_ms / (hash_ms > 0 ? hash_ms : 1e-3));
  }
  bench::Row("");
  bench::Row("Expected shape: hashing column grows ~linearly in n; OMP grows");
  bench::Row("like n*m per pass, so the dense/hash ratio increases with n.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
