// E20 (substrate): microbenchmarks of the computational kernels every
// algorithm above sits on — FFT variants, the Walsh-Hadamard butterfly,
// JL applications, and peeling-structure inserts. google-benchmark.

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "dimred/jl_transform.h"
#include "fft/fft.h"
#include "fft/real_fft.h"
#include "sfft/flat_filter.h"
#include "sfft/sparse_wht.h"

namespace sketch {
namespace {

std::vector<Complex> RandomComplex(uint64_t n, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.NextGaussian(), rng.NextGaussian());
  return x;
}

std::vector<double> RandomReal(uint64_t n, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextGaussian();
  return x;
}

void BM_FftPow2(benchmark::State& state) {
  const auto x = RandomComplex(state.range(0), 1);
  for (auto _ : state) benchmark::DoNotOptimize(Fft(x));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftPow2)->RangeMultiplier(4)->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oNLogN);

void BM_FftBluestein(benchmark::State& state) {
  // Worst case for Bluestein: length just above a power of two.
  const auto x = RandomComplex(state.range(0) + 1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(Fft(x));
}
BENCHMARK(BM_FftBluestein)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_RealFft(benchmark::State& state) {
  const auto x = RandomReal(state.range(0), 3);
  for (auto _ : state) benchmark::DoNotOptimize(RealFft(x));
}
BENCHMARK(BM_RealFft)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_DenseWht(benchmark::State& state) {
  const auto x = RandomReal(state.range(0), 4);
  for (auto _ : state) benchmark::DoNotOptimize(DenseWht(x));
}
BENCHMARK(BM_DenseWht)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_FlatFilterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    FlatFilter filter(1 << 16, state.range(0), 4, 1e-8);
    benchmark::DoNotOptimize(filter.ResponseAt(0));
  }
  state.SetLabel("B=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FlatFilterConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_CountSketchTransformApply(benchmark::State& state) {
  const CountSketchTransform t(1 << 16, 256, 5);
  const auto x = RandomReal(1 << 16, 6);
  for (auto _ : state) benchmark::DoNotOptimize(t.Apply(x));
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_CountSketchTransformApply);

void BM_SparseJlApply(benchmark::State& state) {
  const SparseJlTransform t(1 << 16, 256, static_cast<int>(state.range(0)),
                            7);
  const auto x = RandomReal(1 << 16, 8);
  for (auto _ : state) benchmark::DoNotOptimize(t.Apply(x));
  state.SetLabel("s=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SparseJlApply)->Arg(2)->Arg(8);

void BM_FjltApply(benchmark::State& state) {
  const FjltTransform t(1 << 16, 256, 9);
  const auto x = RandomReal(1 << 16, 10);
  for (auto _ : state) benchmark::DoNotOptimize(t.Apply(x));
}
BENCHMARK(BM_FjltApply);

}  // namespace
}  // namespace sketch

BENCHMARK_MAIN();
