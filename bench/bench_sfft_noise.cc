// E10: filter leakage and noise robustness (survey §4).
//
// Claim: careful filter design makes bucket leakage negligible
// [HIKP12b]; aliasing filters eliminate it completely [Iwe10, LWC12].
// Under additive noise, recovery error degrades proportionally to the
// noise level, with wider filter supports buying lower leakage floors.

#include <cmath>
#include <cstdint>

#include "bench/bench_util.h"
#include "sfft/flat_filter.h"
#include "sfft/sfft.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t n = 1 << 14;
  const uint64_t k = 8;
  const uint64_t buckets = 64;

  bench::PrintHeader(
      "E10a: flat-window filter quality vs support factor (n=2^14, B=64)",
      "careful filter design makes leakage negligible: passband ripple and "
      "stopband leakage fall exponentially with the filter support",
      "Gaussian-times-Dirichlet window; support in time samples");

  bench::Row("%8s %10s %16s %18s", "factor", "support", "passband ripple",
             "stopband leakage");
  for (int factor : {1, 2, 4, 8}) {
    const FlatFilter filter(n, buckets, factor, 1e-8);
    bench::Row("%8d %10llu %16.3e %18.3e", factor,
               static_cast<unsigned long long>(filter.support()),
               filter.PassbandRipple(), filter.StopbandLeakage());
  }

  bench::Row("");
  bench::PrintHeader(
      "E10b: recovery L2 error vs noise level (n=2^14, k=8)",
      "aliasing filters are exactly leak-free (error tracks noise down to "
      "machine precision); flat-window filters have a delta leakage floor",
      "unit-magnitude spectra + complex white noise of std sigma/n per "
      "sample (sigma = spectral-domain noise scale)");

  bench::Row("%12s %14s %14s %14s", "sigma", "exact err", "flat err",
             "FFT top-k err");
  for (double sigma : {0.0, 1e-6, 1e-4, 1e-2, 1e-1}) {
    const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(
        n, k, static_cast<uint64_t>(sigma * 1e9) + 3);
    std::vector<Complex> noisy = signal.time_domain;
    AddComplexNoise(&noisy, sigma / static_cast<double>(n),
                    static_cast<uint64_t>(sigma * 1e9) + 11);

    SfftOptions options;
    options.sparsity = k;
    options.max_rounds = 20;
    options.magnitude_tolerance = 1e-3;
    options.singleton_tolerance = sigma >= 1e-2 ? 0.2 : 0.05;
    const SfftResult exact = ExactSparseFft(noisy, options);

    const FlatFilter filter(n, buckets, 6, 1e-8);
    const SfftResult flat = FlatFilterSparseFft(noisy, filter, options);

    const SfftResult fft = DenseFftTopK(noisy, k);

    bench::Row("%12.1e %14.3e %14.3e %14.3e", sigma,
               SpectrumL2Error(exact.coefficients, signal),
               SpectrumL2Error(flat.coefficients, signal),
               SpectrumL2Error(fft.coefficients, signal));
  }
  bench::Row("");
  bench::Row("Expected shape: at sigma=0 both sFFTs are exact (aliasing to");
  bench::Row("machine precision, flat to the delta floor); error then grows");
  bench::Row("~linearly with sigma, tracking the FFT-top-k reference.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
