// E6: Johnson-Lindenstrauss distortion vs target dimension, for dense,
// sparse, Count-Sketch, and FJLT constructions (survey §3).
//
// Claim: all constructions achieve distortion 1 +- eps with
// m = O(eps^-2 log(1/delta)) — sparse maps match the dense dimension
// bound while touching only nnz(x) input entries.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/prng.h"
#include "dimred/jl_transform.h"

namespace sketch {
namespace {

constexpr uint64_t kInputDim = 1 << 14;
constexpr int kVectors = 60;

std::vector<std::vector<double>> MakeUnitVectors(uint64_t seed) {
  std::vector<std::vector<double>> vectors(kVectors);
  Xoshiro256StarStar rng(seed);
  for (auto& v : vectors) {
    v.resize(kInputDim);
    for (auto& x : v) x = rng.NextGaussian();
    const double norm = L2Norm(v);
    for (auto& x : v) x /= norm;
  }
  return vectors;
}

/// Worst multiplicative norm distortion across the vector set.
double MaxDistortion(const JlTransform& t,
                     const std::vector<std::vector<double>>& vectors) {
  double worst = 0.0;
  for (const auto& v : vectors) {
    const double norm = L2Norm(t.Apply(v));
    worst = std::max(worst, std::abs(norm - 1.0));
  }
  return worst;
}

void Run() {
  bench::PrintHeader(
      "E6: max norm distortion vs embedded dimension m",
      "hashing-based JL maps (sparse-JL, Count-Sketch) match the dense "
      "Gaussian distortion ~ sqrt(log(#points)/m) at the same m",
      "60 random unit vectors in R^16384; distortion = max | ||Sx|| - 1 |");

  const auto vectors = MakeUnitVectors(/*seed=*/7);
  bench::Row("%8s %12s %12s %14s %12s %14s", "m", "dense", "sparse-JL(8)",
             "countsketch", "FJLT", "sqrt(ln60/m)");
  for (uint64_t m = 64; m <= 4096; m <<= 1) {
    const DenseJlTransform dense(kInputDim, m, m);
    const SparseJlTransform sparse(kInputDim, m, 8, m);
    const CountSketchTransform cs(kInputDim, m, m);
    const FjltTransform fjlt(kInputDim, m, m);
    bench::Row("%8llu %12.4f %12.4f %14.4f %12.4f %14.4f",
               static_cast<unsigned long long>(m),
               MaxDistortion(dense, vectors), MaxDistortion(sparse, vectors),
               MaxDistortion(cs, vectors), MaxDistortion(fjlt, vectors),
               std::sqrt(std::log(60.0) / static_cast<double>(m)));
  }
  bench::Row("");
  bench::Row("Expected shape: every column decays ~1/sqrt(m); dense, sparse");
  bench::Row("and FJLT track the reference closely; Count-Sketch (1 nonzero");
  bench::Row("per column) is within a small constant of the others.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
