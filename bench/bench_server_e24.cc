// E24: sketch-as-a-service throughput and query latency under concurrent
// load.
//
// Claim: serving a sketch behind the sketchwire/1 protocol sustains
// multi-million updates/sec of batched ingest while answering point
// queries with low tail latency, because (a) framing adds a fixed 8-byte
// header per batch, amortized over kBatch updates, and (b) the service
// serializes sketch access with one mutex whose critical sections are
// O(batch) hashing, not I/O.
//
// Workload: an in-process loopback server (no kernel sockets, so the
// numbers measure the protocol + service stack, not the NIC). W writer
// connections stream Zipf(1.1) batches into one shared sketch while R
// reader connections fire point queries; we report sustained ingest
// updates/sec and the reader-side p50/p99 query latency, for both a plain
// CountMin and a 4-shard ShardedCountMin registry entry.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/connection.h"
#include "server/protocol.h"
#include "server/sketch_service.h"
#include "server/transport.h"
#include "stream/generators.h"

namespace sketch::server {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr uint64_t kBatch = 4096;
constexpr uint64_t kBatchesPerWriter = 256;  // ~4.2M updates total
constexpr uint64_t kUniverse = 1 << 20;

/// One loopback connection served on its own thread.
class Connection {
 public:
  explicit Connection(SketchService* service) {
    auto [client_end, server_end] = MakeLoopbackPair();
    client_ = std::make_unique<SketchClient>(std::move(client_end));
    thread_ = std::thread([service, stream = std::move(server_end)]() mutable {
      ServeConnection(stream.get(), service);
    });
  }
  ~Connection() {
    client_->Close();
    thread_.join();
  }
  SketchClient& client() { return *client_; }

 private:
  std::unique_ptr<SketchClient> client_;
  std::thread thread_;
};

struct RunResult {
  double updates_per_second = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t queries = 0;
};

RunResult RunWorkload(SketchService* service, const std::string& name) {
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(kReaders);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([service, &name, &done, &latencies, r] {
      Connection conn(service);
      uint64_t item = static_cast<uint64_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        PointValueResponse value;
        const uint64_t start = MonotonicNowNs();
        if (!conn.client().PointQuery(name, item % kUniverse, &value)) break;
        latencies[static_cast<std::size_t>(r)].push_back(
            static_cast<double>(MonotonicNowNs() - start) * 1e-3);
        item += 7919;
      }
    });
  }

  Timer timer;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([service, &name, w] {
      Connection conn(service);
      const std::vector<StreamUpdate> stream = MakeZipfStream(
          kUniverse, 1.1, kBatch * kBatchesPerWriter,
          static_cast<uint64_t>(w) + 1);
      for (uint64_t step = 0; step < kBatchesPerWriter; ++step) {
        const UpdateSpan batch(stream.data() + step * kBatch, kBatch);
        if (!conn.client().Ingest(name, batch)) return;
      }
    });
  }
  for (std::thread& t : writers) t.join();
  const double elapsed = timer.ElapsedSeconds();
  done.store(true);
  for (std::thread& t : readers) t.join();

  std::vector<double> all;
  for (const auto& per_reader : latencies) {
    all.insert(all.end(), per_reader.begin(), per_reader.end());
  }
  std::sort(all.begin(), all.end());
  RunResult result;
  result.updates_per_second =
      static_cast<double>(kWriters * kBatchesPerWriter * kBatch) / elapsed;
  result.queries = all.size();
  if (!all.empty()) {
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[all.size() * 99 / 100];
  }
  return result;
}

int Main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "E24: sketch-as-a-service throughput / latency (loopback)",
      "the protocol + service stack sustains millions of served updates/sec "
      "with sub-millisecond query tails under concurrent ingest",
      "4 writer connections x 256 batches x 4096 Zipf(1.1) updates, "
      "2 reader connections querying throughout, in-process loopback");

  bench::BenchReporter reporter;
  struct Config {
    const char* key;
    const char* label;
    SketchType type;
    std::array<uint64_t, 5> params;
  };
  const Config configs[] = {
      {"E24/CountMin/served_ingest", "w=16384 d=4",
       SketchType::kCountMin, {16384, 4, 42, 0, 0}},
      {"E24/ShardedCountMin/served_ingest", "w=16384 d=4 shards=4",
       SketchType::kShardedCountMin, {16384, 4, 42, 4, 0}},
  };

  for (const Config& config : configs) {
    ThreadPool pool(4);
    SketchService service({&pool, 4});
    {
      Connection admin(&service);
      if (!admin.client().CreateSketch("bench", config.type, config.params)) {
        bench::Row("E24: CreateSketch failed: %s",
                   admin.client().last_error().message.c_str());
        return 1;
      }
      const RunResult result = RunWorkload(&service, "bench");
      bench::Row("%-36s %8.2f Mupd/s   q p50 %7.1f us   p99 %7.1f us   "
                 "(%llu queries)",
                 config.key, result.updates_per_second / 1e6, result.p50_us,
                 result.p99_us,
                 static_cast<unsigned long long>(result.queries));
      reporter.Add(config.key, result.updates_per_second,
                   1e9 / result.updates_per_second, config.label);
      reporter.Add(std::string(config.key) + "/query_p99",
                   result.p99_us > 0.0 ? 1e6 / result.p99_us : 0.0,
                   result.p99_us * 1e3, "reader-side p99");
    }
  }

  bench::Row("");
  reporter.PrintTable();
  if (!out_path.empty() && !reporter.WriteSnapshot(out_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace sketch::server

int main(int argc, char** argv) { return sketch::server::Main(argc, argv); }
