// E9: sparse FFT vs full FFT running time (survey §4).
//
// Claim [HIKP12a/b]: for k-sparse spectra the DFT can be computed in
// O~(k log n) time, beating the O(n log n) FFT whenever k = o(n); for
// small k the algorithms are sub-linear (they do not read all of x).

#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "fft/fft.h"
#include "sfft/crt_sfft.h"
#include "sfft/sfft.h"

namespace sketch {
namespace {

double TimeFullFft(const std::vector<Complex>& x, uint64_t k) {
  Timer timer;
  const SfftResult r = DenseFftTopK(x, k);
  (void)r;
  return timer.ElapsedMillis();
}

void Run() {
  bench::PrintHeader(
      "E9a: runtime vs sparsity k at fixed n = 2^18",
      "sFFT runs in O~(k log n): beats the full FFT while k = o(n), with a "
      "crossover as k grows",
      "exactly k-sparse random spectra; times in ms; err = spectrum L2 error");

  {
    const uint64_t n = 1 << 18;
    bench::Row("%8s %12s %12s %12s %14s %12s", "k", "FFT (ms)",
               "exact (ms)", "flat (ms)", "flat samples", "exact err");
    for (uint64_t k : {1u, 4u, 16u, 64u, 256u, 1024u}) {
      const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, k, k);
      const double fft_ms = TimeFullFft(signal.time_domain, k);

      SfftOptions options;
      options.sparsity = k;
      options.max_rounds = 16;
      Timer timer;
      const SfftResult exact = ExactSparseFft(signal.time_domain, options);
      const double exact_ms = timer.ElapsedMillis();

      uint64_t buckets = 16;
      while (buckets < 4 * k) buckets <<= 1;
      const FlatFilter filter(n, buckets, 4, 1e-8);
      timer.Reset();
      const SfftResult flat =
          FlatFilterSparseFft(signal.time_domain, filter, options);
      const double flat_ms = timer.ElapsedMillis();

      bench::Row("%8llu %12.2f %12.2f %12.2f %14llu %12.2e",
                 static_cast<unsigned long long>(k), fft_ms, exact_ms,
                 flat_ms, static_cast<unsigned long long>(flat.samples_read),
                 SpectrumL2Error(exact.coefficients, signal));
    }
  }

  bench::Row("");
  bench::PrintHeader(
      "E9b: runtime vs signal length n at fixed k = 16",
      "the sFFT advantage over the FFT grows with n (sub-linear sampling)",
      "k=16 sparse spectra; times in ms");
  {
    const uint64_t k = 16;
    bench::Row("%10s %12s %12s %12s %14s %14s", "n", "FFT (ms)",
               "exact (ms)", "flat (ms)", "exact samples", "FFT/exact");
    for (int log_n = 14; log_n <= 20; log_n += 2) {
      const uint64_t n = 1ULL << log_n;
      const SparseSpectrumSignal signal =
          MakeSparseSpectrumSignal(n, k, log_n);
      const double fft_ms = TimeFullFft(signal.time_domain, k);

      SfftOptions options;
      options.sparsity = k;
      options.max_rounds = 16;
      Timer timer;
      const SfftResult exact = ExactSparseFft(signal.time_domain, options);
      const double exact_ms = timer.ElapsedMillis();

      const FlatFilter filter(n, 64, 4, 1e-8);
      timer.Reset();
      const SfftResult flat =
          FlatFilterSparseFft(signal.time_domain, filter, options);
      const double flat_ms = timer.ElapsedMillis();
      (void)flat;

      bench::Row("%10llu %12.2f %12.2f %12.2f %14llu %14.1f",
                 static_cast<unsigned long long>(n), fft_ms, exact_ms,
                 flat_ms,
                 static_cast<unsigned long long>(exact.samples_read),
                 fft_ms / (exact_ms > 0 ? exact_ms : 1e-3));
    }
  }
  bench::Row("");
  bench::PrintHeader(
      "E9c: deterministic CRT sFFT on smooth composite lengths",
      "co-prime aliasing reads each frequency's CRT digits directly "
      "[Iwe10-style]: leak-free, deterministic sampling pattern",
      "n = 2^a 3^b 5^c, k = 8; times in ms");
  {
    bench::Row("%10s %18s %12s %12s %12s", "n", "moduli", "FFT (ms)",
               "CRT (ms)", "samples");
    for (uint64_t n : {8u * 27u * 25u, 64u * 81u * 25u, 512u * 243u * 25u}) {
      const SparseSpectrumSignal signal = MakeSparseSpectrumSignal(n, 8, n);
      const double fft_ms = TimeFullFft(signal.time_domain, 8);
      CrtSfftOptions crt_options;
      crt_options.sparsity = 8;
      Timer timer;
      const CrtSfftResult crt = CrtSparseFft(signal.time_domain, crt_options);
      const double crt_ms = timer.ElapsedMillis();
      char moduli[64];
      std::snprintf(moduli, sizeof(moduli), "%llu*%llu*%llu",
                    static_cast<unsigned long long>(crt.moduli_used[0]),
                    static_cast<unsigned long long>(crt.moduli_used[1]),
                    static_cast<unsigned long long>(crt.moduli_used[2]));
      bench::Row("%10llu %18s %12.2f %12.3f %12llu",
                 static_cast<unsigned long long>(n), moduli, fft_ms, crt_ms,
                 static_cast<unsigned long long>(crt.samples_read));
    }
  }
  bench::Row("");
  bench::Row("Expected shape: sFFT times grow with k (E9a) and only weakly");
  bench::Row("with n (E9b); FFT grows ~n log n, so FFT/exact rises with n.");
  bench::Row("Crossover in E9a: full FFT wins once k approaches n / polylog.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
