// E8: sketch-and-solve least squares [CW13] (survey §3).
//
// Claim: a Count-Sketch subspace embedding applied in one pass over the
// rows gives a (1+eps)-approximate least-squares solution; total time is
// near input-sparsity, versus O(n d^2) for the exact QR solve.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/prng.h"
#include "common/timer.h"
#include "dimred/sketched_regression.h"
#include "linalg/least_squares.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t d = 50;
  bench::PrintHeader(
      "E8: sketched vs exact least squares (d = 50 features)",
      "[CW13] sketch-and-solve achieves (1+eps)-approximate regression in "
      "near input-sparsity time; exact QR costs O(n d^2)",
      "Gaussian design, planted solution + 10% noise, m = 4 d^2 sketch rows");

  bench::Row("%8s %12s %14s %14s %14s %14s", "n", "exact (ms)",
             "CS-sketch (ms)", "exact resid", "sketch resid", "ratio");
  for (int log_n = 13; log_n <= 17; ++log_n) {
    const uint64_t n = 1ULL << log_n;
    const uint64_t sketch_rows = std::min<uint64_t>(4 * d * d, n / 2);
    DenseMatrix a(n, d);
    a.FillGaussian(log_n);
    Xoshiro256StarStar rng(log_n + 100);
    std::vector<double> x_true(d);
    for (auto& v : x_true) v = rng.NextGaussian();
    std::vector<double> b = a.Multiply(x_true);
    for (auto& v : b) v += 0.1 * rng.NextGaussian();

    Timer timer;
    const std::vector<double> x_exact = SolveLeastSquaresQr(a, b);
    const double exact_ms = timer.ElapsedMillis();
    const double exact_resid = RegressionResidual(a, x_exact, b);

    timer.Reset();
    const SketchedRegressionResult sketched = SolveSketchedRegression(
        a, b, sketch_rows, RegressionSketchType::kCountSketch, log_n);
    const double sketch_ms = timer.ElapsedMillis();
    const double sketch_resid = RegressionResidual(a, sketched.solution, b);

    bench::Row("%8llu %12.2f %14.2f %14.6f %14.6f %14.4f",
               static_cast<unsigned long long>(n), exact_ms, sketch_ms,
               exact_resid, sketch_resid, sketch_resid / exact_resid);
  }
  bench::Row("");
  bench::Row("Expected shape: residual ratio stays close to 1 (within 1+eps)");
  bench::Row("while the sketched time grows ~linearly in n with a much");
  bench::Row("smaller constant than exact QR once n >> d^2.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
