// E4: measurements needed for sparse recovery — sparse hashing matrices
// vs dense Gaussian (survey §2).
//
// Claim: sparse (hashing/expander) matrices recover k-sparse signals from
// m = O(k log n) measurements, close to the optimal m = O(k log(n/k))
// achieved by dense Gaussian ensembles — the success-probability curves
// have the same phase-transition shape, shifted by a modest factor.

#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "cs/cosamp.h"
#include "cs/ensembles.h"
#include "cs/hashed_recovery.h"
#include "cs/iht.h"
#include "cs/omp.h"
#include "cs/signals.h"
#include "cs/ssmp.h"

namespace sketch {
namespace {

constexpr uint64_t kN = 4096;
constexpr int kTrials = 10;
constexpr double kSuccessTolerance = 1e-4;

bool RecoveredExactly(const SparseVector& estimate, const SparseVector& x) {
  return L2Distance(estimate.ToDense(), x.ToDense()) <
         kSuccessTolerance * (1.0 + L2Norm(x.ToDense()));
}

double SsmpSuccessRate(uint64_t k, uint64_t m, uint64_t seed_base) {
  int successes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = seed_base + trial;
    const CsrMatrix a = MakeSparseBinaryMatrix(m, kN, 8, seed);
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    SsmpOptions opt;
    opt.sparsity = k;
    successes += RecoveredExactly(
        SsmpRecover(a, a.Multiply(x.ToDense()), opt).estimate, x);
  }
  return static_cast<double>(successes) / kTrials;
}

double CountSketchSuccessRate(uint64_t k, uint64_t m, uint64_t seed_base) {
  // Split m into width x depth with depth ~ log n.
  const uint64_t depth = 12;
  const uint64_t width = std::max<uint64_t>(m / depth, 1);
  int successes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = seed_base + trial;
    const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, width,
                            depth, kN, seed);
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    successes += RecoveredExactly(hr.RecoverTopK(hr.Measure(x), k), x);
  }
  return static_cast<double>(successes) / kTrials;
}

double OmpGaussianSuccessRate(uint64_t k, uint64_t m, uint64_t seed_base) {
  int successes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = seed_base + trial;
    const DenseMatrix a = MakeGaussianMatrix(m, kN, seed);
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    OmpOptions opt;
    opt.sparsity = k;
    successes += RecoveredExactly(
        OmpRecover(a, a.Multiply(x.ToDense()), opt).estimate, x);
  }
  return static_cast<double>(successes) / kTrials;
}

double CosampGaussianSuccessRate(uint64_t k, uint64_t m,
                                 uint64_t seed_base) {
  int successes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = seed_base + trial;
    const DenseMatrix a = MakeGaussianMatrix(m, kN, seed);
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    CosampOptions opt;
    opt.sparsity = k;
    successes += RecoveredExactly(
        CosampRecover(a, a.Multiply(x.ToDense()), opt).estimate, x);
  }
  return static_cast<double>(successes) / kTrials;
}

double IhtGaussianSuccessRate(uint64_t k, uint64_t m, uint64_t seed_base) {
  int successes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = seed_base + trial;
    auto a = std::make_shared<DenseMatrix>(MakeGaussianMatrix(m, kN, seed));
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    IhtOptions opt;
    opt.sparsity = k;
    successes += RecoveredExactly(
        IhtRecover(LinearOperator::FromDense(a), a->Multiply(x.ToDense()),
                   opt)
            .estimate,
        x);
  }
  return static_cast<double>(successes) / kTrials;
}

void Run() {
  bench::PrintHeader(
      "E4: exact-recovery probability vs #measurements m",
      "sparse matrices need m = O(k log n) — within a log factor of the "
      "optimal O(k log(n/k)) of dense Gaussian ensembles; both show a sharp "
      "phase transition in m",
      "n=4096, k in {5,10,20}, Gaussian-valued k-sparse signals, 10 trials");

  bench::Row("%4s %6s %20s %20s %16s %16s %16s", "k", "m",
             "SSMP (sparse)", "CountSketch", "OMP (dense)", "IHT (dense)",
             "CoSaMP (dense)");
  for (uint64_t k : {5u, 10u, 20u}) {
    for (uint64_t mult : {4u, 8u, 16u, 32u}) {
      const uint64_t m = mult * k * 3;
      bench::Row("%4llu %6llu %20.2f %20.2f %16.2f %16.2f %16.2f",
                 static_cast<unsigned long long>(k),
                 static_cast<unsigned long long>(m),
                 SsmpSuccessRate(k, m, 1000 * k + mult),
                 CountSketchSuccessRate(k, m, 2000 * k + mult),
                 OmpGaussianSuccessRate(k, m, 3000 * k + mult),
                 IhtGaussianSuccessRate(k, m, 4000 * k + mult),
                 CosampGaussianSuccessRate(k, m, 5000 * k + mult));
    }
  }
  bench::Row("");
  bench::Row("Expected shape: all methods transition 0 -> 1 as m grows.");
  bench::Row("Dense Gaussian (OMP/IHT) transitions first (m ~ 3k-6k ~");
  bench::Row("k log(n/k)); iterative sparse-matrix SSMP almost matches it;");
  bench::Row("one-shot Count-Sketch estimation needs m ~ 16k log n — the");
  bench::Row("log-factor gap the survey quotes for [CM06]-style recovery.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
