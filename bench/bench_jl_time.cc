// E7: projection time vs input sparsity (survey §3).
//
// Claim: sparse dimensionality-reduction matrices apply in O(s * nnz(x))
// time — the cost scales with the number of nonzeros, while dense maps pay
// O(n m) and FJLT pays O(n log n) regardless of sparsity.

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "cs/signals.h"
#include "dimred/jl_transform.h"

namespace sketch {
namespace {

constexpr uint64_t kInputDim = 1 << 16;
constexpr uint64_t kOutputDim = 512;
constexpr int kReps = 20;

double TimePerApply(const JlTransform& t, const SparseVector& x) {
  Timer timer;
  for (int r = 0; r < kReps; ++r) {
    const auto y = t.Apply(x);
    (void)y;
  }
  return timer.ElapsedMillis() / kReps;
}

void Run() {
  bench::PrintHeader(
      "E7: projection time vs nnz(x)  (n = 65536, m = 512)",
      "sparse DR runs in O(s*nnz(x)) — time scales with input sparsity; "
      "dense is O(n*m) and FJLT O(n log n), both flat in nnz",
      "k-sparse inputs with k = nnz sweep; 20 reps per cell, times in ms");

  const DenseJlTransform dense(kInputDim, kOutputDim, 1);
  const SparseJlTransform sparse(kInputDim, kOutputDim, 8, 2);
  const CountSketchTransform cs(kInputDim, kOutputDim, 3);
  const FjltTransform fjlt(kInputDim, kOutputDim, 4);

  bench::Row("%8s %12s %14s %14s %12s", "nnz", "dense (ms)", "sparse-JL (ms)",
             "countsketch", "FJLT (ms)");
  for (uint64_t nnz : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    const SparseVector x = MakeSparseSignal(
        kInputDim, nnz, SignalValueDistribution::kGaussian, nnz);
    bench::Row("%8llu %12.3f %14.4f %14.4f %12.3f",
               static_cast<unsigned long long>(nnz), TimePerApply(dense, x),
               TimePerApply(sparse, x), TimePerApply(cs, x),
               TimePerApply(fjlt, x));
  }
  bench::Row("");
  bench::Row("Expected shape: sparse-JL and countsketch columns grow linearly");
  bench::Row("with nnz (countsketch ~8x cheaper: one nonzero per column vs 8);");
  bench::Row("dense and FJLT columns are flat and dominate at small nnz.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
