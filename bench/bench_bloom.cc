// E11: Bloom-filter false-positive rate vs bits per key (survey §1,
// cf. [FCAB98, BM04]).
//
// Claim: membership within FPR (1 - e^{-kn/m})^k at m/n bits per key with
// the optimal k = (m/n) ln 2 hash functions — measured rates should track
// the formula closely.

#include <cstdint>

#include "bench/bench_util.h"
#include "sketch/bloom_filter.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t keys = 100000;
  const int probes = 200000;

  bench::PrintHeader(
      "E11: Bloom filter measured vs theoretical FPR",
      "false-positive rate (1 - e^{-kn/m})^k at optimal k = (m/n) ln 2 "
      "hash functions — hashing gives set membership in a few bits/key",
      "n = 1e5 keys inserted; 2e5 non-member probes");

  bench::Row("%10s %8s %12s %14s %16s", "bits/key", "hashes", "fill ratio",
             "measured FPR", "theoretical FPR");
  for (double target_fpr : {0.1, 0.03, 0.01, 0.003, 0.001}) {
    BloomFilter bf = BloomFilter::FromFalsePositiveRate(keys, target_fpr,
                                                        /*seed=*/42);
    for (uint64_t key = 0; key < keys; ++key) bf.Insert(key);
    int false_positives = 0;
    for (int i = 0; i < probes; ++i) {
      false_positives += bf.MayContain(keys + 1 + i);
    }
    bench::Row("%10.2f %8d %12.4f %14.5f %16.5f",
               static_cast<double>(bf.num_bits()) / keys, bf.num_hashes(),
               bf.FillRatio(),
               static_cast<double>(false_positives) / probes,
               bf.TheoreticalFpr(keys));
  }
  bench::Row("");
  bench::Row("Expected shape: measured FPR within ~20%% of theoretical at");
  bench::Row("every size; ~4.8 extra bits/key per 10x FPR reduction.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
