// E22/E25: scalar-vs-kernel single-thread update speedup — how much of the
// per-update cost was call overhead (heap-walked hash coefficients, the
// hardware divide in bucket reduction, per-item traversal) rather than the
// "few multiplies and adds per row" the survey's §1 accounting promises.
// E25 extends the table with the dispatched SIMD tier (the kernel column
// rides the AVX2 lanes when the host has them) and power-of-two width rows
// where the bucket reduction is a mask instead of a FastDiv64 multiply.
//
// For each sketch, ingests the same Zipf(1.1) stream twice into two
// identically-seeded instances: once through the scalar per-item path
// (Update/Insert in a loop) and once through the kernelized bulk path
// (ApplyBatch -> src/kernels block hashing + SIMD dispatch). Reports
// throughput for both, the speedup, and a bit-exactness verdict
// (Serialize() of the two instances must be byte-identical — the kernel
// layer's contract, which also pins AVX2 == scalar arithmetic).
//
// With --out PATH, also writes a sketch-bench-snapshot-v1 JSON via
// BenchReporter so tools/bench_compare.py can gate the kernel rows
// (bench/baselines/BENCH_kernel_speedup_E25.json).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/timer.h"
#include "kernels/simd_dispatch.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kLength = 1 << 21;  // 2M updates
constexpr uint64_t kSeed = 1;
constexpr int kReps = 3;  // best-of to damp scheduler noise

/// Times `ingest(sketch)` over kReps repetitions on a fresh copy of
/// `empty` each rep; returns best millions-of-updates/sec and leaves the
/// last-rep sketch in `*out` for the exactness check.
template <typename S, typename IngestFn>
double BestMups(const S& empty, IngestFn ingest, uint64_t n, S* out) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    S sketch(empty);
    Timer timer;
    ingest(&sketch);
    const double mups =
        static_cast<double>(n) / timer.ElapsedSeconds() / 1e6;
    if (mups > best) best = mups;
    *out = sketch;
  }
  return best;
}

/// Prints the table row and records both measurements in the snapshot
/// (keys `<key>/scalar` and `<key>/kernel`; perf-smoke gates the kernel
/// rows, where the SIMD tier shows up).
void Report(bench::BenchReporter* reporter, const char* name,
            const char* key, double scalar_mups, double kernel_mups,
            bool exact) {
  bench::Row("%-20s %14.1f %14.1f %9.2fx %8s", name, scalar_mups,
             kernel_mups, kernel_mups / scalar_mups, exact ? "yes" : "NO");
  const std::string label =
      std::string(exact ? "exact=yes" : "exact=NO") + " tier=" +
      simd::SimdTierName(simd::ActiveSimdTier());
  reporter->Add(std::string(key) + "/scalar", scalar_mups * 1e6,
                1e3 / scalar_mups, label);
  reporter->Add(std::string(key) + "/kernel", kernel_mups * 1e6,
                1e3 / kernel_mups, label);
}

template <typename S>
void RunCase(const char* name, const char* key, const S& empty,
             const std::vector<StreamUpdate>& stream,
             bench::BenchReporter* reporter) {
  S scalar_out(empty);
  S kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](S* s) {
        for (const StreamUpdate& u : stream) s->Update(u);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](S* s) { s->ApplyBatch(stream); }, stream.size(),
      &kernel_out);
  const bool exact = scalar_out.Serialize() == kernel_out.Serialize();
  Report(reporter, name, key, scalar_mups, kernel_mups, exact);
}

// BloomFilter's scalar path is Insert(key), not Update(update); same shape
// otherwise.
void RunBloomCase(const char* name, const char* key,
                  const BloomFilter& empty,
                  const std::vector<StreamUpdate>& stream,
                  bench::BenchReporter* reporter) {
  BloomFilter scalar_out(empty);
  BloomFilter kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](BloomFilter* f) {
        for (const StreamUpdate& u : stream) f->Insert(u.item);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](BloomFilter* f) { f->ApplyBatch(stream); },
      stream.size(), &kernel_out);
  const bool exact = scalar_out.Serialize() == kernel_out.Serialize();
  Report(reporter, name, key, scalar_mups, kernel_mups, exact);
}

// DyadicCountMin has no Serialize(); compare point estimates over a probe
// set instead (the levels are CountMin sketches whose exactness the other
// cases already pin byte-for-byte).
void RunDyadicCase(const char* name, const char* key,
                   const DyadicCountMin& empty,
                   const std::vector<StreamUpdate>& stream,
                   bench::BenchReporter* reporter) {
  DyadicCountMin scalar_out(empty);
  DyadicCountMin kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](DyadicCountMin* s) {
        for (const StreamUpdate& u : stream) s->Update(u);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](DyadicCountMin* s) { s->ApplyBatch(stream); },
      stream.size(), &kernel_out);
  bool exact = true;
  for (uint64_t probe = 0; probe < 4096; ++probe) {
    const uint64_t item = (probe * 0x9e3779b97f4a7c15ULL) % kUniverse;
    if (scalar_out.Estimate(item) != kernel_out.Estimate(item)) {
      exact = false;
      break;
    }
  }
  Report(reporter, name, key, scalar_mups, kernel_mups, exact);
}

void Run(const std::string& out_path) {
  bench::PrintHeader(
      "E22/E25 — Scalar vs. kernelized update path (bench_kernel_speedup)",
      "Batched block hashing + SIMD dispatch + division-free bucket "
      "reduction raise single-thread update throughput with bit-identical "
      "sketches",
      "Zipf(1.1) stream, 2M updates over a 1M universe, one thread");
  std::printf("SIMD tier: %s (avx2 compiled: %s; set SKETCH_FORCE_SCALAR=1 "
              "to pin scalar)\n",
              simd::SimdTierName(simd::ActiveSimdTier()),
              simd::Avx2KernelsCompiled() ? "yes" : "no");
  bench::Row("%-20s %14s %14s %10s %8s", "sketch", "scalar Mup/s",
             "kernel Mup/s", "speedup", "exact");
  bench::BenchReporter reporter;
  const std::vector<StreamUpdate> stream =
      MakeZipfStream(kUniverse, 1.1, kLength, kSeed);
  RunCase("CountMin d=5", "kernel_speedup/CountMin_d5",
          CountMinSketch(1 << 12, 5, kSeed), stream, &reporter);
  RunCase("CountMin d=5 pow2", "kernel_speedup/CountMin_d5_pow2",
          CountMinSketch(1 << 12, 5, kSeed, WidthMode::kPow2), stream,
          &reporter);
  RunCase("CountSketch d=5", "kernel_speedup/CountSketch_d5",
          CountSketch(1 << 12, 5, kSeed), stream, &reporter);
  RunCase("CountSketch d=5 pow2", "kernel_speedup/CountSketch_d5_pow2",
          CountSketch(1 << 12, 5, kSeed, WidthMode::kPow2), stream,
          &reporter);
  RunCase("AMS d=5", "kernel_speedup/AMS_d5", AmsSketch(1 << 10, 5, kSeed),
          stream, &reporter);
  RunBloomCase("Bloom k=7", "kernel_speedup/Bloom_k7",
               BloomFilter(1 << 18, 7, kSeed), stream, &reporter);
  RunBloomCase("Bloom k=7 pow2", "kernel_speedup/Bloom_k7_pow2",
               BloomFilter(1 << 18, 7, kSeed, WidthMode::kPow2), stream,
               &reporter);
  RunDyadicCase("Dyadic L=20 d=3", "kernel_speedup/Dyadic_L20_d3",
                DyadicCountMin(20, 1 << 10, 3, kSeed), stream, &reporter);
  if (!out_path.empty()) reporter.WriteSnapshot(out_path);
}

}  // namespace
}  // namespace sketch

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--out snapshot.json]\n", argv[0]);
      return 1;
    }
  }
  sketch::Run(out_path);
  return 0;
}
