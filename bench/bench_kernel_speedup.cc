// E22: scalar-vs-kernel single-thread update speedup — how much of the
// per-update cost was call overhead (heap-walked hash coefficients, the
// hardware divide in bucket reduction, per-item traversal) rather than the
// "few multiplies and adds per row" the survey's §1 accounting promises.
//
// For each sketch, ingests the same Zipf(1.1) stream twice into two
// identically-seeded instances: once through the scalar per-item path
// (Update/Insert in a loop) and once through the kernelized bulk path
// (ApplyBatch -> src/kernels block hashing + FastDiv64). Reports throughput
// for both, the speedup, and a bit-exactness verdict (Serialize() of the
// two instances must be byte-identical — the kernel layer's contract).

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kLength = 1 << 21;  // 2M updates
constexpr uint64_t kSeed = 1;
constexpr int kReps = 3;  // best-of to damp scheduler noise

/// Times `ingest(sketch)` over kReps repetitions on a fresh copy of
/// `empty` each rep; returns best millions-of-updates/sec and leaves the
/// last-rep sketch in `*out` for the exactness check.
template <typename S, typename IngestFn>
double BestMups(const S& empty, IngestFn ingest, uint64_t n, S* out) {
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    S sketch(empty);
    Timer timer;
    ingest(&sketch);
    const double mups =
        static_cast<double>(n) / timer.ElapsedSeconds() / 1e6;
    if (mups > best) best = mups;
    *out = sketch;
  }
  return best;
}

template <typename S>
void RunCase(const char* name, const S& empty,
             const std::vector<StreamUpdate>& stream) {
  S scalar_out(empty);
  S kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](S* s) {
        for (const StreamUpdate& u : stream) s->Update(u);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](S* s) { s->ApplyBatch(stream); }, stream.size(),
      &kernel_out);
  const bool exact = scalar_out.Serialize() == kernel_out.Serialize();
  bench::Row("%-18s %14.1f %14.1f %9.2fx %8s", name, scalar_mups,
             kernel_mups, kernel_mups / scalar_mups,
             exact ? "yes" : "NO");
}

// BloomFilter's scalar path is Insert(key), not Update(update); same shape
// otherwise.
void RunBloomCase(const char* name, const BloomFilter& empty,
                  const std::vector<StreamUpdate>& stream) {
  BloomFilter scalar_out(empty);
  BloomFilter kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](BloomFilter* f) {
        for (const StreamUpdate& u : stream) f->Insert(u.item);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](BloomFilter* f) { f->ApplyBatch(stream); },
      stream.size(), &kernel_out);
  const bool exact = scalar_out.Serialize() == kernel_out.Serialize();
  bench::Row("%-18s %14.1f %14.1f %9.2fx %8s", name, scalar_mups,
             kernel_mups, kernel_mups / scalar_mups,
             exact ? "yes" : "NO");
}

// DyadicCountMin has no Serialize(); compare point estimates over a probe
// set instead (the levels are CountMin sketches whose exactness the other
// cases already pin byte-for-byte).
void RunDyadicCase(const char* name, const DyadicCountMin& empty,
                   const std::vector<StreamUpdate>& stream) {
  DyadicCountMin scalar_out(empty);
  DyadicCountMin kernel_out(empty);
  const double scalar_mups = BestMups(
      empty,
      [&stream](DyadicCountMin* s) {
        for (const StreamUpdate& u : stream) s->Update(u);
      },
      stream.size(), &scalar_out);
  const double kernel_mups = BestMups(
      empty, [&stream](DyadicCountMin* s) { s->ApplyBatch(stream); },
      stream.size(), &kernel_out);
  bool exact = true;
  for (uint64_t probe = 0; probe < 4096; ++probe) {
    const uint64_t item = (probe * 0x9e3779b97f4a7c15ULL) % kUniverse;
    if (scalar_out.Estimate(item) != kernel_out.Estimate(item)) {
      exact = false;
      break;
    }
  }
  bench::Row("%-18s %14.1f %14.1f %9.2fx %8s", name, scalar_mups,
             kernel_mups, kernel_mups / scalar_mups,
             exact ? "yes" : "NO");
}

void Run() {
  bench::PrintHeader(
      "E22 — Scalar vs. kernelized update path (bench_kernel_speedup)",
      "Batched block hashing + division-free bucket reduction raise "
      "single-thread update throughput with bit-identical sketches",
      "Zipf(1.1) stream, 2M updates over a 1M universe, one thread");
  bench::Row("%-18s %14s %14s %10s %8s", "sketch", "scalar Mup/s",
             "kernel Mup/s", "speedup", "exact");
  const std::vector<StreamUpdate> stream =
      MakeZipfStream(kUniverse, 1.1, kLength, kSeed);
  RunCase("CountMin d=5", CountMinSketch(1 << 12, 5, kSeed), stream);
  RunCase("CountSketch d=5", CountSketch(1 << 12, 5, kSeed), stream);
  RunCase("AMS d=5", AmsSketch(1 << 10, 5, kSeed), stream);
  RunBloomCase("Bloom k=7", BloomFilter(1 << 18, 7, kSeed), stream);
  RunDyadicCase("Dyadic L=20 d=3",
                DyadicCountMin(20, 1 << 10, 3, kSeed), stream);
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
