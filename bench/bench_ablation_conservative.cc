// E13 (ablation): conservative update [EV02] vs standard Count-Min.
//
// Design choice called out in DESIGN.md: conservative update strictly
// tightens over-estimation on insert-only streams, at the cost of
// linearity (no deletions, no merging). This table quantifies the
// accuracy gain across skews and widths.

#include <cmath>
#include <cstdint>

#include "bench/bench_util.h"
#include "sketch/count_min.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t universe = 1 << 18;
  const uint64_t stream_len = 1 << 19;
  const uint64_t depth = 4;

  bench::PrintHeader(
      "E13 (ablation): standard vs conservative Count-Min update",
      "conservative update only raises the counters that must rise, "
      "reducing over-estimation by a constant factor on skewed streams — "
      "but forfeits deletions and mergeability",
      "Zipf streams, n=2^18, N=2^19, depth 4; mean overestimate per item");

  bench::Row("%6s %8s %16s %16s %12s", "alpha", "width", "standard",
             "conservative", "improvement");
  for (double alpha : {0.8, 1.2}) {
    const auto updates = MakeZipfStream(
        universe, alpha, stream_len, static_cast<uint64_t>(10 * alpha));
    FrequencyOracle oracle;
    oracle.UpdateAll(updates);
    for (uint64_t width : {1u << 10, 1u << 12, 1u << 14}) {
      CountMinSketch standard(width, depth, width);
      CountMinSketch conservative(width, depth, width);
      for (const StreamUpdate& u : updates) {
        standard.Update(u);
        conservative.UpdateConservative(u.item, u.delta);
      }
      double std_err = 0.0, cons_err = 0.0;
      for (const auto& [item, count] : oracle.counts()) {
        std_err += static_cast<double>(standard.Estimate(item) - count);
        cons_err += static_cast<double>(conservative.Estimate(item) - count);
      }
      const double n_items = static_cast<double>(oracle.DistinctCount());
      bench::Row("%6.1f %8llu %16.3f %16.3f %11.1fx", alpha,
                 static_cast<unsigned long long>(width), std_err / n_items,
                 cons_err / n_items,
                 std_err / std::max(cons_err, 1e-9));
    }
  }
  bench::Row("");
  bench::Row("Expected shape: conservative update cuts the mean overestimate");
  bench::Row("by 1.5-10x, with larger gains at higher skew and tighter width.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
