// E14 (ablation): hash-family design space — speed vs independence.
//
// Every sketch in the library is parameterized by a hash family. This
// table measures raw throughput and bucket balance for the three families
// implemented: k-wise polynomial over 2^61-1 (provable independence),
// simple tabulation (3-wise but "behaves fully random"), and
// multiply-shift (universal, one multiply).

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "hash/kwise_hash.h"
#include "hash/multiply_shift.h"
#include "hash/tabulation_hash.h"

namespace sketch {
namespace {

constexpr uint64_t kKeys = 1 << 22;
constexpr uint64_t kBuckets = 1 << 12;

/// Max relative deviation of bucket loads from uniform, over kBuckets
/// buckets after hashing kKeys sequential keys.
template <typename Fn>
double BucketImbalance(const Fn& bucket_of) {
  std::vector<uint32_t> loads(kBuckets, 0);
  for (uint64_t x = 0; x < kKeys; ++x) ++loads[bucket_of(x)];
  const double expected = static_cast<double>(kKeys) / kBuckets;
  double worst = 0.0;
  for (uint32_t load : loads) {
    worst = std::max(worst, std::abs(load - expected) / expected);
  }
  return worst;
}

template <typename Fn>
double MillionOpsPerSecond(const Fn& hash) {
  // Chain each key through the previous result: the dependency serializes
  // the loop so the compiler can neither vectorize nor constant-fold it —
  // this measures per-hash *latency*, the quantity that gates a sketch
  // update path.
  uint64_t sink = 0;
  Timer timer;
  for (uint64_t x = 0; x < kKeys; ++x) {
    sink = hash(x ^ (sink & 0xffff));
    asm volatile("" : "+r"(sink));
  }
  const double seconds = timer.ElapsedSeconds();
  return kKeys / seconds / 1e6;
}

void Run() {
  bench::PrintHeader(
      "E14 (ablation): hash family throughput and bucket balance",
      "multiply-shift is the fastest universal family; polynomial k-wise "
      "buys provable independence (needed by AMS) at ~2-4x the cost; "
      "tabulation trades table memory for strong behavior",
      "2^22 sequential keys hashed into 2^12 buckets");

  const KWiseHash two_wise(2, 1);
  const KWiseHash four_wise(4, 2);
  const TabulationHash tabulation(3);
  const MultiplyShiftHash multiply_shift(12, 4);

  bench::Row("%20s %14s %18s", "family", "Mhash/s", "max load deviation");
  bench::Row("%20s %14.1f %18.4f", "2-wise polynomial",
             MillionOpsPerSecond([&](uint64_t x) { return two_wise.Hash(x); }),
             BucketImbalance(
                 [&](uint64_t x) { return two_wise.Bucket(x, kBuckets); }));
  bench::Row("%20s %14.1f %18.4f", "4-wise polynomial",
             MillionOpsPerSecond(
                 [&](uint64_t x) { return four_wise.Hash(x); }),
             BucketImbalance(
                 [&](uint64_t x) { return four_wise.Bucket(x, kBuckets); }));
  bench::Row("%20s %14.1f %18.4f", "tabulation",
             MillionOpsPerSecond(
                 [&](uint64_t x) { return tabulation.Hash(x); }),
             BucketImbalance(
                 [&](uint64_t x) { return tabulation.Bucket(x, kBuckets); }));
  bench::Row("%20s %14.1f %18.4f", "multiply-shift",
             MillionOpsPerSecond(
                 [&](uint64_t x) { return multiply_shift.Hash(x); }),
             BucketImbalance(
                 [&](uint64_t x) { return multiply_shift.Hash(x); }));
  bench::Row("");
  bench::Row("Expected shape: multiply-shift fastest, 4-wise ~2x slower than");
  bench::Row("2-wise (longer Horner chain). Load deviation: the affine-like");
  bench::Row("families (2-wise, multiply-shift) spread *sequential* keys");
  bench::Row("almost perfectly; the random-behaving families show the");
  bench::Row("binomial ~4/sqrt(keys/bucket) ~ 12%% worst-bucket deviation a");
  bench::Row("truly random function would.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
