// E15 (ablation): SMP vs SSMP vs IHT on the same sparse binary ensemble.
//
// DESIGN.md design choice: SSMP's one-coordinate-at-a-time updates vs
// SMP's batch updates [BGI+08 vs BIR08] vs generic IHT through the
// LinearOperator interface. Same matrix, same signals — isolates the
// recovery strategy.

#include <cstdint>
#include <memory>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "cs/ensembles.h"
#include "cs/iht.h"
#include "cs/signals.h"
#include "cs/smp.h"
#include "cs/ssmp.h"

namespace sketch {
namespace {

constexpr uint64_t kN = 2048;
constexpr int kTrials = 8;

struct Cell {
  double success = 0.0;
  double mean_ms = 0.0;
};

template <typename Recover>
Cell Measure(uint64_t k, uint64_t m, const Recover& recover) {
  Cell cell;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t seed = 100 * k + m + trial;
    const CsrMatrix a = MakeSparseBinaryMatrix(m, kN, 8, seed);
    const SparseVector x =
        MakeSparseSignal(kN, k, SignalValueDistribution::kGaussian, seed);
    const std::vector<double> y = a.Multiply(x.ToDense());
    Timer timer;
    const SparseVector estimate = recover(a, y, k);
    cell.mean_ms += timer.ElapsedMillis();
    cell.success += (L2Distance(estimate.ToDense(), x.ToDense()) <
                     1e-4 * (1.0 + L2Norm(x.ToDense())));
  }
  cell.success /= kTrials;
  cell.mean_ms /= kTrials;
  return cell;
}

void Run() {
  bench::PrintHeader(
      "E15 (ablation): recovery strategy on the same sparse binary matrix",
      "sequential (SSMP) vs batch (SMP) matching pursuit vs generic IHT — "
      "same ensemble, same signals; success rate and decode time",
      "n=2048, d=8 ones/column, Gaussian k-sparse signals, 8 trials");

  bench::Row("%4s %6s %10s %10s %10s %12s %12s %12s", "k", "m",
             "SSMP ok", "SMP ok", "IHT ok", "SSMP ms", "SMP ms", "IHT ms");
  for (uint64_t k : {5u, 15u}) {
    for (uint64_t mult : {8u, 16u, 32u}) {
      const uint64_t m = mult * k;
      const Cell ssmp = Measure(k, m, [](const CsrMatrix& a,
                                         const std::vector<double>& y,
                                         uint64_t kk) {
        SsmpOptions opt;
        opt.sparsity = kk;
        return SsmpRecover(a, y, opt).estimate;
      });
      const Cell smp = Measure(k, m, [](const CsrMatrix& a,
                                        const std::vector<double>& y,
                                        uint64_t kk) {
        SmpOptions opt;
        opt.sparsity = kk;
        return SmpRecover(a, y, opt).estimate;
      });
      const Cell iht = Measure(k, m, [](const CsrMatrix& a,
                                        const std::vector<double>& y,
                                        uint64_t kk) {
        auto shared = std::make_shared<CsrMatrix>(a);
        IhtOptions opt;
        opt.sparsity = kk;
        opt.max_iterations = 300;
        return IhtRecover(LinearOperator::FromCsr(shared), y, opt).estimate;
      });
      bench::Row("%4llu %6llu %10.2f %10.2f %10.2f %12.2f %12.2f %12.2f",
                 static_cast<unsigned long long>(k),
                 static_cast<unsigned long long>(m), ssmp.success,
                 smp.success, iht.success, ssmp.mean_ms, smp.mean_ms,
                 iht.mean_ms);
    }
  }
  bench::Row("");
  bench::Row("Expected shape: SMP converges in the fewest, cheapest");
  bench::Row("iterations at ample m; SSMP is the most reliable near the");
  bench::Row("measurement threshold; IHT needs more m on 0/1 matrices");
  bench::Row("(unnormalized columns violate its RIP-style assumptions).");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
