// E23: observability overhead — the telemetry subsystem must be free when
// compiled out and near-free when compiled in.
//
// Two claims, both checked here:
//
//  1. Bit-identity. Telemetry never mutates sketch state, so the serialized
//     bytes of every sketch after ingesting a fixed Zipf stream must equal
//     golden FNV-1a digests captured on the pre-telemetry baseline — in
//     BOTH the OFF build (macros are no-ops) and the ON build (counters
//     and spans observe but do not touch the tables). A digest mismatch
//     exits nonzero.
//
//  2. Throughput. Batched ingest (ApplyBatch over 4M updates) in the ON
//     build must stay within 5% of the OFF build. This binary reports
//     best-of-N throughput per sketch and writes a
//     `sketch-bench-snapshot-v1` snapshot (--out <path>); CI runs it once
//     per build flavor and gates with
//     `tools/bench_compare.py compare --threshold 0.05`.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/timer.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/generators.h"
#include "telemetry/telemetry.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kLength = 1 << 22;  // 4M updates
constexpr uint64_t kStreamSeed = 1;
constexpr uint64_t kSketchSeed = 7;
constexpr int kReps = 5;  // best-of to damp scheduler noise

/// FNV-1a over a byte buffer; matches the digest used to capture the
/// golden values below on the pre-telemetry baseline.
uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Golden digests of Serialize() after ingesting
/// MakeZipfStream(2^20, 1.1, 2^22, 1), captured before the telemetry
/// subsystem existed. Any drift means instrumentation changed sketch
/// contents — exactly the regression this experiment exists to catch.
struct GoldenDigest {
  const char* name;
  uint64_t digest;
};
constexpr GoldenDigest kGolden[] = {
    {"CountMin", 0xa947f899c71cea9fULL},
    {"CountSketch", 0xa554d615945925ccULL},
    {"Bloom", 0xe494e54077dc1bc5ULL},
    {"Ams", 0x929b7ac7464767cbULL},
};

template <typename S, typename MakeFn>
double BestThroughput(const std::vector<StreamUpdate>& stream, MakeFn make) {
  double best_ips = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    S sketch = make();
    Timer timer;
    sketch.ApplyBatch(stream);
    const double ips = static_cast<double>(stream.size()) /
                       (static_cast<double>(timer.ElapsedNs()) * 1e-9);
    if (ips > best_ips) best_ips = ips;
  }
  return best_ips;
}

template <typename S, typename MakeFn>
bool CheckDigest(const std::vector<StreamUpdate>& stream, MakeFn make,
                 const GoldenDigest& golden) {
  S sketch = make();
  sketch.ApplyBatch(stream);
  const uint64_t digest = Fnv1a(sketch.Serialize());
  const bool ok = digest == golden.digest;
  bench::Row("%-12s golden=0x%016" PRIx64 " got=0x%016" PRIx64 "  %s",
             golden.name, golden.digest, digest, ok ? "OK" : "MISMATCH");
  return ok;
}

int Main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "E23: observability overhead (telemetry "
#if SKETCH_TELEMETRY_ENABLED
      "ON"
#else
      "OFF"
#endif
      ")",
      "Telemetry is bit-identical to the baseline and costs <5% when on",
      "Zipf(1.1) stream, 2^22 updates over a 2^20 universe, ApplyBatch");

  const std::vector<StreamUpdate> stream =
      MakeZipfStream(kUniverse, 1.1, kLength, kStreamSeed);

  const auto make_cm = [] {
    return CountMinSketch(4096, 5, kSketchSeed);
  };
  const auto make_cs = [] { return CountSketch(4096, 5, kSketchSeed); };
  const auto make_bloom = [] {
    return BloomFilter(1 << 18, 7, kSketchSeed);
  };
  const auto make_ams = [] { return AmsSketch(1024, 5, kSketchSeed); };

  bench::Row("-- bit-identity vs pre-telemetry baseline --");
  bool all_ok = true;
  all_ok &= CheckDigest<CountMinSketch>(stream, make_cm, kGolden[0]);
  all_ok &= CheckDigest<CountSketch>(stream, make_cs, kGolden[1]);
  all_ok &= CheckDigest<BloomFilter>(stream, make_bloom, kGolden[2]);
  all_ok &= CheckDigest<AmsSketch>(stream, make_ams, kGolden[3]);

  bench::Row("");
  bench::Row("-- batched ingest throughput (best of %d) --", kReps);
  bench::BenchReporter reporter;
  const auto add = [&reporter](const char* name, double ips,
                               const char* label) {
    reporter.Add(name, ips, 1e9 / ips, label);
  };
  add("E23/CountMin/ApplyBatch",
      BestThroughput<CountMinSketch>(stream, make_cm), "w=4096 d=5");
  add("E23/CountSketch/ApplyBatch",
      BestThroughput<CountSketch>(stream, make_cs), "w=4096 d=5");
  add("E23/Bloom/ApplyBatch",
      BestThroughput<BloomFilter>(stream, make_bloom), "m=2^18 k=7");
  add("E23/Ams/ApplyBatch",
      BestThroughput<AmsSketch>(stream, make_ams), "w=1024 d=5");
  reporter.PrintTable();

#if SKETCH_TELEMETRY_ENABLED
  bench::Row("");
  bench::Row("-- telemetry registry after the runs above --");
  std::fputs(telemetry::MetricRegistry::Instance().DumpText().c_str(),
             stdout);
#endif

  if (!out_path.empty() && !reporter.WriteSnapshot(out_path)) return 1;
  if (!all_ok) {
    bench::Row("E23: DIGEST MISMATCH — telemetry altered sketch contents");
    return 1;
  }
  bench::Row("E23: digests match the pre-telemetry baseline");
  return 0;
}

}  // namespace
}  // namespace sketch

int main(int argc, char** argv) { return sketch::Main(argc, argv); }
