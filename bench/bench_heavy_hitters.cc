// E2: heavy-hitter retrieval quality vs space, across stream skews
// (survey §1).
//
// Claim: by identifying elements mapped to heavy buckets (hierarchical
// descent for Count-Min), the frequent elements are recovered with few
// false positives. Deterministic counter algorithms (Misra-Gries,
// SpaceSaving) are the classical comparison points.

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "sketch/count_sketch.h"
#include "sketch/dyadic_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

void Run() {
  const int log_n = 18;
  const uint64_t universe = 1ULL << log_n;
  const uint64_t stream_len = 1 << 19;
  const double phi = 0.001;
  const auto threshold = static_cast<int64_t>(phi * stream_len);

  bench::PrintHeader(
      "E2: heavy hitters (phi = 0.1%) — precision / recall / space",
      "frequent elements map to heavy buckets: recover all items above "
      "phi*N with few false positives, in space O~(1/phi), one pass",
      "Zipf(alpha) streams, n=2^18 universe, N=2^19 updates");

  bench::Row("%6s %6s %18s %10s %10s %12s", "alpha", "#heavy", "method",
             "precision", "recall", "counters");
  for (double alpha : {0.8, 1.1, 1.5}) {
    const auto updates = MakeZipfStream(universe, alpha, stream_len,
                                        /*seed=*/static_cast<uint64_t>(
                                            alpha * 100));
    FrequencyOracle oracle;
    oracle.UpdateAll(updates);
    const auto truth = oracle.ItemsAbove(threshold);

    // Dyadic Count-Min: hierarchical descent.
    DyadicCountMin dcm(log_n, 2048, 4, 7);
    dcm.UpdateAll(updates);
    const auto dcm_found = dcm.HeavyHitters(threshold);
    const PrecisionRecall dcm_pr = ComputePrecisionRecall(dcm_found, truth);
    bench::Row("%6.1f %6zu %18s %10.3f %10.3f %12llu", alpha, truth.size(),
               "dyadic-CM", dcm_pr.precision, dcm_pr.recall,
               static_cast<unsigned long long>(dcm.SizeInCounters()));

    // Count-Sketch scoring of the dyadic candidates (verification pass).
    CountSketch cs(4096, 5, 7);
    cs.UpdateAll(updates);
    std::vector<uint64_t> cs_found;
    for (uint64_t item : dcm_found) {
      if (cs.Estimate(item) >= threshold) cs_found.push_back(item);
    }
    const PrecisionRecall cs_pr = ComputePrecisionRecall(cs_found, truth);
    bench::Row("%6.1f %6zu %18s %10.3f %10.3f %12llu", alpha, truth.size(),
               "CM+CS verify", cs_pr.precision, cs_pr.recall,
               static_cast<unsigned long long>(dcm.SizeInCounters() +
                                               cs.SizeInCounters()));

    // SpaceSaving with 4/phi counters.
    SpaceSaving ss(static_cast<uint64_t>(4.0 / phi));
    for (const StreamUpdate& u : updates) ss.Update(u.item);
    const PrecisionRecall ss_pr =
        ComputePrecisionRecall(ss.ItemsAbove(threshold), truth);
    bench::Row("%6.1f %6zu %18s %10.3f %10.3f %12llu", alpha, truth.size(),
               "SpaceSaving", ss_pr.precision, ss_pr.recall,
               static_cast<unsigned long long>(ss.capacity()));

    // Misra-Gries with 4/phi counters.
    MisraGries mg(static_cast<uint64_t>(4.0 / phi));
    for (const StreamUpdate& u : updates) mg.Update(u.item);
    const PrecisionRecall mg_pr = ComputePrecisionRecall(
        mg.ItemsAbove(threshold / 2), truth);  // MG underestimates
    bench::Row("%6.1f %6zu %18s %10.3f %10.3f %12llu", alpha, truth.size(),
               "Misra-Gries", mg_pr.precision, mg_pr.recall,
               static_cast<unsigned long long>(mg.capacity()));
  }
  bench::Row("");
  bench::Row("Expected shape: recall 1.0 for dyadic-CM and SpaceSaving at all");
  bench::Row("skews; precision near 1 and improving with alpha; counter");
  bench::Row("algorithms use less space but cannot handle deletions.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
