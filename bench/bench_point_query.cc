// E1: point-query accuracy of hashed counter arrays (survey §1).
//
// Claim: m counters (m << n) suffice to estimate every frequency within
// eps * ||x||_1 (Count-Min, one-sided) or eps' * ||x||_2 (Count-Sketch,
// two-sided, unbiased). Error decays ~1/width (CM) resp. ~1/sqrt(width)
// (CS), so Count-Sketch wins on skewed streams at equal space.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/frequency_oracle.h"
#include "stream/generators.h"

namespace sketch {
namespace {

struct ErrorStats {
  double mean_abs = 0.0;
  double p99_abs = 0.0;
};

template <typename Estimator>
ErrorStats Measure(const FrequencyOracle& oracle, const Estimator& estimate) {
  std::vector<double> errors;
  errors.reserve(oracle.counts().size());
  double total = 0.0;
  for (const auto& [item, count] : oracle.counts()) {
    const double err = std::abs(static_cast<double>(estimate(item) - count));
    errors.push_back(err);
    total += err;
  }
  std::sort(errors.begin(), errors.end());
  ErrorStats stats;
  stats.mean_abs = total / static_cast<double>(errors.size());
  stats.p99_abs = errors[static_cast<size_t>(
      0.99 * static_cast<double>(errors.size() - 1))];
  return stats;
}

void Run() {
  const uint64_t universe = 1 << 20;
  const uint64_t stream_len = 1 << 20;
  const double alpha = 1.1;
  const uint64_t depth = 5;

  bench::PrintHeader(
      "E1: point-query error vs sketch width (Count-Min vs Count-Sketch)",
      "frequent items map to heavy buckets; estimates within eps*||x|| using "
      "m << n counters; CM error ~ N/width (never under), CS ~ ||x||_2/sqrt(width)",
      "Zipf(1.1) stream, n=2^20 universe, N=2^20 updates, depth 5");

  const auto updates = MakeZipfStream(universe, alpha, stream_len, /*seed=*/1);
  FrequencyOracle oracle;
  oracle.UpdateAll(updates);

  bench::Row("%8s %12s %14s %14s %14s %14s %10s", "width", "counters",
             "CM mean|err|", "CM p99|err|", "CS mean|err|", "CS p99|err|",
             "space/n");
  for (uint64_t width = 1 << 8; width <= (1 << 14); width <<= 1) {
    CountMinSketch cm(width, depth, /*seed=*/width);
    CountSketch cs(width, depth, /*seed=*/width);
    cm.UpdateAll(updates);
    cs.UpdateAll(updates);
    const ErrorStats cm_stats =
        Measure(oracle, [&](uint64_t item) { return cm.Estimate(item); });
    const ErrorStats cs_stats =
        Measure(oracle, [&](uint64_t item) { return cs.Estimate(item); });
    bench::Row("%8llu %12llu %14.2f %14.2f %14.2f %14.2f %10.5f",
               static_cast<unsigned long long>(width),
               static_cast<unsigned long long>(width * depth),
               cm_stats.mean_abs, cm_stats.p99_abs, cs_stats.mean_abs,
               cs_stats.p99_abs,
               static_cast<double>(width * depth) / universe);
  }
  bench::Row("");
  bench::Row("Expected shape: CM column falls ~2x per width doubling; CS");
  bench::Row("falls ~1.4x (sqrt); CS beats CM at equal space on skewed data.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
