// E26: server front-door scaling — epoll event loop + striped registry +
// batched read-path dispatch, over real TCP.
//
// Claim: the E26 front door (a small epoll I/O-thread pool, per-entry
// reader-writer locks striped by name hash, and batched ingest/point-query
// dispatch) sustains at least 2x the mixed-workload throughput of the PR5
// design at 64 connections on the same host, with a bounded p99 latency.
// The PR5 oracle is run in the same binary via SketchServer's pr5_oracle
// mode: thread-per-connection transport, per-frame dispatch with one
// write per response, and exclusive-only entry locks.
//
// Workload: C client connections over 127.0.0.1 TCP. Each connection is
// closed-loop per *window*: it pipelines a window of 32 operations in a
// single write — with probability `read` a 16-key batched point query,
// otherwise a 64-update Zipf(1.1) ingest frame — then reads all 32
// responses back. Pipelining is the shape the E26 front door is built
// for: the epoll path drains the whole window in one read, applies the
// ingest run under one lock, and coalesces all responses into one send,
// while the oracle pays a dispatch + write per frame. Frames are small
// on purpose: this experiment weighs the per-frame front-door cost
// (framing, locking, syscalls), not raw sketch update throughput, which
// E1/E3 measure in isolation. We sweep C in {8, 64, 256} and the read
// fraction in {0.1, 0.5, 0.9}; latency is measured per window round
// trip.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/prng.h"
#include "common/timer.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "stream/generators.h"

namespace sketch::server {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kIngestBatch = 64;
constexpr std::size_t kQueryBatch = 16;
constexpr std::size_t kWindow = 32;      // pipelined ops per round trip
constexpr std::size_t kTotalOps = 49152;  // split across connections

struct RunResult {
  double ops_per_second = 0.0;
  double updates_per_second = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t windows = 0;
  bool ok = false;
};

RunResult RunMixed(bool pr5_oracle, std::size_t connections,
                   double read_fraction) {
  SketchServer::Options options;
  options.pr5_oracle = pr5_oracle;
  options.io_threads = 1;
  SketchServer server(options);
  RunResult result;
  if (!server.Start()) return result;
  const uint16_t port = server.port();

  {
    auto admin_stream = ConnectTcp("127.0.0.1", port);
    if (admin_stream == nullptr) return result;
    SketchClient admin(std::move(admin_stream));
    if (!admin.CreateSketch("bench", SketchType::kCountMin,
                            {16384, 4, 42, 0, 0})) {
      return result;
    }
  }

  const std::size_t windows_per_conn =
      kTotalOps / (connections * kWindow) > 0
          ? kTotalOps / (connections * kWindow)
          : 1;
  std::atomic<uint64_t> total_updates{0};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> latencies(connections);

  // Ingest frames are generated and encoded ONCE, before any client
  // thread exists: ZipfGenerator setup is O(universe) and must not leak
  // into the timed serving phase (it dominated an earlier draft of this
  // benchmark at high connection counts). Connections start at staggered
  // offsets so concurrent windows are not byte-identical.
  constexpr std::size_t kBatchPool = 16;
  std::vector<std::vector<uint8_t>> ingest_frames(kBatchPool);
  {
    const std::vector<StreamUpdate> zipf =
        MakeZipfStream(kUniverse, 1.1, kIngestBatch * kBatchPool, 900);
    for (std::size_t b = 0; b < kBatchPool; ++b) {
      IngestRequest request;
      request.name = "bench";
      request.updates.assign(zipf.begin() + b * kIngestBatch,
                             zipf.begin() + (b + 1) * kIngestBatch);
      ingest_frames[b] = EncodeIngest(request);
    }
  }

  // Every client connects and finishes its setup before the clock
  // starts; the timer covers only the serving phase.
  std::latch ready(static_cast<std::ptrdiff_t>(connections));
  std::latch go(1);

  Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      auto stream = ConnectTcp("127.0.0.1", port);
      if (stream == nullptr) {
        failed.store(true, std::memory_order_relaxed);
        ready.count_down();
        return;
      }
      Xoshiro256StarStar rng(0xe26 + c);
      const double read_fraction_c = read_fraction;

      FrameDecoder decoder;
      std::vector<uint8_t> chunk(64 * 1024);
      std::vector<uint64_t> keys(kQueryBatch);
      latencies[c].reserve(windows_per_conn);
      std::size_t writes = c;  // stagger the shared ingest-frame pool
      ready.count_down();
      go.wait();
      for (std::size_t w = 0; w < windows_per_conn; ++w) {
        // Build one pipelined window: kWindow frames, one write.
        std::vector<uint8_t> wire;
        uint64_t window_updates = 0;
        for (std::size_t op = 0; op < kWindow; ++op) {
          if (rng.NextDouble() < read_fraction_c) {
            PointQueryBatchRequest request;
            request.name = "bench";
            for (uint64_t& k : keys) k = rng.NextBounded(kUniverse);
            request.items = keys;
            const std::vector<uint8_t> frame = EncodePointQueryBatch(request);
            wire.insert(wire.end(), frame.begin(), frame.end());
          } else {
            const std::vector<uint8_t>& frame =
                ingest_frames[writes % kBatchPool];
            ++writes;
            window_updates += kIngestBatch;
            wire.insert(wire.end(), frame.begin(), frame.end());
          }
        }
        const uint64_t start = MonotonicNowNs();
        if (!WriteAll(stream.get(), wire)) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        // Closed loop per window: read until every response is back.
        std::size_t responses = 0;
        while (responses < kWindow) {
          Frame frame;
          const DecodeStatus status = decoder.Next(&frame);
          if (status == DecodeStatus::kFrame) {
            if (frame.opcode == Opcode::kError) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            ++responses;
            continue;
          }
          if (status == DecodeStatus::kBadFrame) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          const std::ptrdiff_t n = stream->Read(chunk.data(), chunk.size());
          if (n <= 0) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          decoder.Feed(chunk.data(), static_cast<std::size_t>(n));
        }
        latencies[c].push_back(
            static_cast<double>(MonotonicNowNs() - start) * 1e-3);
        total_updates.fetch_add(window_updates, std::memory_order_relaxed);
        total_ops.fetch_add(kWindow, std::memory_order_relaxed);
      }
    });
  }
  ready.wait();
  timer.Reset();
  go.count_down();
  for (std::thread& t : clients) t.join();
  const double elapsed = timer.ElapsedSeconds();
  server.Stop();
  if (failed.load(std::memory_order_relaxed)) return result;

  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  std::sort(all.begin(), all.end());
  result.ops_per_second =
      static_cast<double>(total_ops.load(std::memory_order_relaxed)) /
      elapsed;
  result.updates_per_second =
      static_cast<double>(total_updates.load(std::memory_order_relaxed)) /
      elapsed;
  result.windows = all.size();
  if (!all.empty()) {
    result.p50_us = all[all.size() / 2];
    result.p99_us = all[all.size() * 99 / 100];
  }
  result.ok = true;
  return result;
}

int Main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  bench::PrintHeader(
      "E26: server front-door scaling (epoll + striped locks, real TCP)",
      "the epoll event loop with striped shared locks and batched dispatch "
      "beats the PR5 front door (thread-per-connection, per-frame dispatch, "
      "exclusive locks) by >=2x on pipelined mixed load at 64 connections",
      "C connections x 16-op pipelined windows (16-key batched queries / "
      "256-update Zipf ingests), one shared CountMin, 127.0.0.1 TCP");

  bench::BenchReporter reporter;
  struct Config {
    const char* key;
    bool pr5_oracle;
    std::size_t connections;
    double read_fraction;
  };
  const Config configs[] = {
      {"E26/epoll/c8/mix50", false, 8, 0.5},
      {"E26/epoll/c64/mix50", false, 64, 0.5},
      {"E26/epoll/c256/mix50", false, 256, 0.5},
      {"E26/epoll/c64/read90", false, 64, 0.9},
      {"E26/epoll/c64/write90", false, 64, 0.1},
      {"E26/pr5/c64/mix50", true, 64, 0.5},
  };

  double epoll_c64 = 0.0;
  double oracle_c64 = 0.0;
  for (const Config& config : configs) {
    const RunResult result = RunMixed(config.pr5_oracle, config.connections,
                                      config.read_fraction);
    if (!result.ok) {
      bench::Row("E26: workload failed for %s", config.key);
      return 1;
    }
    bench::Row("%-24s %9.1f Kops/s  %7.2f Mupd/s   win p50 %7.1f us   "
               "p99 %7.1f us",
               config.key, result.ops_per_second / 1e3,
               result.updates_per_second / 1e6, result.p50_us,
               result.p99_us);
    char label[64];
    std::snprintf(label, sizeof(label), "%zu conns read=%.1f %s",
                  config.connections, config.read_fraction,
                  config.pr5_oracle ? "pr5-oracle" : "epoll");
    reporter.Add(config.key, result.ops_per_second,
                 1e9 / result.ops_per_second, label);
    if (std::strcmp(config.key, "E26/epoll/c64/mix50") == 0) {
      epoll_c64 = result.ops_per_second;
      reporter.Add("E26/epoll/c64/mix50/window_p99",
                   result.p99_us > 0.0 ? 1e6 / result.p99_us : 0.0,
                   result.p99_us * 1e3, "16-op pipelined window p99");
    }
    if (std::strcmp(config.key, "E26/pr5/c64/mix50") == 0) {
      oracle_c64 = result.ops_per_second;
    }
  }

  if (oracle_c64 > 0.0) {
    bench::Row("");
    bench::Row("epoll vs PR5 oracle at 64 connections: %.2fx",
               epoll_c64 / oracle_c64);
  }

  bench::Row("");
  reporter.PrintTable();
  if (!out_path.empty() && !reporter.WriteSnapshot(out_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace sketch::server

int main(int argc, char** argv) { return sketch::server::Main(argc, argv); }
