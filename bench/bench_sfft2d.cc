// E18 (extension): 2D sparse FFT vs dense 2D FFT [GHI+13].
//
// "Sample-optimal average-case sparse Fourier transform in two
// dimensions": FFTs of O(log) rows and columns plus peeling recover a
// k-sparse 2D spectrum from O((n1+n2) log) samples of an n1*n2 grid.

#include <cstdint>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "sfft/sfft2d.h"

namespace sketch {
namespace {

void Run() {
  bench::PrintHeader(
      "E18 (extension): 2D sparse FFT vs dense 2D FFT",
      "[GHI+13] row/column FFTs + peeling recover k-sparse 2D spectra "
      "from O((n1+n2) log) samples; dense 2D FFT reads all n1*n2",
      "square grids, k unit-magnitude coefficients at random positions");

  bench::Row("%12s %6s %14s %12s %14s %12s", "grid", "k", "dense (ms)",
             "sfft (ms)", "sfft samples", "err");
  for (uint64_t side : {128u, 256u, 512u, 1024u}) {
    for (uint64_t k : {8u, 64u}) {
      const SparseSpectrum2dSignal signal =
          MakeSparseSpectrum2dSignal(side, side, k, side + k);

      Timer timer;
      const std::vector<Complex> dense =
          Dense2dFft(signal.time_domain, side, side);
      const double dense_ms = timer.ElapsedMillis();
      (void)dense;

      Sfft2dOptions options;
      options.sparsity = k;
      timer.Reset();
      const Sfft2dResult sparse =
          ExactSparseFft2d(signal.time_domain, side, side, options);
      const double sfft_ms = timer.ElapsedMillis();

      bench::Row("%7llux%-4llu %6llu %14.2f %12.2f %14llu %12.2e",
                 static_cast<unsigned long long>(side),
                 static_cast<unsigned long long>(side),
                 static_cast<unsigned long long>(k), dense_ms, sfft_ms,
                 static_cast<unsigned long long>(sparse.samples_read),
                 Spectrum2dL2Error(sparse.coefficients, signal));
    }
  }
  bench::Row("");
  bench::Row("Expected shape: dense grows ~n log n with grid area; sparse");
  bench::Row("samples grow with the grid *side*, so the speedup widens from");
  bench::Row("~2x at 128^2 to >10x at 1024^2.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
