// E17 (extension): sparse Walsh-Hadamard transform vs dense fast WHT.
//
// Survey §4's historical origin: "The first algorithms of this type were
// designed for the Hadamard Transform [KM91, Lev93]". Kushilevitz-Mansour
// queries O(k poly(log n)) positions; the dense transform reads and
// processes all n.

#include <cstdint>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "sfft/sparse_wht.h"

namespace sketch {
namespace {

void Run() {
  bench::PrintHeader(
      "E17 (extension): Kushilevitz-Mansour vs dense fast WHT",
      "heavy Boolean-cube Fourier coefficients found from O(k polylog n) "
      "samples — the prefix-bucket recursion is hashing in the frequency "
      "domain; the dense WHT costs O(n log n) and reads everything",
      "k unit-magnitude characters planted at random; threshold 0.5");

  bench::Row("%10s %4s %14s %12s %14s %12s", "n", "k", "dense WHT (ms)",
             "KM (ms)", "KM samples", "KM found");
  for (int log_n : {14, 16, 18, 20}) {
    const uint64_t n = 1ULL << log_n;
    for (uint64_t k : {2u, 8u}) {
      // Plant characters and synthesize.
      std::vector<WhtCoefficient> planted;
      for (uint64_t i = 0; i < k; ++i) {
        planted.push_back(
            {(i * 2654435761ULL + 12345) % n, i % 2 == 0 ? 1.0 : -1.0});
      }
      const std::vector<double> f =
          SynthesizeFromWhtCoefficients(n, planted);

      Timer timer;
      const std::vector<double> dense = DenseWht(f);
      const double dense_ms = timer.ElapsedMillis();
      (void)dense;

      SparseWhtOptions options;
      options.threshold = 0.5;
      options.seed = log_n * 100 + k;
      timer.Reset();
      const SparseWhtResult sparse = KushilevitzMansour(f, options);
      const double km_ms = timer.ElapsedMillis();

      bench::Row("%10llu %4llu %14.2f %12.2f %14llu %12zu",
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(k), dense_ms, km_ms,
                 static_cast<unsigned long long>(sparse.samples_read),
                 sparse.coefficients.size());
    }
  }
  bench::Row("");
  bench::Row("Expected shape: dense WHT time grows ~linearly in n; KM time");
  bench::Row("and samples grow only with k log n, so the gap widens with n.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
