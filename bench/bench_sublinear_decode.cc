// E19 (extension): sub-linear decoding time — bit-test measurements
// [GGI+02b, GLPS10] vs the estimate-every-coordinate scan [CM06].
//
// Claim: spending a log(n) factor more measurements buys a decoder whose
// running time is O(m log n), independent of the ambient dimension n —
// the "optimizing time and measurements" axis of [GLPS10].

#include <cstdint>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "cs/bit_test_recovery.h"
#include "cs/hashed_recovery.h"
#include "cs/signals.h"

namespace sketch {
namespace {

void Run() {
  const uint64_t k = 16;
  bench::PrintHeader(
      "E19 (extension): decode time vs dimension n (k = 16)",
      "bit-test buckets reveal coordinate indices directly: decode cost "
      "O(m log n), flat in n; Count-Sketch point-query recovery must "
      "estimate all n coordinates",
      "Gaussian k-sparse signals; decode wall-clock only (encode excluded)");

  bench::Row("%10s %12s %12s %14s %14s %14s", "n", "bit-test m",
             "hashed m", "bit-test (ms)", "hashed (ms)", "speedup");
  for (int log_n = 12; log_n <= 20; log_n += 2) {
    const uint64_t n = 1ULL << log_n;
    const SparseVector x =
        MakeSparseSignal(n, k, SignalValueDistribution::kGaussian, log_n);

    const BitTestRecovery btr(4 * k, 3, n, log_n);
    const std::vector<double> y_bt = btr.Measure(x);
    Timer timer;
    const auto bt_result = btr.Recover(y_bt);
    const double bt_ms = timer.ElapsedMillis();

    const HashedRecovery hr(HashedRecovery::Variant::kCountSketch, 16 * k,
                            13, n, log_n);
    const std::vector<double> y_h = hr.Measure(x);
    timer.Reset();
    const SparseVector h_result = hr.RecoverTopK(y_h, k);
    const double h_ms = timer.ElapsedMillis();

    bench::Row("%10llu %12llu %12llu %14.3f %14.2f %13.0fx",
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(btr.NumMeasurements()),
               static_cast<unsigned long long>(hr.NumMeasurements()), bt_ms,
               h_ms, h_ms / (bt_ms > 0 ? bt_ms : 1e-3));
    // Sanity: both must actually recover the signal.
    if (L2Distance(bt_result.estimate.ToDense(), x.ToDense()) > 1e-6 ||
        L2Distance(h_result.ToDense(), x.ToDense()) > 1e-6) {
      bench::Row("  WARNING: recovery failed at n=%llu",
                 static_cast<unsigned long long>(n));
    }
  }
  bench::Row("");
  bench::Row("Expected shape: bit-test decode time is flat in n (its m");
  bench::Row("carries the log n factor instead); the hashed scan grows");
  bench::Row("linearly, so the speedup column grows ~linearly with n.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
