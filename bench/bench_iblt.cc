// E12: IBLT full-recovery probability vs load (survey §1, cf. [GM11]).
//
// Claim: ListEntries succeeds with high probability once the number of
// cells exceeds the peeling threshold (~1.22 per pair for 3 hashes;
// ~1.3 for 4), with a sharp transition.

#include <cstdint>

#include "bench/bench_util.h"
#include "common/prng.h"
#include "sketch/iblt.h"

namespace sketch {
namespace {

double FullRecoveryRate(uint64_t pairs, double cells_per_pair, int hashes,
                        int trials) {
  int successes = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Iblt iblt(
        static_cast<uint64_t>(cells_per_pair * static_cast<double>(pairs)),
        hashes,
              1000 + trial);
    Xoshiro256StarStar rng(trial);
    for (uint64_t p = 0; p < pairs; ++p) {
      iblt.Insert(rng.Next() | 1, rng.Next());
    }
    const auto [entries, complete] = iblt.ListEntries();
    successes += (complete && entries.size() == pairs);
  }
  return static_cast<double>(successes) / trials;
}

void Run() {
  const uint64_t pairs = 2000;
  const int trials = 20;

  bench::PrintHeader(
      "E12: IBLT ListEntries success probability vs cells per stored pair",
      "full listing succeeds w.h.p. above the hypergraph peeling threshold "
      "(c ~ 1.222 for 3 hashes, ~1.295 for 4) and fails below — a sharp "
      "phase transition",
      "2000 random key/value pairs; 20 trials per cell");

  bench::Row("%14s %14s %14s", "cells/pair", "3 hashes", "4 hashes");
  for (double c : {1.0, 1.1, 1.2, 1.25, 1.3, 1.4, 1.6, 2.0}) {
    bench::Row("%14.2f %14.2f %14.2f", c,
               FullRecoveryRate(pairs, c, 3, trials),
               FullRecoveryRate(pairs, c, 4, trials));
  }
  bench::Row("");
  bench::Row("Expected shape: 3-hash column jumps 0 -> 1 near 1.22-1.3;");
  bench::Row("4-hash column transitions slightly later (~1.3) but more");
  bench::Row("sharply.");
}

}  // namespace
}  // namespace sketch

int main() {
  sketch::Run();
  return 0;
}
