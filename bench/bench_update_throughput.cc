// E3: single-pass update cost — O(depth) hashed counter touches per
// update (survey §1: the benefit of the sparse matrix A).
//
// Uses google-benchmark for the per-update timing.

#include <benchmark/benchmark.h>

#include "kernels/simd_dispatch.h"
#include "sketch/ams_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/iblt.h"
#include "sketch/spectral_bloom.h"
#include "stream/generators.h"

namespace sketch {
namespace {

const std::vector<StreamUpdate>& SharedStream() {
  static const auto* stream =
      new std::vector<StreamUpdate>(MakeZipfStream(1 << 20, 1.1, 1 << 16, 1));
  return *stream;
}

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch sketch(1 << 12, state.range(0), 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountMinUpdate)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

void BM_CountSketchUpdate(benchmark::State& state) {
  CountSketch sketch(1 << 12, state.range(0), 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountSketchUpdate)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

// Batched (kernelized) counterparts of the per-item loops above: the same
// Zipf stream absorbed through ApplyBatch, which routes through the
// src/kernels block-hashing layer. One iteration ingests the whole stream.
void BM_CountMinApplyBatch(benchmark::State& state) {
  CountMinSketch sketch(1 << 12, static_cast<uint64_t>(state.range(0)), 1);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    sketch.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountMinApplyBatch)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

void BM_CountSketchApplyBatch(benchmark::State& state) {
  CountSketch sketch(1 << 12, static_cast<uint64_t>(state.range(0)), 1);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    sketch.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CountSketchApplyBatch)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

// Power-of-two width variants: same geometry (1 << 12 is already a power
// of two, so the table sizes match the division rows exactly) but the
// bucket reduction is a mask instead of a FastDiv64 multiply-shift. The
// delta against the rows above isolates the cost of the division step.
void BM_CountMinApplyBatchPow2(benchmark::State& state) {
  CountMinSketch sketch(1 << 12, static_cast<uint64_t>(state.range(0)), 1,
                        WidthMode::kPow2);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    sketch.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("depth=" + std::to_string(state.range(0)) + " pow2");
}
BENCHMARK(BM_CountMinApplyBatchPow2)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

void BM_CountSketchApplyBatchPow2(benchmark::State& state) {
  CountSketch sketch(1 << 12, static_cast<uint64_t>(state.range(0)), 1,
                     WidthMode::kPow2);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    sketch.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("depth=" + std::to_string(state.range(0)) + " pow2");
}
BENCHMARK(BM_CountSketchApplyBatchPow2)->Arg(1)->Arg(3)->Arg(5)->Arg(8);

void BM_BloomApplyBatch(benchmark::State& state) {
  BloomFilter filter(1 << 18, static_cast<int>(state.range(0)), 1);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    filter.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel("hashes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BloomApplyBatch)->Arg(4)->Arg(7)->Arg(10);

void BM_AmsApplyBatch(benchmark::State& state) {
  AmsSketch sketch(1 << 10, 5, 1);
  const auto& stream = SharedStream();
  for (auto _ : state) {
    sketch.ApplyBatch(stream);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_AmsApplyBatch);

void BM_ConservativeUpdate(benchmark::State& state) {
  CountMinSketch sketch(1 << 12, state.range(0), 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    sketch.UpdateConservative(stream[i].item, 1);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ConservativeUpdate)->Arg(3)->Arg(5);

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter filter(1 << 18, static_cast<int>(state.range(0)), 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(stream[i].item);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("hashes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BloomInsert)->Arg(4)->Arg(7)->Arg(10);

void BM_SpectralBloomUpdate(benchmark::State& state) {
  SpectralBloomFilter filter(1 << 16, 4, 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    filter.Update(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpectralBloomUpdate);

void BM_IbltInsert(benchmark::State& state) {
  Iblt iblt(1 << 16, 3, 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    iblt.Insert(stream[i].item, stream[i].item * 3);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IbltInsert);

void BM_AmsUpdate(benchmark::State& state) {
  AmsSketch sketch(1 << 10, 5, 1);
  const auto& stream = SharedStream();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsUpdate);

void BM_CountMinQuery(benchmark::State& state) {
  CountMinSketch sketch(1 << 12, 5, 1);
  sketch.UpdateAll(SharedStream());
  uint64_t item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Estimate(item++ & ((1 << 20) - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinQuery);

}  // namespace
}  // namespace sketch

int main(int argc, char** argv) {
  // google-benchmark's own library_build_type context field describes how
  // libbenchmark was compiled, not this binary; export the sketch build
  // type explicitly so committed snapshots record what was measured.
#ifdef NDEBUG
  benchmark::AddCustomContext("sketch_build_type", "release");
#else
  benchmark::AddCustomContext("sketch_build_type", "debug");
#endif
  // Record which kernel tier the dispatcher picked (avx2/scalar) so a
  // snapshot taken on one host is never silently compared against numbers
  // from a different code path (tools/bench_compare.py warns on mismatch).
  benchmark::AddCustomContext(
      "sketch_simd_tier",
      sketch::simd::SimdTierName(sketch::simd::ActiveSimdTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
