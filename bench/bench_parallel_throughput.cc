// E21: parallel sharded ingestion scaling — updates/sec and merge
// latency of ShardedSketch vs. thread count, plus an exactness check
// against sequential ingestion (linearity makes shard-and-merge exact;
// see DESIGN.md "Sharded ingestion").
//
// Sweeps threads in {1, 2, 4, 8} over a Zipf(1.1) stream for Count-Min,
// Count-Sketch, and Bloom. The 1-thread ShardedSketch row uses the pool
// with a single worker, so the speedup column isolates parallelism from
// batching effects; a separate baseline row reports plain sequential
// ApplyBatch on the calling thread.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_reporter.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "parallel/sharded_sketch.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "stream/generators.h"

namespace sketch {
namespace {

constexpr uint64_t kUniverse = 1 << 20;
constexpr uint64_t kLength = 1 << 22;  // 4M updates
constexpr uint64_t kSeed = 1;
constexpr int kReps = 3;  // best-of to damp scheduler noise

struct RunResult {
  double ingest_mups = 0;  // millions of updates per second
  double merge_ms = 0;
  bool exact = false;
};

template <typename S, typename MakeFn, typename SameFn>
RunResult RunSharded(const std::vector<StreamUpdate>& stream, size_t threads,
                     MakeFn make, SameFn same_as_sequential) {
  RunResult result;
  ThreadPool pool(threads);
  for (int rep = 0; rep < kReps; ++rep) {
    ShardedSketch<S> sharded(make(), &pool);
    Timer timer;
    sharded.Ingest(stream);
    const double ingest_s = timer.ElapsedSeconds();
    timer.Reset();
    const S collapsed = sharded.Collapse();
    const double merge_ms = timer.ElapsedMillis();
    const double mups =
        static_cast<double>(stream.size()) / ingest_s / 1e6;
    if (rep == 0 || mups > result.ingest_mups) {
      result.ingest_mups = mups;
      result.merge_ms = merge_ms;
    }
    result.exact = same_as_sequential(collapsed);
  }
  return result;
}

template <typename S, typename MakeFn, typename SerializeFn>
void Sweep(const char* name, const std::vector<StreamUpdate>& stream,
           MakeFn make, SerializeFn serialize,
           bench::BenchReporter* reporter) {
  // Sequential baseline: plain ApplyBatch on the calling thread.
  S sequential = make();
  double baseline_mups = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    S fresh = make();
    Timer timer;
    fresh.ApplyBatch(stream);
    const double mups =
        static_cast<double>(stream.size()) / timer.ElapsedSeconds() / 1e6;
    if (mups > baseline_mups) baseline_mups = mups;
    if (rep == 0) sequential = fresh;
  }
  const auto sequential_bytes = serialize(sequential);

  bench::Row("%-12s %8s %12s %10s %10s %8s", name, "threads",
             "updates/s(M)", "speedup", "merge(ms)", "exact");
  bench::Row("%-12s %8s %12.2f %10s %10s %8s", name, "seq", baseline_mups,
             "1.00x", "-", "-");
  double one_thread_mups = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    const RunResult r = RunSharded<S>(
        stream, threads, make, [&](const S& collapsed) {
          return serialize(collapsed) == sequential_bytes;
        });
    if (threads == 1) one_thread_mups = r.ingest_mups;
    bench::Row("%-12s %8zu %12.2f %9.2fx %10.3f %8s", name, threads,
               r.ingest_mups, r.ingest_mups / baseline_mups, r.merge_ms,
               r.exact ? "yes" : "NO");
    reporter->Add("E21/" + std::string(name) + "/Ingest/" +
                      std::to_string(threads) + "t",
                  r.ingest_mups * 1e6, 1e3 / r.ingest_mups);
    if (threads == 8) {
      bench::Row("%-12s 8-vs-1-thread scaling: %.2fx", name,
                 r.ingest_mups / one_thread_mups);
    }
  }
}

}  // namespace
}  // namespace sketch

int main(int argc, char** argv) {
  using namespace sketch;
  std::string out_path;  // --out <path>: write a bench_compare.py snapshot
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  bench::PrintHeader(
      "E21 - parallel sharded ingestion (bench_parallel_throughput)",
      "Linear sketches shard across threads and tree-merge exactly; "
      "ingestion throughput scales with cores",
      "Zipf(1.1), n = 2^20, N = 2^22 updates, threads in {1,2,4,8}");
  std::printf("hardware_concurrency = %u\n",
              std::thread::hardware_concurrency());

  const auto stream = MakeZipfStream(kUniverse, 1.1, kLength, kSeed);

  bench::BenchReporter reporter;
  Sweep<CountMinSketch>(
      "count-min", stream,
      [] { return CountMinSketch(1 << 12, 5, kSeed); },
      [](const CountMinSketch& s) { return s.Serialize(); }, &reporter);

  Sweep<CountSketch>(
      "count-sketch", stream,
      [] { return CountSketch(1 << 12, 5, kSeed); },
      [](const CountSketch& s) { return s.Serialize(); }, &reporter);

  Sweep<BloomFilter>(
      "bloom", stream, [] { return BloomFilter(1 << 22, 5, kSeed); },
      [](const BloomFilter& s) { return s.Serialize(); }, &reporter);

  if (!out_path.empty() && !reporter.WriteSnapshot(out_path)) return 1;
  return 0;
}
