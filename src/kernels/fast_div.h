#ifndef SKETCH_KERNELS_FAST_DIV_H_
#define SKETCH_KERNELS_FAST_DIV_H_

#include <cstdint>

#include "common/check.h"

/// \file
/// Division-free bucket reduction for a fixed divisor (libdivide-style).
///
/// Every sketch row maps a 61-bit hash onto [0, width) with `hash % width`.
/// The hardware 64-bit divide that `%` compiles to costs 20-40 cycles and
/// does not pipeline, which makes it the single most expensive instruction
/// on the update hot path (the survey's update cost is supposed to be "a few
/// multiplies and adds per row"). Since `width` is fixed for the lifetime of
/// a sketch, the divide can be replaced by a precomputed multiply-shift that
/// reproduces `x % width` *exactly* for every 64-bit x.

namespace sketch {

/// Exact remainder (and quotient) by a fixed 64-bit divisor using one
/// precomputed magic multiplier, with no divide instruction on the hot path.
///
/// Correctness: let d >= 1 and m = floor((2^64 - 1) / d), so m = (2^64 - r)/d
/// for some r in [1, d]. For any x < 2^64,
///
///     x*m / 2^64 = x/d - x*r / (d * 2^64),  and  0 <= x*r/(d*2^64) < 1,
///
/// because x < 2^64 and r <= d. Hence q_hat = floor(x*m / 2^64) — the high
/// 64 bits of the 128-bit product — is either floor(x/d) or floor(x/d) - 1,
/// and the candidate remainder x - q_hat*d lies in [0, 2d). One conditional
/// subtraction therefore lands the remainder exactly; no other correction
/// case exists. This holds for every divisor including 1, powers of two,
/// and 2^k ± 1 (the edge widths the property tests sweep).
class FastDiv64 {
 public:
  /// Precomputes the magic multiplier for `divisor` >= 1. (The guarded
  /// magic expression keeps a zero divisor from tripping integer division
  /// UB before the CHECK fires — sketches construct this member before
  /// their own geometry checks run.)
  explicit FastDiv64(uint64_t divisor)
      : divisor_(divisor), magic_(divisor == 0 ? 0 : ~0ULL / divisor) {
    SKETCH_CHECK_MSG(divisor >= 1,
                     "FastDiv64 divisor (bucket width) must be >= 1");
  }

  /// Exactly x % divisor, for every 64-bit x.
  uint64_t Mod(uint64_t x) const {
    uint64_t q = MulHi(x, magic_);
    uint64_t r = x - q * divisor_;
    if (r >= divisor_) r -= divisor_;
    return r;
  }

  /// Exactly x / divisor, for every 64-bit x.
  uint64_t Div(uint64_t x) const {
    uint64_t q = MulHi(x, magic_);
    if (x - q * divisor_ >= divisor_) ++q;
    return q;
  }

  uint64_t divisor() const { return divisor_; }

 private:
  static uint64_t MulHi(uint64_t a, uint64_t b) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(a) * b) >> 64);
  }

  uint64_t divisor_;
  uint64_t magic_;  // floor((2^64 - 1) / divisor_)
};

}  // namespace sketch

#endif  // SKETCH_KERNELS_FAST_DIV_H_
