// AVX2 lane kernels for the k=2 / k=4 Horner chains.
//
// This is the ONLY translation unit in the repository compiled with
// -mavx2 (lint rule SL011 enforces that intrinsics never appear anywhere
// else). Its entry points are reached exclusively through
// simd::ActiveSimdTier() dispatch in block_hasher.cc, so a binary built
// from this file still runs on CPUs without AVX2. When the toolchain
// cannot generate AVX2 at all (non-x86 targets), the same entry points
// are defined as forwards to the scalar block loops, keeping the link
// portable.
//
// Bit-exactness contract: every kernel here produces the *canonical*
// mod-(2^61-1) residue for every intermediate, exactly like the scalar
// helpers in block_hasher.h / kwise_hash.h. Both sides reduce to the
// unique representative in [0, p), so equal mathematical values are equal
// bit patterns; the property tests compare the two paths over
// fold-boundary keys and all lane-remainder block lengths.
//
// Nothing from the shared inline-heavy headers is odr-used in the AVX2
// branch of this TU: an inline function instantiated here would be
// compiled with AVX2 codegen, and the linker is free to pick that copy
// for the whole program — which would crash pre-AVX2 hosts in code that
// never asked for SIMD. Tails are therefore handled by padding the final
// partial vector rather than by calling the scalar helpers.

#include "kernels/simd_dispatch.h"

#if defined(__AVX2__) && defined(__x86_64__)
#define SKETCH_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define SKETCH_HAVE_AVX2_KERNELS 0
#include "kernels/block_hasher.h"
#endif

namespace sketch::simd {

bool Avx2KernelsCompiled() { return SKETCH_HAVE_AVX2_KERNELS != 0; }

#if SKETCH_HAVE_AVX2_KERNELS

namespace {

constexpr long long kPrimeLL = static_cast<long long>((1ULL << 61) - 1);

inline __m256i Splat(uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// One conditional subtraction of p, for r <= 2p - 1. All operands are
/// < 2^62, so the signed 64-bit lane compare is order-correct.
inline __m256i CondSubP(__m256i r) {
  const __m256i ge = _mm256_cmpgt_epi64(r, _mm256_set1_epi64x(kPrimeLL - 1));
  return _mm256_sub_epi64(r, _mm256_and_si256(ge, _mm256_set1_epi64x(kPrimeLL)));
}

/// Lane-wise ReduceModMersenne61: x = hi*2^61 + lo, hi < 8, 2^61 ≡ 1.
/// Canonical result in [0, p), bit-identical to the scalar fold.
inline __m256i ReduceMod61(__m256i x) {
  const __m256i p = _mm256_set1_epi64x(kPrimeLL);
  return CondSubP(
      _mm256_add_epi64(_mm256_srli_epi64(x, 61), _mm256_and_si256(x, p)));
}

/// Lane-wise MulModMersenne61 for a, b < 2^61 via 32-bit partial products
/// (AVX2 has no 64x64 -> 128 multiply):
///
///   a*b = lolo + (lohi + hilo)*2^32 + hihi*2^64
///
/// with each partial folded mod p = 2^61 - 1 before summation:
///   lolo           -> (lolo & p) + (lolo >> 61)          [2^61 ≡ 1]
///   mid = lohi+hilo: mid*2^32 = (mid >> 29)*2^61 + (mid & (2^29-1))*2^32
///                  -> (mid >> 29) + ((mid & (2^29-1)) << 32)
///   hihi*2^64      -> hihi << 3                          [2^64 ≡ 8]
///
/// Bounds: a, b < 2^61 give a_hi, b_hi < 2^29, so mid < 2^62 (no lane
/// overflow) and the folded sum is < 3*2^61 + 2^34 < 2^63. One final
/// hi/lo fold leaves at most p + 3, and one conditional subtraction
/// yields the canonical residue — matching the scalar MulModMersenne61,
/// which is also canonical, bit for bit.
inline __m256i MulMod61(__m256i a, __m256i b) {
  const __m256i p = _mm256_set1_epi64x(kPrimeLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i lohi = _mm256_mul_epu32(a, b_hi);
  const __m256i hilo = _mm256_mul_epu32(a_hi, b);
  const __m256i hihi = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(lohi, hilo);
  const __m256i mask29 = _mm256_set1_epi64x((1LL << 29) - 1);
  __m256i sum =
      _mm256_add_epi64(_mm256_and_si256(lolo, p), _mm256_srli_epi64(lolo, 61));
  sum = _mm256_add_epi64(sum, _mm256_srli_epi64(mid, 29));
  sum = _mm256_add_epi64(
      sum, _mm256_slli_epi64(_mm256_and_si256(mid, mask29), 32));
  sum = _mm256_add_epi64(sum, _mm256_slli_epi64(hihi, 3));
  return CondSubP(
      _mm256_add_epi64(_mm256_srli_epi64(sum, 61), _mm256_and_si256(sum, p)));
}

/// acc, c canonical < p: Mul(acc, xr) + c < 2p, one conditional subtract —
/// the same add-then-correct step as the scalar Horner chains.
inline __m256i HornerStep(__m256i acc, __m256i xr, __m256i c) {
  return CondSubP(_mm256_add_epi64(MulMod61(acc, xr), c));
}

inline __m256i HashK2V(__m256i c0, __m256i c1, __m256i keys) {
  return HornerStep(c1, ReduceMod61(keys), c0);
}

inline __m256i HashK4V(__m256i c0, __m256i c1, __m256i c2, __m256i c3,
                       __m256i keys) {
  const __m256i xr = ReduceMod61(keys);
  __m256i acc = HornerStep(c3, xr, c2);
  acc = HornerStep(acc, xr, c1);
  return HornerStep(acc, xr, c0);
}

/// sign = 2*(h & 1) - 1, i.e. +1 for odd hashes, -1 for even — identical
/// to the scalar `(h & 1) ? +1 : -1`.
inline __m256i SignV(__m256i h) {
  const __m256i one = _mm256_set1_epi64x(1);
  return _mm256_sub_epi64(_mm256_slli_epi64(_mm256_and_si256(h, one), 1),
                          one);
}

/// Runs `kernel` (4 keys in, 4 results out) over the block. The final
/// partial vector is padded with zero keys and the surplus lanes are
/// dropped, so no scalar helper from the shared headers is instantiated
/// in this TU and `out[n...]` is never written.
template <typename Out, typename Kernel>
inline void ForEachVector(const uint64_t* keys, std::size_t n, Out* out,
                          Kernel&& kernel) {
  static_assert(sizeof(Out) == sizeof(uint64_t));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), kernel(k));
  }
  if (i < n) {
    alignas(32) uint64_t kbuf[4] = {0, 0, 0, 0};
    alignas(32) Out rbuf[4];
    for (std::size_t j = i; j < n; ++j) kbuf[j - i] = keys[j];
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(rbuf),
        kernel(_mm256_load_si256(reinterpret_cast<const __m256i*>(kbuf))));
    for (std::size_t j = i; j < n; ++j) out[j] = rbuf[j - i];
  }
}

}  // namespace

void HashBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, uint64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  ForEachVector(keys, n, out,
                [&](__m256i k) { return HashK2V(c0v, c1v, k); });
}

void HashBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, uint64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  const __m256i c2v = Splat(c2);
  const __m256i c3v = Splat(c3);
  ForEachVector(keys, n, out, [&](__m256i k) {
    return HashK4V(c0v, c1v, c2v, c3v, k);
  });
}

void BucketBlockPow2K2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                           std::size_t n, uint64_t mask, uint64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  const __m256i maskv = Splat(mask);
  ForEachVector(keys, n, out, [&](__m256i k) {
    return _mm256_and_si256(HashK2V(c0v, c1v, k), maskv);
  });
}

void BucketBlockPow2K4Avx2(uint64_t c0, uint64_t c1, uint64_t c2,
                           uint64_t c3, const uint64_t* keys, std::size_t n,
                           uint64_t mask, uint64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  const __m256i c2v = Splat(c2);
  const __m256i c3v = Splat(c3);
  const __m256i maskv = Splat(mask);
  ForEachVector(keys, n, out, [&](__m256i k) {
    return _mm256_and_si256(HashK4V(c0v, c1v, c2v, c3v, k), maskv);
  });
}

void SignBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, int64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  ForEachVector(keys, n, out,
                [&](__m256i k) { return SignV(HashK2V(c0v, c1v, k)); });
}

void SignBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, int64_t* out) {
  const __m256i c0v = Splat(c0);
  const __m256i c1v = Splat(c1);
  const __m256i c2v = Splat(c2);
  const __m256i c3v = Splat(c3);
  ForEachVector(keys, n, out, [&](__m256i k) {
    return SignV(HashK4V(c0v, c1v, c2v, c3v, k));
  });
}

#else  // !SKETCH_HAVE_AVX2_KERNELS

// Portable fallbacks: the toolchain cannot generate AVX2 for this target,
// so the dispatch tier never selects kAvx2 (Avx2KernelsCompiled() is
// false) — these forwards only exist to keep the link whole.

void HashBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, uint64_t* out) {
  kernels_internal::EvalK2Block(
      c0, c1, keys, n, [out](std::size_t i, uint64_t h) { out[i] = h; });
}

void HashBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, uint64_t* out) {
  kernels_internal::EvalK4Block(
      c0, c1, c2, c3, keys, n,
      [out](std::size_t i, uint64_t h) { out[i] = h; });
}

void BucketBlockPow2K2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                           std::size_t n, uint64_t mask, uint64_t* out) {
  kernels_internal::EvalK2Block(
      c0, c1, keys, n,
      [out, mask](std::size_t i, uint64_t h) { out[i] = h & mask; });
}

void BucketBlockPow2K4Avx2(uint64_t c0, uint64_t c1, uint64_t c2,
                           uint64_t c3, const uint64_t* keys, std::size_t n,
                           uint64_t mask, uint64_t* out) {
  kernels_internal::EvalK4Block(
      c0, c1, c2, c3, keys, n,
      [out, mask](std::size_t i, uint64_t h) { out[i] = h & mask; });
}

void SignBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, int64_t* out) {
  kernels_internal::EvalK2Block(
      c0, c1, keys, n,
      [out](std::size_t i, uint64_t h) { out[i] = (h & 1) ? +1 : -1; });
}

void SignBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, int64_t* out) {
  kernels_internal::EvalK4Block(
      c0, c1, c2, c3, keys, n,
      [out](std::size_t i, uint64_t h) { out[i] = (h & 1) ? +1 : -1; });
}

#endif  // SKETCH_HAVE_AVX2_KERNELS

}  // namespace sketch::simd
