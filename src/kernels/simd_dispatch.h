#ifndef SKETCH_KERNELS_SIMD_DISPATCH_H_
#define SKETCH_KERNELS_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

#include "kernels/fast_div.h"

/// \file
/// Runtime SIMD tier selection for the batched hashing kernels.
///
/// The k-wise Horner evaluation in `BlockHasher` is the hottest loop in the
/// library — every ApplyBatch on every sketch routes through it — and its
/// 64x64-bit modular multiplies vectorize cleanly over AVX2's 4x64-bit
/// lanes. This header is the seam between the portable scalar kernels and
/// the ISA-specific ones: it exposes a one-time-probed tier
/// (`ActiveSimdTier`) and the AVX2 block-kernel entry points, but contains
/// no intrinsics itself, so every other translation unit in the repo stays
/// ISA-agnostic and compiles without special flags.
///
/// Dispatch rules:
///   - `block_hasher_avx2.cc` is the only TU compiled with `-mavx2`
///     (enforced by lint rule SL011); its functions are only *called* after
///     `ActiveSimdTier()` reports kAvx2, so the binary runs unmodified on
///     CPUs without AVX2 — the probe simply selects the scalar tier.
///   - The probe result is latched on first use (thread-safe magic static)
///     and never changes for the life of the process, so mixed-tier output
///     within one sketch is impossible.
///   - `SKETCH_FORCE_SCALAR=1` in the environment pins the scalar tier
///     regardless of CPU support. The scalar block loops are the
///     bit-exactness oracle; CI re-runs the test suite under this override
///     and the two runs must produce byte-identical Serialize() output.

namespace sketch::simd {

/// Kernel tiers, ordered by preference. One is chosen per process.
enum class SimdTier : uint8_t {
  kScalar = 0,  ///< portable block loops in block_hasher.h (the oracle)
  kAvx2 = 1,    ///< 4x64-bit lane kernels in block_hasher_avx2.cc
};

/// The tier every BlockHasher block call dispatches to. Probed once:
/// kAvx2 iff the AVX2 TU was compiled with AVX2 support, the CPU reports
/// the feature, and SKETCH_FORCE_SCALAR is not set in the environment.
SimdTier ActiveSimdTier();

/// "avx2" / "scalar" — exported into benchmark host metadata so snapshots
/// recorded on hosts with different ISAs are visibly incomparable.
const char* SimdTierName(SimdTier tier);

/// True iff block_hasher_avx2.cc was built with AVX2 code generation
/// (x86-64 toolchain); false on other targets, where its entry points
/// forward to the scalar kernels.
bool Avx2KernelsCompiled();

/// Runtime CPU probe (cpuid-backed via __builtin_cpu_supports). Cheap but
/// not free; ActiveSimdTier() caches the combined verdict.
bool Avx2Supported();

// --- AVX2 block-kernel entry points ---------------------------------------
//
// Each evaluates the same polynomial as the scalar kernels in
// block_hasher.h — bit-identically, producing the canonical mod-(2^61-1)
// residue — over blocks of keys, 4 lanes at a time, with the remainder tail
// handled by the scalar helpers. `K2` is the degree-1 chain (pairwise
// independence: buckets and signs), `K4` the degree-3 chain (AMS). The
// `Pow2` bucket variants fuse the power-of-two width mask into the lanes;
// the division variants apply `FastDiv64::Mod` per element after the
// vectorized hash, since an exact 64-bit magic-multiply reduction needs the
// full 128-bit high product that AVX2 cannot form in-register cheaply.
//
// Safe to call only when Avx2Supported() (they execute AVX2 instructions
// when Avx2KernelsCompiled()); BlockHasher guards every call site through
// ActiveSimdTier().

void HashBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, uint64_t* out);
void HashBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, uint64_t* out);

void BucketBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                       std::size_t n, const FastDiv64& width, uint64_t* out);
void BucketBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                       const uint64_t* keys, std::size_t n,
                       const FastDiv64& width, uint64_t* out);

void BucketBlockPow2K2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                           std::size_t n, uint64_t mask, uint64_t* out);
void BucketBlockPow2K4Avx2(uint64_t c0, uint64_t c1, uint64_t c2,
                           uint64_t c3, const uint64_t* keys, std::size_t n,
                           uint64_t mask, uint64_t* out);

void SignBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                     std::size_t n, int64_t* out);
void SignBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                     const uint64_t* keys, std::size_t n, int64_t* out);

}  // namespace sketch::simd

#endif  // SKETCH_KERNELS_SIMD_DISPATCH_H_
