#include "kernels/block_hasher.h"

#include "common/check.h"

namespace sketch {

BlockHasher::BlockHasher(const KWiseHash& hash)
    : k_(hash.independence()), c_{0, 0, 0, 0}, coeffs_(hash.coefficients()) {
  SKETCH_CHECK(k_ >= 1);
  for (int i = 0; i < k_ && i < 4; ++i) {
    c_[i] = coeffs_[static_cast<std::size_t>(i)];
  }
}

uint64_t BlockHasher::HashGeneric(uint64_t key) const {
  const uint64_t xr = ReduceModMersenne61(key);
  uint64_t acc = coeffs_.back();
  for (std::size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = MulModMersenne61(acc, xr) + coeffs_[i];
    if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  }
  return acc;
}

void BlockHasher::HashBlock(const uint64_t* keys, std::size_t n,
                            uint64_t* out) const {
  ForEachHash(keys, n, [out](std::size_t i, uint64_t h) { out[i] = h; });
}

void BlockHasher::BucketBlock(const uint64_t* keys, std::size_t n,
                              const FastDiv64& w, uint64_t* out) const {
  ForEachHash(keys, n,
              [out, &w](std::size_t i, uint64_t h) { out[i] = w.Mod(h); });
}

void BlockHasher::SignBlock(const uint64_t* keys, std::size_t n,
                            int64_t* out) const {
  ForEachHash(keys, n, [out](std::size_t i, uint64_t h) {
    out[i] = (h & 1) ? +1 : -1;
  });
}

}  // namespace sketch
