#include "kernels/block_hasher.h"

#include "common/check.h"
#include "kernels/simd_dispatch.h"

namespace sketch {

namespace {

// The AVX2 tier covers exactly the k=2 and k=4 unrolled chains — the only
// shapes the sketches construct. k=1 (constant) and the generic degree are
// always scalar; they never appear on an ApplyBatch hot path.
inline bool UseAvx2(int k) {
  return (k == 2 || k == 4) &&
         simd::ActiveSimdTier() == simd::SimdTier::kAvx2;
}

}  // namespace

BlockHasher::BlockHasher(const KWiseHash& hash)
    : k_(hash.independence()), c_{0, 0, 0, 0}, coeffs_(hash.coefficients()) {
  SKETCH_CHECK(k_ >= 1);
  for (int i = 0; i < k_ && i < 4; ++i) {
    c_[i] = coeffs_[static_cast<std::size_t>(i)];
  }
}

uint64_t BlockHasher::HashGeneric(uint64_t key) const {
  const uint64_t xr = ReduceModMersenne61(key);
  uint64_t acc = coeffs_.back();
  for (std::size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = MulModMersenne61(acc, xr) + coeffs_[i];
    if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  }
  return acc;
}

// Each block method dispatches once per block, not per key; the SIMD
// branches replicate the per-block telemetry add that ForEachHash performs
// for the scalar branch, so counter totals are tier-independent.

void BlockHasher::HashBlock(const uint64_t* keys, std::size_t n,
                            uint64_t* out) const {
  if (UseAvx2(k_)) {
    SKETCH_COUNTER_ADD("kernels.block_hasher.keys_hashed", n);
    if (k_ == 2) {
      simd::HashBlockK2Avx2(c_[0], c_[1], keys, n, out);
    } else {
      simd::HashBlockK4Avx2(c_[0], c_[1], c_[2], c_[3], keys, n, out);
    }
    return;
  }
  ForEachHash(keys, n, [out](std::size_t i, uint64_t h) { out[i] = h; });
}

void BlockHasher::BucketBlock(const uint64_t* keys, std::size_t n,
                              const FastDiv64& w, uint64_t* out) const {
  if (UseAvx2(k_)) {
    SKETCH_COUNTER_ADD("kernels.block_hasher.keys_hashed", n);
    if (k_ == 2) {
      simd::BucketBlockK2Avx2(c_[0], c_[1], keys, n, w, out);
    } else {
      simd::BucketBlockK4Avx2(c_[0], c_[1], c_[2], c_[3], keys, n, w, out);
    }
    return;
  }
  ForEachHash(keys, n,
              [out, &w](std::size_t i, uint64_t h) { out[i] = w.Mod(h); });
}

void BlockHasher::BucketBlockPow2(const uint64_t* keys, std::size_t n,
                                  uint64_t mask, uint64_t* out) const {
  if (UseAvx2(k_)) {
    SKETCH_COUNTER_ADD("kernels.block_hasher.keys_hashed", n);
    if (k_ == 2) {
      simd::BucketBlockPow2K2Avx2(c_[0], c_[1], keys, n, mask, out);
    } else {
      simd::BucketBlockPow2K4Avx2(c_[0], c_[1], c_[2], c_[3], keys, n, mask,
                                  out);
    }
    return;
  }
  ForEachHash(keys, n,
              [out, mask](std::size_t i, uint64_t h) { out[i] = h & mask; });
}

void BlockHasher::SignBlock(const uint64_t* keys, std::size_t n,
                            int64_t* out) const {
  if (UseAvx2(k_)) {
    SKETCH_COUNTER_ADD("kernels.block_hasher.keys_hashed", n);
    if (k_ == 2) {
      simd::SignBlockK2Avx2(c_[0], c_[1], keys, n, out);
    } else {
      simd::SignBlockK4Avx2(c_[0], c_[1], c_[2], c_[3], keys, n, out);
    }
    return;
  }
  ForEachHash(keys, n, [out](std::size_t i, uint64_t h) {
    out[i] = (h & 1) ? +1 : -1;
  });
}

}  // namespace sketch
