#include "kernels/simd_dispatch.h"

#include <algorithm>
#include <cstdlib>

namespace sketch::simd {

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdTier ActiveSimdTier() {
  // Latched on first call; the C++ magic-static guarantees exactly one
  // probe even under concurrent first use, so every thread sees the same
  // tier for the life of the process.
  static const SimdTier tier = [] {
    // Single read at latch time, before the result is shared; the
    // process does not call setenv. NOLINT(concurrency-mt-unsafe)
    const char* force = std::getenv("SKETCH_FORCE_SCALAR");  // NOLINT(concurrency-mt-unsafe)
    if (force != nullptr && force[0] != '\0' && force[0] != '0') {
      return SimdTier::kScalar;
    }
    if (Avx2KernelsCompiled() && Avx2Supported()) return SimdTier::kAvx2;
    return SimdTier::kScalar;
  }();
  return tier;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kScalar:
      break;
  }
  return "scalar";
}

namespace {

// The division-mode bucket reduction stays scalar even on the AVX2 tier:
// FastDiv64's exactness argument needs the full 128-bit high product,
// which AVX2 cannot form in-register without a partial-product cascade
// that costs more than it saves. The hash — the dominant cost — is still
// vectorized; the Mod runs over a cache-resident scratch block. This TU
// is compiled without -mavx2, so the FastDiv64 inline code stays portable.
constexpr std::size_t kModChunk = 256;

}  // namespace

void BucketBlockK2Avx2(uint64_t c0, uint64_t c1, const uint64_t* keys,
                       std::size_t n, const FastDiv64& width, uint64_t* out) {
  uint64_t scratch[kModChunk];
  for (std::size_t base = 0; base < n; base += kModChunk) {
    const std::size_t m = std::min(kModChunk, n - base);
    HashBlockK2Avx2(c0, c1, keys + base, m, scratch);
    for (std::size_t i = 0; i < m; ++i) out[base + i] = width.Mod(scratch[i]);
  }
}

void BucketBlockK4Avx2(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                       const uint64_t* keys, std::size_t n,
                       const FastDiv64& width, uint64_t* out) {
  uint64_t scratch[kModChunk];
  for (std::size_t base = 0; base < n; base += kModChunk) {
    const std::size_t m = std::min(kModChunk, n - base);
    HashBlockK4Avx2(c0, c1, c2, c3, keys + base, m, scratch);
    for (std::size_t i = 0; i < m; ++i) out[base + i] = width.Mod(scratch[i]);
  }
}

}  // namespace sketch::simd
