#ifndef SKETCH_KERNELS_BLOCK_HASHER_H_
#define SKETCH_KERNELS_BLOCK_HASHER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "kernels/fast_div.h"
#include "telemetry/telemetry.h"

/// \file
/// Batched evaluation of the k-wise polynomial hash (`KWiseHash`).
///
/// `KWiseHash::Hash` is correct but pays per-call overhead that dominates
/// the sketch update path: every evaluation re-walks a heap-allocated
/// coefficient vector through a size-dependent loop, and every bucket
/// reduction issues a hardware divide. `BlockHasher` evaluates the *same*
/// polynomial — bit-identically, including the Mersenne fold order — over a
/// block of keys at once, with the coefficients hoisted into locals (k=2 and
/// k=4 get fully unrolled Horner chains) and the bucket reduction replaced
/// by `FastDiv64`. Every sketch's `ApplyBatch` routes through this layer;
/// the scalar `Update`/`Hash` path remains the reference the property tests
/// compare against.

namespace sketch {

namespace kernels_internal {

/// Degree-1 Horner chain (k=2): Mul(c1, x) + c0, Mersenne-folded in the
/// same order as the scalar `KWiseHash::Hash` loop.
inline uint64_t HashK2(uint64_t c0, uint64_t c1, uint64_t key) {
  const uint64_t xr = ReduceModMersenne61(key);
  uint64_t acc = MulModMersenne61(c1, xr) + c0;
  if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  return acc;
}

/// Degree-3 Horner chain (k=4), fully unrolled.
inline uint64_t HashK4(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                       uint64_t key) {
  const uint64_t xr = ReduceModMersenne61(key);
  uint64_t acc = MulModMersenne61(c3, xr) + c2;
  if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  acc = MulModMersenne61(acc, xr) + c1;
  if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  acc = MulModMersenne61(acc, xr) + c0;
  if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  return acc;
}

/// Runs the k=2 chain over a block with a 4-way unroll: the four Horner
/// chains are independent, so the out-of-order core overlaps their 128-bit
/// multiplies instead of serializing on one chain's latency. `emit(i, h)`
/// receives the raw hash of keys[i]; callers fuse the bucket reduction,
/// sign extraction, or bit store into it so the block is traversed once.
template <typename Emit>
void EvalK2Block(uint64_t c0, uint64_t c1, const uint64_t* keys,
                 std::size_t n, Emit&& emit) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t h0 = HashK2(c0, c1, keys[i]);
    const uint64_t h1 = HashK2(c0, c1, keys[i + 1]);
    const uint64_t h2 = HashK2(c0, c1, keys[i + 2]);
    const uint64_t h3 = HashK2(c0, c1, keys[i + 3]);
    emit(i, h0);
    emit(i + 1, h1);
    emit(i + 2, h2);
    emit(i + 3, h3);
  }
  for (; i < n; ++i) emit(i, HashK2(c0, c1, keys[i]));
}

template <typename Emit>
void EvalK4Block(uint64_t c0, uint64_t c1, uint64_t c2, uint64_t c3,
                 const uint64_t* keys, std::size_t n, Emit&& emit) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t h0 = HashK4(c0, c1, c2, c3, keys[i]);
    const uint64_t h1 = HashK4(c0, c1, c2, c3, keys[i + 1]);
    const uint64_t h2 = HashK4(c0, c1, c2, c3, keys[i + 2]);
    const uint64_t h3 = HashK4(c0, c1, c2, c3, keys[i + 3]);
    emit(i, h0);
    emit(i + 1, h1);
    emit(i + 2, h2);
    emit(i + 3, h3);
  }
  for (; i < n; ++i) emit(i, HashK4(c0, c1, c2, c3, keys[i]));
}

}  // namespace kernels_internal

/// Register-resident evaluator for one `KWiseHash` function. Copyable and
/// cheap to construct; sketches build one per row at construction time.
class BlockHasher {
 public:
  /// Snapshots the coefficients of `hash`. The evaluator computes exactly
  /// `hash.Hash(x)` / `hash.Bucket(x, w)` / `hash.Sign(x)` for all inputs.
  explicit BlockHasher(const KWiseHash& hash);

  int independence() const { return k_; }

  /// Single-key evaluation, bit-identical to `KWiseHash::Hash`. Inline with
  /// the k=1/2/4 coefficients in member scalars so the per-item sketch
  /// update path also skips the vector walk.
  uint64_t HashOne(uint64_t key) const {
    if (k_ == 2) return kernels_internal::HashK2(c_[0], c_[1], key);
    if (k_ == 4) {
      return kernels_internal::HashK4(c_[0], c_[1], c_[2], c_[3], key);
    }
    if (k_ == 1) return c_[0];
    return HashGeneric(key);
  }

  /// Bucket of a single key: exactly `KWiseHash::Bucket(key, w.divisor())`.
  uint64_t BucketOne(uint64_t key, const FastDiv64& w) const {
    return w.Mod(HashOne(key));
  }

  /// Sign of a single key: exactly `KWiseHash::Sign(key)`.
  int64_t SignOne(uint64_t key) const {
    return (HashOne(key) & 1) ? +1 : -1;
  }

  /// Calls emit(i, Hash(keys[i])) for i < n through the specialized
  /// k=1/2/4 block loops. Consumers whose per-key action is one cheap
  /// store (Bloom's bit set) fuse it here instead of materializing an
  /// intermediate bucket array.
  template <typename Emit>
  void ForEachHash(const uint64_t* keys, std::size_t n, Emit&& emit) const {
    // One registry add per block (n is typically 256), not per key: the
    // telemetry cost stays O(1/block) on the hottest loop in the library.
    SKETCH_COUNTER_ADD("kernels.block_hasher.keys_hashed", n);
    if (k_ == 2) {
      kernels_internal::EvalK2Block(c_[0], c_[1], keys, n, emit);
    } else if (k_ == 4) {
      kernels_internal::EvalK4Block(c_[0], c_[1], c_[2], c_[3], keys, n,
                                    emit);
    } else if (k_ == 1) {
      for (std::size_t i = 0; i < n; ++i) emit(i, c_[0]);
    } else {
      for (std::size_t i = 0; i < n; ++i) emit(i, HashGeneric(keys[i]));
    }
  }

  /// out[i] = Hash(keys[i]) for i < n.
  void HashBlock(const uint64_t* keys, std::size_t n, uint64_t* out) const;

  /// out[i] = Hash(keys[i]) % w.divisor() for i < n.
  void BucketBlock(const uint64_t* keys, std::size_t n, const FastDiv64& w,
                   uint64_t* out) const;

  /// out[i] = Hash(keys[i]) & mask for i < n, where mask = width - 1 for a
  /// power-of-two width. Bit-identical to BucketBlock with the same width
  /// (for pow2 divisors `FastDiv64::Mod` and the mask agree exactly), but
  /// the reduction fuses into the SIMD lanes — this is the
  /// `WidthMode::kPow2` hot path.
  void BucketBlockPow2(const uint64_t* keys, std::size_t n, uint64_t mask,
                       uint64_t* out) const;

  /// out[i] = ±1 sign of keys[i] for i < n.
  void SignBlock(const uint64_t* keys, std::size_t n, int64_t* out) const;

  /// Heap bytes owned by this evaluator (the generic-path coefficient
  /// vector). The object itself is counted by its owning container; the
  /// sketches sum this into MemoryFootprintBytes().
  uint64_t DynamicMemoryBytes() const {
    return coeffs_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t HashGeneric(uint64_t key) const;

  int k_;
  uint64_t c_[4];                 // coefficients for the k<=4 fast paths
  std::vector<uint64_t> coeffs_;  // all k coefficients (generic path)
};

}  // namespace sketch

#endif  // SKETCH_KERNELS_BLOCK_HASHER_H_
