#ifndef SKETCH_TELEMETRY_STATS_H_
#define SKETCH_TELEMETRY_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

/// \file
/// Sketch introspection: `StatsSnapshot`, the structured self-description
/// every sketch returns from `Introspect()`, plus the small helpers the
/// implementations share (magnitude histograms, balls-in-bins occupancy
/// estimates, per-instance operation counters).
///
/// The point of the snapshot is to turn the survey's *paper* quantities
/// into *live* signals: bucket occupancy and collision estimates are the
/// denominators in Count-Min/Count-Sketch error bounds, fill ratio drives
/// the Bloom false-positive rate, and memory footprint is the space side
/// of every space/accuracy trade-off. Snapshots are computed on demand by
/// reading the sketch's state — no background work, no effect on the
/// sketch — so `Introspect()` is available in every build configuration.

namespace sketch {

/// Structured introspection report. Composite sketches (DyadicCountMin,
/// StreamSummary, ShardedSketch) attach one child snapshot per component.
struct StatsSnapshot {
  struct Field {
    std::string name;
    double value = 0.0;
  };

  std::string type;           ///< concrete sketch type name
  uint64_t memory_bytes = 0;  ///< MemoryFootprintBytes() of the sketch
  uint64_t cells = 0;         ///< addressable table cells (counters / bits)

  /// Named scalar facts: geometry, derived occupancy/collision estimates,
  /// and lifetime operation counts. Order is the order of insertion.
  std::vector<Field> fields;

  /// Magnitude histogram of the cells: entry 0 counts zero cells, entry
  /// b >= 1 counts cells whose |value| has bit width b. Empty when the
  /// notion does not apply.
  std::vector<uint64_t> occupancy_log2;

  std::vector<StatsSnapshot> children;

  void AddField(std::string name, double value);

  /// Value of the named field, or `fallback` if absent.
  double FieldOr(std::string_view name, double fallback) const;

  /// Human-readable multi-line dump (children indented).
  std::string DebugString() const;

  /// Machine-readable JSON:
  /// {"type": t, "memory_bytes": m, "cells": c, "fields": {...},
  ///  "occupancy_log2": [...], "children": [...]}.
  std::string ToJson() const;
};

namespace telemetry {

/// Magnitude histogram of `n` signed counters in the StatsSnapshot
/// encoding: out[0] = #zeros, out[b] = #values with bit_width(|v|) == b.
/// Trailing zero buckets are trimmed.
std::vector<uint64_t> MagnitudeHistogram(const int64_t* values, std::size_t n);

/// Fraction of cells with a nonzero value, given a MagnitudeHistogram.
double OccupiedFraction(const std::vector<uint64_t>& histogram,
                        uint64_t total_cells);

/// Balls-in-bins inversion: the number of distinct keys that, hashed
/// uniformly into `width` buckets, would leave the observed fraction of
/// buckets occupied in expectation (-width * ln(1 - fraction)). This is
/// how a row's occupancy becomes a live estimate of its distinct-key
/// load without any extra bookkeeping.
double EstimateDistinctKeys(double occupied_fraction, double width);

/// Estimated probability that a key shares its bucket with at least one
/// other key, given the estimated distinct-key load of a row:
/// 1 - (1 - 1/width)^(distinct - 1). This is the collision rate behind
/// the Count-Sketch concentration bounds — the quantity [Minton-Price'12]
/// analyzes — surfaced as a runtime signal.
double EstimateCollisionRate(double distinct_keys, double width);

}  // namespace telemetry

/// Per-instance lifetime operation counters for StatsSnapshot. Compiled
/// to an empty, zero-size-overhead stub when telemetry is off so sketch
/// objects and hot paths are unchanged in the default build; when on, the
/// counts are plain (non-atomic) members — sketches are single-writer by
/// contract (see ShardedSketch), so bumping them is one add.
class SketchOpCounters {
 public:
#if SKETCH_TELEMETRY_ENABLED
  void AddUpdates(uint64_t n) { updates_ += n; }
  void AddBatch(uint64_t n) {
    ++batches_;
    updates_ += n;
  }
  /// Folds `other` in on Merge: absorbed updates travel with the data.
  void AddMerge(const SketchOpCounters& other) {
    updates_ += other.updates_;
    batches_ += other.batches_;
    merges_ += other.merges_ + 1;
  }
  uint64_t updates() const { return updates_; }
  uint64_t batches() const { return batches_; }
  uint64_t merges() const { return merges_; }

 private:
  uint64_t updates_ = 0;  ///< items applied (including via batches/merges)
  uint64_t batches_ = 0;  ///< ApplyBatch calls
  uint64_t merges_ = 0;   ///< Merge calls (transitively)
#else
  void AddUpdates(uint64_t) {}
  void AddBatch(uint64_t) {}
  void AddMerge(const SketchOpCounters&) {}
  uint64_t updates() const { return 0; }
  uint64_t batches() const { return 0; }
  uint64_t merges() const { return 0; }
#endif
};

}  // namespace sketch

#endif  // SKETCH_TELEMETRY_STATS_H_
