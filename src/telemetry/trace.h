#ifndef SKETCH_TELEMETRY_TRACE_H_
#define SKETCH_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

/// \file
/// Scoped trace spans recorded into per-thread ring buffers, exportable as
/// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
///
/// A span is two `steady_clock` reads and one ring-buffer slot — cheap
/// enough to wrap every batch-level operation (ApplyBatch calls, shard
/// ingests, recovery phases), and deliberately not cheap enough for
/// per-item loops; counters cover those. Rings have fixed capacity and
/// overwrite their oldest events, so a long-running service keeps the
/// recent window instead of growing without bound.
///
/// Span names must have static storage duration (string literals): only
/// the pointer is stored. Instrumentation sites use `SKETCH_TRACE_SPAN`
/// from `telemetry/telemetry.h`, which compiles away when telemetry is
/// off; this class is always available for explicit use and tests.

namespace sketch::telemetry {

/// One recorded event. `phase` follows the Chrome trace-event format:
/// 'X' = complete span (start + duration), 'C' = counter sample.
struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime label
  uint64_t start_ns = 0;       ///< steady-clock timestamp
  uint64_t duration_ns = 0;    ///< spans only
  double value = 0.0;          ///< counter samples only
  uint32_t tid = 0;            ///< recorder-assigned thread id
  char phase = 'X';
};

/// Process-wide span recorder. Each thread owns a fixed-capacity ring of
/// events; readers snapshot all rings (including those of exited threads)
/// under a registration mutex.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  static TraceRecorder& Instance();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Runtime switch (default on). When disabled, Record* calls return
  /// after one relaxed load and ScopedSpan skips its clock reads.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span. `name` must have static storage duration.
  void RecordSpan(const char* name, uint64_t start_ns, uint64_t duration_ns);

  /// Records a counter sample (a time series in the trace viewer — e.g.
  /// residual norm per recovery step).
  void RecordCounter(const char* name, double value);

  /// All buffered events across threads, ordered by start time.
  std::vector<TraceEvent> CollectEvents() const;

  /// Chrome trace-event JSON of the buffered events. Timestamps are
  /// rebased to the earliest event so traces start near t=0.
  std::string ExportChromeTraceJson() const;

  /// Writes ExportChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops all buffered events (rings stay registered).
  void Clear();

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Tests use small capacities to exercise wraparound.
  void SetRingCapacity(std::size_t capacity);
  std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Total events ever recorded into currently-registered rings,
  /// including events already overwritten by wraparound.
  uint64_t TotalRecorded() const;

 private:
  /// Fixed-capacity event ring. Pushes come from the owning thread only;
  /// a mutex serializes them against cross-thread snapshots (spans are
  /// batch-granular, so an uncontended lock is noise next to the work the
  /// span brackets).
  class Ring {
   public:
    Ring(std::size_t capacity, uint32_t tid) : tid_(tid) {
      events_.reserve(capacity);
      capacity_ = capacity;
    }

    void Push(TraceEvent event);
    void AppendTo(std::vector<TraceEvent>* out) const;
    void Clear();
    uint64_t total_pushed() const;

   private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::size_t next_ = 0;        // overwrite position once full
    uint64_t total_pushed_ = 0;   // lifetime count, monotone
    std::vector<TraceEvent> events_;
    uint32_t tid_;
  };

  TraceRecorder() = default;

  Ring& ThreadRing();

  mutable std::mutex mu_;  // guards rings_ registration/iteration
  std::vector<std::shared_ptr<Ring>> rings_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
  std::atomic<uint32_t> next_tid_{1};
};

/// RAII span: records [construction, destruction) under `name`, which
/// must have static storage duration.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TraceRecorder::Instance().enabled()) {
      name_ = name;
      start_ns_ = MonotonicNowNs();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Instance().RecordSpan(name_, start_ns_,
                                           MonotonicNowNs() - start_ns_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = recorder disabled at entry
  uint64_t start_ns_ = 0;
};

}  // namespace sketch::telemetry

#endif  // SKETCH_TELEMETRY_TRACE_H_
