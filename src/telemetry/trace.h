#ifndef SKETCH_TELEMETRY_TRACE_H_
#define SKETCH_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/timer.h"

/// \file
/// Scoped trace spans recorded into per-thread ring buffers, exportable as
/// Chrome trace-event JSON (load in Perfetto / chrome://tracing).
///
/// A span is two `steady_clock` reads and one ring-buffer slot — cheap
/// enough to wrap every batch-level operation (ApplyBatch calls, shard
/// ingests, recovery phases), and deliberately not cheap enough for
/// per-item loops; counters cover those. Rings have fixed capacity and
/// overwrite their oldest events, so a long-running service keeps the
/// recent window instead of growing without bound.
///
/// Span names must have static storage duration (string literals): only
/// the pointer is stored. Instrumentation sites use `SKETCH_TRACE_SPAN`
/// from `telemetry/telemetry.h`, which compiles away when telemetry is
/// off; this class is always available for explicit use and tests.

namespace sketch::telemetry {

/// One recorded event. `phase` follows the Chrome trace-event format:
/// 'X' = complete span (start + duration), 'C' = counter sample.
struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime label
  uint64_t start_ns = 0;       ///< steady-clock timestamp
  uint64_t duration_ns = 0;    ///< spans only
  double value = 0.0;          ///< counter samples only
  /// Request/trace correlation id (0 = none). Spans recorded on behalf of
  /// a wire-traced request carry its 8-byte id, exported as
  /// args.trace_id so one Perfetto query collects a request's full life
  /// across threads.
  uint64_t correlation_id = 0;
  uint32_t tid = 0;            ///< recorder-assigned thread id
  char phase = 'X';
};

/// Process-wide span recorder. Each thread owns a fixed-capacity ring of
/// events; readers snapshot all rings (including those of exited threads)
/// under a registration mutex.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  static TraceRecorder& Instance();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Runtime switch (default on). When disabled, Record* calls return
  /// after one relaxed load and ScopedSpan skips its clock reads.
  void SetEnabled(bool enabled) {
    // relaxed: advisory flag — a thread seeing the old value records or
    // skips one span from the toggle window; no state rides on the flag.
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    // relaxed: see SetEnabled — stale reads are benign by contract.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a completed span. `name` must have static storage duration.
  /// A nonzero `correlation_id` tags the span with a request trace id
  /// (exported as args.trace_id).
  void RecordSpan(const char* name, uint64_t start_ns, uint64_t duration_ns,
                  uint64_t correlation_id = 0);

  /// Records a counter sample (a time series in the trace viewer — e.g.
  /// residual norm per recovery step).
  void RecordCounter(const char* name, double value);

  /// All buffered events across threads, ordered by start time.
  std::vector<TraceEvent> CollectEvents() const SKETCH_EXCLUDES(mu_);

  /// Chrome trace-event JSON of the buffered events. Timestamps are
  /// rebased to the earliest event so traces start near t=0.
  std::string ExportChromeTraceJson() const;

  /// Writes ExportChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops all buffered events (rings stay registered).
  void Clear() SKETCH_EXCLUDES(mu_);

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Tests use small capacities to exercise wraparound.
  void SetRingCapacity(std::size_t capacity);
  std::size_t ring_capacity() const {
    // relaxed: read once per ring creation; nothing else is published
    // through the capacity value.
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Total events ever recorded into currently-registered rings,
  /// including events already overwritten by wraparound.
  uint64_t TotalRecorded() const SKETCH_EXCLUDES(mu_);

 private:
  /// Fixed-capacity event ring. Pushes come from the owning thread only;
  /// a mutex serializes them against cross-thread snapshots (spans are
  /// batch-granular, so an uncontended lock is noise next to the work the
  /// span brackets).
  class Ring {
   public:
    Ring(std::size_t capacity, uint32_t tid)
        : capacity_(capacity), tid_(tid) {
      events_.reserve(capacity);
    }

    void Push(TraceEvent event) SKETCH_EXCLUDES(mu_);
    void AppendTo(std::vector<TraceEvent>* out) const SKETCH_EXCLUDES(mu_);
    void Clear() SKETCH_EXCLUDES(mu_);
    uint64_t total_pushed() const SKETCH_EXCLUDES(mu_);

   private:
    mutable Mutex mu_;
    const std::size_t capacity_;  // immutable after construction
    std::size_t next_ SKETCH_GUARDED_BY(mu_) = 0;  // overwrite pos once full
    uint64_t total_pushed_ SKETCH_GUARDED_BY(mu_) = 0;  // lifetime, monotone
    std::vector<TraceEvent> events_ SKETCH_GUARDED_BY(mu_);
    const uint32_t tid_;  // immutable after construction
  };

  TraceRecorder() = default;

  Ring& ThreadRing() SKETCH_EXCLUDES(mu_);

  mutable Mutex mu_;  // guards rings_ registration/iteration
  std::vector<std::shared_ptr<Ring>> rings_ SKETCH_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
  // relaxed everywhere: tid tickets only need uniqueness, capacity is a
  // point-in-time configuration value — neither publishes other memory.
  std::atomic<uint32_t> next_tid_{1};
};

/// RAII span: records [construction, destruction) under `name`, which
/// must have static storage duration.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, 0) {}

  /// Span tagged with a request trace id (0 = untagged).
  ScopedSpan(const char* name, uint64_t correlation_id) {
    if (TraceRecorder::Instance().enabled()) {
      name_ = name;
      correlation_id_ = correlation_id;
      start_ns_ = MonotonicNowNs();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Instance().RecordSpan(
          name_, start_ns_, MonotonicNowNs() - start_ns_, correlation_id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = recorder disabled at entry
  uint64_t start_ns_ = 0;
  uint64_t correlation_id_ = 0;
};

}  // namespace sketch::telemetry

#endif  // SKETCH_TELEMETRY_TRACE_H_
