#include "telemetry/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sketch::telemetry {

void TraceRecorder::Ring::Push(TraceEvent event) {
  MutexLock lock(mu_);
  event.tid = tid_;
  if (events_.size() < capacity_) {
    events_.push_back(event);
  } else if (capacity_ > 0) {
    events_[next_] = event;  // overwrite oldest
    next_ = (next_ + 1) % capacity_;
  }
  ++total_pushed_;
}

void TraceRecorder::Ring::AppendTo(std::vector<TraceEvent>* out) const {
  MutexLock lock(mu_);
  out->insert(out->end(), events_.begin(), events_.end());
}

void TraceRecorder::Ring::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  next_ = 0;
}

uint64_t TraceRecorder::Ring::total_pushed() const {
  MutexLock lock(mu_);
  return total_pushed_;
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::Ring& TraceRecorder::ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [this] {
    // relaxed: capacity is a point-in-time config read and the tid ticket
    // only needs uniqueness; neither orders any other memory.
    auto created = std::make_shared<Ring>(
        ring_capacity_.load(std::memory_order_relaxed),
        next_tid_.fetch_add(1, std::memory_order_relaxed));
    MutexLock lock(mu_);
    rings_.push_back(created);
    return created;
  }();
  return *ring;
}

void TraceRecorder::RecordSpan(const char* name, uint64_t start_ns,
                               uint64_t duration_ns, uint64_t correlation_id) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.correlation_id = correlation_id;
  event.phase = 'X';
  ThreadRing().Push(event);
}

void TraceRecorder::RecordCounter(const char* name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.start_ns = MonotonicNowNs();
  event.value = value;
  event.phase = 'C';
  ThreadRing().Push(event);
}

std::vector<TraceEvent> TraceRecorder::CollectEvents() const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(mu_);
    for (const std::shared_ptr<Ring>& ring : rings_) {
      ring->AppendTo(&events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::string TraceRecorder::ExportChromeTraceJson() const {
  const std::vector<TraceEvent> events = CollectEvents();
  const uint64_t epoch_ns = events.empty() ? 0 : events.front().start_ns;
  std::string out = "{\"traceEvents\":[";
  char buffer[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out += ",";
    const double ts_us =
        static_cast<double>(event.start_ns - epoch_ns) / 1e3;
    int written = 0;
    if (event.phase == 'X' && event.correlation_id != 0) {
      // Trace-id hex as a string arg: Perfetto's query UI matches it with
      // args.trace_id GLOB, and a string survives JSON number precision.
      const double dur_us = static_cast<double>(event.duration_ns) / 1e3;
      written = std::snprintf(
          buffer, sizeof(buffer),
          "{\"name\":\"%s\",\"cat\":\"sketch\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
          "\"args\":{\"trace_id\":\"%016" PRIx64 "\"}}",
          event.name, ts_us, dur_us, event.tid, event.correlation_id);
    } else if (event.phase == 'X') {
      const double dur_us = static_cast<double>(event.duration_ns) / 1e3;
      written = std::snprintf(
          buffer, sizeof(buffer),
          "{\"name\":\"%s\",\"cat\":\"sketch\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
          event.name, ts_us, dur_us, event.tid);
    } else {
      written = std::snprintf(
          buffer, sizeof(buffer),
          "{\"name\":\"%s\",\"cat\":\"sketch\",\"ph\":\"C\",\"ts\":%.3f,"
          "\"pid\":1,\"tid\":%u,\"args\":{\"value\":%.17g}}",
          event.name, ts_us, event.tid, event.value);
    }
    if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ExportChromeTraceJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && written == json.size();
  return ok;
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    ring->Clear();
  }
}

void TraceRecorder::SetRingCapacity(std::size_t capacity) {
  // relaxed: rings created before a racing thread observes the new value
  // keep the old capacity — acceptable by the "existing rings keep
  // theirs" contract.
  ring_capacity_.store(capacity, std::memory_order_relaxed);
}

uint64_t TraceRecorder::TotalRecorded() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<Ring>& ring : rings_) {
    total += ring->total_pushed();
  }
  return total;
}

}  // namespace sketch::telemetry
