#include "telemetry/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>

namespace sketch::telemetry {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Doubles formatted for exposition: exact integers print without a
/// fractional part (keeps counter-like gauges and bucket bounds clean),
/// everything else round-trips through %.17g.
void AppendDouble(std::string* out, double value) {
  char buffer[64];
  int written;
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    written = std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    written = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  if (written > 0) out->append(buffer, static_cast<std::size_t>(written));
}

void AppendLabels(std::string* out, const std::vector<PromLabel>& labels) {
  if (labels.empty()) return;
  *out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) *out += ',';
    *out += labels[i].key;
    *out += "=\"";
    *out += EscapeLabelValue(labels[i].value);
    *out += '"';
  }
  *out += '}';
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out += '_';
  }
  for (char c : name) {
    out += ValidNameChar(c) ? c : '_';
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatPrometheusText(
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, Histogram::Snapshot>>& histograms,
    const std::vector<PromGauge>& gauges) {
  std::string out;
  char buffer[128];
  auto append_fmt = [&out, &buffer](auto... args) {
    const int written = std::snprintf(buffer, sizeof(buffer), args...);
    if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
  };

  for (const auto& [raw_name, value] : counters) {
    const std::string name = SanitizeMetricName(raw_name) + "_total";
    append_fmt("# TYPE %s counter\n", name.c_str());
    append_fmt("%s %" PRIu64 "\n", name.c_str(), value);
  }

  for (const auto& [raw_name, snapshot] : histograms) {
    const std::string name = SanitizeMetricName(raw_name);
    append_fmt("# TYPE %s histogram\n", name.c_str());
    // Cumulative buckets. Trailing empty buckets are elided (the +Inf
    // line already carries the total), but every bucket up to the last
    // occupied one is emitted so scrapes see a stable-shape histogram.
    std::size_t last = Histogram::kBuckets;
    while (last > 0 && snapshot.buckets[last - 1] == 0) --last;
    uint64_t cumulative = 0;
    for (std::size_t b = 0; b < last; ++b) {
      cumulative += snapshot.buckets[b];
      if (b == 0) {
        append_fmt("%s_bucket{le=\"0\"} %" PRIu64 "\n", name.c_str(),
                   cumulative);
      } else if (b >= 64) {
        // Bit-width-64 values have no representable 2^64 - 1 + 1; the
        // +Inf bucket below covers them.
        continue;
      } else {
        append_fmt("%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name.c_str(),
                   (uint64_t{1} << b) - 1, cumulative);
      }
    }
    append_fmt("%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
               snapshot.count);
    append_fmt("%s_sum %" PRIu64 "\n", name.c_str(), snapshot.sum);
    append_fmt("%s_count %" PRIu64 "\n", name.c_str(), snapshot.count);
    // Interpolated quantiles as a sibling summary family — the same p50 /
    // p99 DumpJson reports, so dashboards need not re-derive them from
    // the coarse log2 buckets.
    append_fmt("# TYPE %s_summary summary\n", name.c_str());
    append_fmt("%s_summary{quantile=\"0.5\"} ", name.c_str());
    AppendDouble(&out, snapshot.InterpolatedQuantile(0.5));
    out += '\n';
    append_fmt("%s_summary{quantile=\"0.99\"} ", name.c_str());
    AppendDouble(&out, snapshot.InterpolatedQuantile(0.99));
    out += '\n';
  }

  // Group gauge samples by (sanitized) family name: one TYPE line per
  // family, samples contiguous, caller's relative order preserved.
  std::set<std::string> emitted;
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const std::string name = SanitizeMetricName(gauges[i].name);
    if (!emitted.insert(name).second) continue;
    append_fmt("# TYPE %s gauge\n", name.c_str());
    for (std::size_t j = i; j < gauges.size(); ++j) {
      if (SanitizeMetricName(gauges[j].name) != name) continue;
      out += name;
      AppendLabels(&out, gauges[j].labels);
      out += ' ';
      AppendDouble(&out, gauges[j].value);
      out += '\n';
    }
  }

  return out;
}

std::string DumpPrometheus(const std::vector<PromGauge>& gauges) {
  const MetricRegistry& registry = MetricRegistry::Instance();
  return FormatPrometheusText(registry.CounterValues(),
                              registry.HistogramSnapshots(), gauges);
}

}  // namespace sketch::telemetry

