#ifndef SKETCH_TELEMETRY_METRIC_REGISTRY_H_
#define SKETCH_TELEMETRY_METRIC_REGISTRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

/// \file
/// Global metric registry: named monotonic counters and log-scale
/// histograms with lock-free, striped write paths.
///
/// The write-side design repeats the pattern of the sharded ingestion
/// engine (`src/parallel`): instead of one contended cell, every metric
/// holds a small array of cache-line-padded stripes, each thread writes
/// its own stripe with a relaxed atomic add, and a reader aggregates the
/// stripes on demand. Writers never take a lock and never share a cache
/// line, so a counter bump in a kernel hot loop costs one uncontended
/// atomic add; the (rare) read side pays the full sum.
///
/// The registry itself is only locked at registration time. Call sites go
/// through the `SKETCH_COUNTER_*` / `SKETCH_HISTOGRAM_RECORD` macros in
/// `telemetry/telemetry.h`, which cache the metric reference in a function
/// -local static, so the name lookup happens once per call site. These
/// classes are always compiled; the macros compile away when telemetry is
/// off, making the library free unless explicitly enabled.

namespace sketch::telemetry {

/// Number of write stripes per metric. Power of two; 8 stripes keep the
/// footprint small (one cache line each) while making same-line contention
/// unlikely even with more threads than stripes.
inline constexpr std::size_t kMetricStripes = 8;

namespace internal {
/// Round-robin cursor for stripe assignment (one per process).
inline std::atomic<std::size_t> next_stripe{0};
}  // namespace internal

/// Stripe owned by the calling thread, assigned round-robin on first use
/// and cached in a thread_local. Distinct threads may share a stripe (the
/// adds are atomic, so sharing costs contention, not correctness).
/// Inline — metric writes sit in kernel hot loops (one per hashed block),
/// so this must compile down to a TLS load, not a cross-TU call.
inline std::size_t ThreadStripeIndex() {
  // relaxed: only uniqueness of the ticket matters (fetch_add is atomic at
  // any ordering); the stripe choice orders nothing else.
  thread_local const std::size_t stripe =
      internal::next_stripe.fetch_add(1, std::memory_order_relaxed) &
      (kMetricStripes - 1);
  return stripe;
}

/// Monotonic counter. Writers use `Add`/`Increment`; `Value()` sums the
/// stripes and may run concurrently with writers (relaxed reads — the
/// result is a valid snapshot once writers quiesce, and a lower bound
/// while they race).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    // relaxed: each stripe is a monotone sum; no other memory is published
    // under this counter, so the add needs atomicity only.
    cells_[ThreadStripeIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      // relaxed: each load sees some monotone prefix of that stripe's
      // adds, so the sum is a valid lower bound while writers race and
      // exact once they quiesce (join/lock provides the happens-before).
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

  /// Zeroes every stripe (tests; not linearizable against racing writers).
  void Reset() {
    for (Cell& cell : cells_) {
      // relaxed: callers (ResetForTest under the registry lock, or
      // single-threaded test setup) already order the reset against
      // writers externally.
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  std::array<Cell, kMetricStripes> cells_;
};

/// Log-scale histogram over uint64 values: bucket 0 holds zeros and
/// bucket b >= 1 holds values with bit width b, i.e. [2^(b-1), 2^b).
/// Powers of two cover the full 64-bit range in 65 buckets — the right
/// resolution for latencies, queue depths, and batch sizes, where the
/// interesting signal is the order of magnitude and the tail.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index of `value`: 0 for 0, otherwise floor(log2(value)) + 1.
  static std::size_t BucketOf(uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  /// Smallest value that lands in bucket `b` (0 for bucket 0).
  static uint64_t BucketLowerBound(std::size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  void Record(uint64_t value) {
    Cell& cell = cells_[ThreadStripeIndex()];
    // relaxed: bucket/count/sum are three independent monotone sums; a
    // racing snapshot may see them mutually torn (count ahead of sum) and
    // the Snapshot contract says so — no ordering between them is load-
    // bearing.
    cell.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Aggregated view of the histogram; safe to take while writers race
  /// (relaxed reads, so totals may trail in-flight updates).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// q-quantile estimate (q in [0, 1]) with within-bucket linear
    /// interpolation: the target rank is located in its log2 bucket, then
    /// placed proportionally between the bucket's bounds under the usual
    /// values-uniform-within-bucket model (the same rule Prometheus'
    /// histogram_quantile applies). Exact when samples fill a bucket
    /// evenly; never off by more than one bucket width otherwise —
    /// unlike the old behavior of snapping to the bucket lower bound,
    /// which biased every quantile low by up to 2x.
    double InterpolatedQuantile(double q) const;
    /// InterpolatedQuantile truncated to an integer (text dumps).
    uint64_t ApproxQuantile(double q) const;
  };

  Snapshot GetSnapshot() const;

  const std::string& name() const { return name_; }

  /// Zeroes every stripe (tests; not linearizable against racing writers).
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
  };
  std::string name_;
  std::array<Cell, kMetricStripes> cells_;
};

/// Process-wide registry of counters and histograms, keyed by name.
/// Metrics are created on first use and live for the process lifetime
/// (their addresses are stable, so call sites can cache references).
class MetricRegistry {
 public:
  static MetricRegistry& Instance();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the counter / histogram named `name`, creating it on first
  /// use. Takes the registry mutex — cache the reference on hot paths.
  Counter& GetCounter(std::string_view name) SKETCH_EXCLUDES(mu_);
  Histogram& GetHistogram(std::string_view name) SKETCH_EXCLUDES(mu_);

  /// Name-sorted snapshots of every registered metric.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const
      SKETCH_EXCLUDES(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> HistogramSnapshots()
      const SKETCH_EXCLUDES(mu_);

  /// Human-readable dump: one line per counter, a compact distribution
  /// line per histogram.
  std::string DumpText() const;

  /// Machine-readable dump:
  /// {"counters": {name: value}, "histograms": {name: {"count": c,
  ///  "sum": s, "p50": q, "p99": q, "buckets": [..]}}} with name-sorted
  /// keys; quantiles are interpolated (see InterpolatedQuantile).
  std::string DumpJson() const;

  /// Zeroes every registered metric (tests). Registrations are kept so
  /// cached references stay valid. The registry lock orders the reset
  /// against concurrent registration; quiescing racing *writers* is the
  /// test's job (the stripe stores themselves are relaxed).
  void ResetForTest() SKETCH_EXCLUDES(mu_);

 private:
  MetricRegistry() = default;

  mutable Mutex mu_;
  // deques: growth never moves existing elements, so handed-out
  // references stay valid without per-metric allocations. The mutex
  // guards registration (container growth + index); the metrics' own
  // striped cells are written lock-free through handed-out references.
  std::deque<Counter> counters_ SKETCH_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ SKETCH_GUARDED_BY(mu_);
  std::map<std::string, Counter*, std::less<>> counter_index_
      SKETCH_GUARDED_BY(mu_);
  std::map<std::string, Histogram*, std::less<>> histogram_index_
      SKETCH_GUARDED_BY(mu_);
};

}  // namespace sketch::telemetry

#endif  // SKETCH_TELEMETRY_METRIC_REGISTRY_H_
