#ifndef SKETCH_TELEMETRY_PROMETHEUS_H_
#define SKETCH_TELEMETRY_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metric_registry.h"

/// \file
/// Prometheus text exposition (version 0.0.4) formatting for the metric
/// registry. The formatter itself is pure — it takes explicit counter /
/// histogram / gauge collections — so tests can pin exact golden output
/// without fighting live, nondeterministic metrics; `DumpPrometheus`
/// binds it to `MetricRegistry::Instance()` for the HTTP `/metrics`
/// endpoint.
///
/// Mapping rules:
///  - metric names are sanitized (`.` and any other character outside
///    `[a-zA-Z0-9_:]` become `_`); counters additionally get the
///    conventional `_total` suffix.
///  - log2 histograms become cumulative-bucket histogram families: bucket
///    b covers values of bit width b, so its inclusive upper bound is
///    `2^b - 1`; a final `+Inf` bucket repeats the total count, followed
///    by `_sum` and `_count` lines.
///  - each histogram additionally gets a `<name>_summary` summary family
///    with interpolated p50/p99 (`Snapshot::InterpolatedQuantile`), the
///    same quantiles `DumpJson` reports.
///  - gauges carry optional labels; label values are escaped per the
///    exposition format (backslash, double quote, newline).

namespace sketch::telemetry {

/// One label on a gauge sample. Keys must already be valid Prometheus
/// label names; values may be arbitrary bytes (they get escaped).
struct PromLabel {
  std::string key;
  std::string value;
};

/// A gauge sample for exposition (e.g. per-sketch health values, where
/// the sketch name rides in a label).
struct PromGauge {
  std::string name;
  std::vector<PromLabel> labels;
  double value = 0.0;
};

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_`; prefixes
/// `_` if the result would start with a digit.
std::string SanitizeMetricName(std::string_view name);

/// Escapes `\`, `"`, and newline for use inside a quoted label value.
std::string EscapeLabelValue(std::string_view value);

/// Pure formatter over explicit inputs (see file comment for the mapping
/// rules). Counters and histograms are emitted in the order given;
/// gauges are grouped by name (samples of one family stay contiguous, as
/// the format requires) preserving the caller's relative order.
std::string FormatPrometheusText(
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, Histogram::Snapshot>>& histograms,
    const std::vector<PromGauge>& gauges);

/// FormatPrometheusText over the live `MetricRegistry::Instance()`
/// (name-sorted, as the registry accessors return them) plus
/// caller-supplied gauges.
std::string DumpPrometheus(const std::vector<PromGauge>& gauges = {});

}  // namespace sketch::telemetry

#endif  // SKETCH_TELEMETRY_PROMETHEUS_H_
