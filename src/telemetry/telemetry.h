#ifndef SKETCH_TELEMETRY_TELEMETRY_H_
#define SKETCH_TELEMETRY_TELEMETRY_H_

#include "telemetry/metric_registry.h"
#include "telemetry/trace.h"

/// \file
/// Telemetry macro surface. Instrumentation sites use these macros, never
/// the registry/recorder classes directly, so the entire subsystem can be
/// compiled out.
///
/// Build with `-DSKETCH_TELEMETRY=ON` (CMake option; defines the
/// `SKETCH_TELEMETRY` preprocessor symbol) to enable. In the default OFF
/// build every macro expands to a true no-op — no atomics, no clock
/// reads, no registry lookups, and crucially no evaluation of the value
/// arguments — so the PR 3 kernel hot paths compile to the same code as
/// before this subsystem existed. The E23 overhead bench
/// (`bench_observability_overhead`) pins down both directions: OFF is
/// bit-identical to the pre-telemetry baseline, ON stays within 5% on
/// batched ingest.
///
/// Metric / span names must be string literals (or other static-lifetime
/// strings): registry lookups are cached per call site and the trace
/// recorder stores the pointer.

#if defined(SKETCH_TELEMETRY) && SKETCH_TELEMETRY
#define SKETCH_TELEMETRY_ENABLED 1
#else
#define SKETCH_TELEMETRY_ENABLED 0
#endif

#if SKETCH_TELEMETRY_ENABLED

#define SKETCH_TELEMETRY_CONCAT_INNER(a, b) a##b
#define SKETCH_TELEMETRY_CONCAT(a, b) SKETCH_TELEMETRY_CONCAT_INNER(a, b)

/// Adds `delta` to the process-wide counter `name`. The registry lookup
/// happens once per call site (function-local static reference).
#define SKETCH_COUNTER_ADD(name, delta)                                      \
  do {                                                                       \
    static ::sketch::telemetry::Counter& sketch_telemetry_counter =          \
        ::sketch::telemetry::MetricRegistry::Instance().GetCounter(name);    \
    sketch_telemetry_counter.Add(static_cast<uint64_t>(delta));              \
  } while (0)

/// Increments the process-wide counter `name`.
#define SKETCH_COUNTER_INC(name) SKETCH_COUNTER_ADD(name, 1)

/// Records `value` into the log-scale histogram `name`.
#define SKETCH_HISTOGRAM_RECORD(name, value)                                 \
  do {                                                                       \
    static ::sketch::telemetry::Histogram& sketch_telemetry_histogram =      \
        ::sketch::telemetry::MetricRegistry::Instance().GetHistogram(name);  \
    sketch_telemetry_histogram.Record(static_cast<uint64_t>(value));         \
  } while (0)

/// Opens a scoped trace span covering the rest of the enclosing block.
#define SKETCH_TRACE_SPAN(name)                             \
  const ::sketch::telemetry::ScopedSpan SKETCH_TELEMETRY_CONCAT( \
      sketch_telemetry_span_, __LINE__)(name)

/// Opens a scoped trace span tagged with a request trace id (0 = untagged;
/// the id is exported as args.trace_id so Perfetto can collect one
/// request's spans across threads).
#define SKETCH_TRACE_SPAN_ID(name, id)                      \
  const ::sketch::telemetry::ScopedSpan SKETCH_TELEMETRY_CONCAT( \
      sketch_telemetry_span_, __LINE__)(name, static_cast<uint64_t>(id))

/// Records a counter sample into the trace (a time series in Perfetto —
/// e.g. the residual norm after each recovery step).
#define SKETCH_TRACE_COUNTER(name, value)                     \
  ::sketch::telemetry::TraceRecorder::Instance().RecordCounter( \
      name, static_cast<double>(value))

#else  // !SKETCH_TELEMETRY_ENABLED

// No-op expansions. Value arguments sit under sizeof so they are parsed
// (and count as "used" for -Wunused) but never evaluated.
#define SKETCH_COUNTER_ADD(name, delta) \
  do {                                  \
    (void)sizeof(delta);                \
  } while (0)
#define SKETCH_COUNTER_INC(name) static_cast<void>(0)
#define SKETCH_HISTOGRAM_RECORD(name, value) \
  do {                                       \
    (void)sizeof(value);                     \
  } while (0)
#define SKETCH_TRACE_SPAN(name) static_cast<void>(0)
#define SKETCH_TRACE_SPAN_ID(name, id) \
  do {                                 \
    (void)sizeof(id);                  \
  } while (0)
#define SKETCH_TRACE_COUNTER(name, value) \
  do {                                    \
    (void)sizeof(value);                  \
  } while (0)

#endif  // SKETCH_TELEMETRY_ENABLED

#endif  // SKETCH_TELEMETRY_TELEMETRY_H_
