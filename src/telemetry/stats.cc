#include "telemetry/stats.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sketch {

namespace {

void AppendFormat(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out->append(buffer, std::min<std::size_t>(static_cast<std::size_t>(written),
                                              sizeof(buffer) - 1));
  }
}

/// %g-style number rendering that stays valid JSON (no bare NaN/Inf) and
/// prints integral values without an exponent or trailing ".0".
void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    AppendFormat(out, "%.0f", value);
    return;
  }
  AppendFormat(out, "%.17g", value);
}

void AppendIndented(const StatsSnapshot& snapshot, int indent,
                    std::string* out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  AppendFormat(out, "%s%s: memory=%" PRIu64 "B cells=%" PRIu64 "\n",
               pad.c_str(), snapshot.type.c_str(), snapshot.memory_bytes,
               snapshot.cells);
  for (const StatsSnapshot::Field& field : snapshot.fields) {
    AppendFormat(out, "%s  %-28s ", pad.c_str(), field.name.c_str());
    AppendJsonNumber(out, field.value);
    out->append("\n");
  }
  if (!snapshot.occupancy_log2.empty()) {
    AppendFormat(out, "%s  occupancy_log2              [", pad.c_str());
    for (std::size_t b = 0; b < snapshot.occupancy_log2.size(); ++b) {
      AppendFormat(out, "%s%" PRIu64, b == 0 ? "" : " ",
                   snapshot.occupancy_log2[b]);
    }
    out->append("]\n");
  }
  for (const StatsSnapshot& child : snapshot.children) {
    AppendIndented(child, indent + 1, out);
  }
}

}  // namespace

void StatsSnapshot::AddField(std::string name, double value) {
  fields.push_back(Field{std::move(name), value});
}

double StatsSnapshot::FieldOr(std::string_view name, double fallback) const {
  for (const Field& field : fields) {
    if (field.name == name) return field.value;
  }
  return fallback;
}

std::string StatsSnapshot::DebugString() const {
  std::string out;
  AppendIndented(*this, 0, &out);
  return out;
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{";
  AppendFormat(&out, "\"type\":\"%s\",\"memory_bytes\":%" PRIu64
                     ",\"cells\":%" PRIu64,
               type.c_str(), memory_bytes, cells);
  out += ",\"fields\":{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ",";
    AppendFormat(&out, "\"%s\":", fields[i].name.c_str());
    AppendJsonNumber(&out, fields[i].value);
  }
  out += "},\"occupancy_log2\":[";
  for (std::size_t b = 0; b < occupancy_log2.size(); ++b) {
    if (b > 0) out += ",";
    AppendFormat(&out, "%" PRIu64, occupancy_log2[b]);
  }
  out += "],\"children\":[";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ",";
    out += children[i].ToJson();
  }
  out += "]}";
  return out;
}

namespace telemetry {

std::vector<uint64_t> MagnitudeHistogram(const int64_t* values,
                                         std::size_t n) {
  std::vector<uint64_t> histogram(65, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int64_t v = values[i];
    // |INT64_MIN| does not fit in int64; go through uint64 negation.
    const uint64_t magnitude =
        v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
    ++histogram[static_cast<std::size_t>(std::bit_width(magnitude))];
  }
  while (histogram.size() > 1 && histogram.back() == 0) histogram.pop_back();
  return histogram;
}

double OccupiedFraction(const std::vector<uint64_t>& histogram,
                        uint64_t total_cells) {
  if (total_cells == 0) return 0.0;
  const uint64_t zeros = histogram.empty() ? total_cells : histogram[0];
  return static_cast<double>(total_cells - zeros) /
         static_cast<double>(total_cells);
}

double EstimateDistinctKeys(double occupied_fraction, double width) {
  if (width <= 0.0 || occupied_fraction <= 0.0) return 0.0;
  if (occupied_fraction >= 1.0) {
    // Every bucket occupied: the inversion diverges; report the point
    // where the expectation first rounds to "all full".
    return width * std::log(width + 1.0);
  }
  return -width * std::log1p(-occupied_fraction);
}

double EstimateCollisionRate(double distinct_keys, double width) {
  if (width <= 1.0) return distinct_keys > 1.0 ? 1.0 : 0.0;
  if (distinct_keys <= 1.0) return 0.0;
  return 1.0 - std::exp((distinct_keys - 1.0) * std::log1p(-1.0 / width));
}

}  // namespace telemetry

}  // namespace sketch
