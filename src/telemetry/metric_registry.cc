#include "telemetry/metric_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace sketch::telemetry {

double Histogram::Snapshot::InterpolatedQuantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      // Bucket 0 holds exactly the value zero, so there is nothing to
      // interpolate across.
      if (b == 0) return 0.0;
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper = lower * 2.0;  // exclusive bound of bucket b
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets[b]);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lower + frac * (upper - lower);
    }
    seen = next;
  }
  return static_cast<double>(BucketLowerBound(kBuckets - 1));
}

uint64_t Histogram::Snapshot::ApproxQuantile(double q) const {
  return static_cast<uint64_t>(InterpolatedQuantile(q));
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  for (const Cell& cell : cells_) {
    // relaxed: each field is a monotone sum read independently; the
    // Snapshot contract allows count/sum/buckets to be mutually torn
    // while writers race, and quiescence (join or lock) makes it exact.
    snapshot.count += cell.count.load(std::memory_order_relaxed);
    snapshot.sum += cell.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snapshot.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Cell& cell : cells_) {
    // relaxed: reset-vs-writer ordering is the caller's responsibility
    // (ResetForTest holds the registry lock; tests quiesce writers).
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cell.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

MetricRegistry& MetricRegistry::Instance() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  Counter& counter = counters_.emplace_back(std::string(name));
  counter_index_.emplace(counter.name(), &counter);
  return counter;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  Histogram& histogram = histograms_.emplace_back(std::string(name));
  histogram_index_.emplace(histogram.name(), &histogram);
  return histogram;
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::CounterValues()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counter_index_.size());
  for (const auto& [name, counter] : counter_index_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricRegistry::HistogramSnapshots() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histogram_index_.size());
  for (const auto& [name, histogram] : histogram_index_) {
    out.emplace_back(name, histogram->GetSnapshot());
  }
  return out;
}

namespace {

void AppendFormat(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out->append(buffer, std::min<std::size_t>(static_cast<std::size_t>(written),
                                              sizeof(buffer) - 1));
  }
}

}  // namespace

std::string MetricRegistry::DumpText() const {
  std::string out;
  for (const auto& [name, value] : CounterValues()) {
    AppendFormat(&out, "counter   %-44s %20" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, snapshot] : HistogramSnapshots()) {
    AppendFormat(&out,
                 "histogram %-44s count=%" PRIu64 " mean=%.1f p50=%" PRIu64
                 " p99=%" PRIu64 "\n",
                 name.c_str(), snapshot.count, snapshot.Mean(),
                 snapshot.ApproxQuantile(0.5), snapshot.ApproxQuantile(0.99));
  }
  return out;
}

std::string MetricRegistry::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : CounterValues()) {
    if (!first) out += ",";
    first = false;
    AppendFormat(&out, "\"%s\":%" PRIu64, name.c_str(), value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snapshot] : HistogramSnapshots()) {
    if (!first) out += ",";
    first = false;
    AppendFormat(&out, "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64,
                 name.c_str(), snapshot.count, snapshot.sum);
    AppendFormat(&out, ",\"p50\":%.17g,\"p99\":%.17g",
                 snapshot.InterpolatedQuantile(0.5),
                 snapshot.InterpolatedQuantile(0.99));
    out += ",\"buckets\":[";
    // Trailing zero buckets are trimmed so the common (small-value) case
    // stays compact; consumers treat missing buckets as zero.
    std::size_t last = Histogram::kBuckets;
    while (last > 0 && snapshot.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b > 0) out += ",";
      AppendFormat(&out, "%" PRIu64, snapshot.buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (Counter& counter : counters_) counter.Reset();
  for (Histogram& histogram : histograms_) histogram.Reset();
}

}  // namespace sketch::telemetry
