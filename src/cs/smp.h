#ifndef SKETCH_CS_SMP_H_
#define SKETCH_CS_SMP_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Options for Sparse Matching Pursuit.
struct SmpOptions {
  uint64_t sparsity = 10;  ///< target sparsity k
  int max_iterations = 30;
  double convergence_tolerance = 1e-9;
};

/// Result of an SMP run.
struct SmpResult {
  SparseVector estimate;
  double residual_l1 = 0.0;
  int iterations_run = 0;
};

/// Sparse Matching Pursuit [BGI+08] — the *batch* ancestor of SSMP
/// (src/cs/ssmp.h): every iteration forms a full candidate update
/// u (u_i = median of the residual over coordinate i's buckets), keeps
/// its 2k largest entries, adds it to the estimate, and re-sparsifies to
/// k terms. Same sparse binary measurement ensemble and ℓ1 guarantee as
/// SSMP, but updates all coordinates at once — fewer, heavier iterations
/// (the ablation pair measured in bench_ablation_smp).
SmpResult SmpRecover(const CsrMatrix& a, const std::vector<double>& y,
                     const SmpOptions& options);

}  // namespace sketch

#endif  // SKETCH_CS_SMP_H_
