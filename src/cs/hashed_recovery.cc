#include "cs/hashed_recovery.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

HashedRecovery::HashedRecovery(Variant variant, uint64_t width, uint64_t depth,
                               uint64_t dimension, uint64_t seed)
    : variant_(variant), width_(width), depth_(depth), dimension_(dimension) {
  SKETCH_CHECK(width >= 1 && depth >= 1 && dimension >= 1);
  SKETCH_CHECK_MSG(width <= UINT64_MAX / depth,
                   "measurement count width * depth overflows");
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed * 2 + j));
    sign_hashes_.emplace_back(2, SplitMix64Once(~seed * 2 + j + 0x9e37ULL));
  }
}

int HashedRecovery::SignOf(uint64_t row, uint64_t i) const {
  return variant_ == Variant::kCountSketch ? sign_hashes_[row].Sign(i) : 1;
}

std::vector<double> HashedRecovery::Measure(
    const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == dimension_);
  std::vector<double> y(NumMeasurements(), 0.0);
  for (uint64_t i = 0; i < dimension_; ++i) {
    if (x[i] == 0.0) continue;
    for (uint64_t j = 0; j < depth_; ++j) {
      y[j * width_ + BucketOf(j, i)] += SignOf(j, i) * x[i];
    }
  }
  return y;
}

std::vector<double> HashedRecovery::Measure(const SparseVector& x) const {
  SKETCH_CHECK(x.dimension() == dimension_);
  std::vector<double> y(NumMeasurements(), 0.0);
  for (const SparseEntry& e : x.entries()) {
    for (uint64_t j = 0; j < depth_; ++j) {
      y[j * width_ + BucketOf(j, e.index)] += SignOf(j, e.index) * e.value;
    }
  }
  return y;
}

double HashedRecovery::EstimateCoordinate(const std::vector<double>& y,
                                          uint64_t i) const {
  SKETCH_CHECK(y.size() == NumMeasurements());
  std::vector<double> row_estimates(depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    row_estimates[j] = SignOf(j, i) * y[j * width_ + BucketOf(j, i)];
  }
  if (variant_ == Variant::kCountMin) {
    // Min estimator (assumes a nonnegative signal; for general signals the
    // median of rows is used instead, giving a weaker two-sided bound).
    return *std::min_element(row_estimates.begin(), row_estimates.end());
  }
  const auto mid = row_estimates.begin() + depth_ / 2;
  std::nth_element(row_estimates.begin(), mid, row_estimates.end());
  return *mid;
}

SparseVector HashedRecovery::RecoverTopK(const std::vector<double>& y,
                                         uint64_t k) const {
  std::vector<SparseEntry> estimates;
  estimates.reserve(dimension_);
  for (uint64_t i = 0; i < dimension_; ++i) {
    const double v = EstimateCoordinate(y, i);
    if (v != 0.0) estimates.push_back({i, v});
  }
  if (estimates.size() > k) {
    // NaN measurements (possible with untrusted y) would break the strict
    // weak ordering nth_element requires; rank them below every finite
    // magnitude so the selection stays well defined.
    const auto magnitude = [](const SparseEntry& e) {
      const double m = std::abs(e.value);
      return std::isnan(m) ? -1.0 : m;
    };
    std::nth_element(
        estimates.begin(),
        estimates.begin() + static_cast<std::ptrdiff_t>(k), estimates.end(),
        [&magnitude](const SparseEntry& a, const SparseEntry& b) {
          return magnitude(a) > magnitude(b);
        });
    estimates.resize(k);
  }
  return SparseVector::FromEntries(dimension_, std::move(estimates));
}

CsrMatrix HashedRecovery::ToMatrix() const {
  std::vector<Triplet> triplets;
  triplets.reserve(dimension_ * depth_);
  for (uint64_t j = 0; j < depth_; ++j) {
    for (uint64_t i = 0; i < dimension_; ++i) {
      triplets.push_back({j * width_ + BucketOf(j, i),
                          i,
                          static_cast<double>(SignOf(j, i))});
    }
  }
  return CsrMatrix::FromTriplets(NumMeasurements(), dimension_,
                                 std::move(triplets));
}

}  // namespace sketch
