#ifndef SKETCH_CS_SIGNALS_H_
#define SKETCH_CS_SIGNALS_H_

#include <cstdint>
#include <vector>

#include "linalg/sparse_vector.h"

namespace sketch {

/// How the nonzero values of a synthetic sparse signal are drawn.
enum class SignalValueDistribution {
  kSignOnly,   ///< values are ±1 (hardest case for magnitude-based pruning)
  kGaussian,   ///< values ~ N(0, 1)
  kUniformMagnitude,  ///< |value| uniform in [0.5, 1.5], random sign
};

/// Generates an exactly k-sparse signal of dimension n with a uniformly
/// random support. These are the signals compressed-sensing guarantees are
/// stated for (§2): recovery must succeed for *any* k-sparse x, so a
/// random-support ensemble with adversarial ±1 values is the standard test.
SparseVector MakeSparseSignal(uint64_t n, uint64_t k,
                              SignalValueDistribution dist, uint64_t seed);

/// Generates a compressible (power-law) signal: sorted coefficient
/// magnitudes decay as i^{-decay}, random support order and signs. Models
/// the "sparse after a change of basis" signals of imaging applications.
std::vector<double> MakePowerLawSignal(uint64_t n, double decay,
                                       uint64_t seed);

/// Adds i.i.d. N(0, sigma^2) noise to a dense vector in place.
void AddGaussianNoise(std::vector<double>* x, double sigma, uint64_t seed);

}  // namespace sketch

#endif  // SKETCH_CS_SIGNALS_H_
