#include "cs/omp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "linalg/least_squares.h"

namespace sketch {

OmpResult OmpRecover(const DenseMatrix& a, const std::vector<double>& y,
                     const OmpOptions& options) {
  const uint64_t m = a.rows();
  const uint64_t n = a.cols();
  SKETCH_CHECK(y.size() == m);
  SKETCH_CHECK(options.sparsity >= 1);
  SKETCH_CHECK(options.sparsity <= m);

  // Precompute column norms for normalized correlations.
  std::vector<double> col_norm(n, 0.0);
  for (uint64_t r = 0; r < m; ++r) {
    const double* row = a.Row(r);
    for (uint64_t c = 0; c < n; ++c) col_norm[c] += row[c] * row[c];
  }
  for (double& v : col_norm) v = std::sqrt(v);

  std::vector<double> residual = y;
  std::vector<uint64_t> support;
  std::vector<double> coefficients;

  OmpResult result;
  while (support.size() < options.sparsity) {
    // Correlation pass: argmax_j |<residual, a_j>| / ||a_j||.
    std::vector<double> corr(n, 0.0);
    for (uint64_t r = 0; r < m; ++r) {
      const double rr = residual[r];
      if (rr == 0.0) continue;
      const double* row = a.Row(r);
      for (uint64_t c = 0; c < n; ++c) corr[c] += row[c] * rr;
    }
    uint64_t best = n;
    double best_score = 0.0;
    for (uint64_t c = 0; c < n; ++c) {
      if (col_norm[c] == 0.0) continue;
      if (std::find(support.begin(), support.end(), c) != support.end()) {
        continue;
      }
      const double score = std::abs(corr[c]) / col_norm[c];
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best == n || best_score == 0.0) break;
    support.push_back(best);

    // Projection: least squares on the selected columns.
    DenseMatrix sub(m, support.size());
    for (uint64_t r = 0; r < m; ++r) {
      for (size_t s = 0; s < support.size(); ++s) {
        sub.At(r, s) = a.At(r, support[s]);
      }
    }
    coefficients = SolveLeastSquaresQr(sub, y);

    // Residual = y - A_S coef.
    residual = y;
    for (uint64_t r = 0; r < m; ++r) {
      double acc = 0.0;
      for (size_t s = 0; s < support.size(); ++s) {
        acc += sub.At(r, s) * coefficients[s];
      }
      residual[r] -= acc;
    }
    if (L2Norm(residual) < options.tolerance) break;
  }

  std::vector<SparseEntry> entries;
  entries.reserve(support.size());
  for (size_t s = 0; s < support.size(); ++s) {
    entries.push_back({support[s], coefficients[s]});
  }
  result.estimate = SparseVector::FromEntries(n, std::move(entries));
  result.residual_l2 = L2Norm(residual);
  result.atoms_selected = support.size();
  return result;
}

}  // namespace sketch
