#ifndef SKETCH_CS_OMP_H_
#define SKETCH_CS_OMP_H_

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Options for Orthogonal Matching Pursuit.
struct OmpOptions {
  uint64_t sparsity = 10;   ///< number of atoms to select
  double tolerance = 1e-9;  ///< stop early when the residual l2 falls below
};

/// Result of an OMP run.
struct OmpResult {
  SparseVector estimate;
  double residual_l2 = 0.0;
  uint64_t atoms_selected = 0;
};

/// Orthogonal Matching Pursuit: the classical greedy baseline for dense
/// measurement ensembles. Repeats k times: pick the column most correlated
/// with the residual, then re-solve least squares on the selected support
/// (Householder QR). Each iteration costs a full O(nm) correlation pass —
/// the dense-side cost that experiments E4/E5 contrast with hashing-based
/// recovery.
OmpResult OmpRecover(const DenseMatrix& a, const std::vector<double>& y,
                     const OmpOptions& options);

}  // namespace sketch

#endif  // SKETCH_CS_OMP_H_
