#ifndef SKETCH_CS_HASHED_RECOVERY_H_
#define SKETCH_CS_HASHED_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "linalg/csr_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Sparse recovery via hashing, the [CM06] observation at the heart of the
/// survey: the Count-Sketch / Count-Min update process *is* a compressed-
/// sensing measurement map, and its point-query estimator *is* a recovery
/// procedure. With m = O(k log n) measurements (width O(k), depth
/// O(log n)), estimating every coordinate and keeping the top k yields a
/// k-sparse approximation with the ℓ2 (Count-Sketch) or ℓ1 (Count-Min)
/// guarantee, in O(n log n) decode time — versus Ω(nm) for dense-matrix
/// algorithms.
///
/// This class owns the hash functions, so measuring and recovering are
/// guaranteed to agree. `variant` selects the sign behaviour:
///  - kCountSketch: ±1 entries, median estimator (unbiased; any signal);
///  - kCountMin:    +1 entries, min estimator (nonnegative signals) or
///                  median estimator (general signals; weaker guarantee).
class HashedRecovery {
 public:
  enum class Variant { kCountSketch, kCountMin };

  /// \param width  buckets per row; O(k/eps) gives the (1+eps) guarantee.
  /// \param depth  rows; O(log n) drives the failure probability down.
  HashedRecovery(Variant variant, uint64_t width, uint64_t depth,
                 uint64_t dimension, uint64_t seed);

  /// Number of measurements m = width * depth.
  uint64_t NumMeasurements() const { return width_ * depth_; }

  /// y = A x for a dense signal. O(n * depth).
  std::vector<double> Measure(const std::vector<double>& x) const;

  /// y = A x for a sparse signal. O(nnz(x) * depth).
  std::vector<double> Measure(const SparseVector& x) const;

  /// Point estimate of coordinate `i` from measurements `y`.
  double EstimateCoordinate(const std::vector<double>& y, uint64_t i) const;

  /// Full recovery: estimates every coordinate and keeps the k of largest
  /// magnitude. O(n * depth + n log n).
  SparseVector RecoverTopK(const std::vector<double>& y, uint64_t k) const;

  /// The explicit matrix this operator implements (for tests and for
  /// feeding the same ensemble to generic algorithms).
  CsrMatrix ToMatrix() const;

  Variant variant() const { return variant_; }
  uint64_t width() const { return width_; }
  uint64_t depth() const { return depth_; }
  uint64_t dimension() const { return dimension_; }

 private:
  int SignOf(uint64_t row, uint64_t i) const;
  uint64_t BucketOf(uint64_t row, uint64_t i) const {
    return bucket_hashes_[row].Bucket(i, width_);
  }

  Variant variant_;
  uint64_t width_;
  uint64_t depth_;
  uint64_t dimension_;
  std::vector<KWiseHash> bucket_hashes_;
  std::vector<KWiseHash> sign_hashes_;
};

}  // namespace sketch

#endif  // SKETCH_CS_HASHED_RECOVERY_H_
