#include "cs/bit_test_recovery.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

BitTestRecovery::BitTestRecovery(uint64_t width, uint64_t depth,
                                 uint64_t dimension, uint64_t seed)
    : width_(width), depth_(depth), dimension_(dimension) {
  SKETCH_CHECK(width >= 1 && depth >= 1 && dimension >= 2);
  log_n_ = 0;
  while ((1ULL << log_n_) < dimension) ++log_n_;
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint64_t j = 0; j < depth; ++j) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed * 2 + j));
    sign_hashes_.emplace_back(2, SplitMix64Once(~seed * 2 + j + 0x9e37ULL));
  }
}

std::vector<double> BitTestRecovery::Measure(const SparseVector& x) const {
  SKETCH_CHECK(x.dimension() == dimension_);
  std::vector<double> y(NumMeasurements(), 0.0);
  for (const SparseEntry& e : x.entries()) {
    for (uint64_t j = 0; j < depth_; ++j) {
      const uint64_t b = bucket_hashes_[j].Bucket(e.index, width_);
      const double signed_value = sign_hashes_[j].Sign(e.index) * e.value;
      y[CellIndex(j, b, 0)] += signed_value;
      for (uint64_t t = 0; t < log_n_; ++t) {
        if (e.index & (1ULL << t)) {
          y[CellIndex(j, b, 1 + t)] += signed_value;
        }
      }
    }
  }
  return y;
}

std::vector<double> BitTestRecovery::Measure(
    const std::vector<double>& x) const {
  return Measure(SparseVector::FromDense(x));
}

BitTestRecovery::Result BitTestRecovery::Recover(const std::vector<double>& y,
                                                 int max_rounds,
                                                 double tolerance) const {
  SKETCH_CHECK(y.size() == NumMeasurements());
  std::vector<double> work = y;
  std::unordered_map<uint64_t, double> found;

  // Global scale for "is this bucket empty" decisions.
  double max_mag = 0.0;
  for (double v : work) max_mag = std::max(max_mag, std::abs(v));
  const double empty_threshold = std::max(tolerance * max_mag, 1e-300);

  Result result;
  for (int round = 0; round < max_rounds; ++round) {
    bool progressed = false;
    for (uint64_t j = 0; j < depth_; ++j) {
      for (uint64_t b = 0; b < width_; ++b) {
        const double a0 = work[CellIndex(j, b, 0)];
        if (std::abs(a0) <= empty_threshold) continue;
        // Read the index bits; any intermediate counter value means a
        // collision in this bucket (resolve via other rows / later
        // rounds after peeling).
        uint64_t index = 0;
        bool clean = true;
        for (uint64_t t = 0; t < log_n_ && clean; ++t) {
          const double cell = work[CellIndex(j, b, 1 + t)];
          if (std::abs(cell - a0) <= tolerance * std::abs(a0)) {
            index |= 1ULL << t;
          } else if (std::abs(cell) > tolerance * std::abs(a0)) {
            clean = false;  // neither ~0 nor ~a0: collision
          }
        }
        if (!clean || index >= dimension_) continue;
        // Validate against this row's own hash (cheap consistency check).
        if (bucket_hashes_[j].Bucket(index, width_) != b) continue;

        const double value = sign_hashes_[j].Sign(index) * a0;
        found[index] += value;
        if (std::abs(found[index]) <= empty_threshold) found.erase(index);
        // Peel from every row.
        for (uint64_t jj = 0; jj < depth_; ++jj) {
          const uint64_t bb = bucket_hashes_[jj].Bucket(index, width_);
          const double sv = sign_hashes_[jj].Sign(index) * value;
          work[CellIndex(jj, bb, 0)] -= sv;
          for (uint64_t t = 0; t < log_n_; ++t) {
            if (index & (1ULL << t)) work[CellIndex(jj, bb, 1 + t)] -= sv;
          }
        }
        progressed = true;
      }
    }
    result.rounds_used = round + 1;
    if (!progressed) break;
  }

  double residual = 0.0;
  for (uint64_t j = 0; j < depth_; ++j) {
    for (uint64_t b = 0; b < width_; ++b) {
      residual = std::max(residual, std::abs(work[CellIndex(j, b, 0)]));
    }
  }
  result.converged = residual <= empty_threshold;

  std::vector<SparseEntry> entries;
  entries.reserve(found.size());
  for (const auto& [index, value] : found) entries.push_back({index, value});
  result.estimate = SparseVector::FromEntries(dimension_, std::move(entries));
  return result;
}

}  // namespace sketch
