#ifndef SKETCH_CS_IHT_H_
#define SKETCH_CS_IHT_H_

#include <cstdint>
#include <vector>

#include "cs/linear_operator.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Options for (normalized) Iterative Hard Thresholding.
struct IhtOptions {
  uint64_t sparsity = 10;   ///< target sparsity k
  int max_iterations = 200;
  double tolerance = 1e-8;  ///< stop when the residual l2 stalls
};

/// Result of an IHT run.
struct IhtResult {
  SparseVector estimate;
  double residual_l2 = 0.0;
  int iterations_run = 0;
};

/// Normalized Iterative Hard Thresholding (Blumensath–Davies):
///   x_{t+1} = H_k( x_t + mu_t A^T (y - A x_t) ),
/// with the step size mu_t = ||g_S||^2 / ||A g_S||^2 computed on the
/// current support (falling back to a damped step when that would
/// overshoot). The standard dense-ensemble baseline for experiment E4/E5:
/// each iteration costs two full matrix-vector products — O(nm) on a dense
/// Gaussian matrix, versus O(nnz) on a sparse one, which is exactly the
/// running-time gap the survey highlights.
IhtResult IhtRecover(const LinearOperator& a, const std::vector<double>& y,
                     const IhtOptions& options);

/// Hard-thresholding operator H_k: keeps the k largest-magnitude entries
/// of `x`, zeroing the rest. Exposed for reuse and tests.
void HardThreshold(std::vector<double>* x, uint64_t k);

}  // namespace sketch

#endif  // SKETCH_CS_IHT_H_
