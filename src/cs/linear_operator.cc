#include "cs/linear_operator.h"

namespace sketch {

LinearOperator LinearOperator::FromDense(
    std::shared_ptr<const DenseMatrix> a) {
  const uint64_t rows = a->rows();
  const uint64_t cols = a->cols();
  auto apply = [a](const std::vector<double>& x) { return a->Multiply(x); };
  auto apply_t = [a](const std::vector<double>& x) {
    return a->MultiplyTranspose(x);
  };
  return LinearOperator(rows, cols, std::move(apply), std::move(apply_t));
}

LinearOperator LinearOperator::FromCsr(std::shared_ptr<const CsrMatrix> a) {
  const uint64_t rows = a->rows();
  const uint64_t cols = a->cols();
  auto apply = [a](const std::vector<double>& x) { return a->Multiply(x); };
  auto apply_t = [a](const std::vector<double>& x) {
    return a->MultiplyTranspose(x);
  };
  return LinearOperator(rows, cols, std::move(apply), std::move(apply_t));
}

}  // namespace sketch
