#include "cs/signals.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

SparseVector MakeSparseSignal(uint64_t n, uint64_t k,
                              SignalValueDistribution dist, uint64_t seed) {
  SKETCH_CHECK(k <= n);
  Xoshiro256StarStar rng(seed);
  // Sample k distinct indices by Floyd's algorithm.
  std::vector<uint64_t> support;
  support.reserve(k);
  std::vector<SparseEntry> entries;
  entries.reserve(k);
  // Floyd's sampling needs a membership test; k is small, use sorted probe.
  std::vector<uint64_t> chosen;
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng.NextBounded(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) t = j;
    chosen.push_back(t);
  }
  for (uint64_t idx : chosen) {
    double value = 0.0;
    switch (dist) {
      case SignalValueDistribution::kSignOnly:
        value = (rng.Next() & 1) ? 1.0 : -1.0;
        break;
      case SignalValueDistribution::kGaussian:
        do {
          value = rng.NextGaussian();
        } while (value == 0.0);
        break;
      case SignalValueDistribution::kUniformMagnitude: {
        const double mag = 0.5 + rng.NextDouble();
        value = (rng.Next() & 1) ? mag : -mag;
        break;
      }
    }
    entries.push_back({idx, value});
  }
  return SparseVector::FromEntries(n, std::move(entries));
}

std::vector<double> MakePowerLawSignal(uint64_t n, double decay,
                                       uint64_t seed) {
  SKETCH_CHECK(decay > 0.0);
  Xoshiro256StarStar rng(seed);
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  std::vector<double> x(n, 0.0);
  for (uint64_t rank = 0; rank < n; ++rank) {
    const double mag = std::pow(static_cast<double>(rank + 1), -decay);
    x[perm[rank]] = (rng.Next() & 1) ? mag : -mag;
  }
  return x;
}

void AddGaussianNoise(std::vector<double>* x, double sigma, uint64_t seed) {
  SKETCH_CHECK(sigma >= 0.0);
  if (sigma == 0.0) return;
  Xoshiro256StarStar rng(seed);
  for (double& v : *x) v += sigma * rng.NextGaussian();
}

}  // namespace sketch
