#ifndef SKETCH_CS_SSMP_H_
#define SKETCH_CS_SSMP_H_

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Options for Sequential Sparse Matching Pursuit.
struct SsmpOptions {
  uint64_t sparsity = 10;      ///< target sparsity k
  int phases = 8;              ///< outer iterations (sparsify after each)
  int steps_per_phase_factor = 4;  ///< greedy updates per phase = factor * k
  double convergence_tolerance = 1e-9;  ///< stop when residual l1 stalls
};

/// Result of a sparse-recovery run.
struct SsmpResult {
  SparseVector estimate;
  double residual_l1 = 0.0;  ///< ||y - A x_hat||_1 at termination
  int phases_run = 0;
};

/// Sequential Sparse Matching Pursuit [BIR08]: near-optimal ℓ1 sparse
/// recovery with a *sparse binary* measurement matrix (d ones per column).
///
/// Greedy coordinate descent on ||y - A x̂||_1: the best update for
/// coordinate i is the median of the residual over i's d buckets, and its
/// gain is the resulting drop in residual ℓ1 norm. Each phase performs
/// O(k) such updates and then hard-thresholds x̂ back to k terms. Every
/// step touches only d counters, which is what makes sparse-matrix
/// recovery near-linear-time (experiment E5).
///
/// \param a  sparse binary measurement matrix (see MakeSparseBinaryMatrix);
///           the implementation precomputes its transpose for column walks.
/// \param y  measurement vector, y.size() == a.rows().
SsmpResult SsmpRecover(const CsrMatrix& a, const std::vector<double>& y,
                       const SsmpOptions& options);

}  // namespace sketch

#endif  // SKETCH_CS_SSMP_H_
