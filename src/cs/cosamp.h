#ifndef SKETCH_CS_COSAMP_H_
#define SKETCH_CS_COSAMP_H_

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Options for CoSaMP.
struct CosampOptions {
  uint64_t sparsity = 10;
  int max_iterations = 50;
  double tolerance = 1e-9;  ///< stop when the residual l2 falls below
};

/// Result of a CoSaMP run.
struct CosampResult {
  SparseVector estimate;
  double residual_l2 = 0.0;
  int iterations_run = 0;
};

/// Compressive Sampling Matching Pursuit — the modern greedy baseline of
/// the [GSTV07]-era "one sketch for all" line: each iteration merges the
/// 2k largest correlation entries into the current support, solves least
/// squares on the (≤3k)-column submatrix, and prunes back to k. Uniform
/// RIP-style guarantees on dense Gaussian ensembles; each iteration costs
/// a full O(nm) correlation pass plus an O(m k^2) solve.
CosampResult CosampRecover(const DenseMatrix& a, const std::vector<double>& y,
                           const CosampOptions& options);

}  // namespace sketch

#endif  // SKETCH_CS_COSAMP_H_
