#include "cs/cosamp.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "common/metrics.h"
#include "cs/iht.h"
#include "linalg/least_squares.h"

namespace sketch {

CosampResult CosampRecover(const DenseMatrix& a, const std::vector<double>& y,
                           const CosampOptions& options) {
  const uint64_t m = a.rows();
  const uint64_t n = a.cols();
  const uint64_t k = options.sparsity;
  SKETCH_CHECK(y.size() == m);
  SKETCH_CHECK(k >= 1);
  SKETCH_CHECK_MSG(3 * k <= m, "CoSaMP needs m >= 3k for its LS solves");

  std::vector<double> x(n, 0.0);
  std::vector<double> residual = y;
  double best_residual = L2Norm(residual);

  CosampResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    // Proxy = A^T r; take its 2k largest entries...
    std::vector<double> proxy = a.MultiplyTranspose(residual);
    HardThreshold(&proxy, 2 * k);
    // ...and merge with the current support.
    std::set<uint64_t> support;
    for (uint64_t i = 0; i < n; ++i) {
      if (proxy[i] != 0.0 || x[i] != 0.0) support.insert(i);
    }
    const std::vector<uint64_t> cols(support.begin(), support.end());

    // Least squares on the merged support.
    DenseMatrix sub(m, cols.size());
    for (uint64_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < cols.size(); ++c) {
        sub.At(r, c) = a.At(r, cols[c]);
      }
    }
    const std::vector<double> coef = SolveLeastSquaresQr(sub, y);

    // Prune to the k largest coefficients.
    std::fill(x.begin(), x.end(), 0.0);
    for (size_t c = 0; c < cols.size(); ++c) x[cols[c]] = coef[c];
    HardThreshold(&x, k);

    // Residual against the pruned estimate.
    const std::vector<double> ax = a.Multiply(x);
    for (uint64_t r = 0; r < m; ++r) residual[r] = y[r] - ax[r];

    result.iterations_run = it + 1;
    const double r_norm = L2Norm(residual);
    if (r_norm < options.tolerance) break;
    if (r_norm >= best_residual * (1.0 - 1e-9) && it > 2) break;  // stalled
    best_residual = std::min(best_residual, r_norm);
  }

  result.estimate = SparseVector::FromDense(x);
  result.residual_l2 = L2Norm(residual);
  return result;
}

}  // namespace sketch
