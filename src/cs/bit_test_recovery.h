#ifndef SKETCH_CS_BIT_TEST_RECOVERY_H_
#define SKETCH_CS_BIT_TEST_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "hash/kwise_hash.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Sub-linear-time sparse recovery via bit-test measurements — the
/// "pre-identification procedure" of [GGI+02b] (survey §1 footnote 2, and
/// the mechanism behind the sublinear decoders of [GLPS10]).
///
/// Each hash bucket stores 1 + log2(n) counters: the plain signed sum of
/// its coordinates, plus one sum restricted to coordinates whose t-th
/// index bit is 1. A bucket containing a single heavy coordinate reveals
/// that coordinate's *index* directly: bit t is 1 iff the t-th restricted
/// counter matches the full counter (and 0 iff it is ~0); anything in
/// between exposes a collision. Identified coordinates are peeled and the
/// scan repeats, so decoding costs O(depth * width * log n) — independent
/// of the ambient dimension n, versus the Θ(n * depth) estimate-every-
/// coordinate scan of HashedRecovery.
///
/// The price is a log(n) factor in measurements: m = depth*width*(1+log n)
/// — exactly the time-vs-measurements trade the survey describes for
/// [GLPS10]-style algorithms.
class BitTestRecovery {
 public:
  /// \param width   buckets per row (O(k) for k-sparse signals).
  /// \param depth   rows; a few are enough since peeling iterates.
  BitTestRecovery(uint64_t width, uint64_t depth, uint64_t dimension,
                  uint64_t seed);

  /// Number of scalar measurements (depth * width * (1 + log2 n)).
  uint64_t NumMeasurements() const {
    return width_ * depth_ * (1 + log_n_);
  }

  /// y = A x for a sparse signal; O(nnz(x) * depth * log n).
  std::vector<double> Measure(const SparseVector& x) const;

  /// y = A x for a dense signal.
  std::vector<double> Measure(const std::vector<double>& x) const;

  /// Result of a recovery run.
  struct Result {
    SparseVector estimate;
    int rounds_used = 0;
    bool converged = false;  ///< all bucket energy explained
  };

  /// Peeling decoder; `max_rounds` bounds the peel iterations. The
  /// relative `tolerance` decides when a restricted counter counts as
  /// "equal to" the full counter (raise for noisy measurements).
  Result Recover(const std::vector<double>& y, int max_rounds = 16,
                 double tolerance = 1e-6) const;

  uint64_t width() const { return width_; }
  uint64_t depth() const { return depth_; }
  uint64_t dimension() const { return dimension_; }

 private:
  uint64_t CellIndex(uint64_t row, uint64_t bucket, uint64_t cell) const {
    return (row * width_ + bucket) * (1 + log_n_) + cell;
  }

  uint64_t width_;
  uint64_t depth_;
  uint64_t dimension_;
  uint64_t log_n_;  // ceil(log2(dimension))
  std::vector<KWiseHash> bucket_hashes_;
  std::vector<KWiseHash> sign_hashes_;
};

}  // namespace sketch

#endif  // SKETCH_CS_BIT_TEST_RECOVERY_H_
