#ifndef SKETCH_CS_ENSEMBLES_H_
#define SKETCH_CS_ENSEMBLES_H_

#include <cstdint>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace sketch {

/// Measurement-matrix ensembles for compressed sensing (§2).
///
/// The survey's dichotomy: dense i.i.d. matrices (Gaussian / Bernoulli)
/// achieve the optimal m = O(k log(n/k)) bound but cost O(nm) per
/// operation, while sparse binary matrices — adjacency matrices of
/// expander graphs, equivalently the matrices realized by the hashing
/// process — use m = O(k log n) with O(d) nonzeros per column and support
/// recovery in near-linear time [CM06, BGI+08, BIR08, GLPS10].

/// Sparse binary matrix: each column has exactly `ones_per_column` ones
/// placed in distinct random rows (random bipartite d-regular graph — an
/// expander w.h.p.). Entries are 1.0 (unnormalized, as in [BIR08]).
CsrMatrix MakeSparseBinaryMatrix(uint64_t rows, uint64_t cols,
                                 int ones_per_column, uint64_t seed);

/// Count-Sketch measurement matrix: `depth` blocks of `width` rows; in
/// each block every column has a single ±1 entry at a hashed row. This is
/// precisely the linear map c = Ax of the survey's §1, written down as a
/// matrix. rows() == depth * width.
CsrMatrix MakeCountSketchMatrix(uint64_t width, uint64_t depth, uint64_t cols,
                                uint64_t seed);

/// Count-Min measurement matrix: like the Count-Sketch matrix but all
/// entries are +1 (no signs) — the [CM06] recovery ensemble.
CsrMatrix MakeCountMinMatrix(uint64_t width, uint64_t depth, uint64_t cols,
                             uint64_t seed);

/// Dense Gaussian ensemble, N(0, 1/rows) entries [CRT06].
DenseMatrix MakeGaussianMatrix(uint64_t rows, uint64_t cols, uint64_t seed);

/// Dense Rademacher (Bernoulli ±1/sqrt(rows)) ensemble.
DenseMatrix MakeRademacherMatrix(uint64_t rows, uint64_t cols, uint64_t seed);

}  // namespace sketch

#endif  // SKETCH_CS_ENSEMBLES_H_
