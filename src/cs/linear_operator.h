#ifndef SKETCH_CS_LINEAR_OPERATOR_H_
#define SKETCH_CS_LINEAR_OPERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace sketch {

/// A measurement map y = A x presented abstractly: recovery algorithms
/// that only need matrix-vector products (IHT) take this, so the same code
/// runs against dense Gaussian ensembles and sparse hashing ensembles —
/// the exact comparison §2 of the survey draws.
class LinearOperator {
 public:
  using ApplyFn = std::function<std::vector<double>(const std::vector<double>&)>;

  LinearOperator(uint64_t rows, uint64_t cols, ApplyFn apply,
                 ApplyFn apply_transpose)
      : rows_(rows),
        cols_(cols),
        apply_(std::move(apply)),
        apply_transpose_(std::move(apply_transpose)) {}

  /// Wraps a dense matrix (shares it via shared_ptr to keep the operator
  /// copyable and cheap).
  static LinearOperator FromDense(std::shared_ptr<const DenseMatrix> a);

  /// Wraps a CSR matrix.
  static LinearOperator FromCsr(std::shared_ptr<const CsrMatrix> a);

  /// y = A x.
  std::vector<double> Apply(const std::vector<double>& x) const {
    return apply_(x);
  }
  /// y = A^T x.
  std::vector<double> ApplyTranspose(const std::vector<double>& x) const {
    return apply_transpose_(x);
  }

  uint64_t rows() const { return rows_; }
  uint64_t cols() const { return cols_; }

 private:
  uint64_t rows_;
  uint64_t cols_;
  ApplyFn apply_;
  ApplyFn apply_transpose_;
};

}  // namespace sketch

#endif  // SKETCH_CS_LINEAR_OPERATOR_H_
