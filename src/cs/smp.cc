#include "cs/smp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "cs/iht.h"

namespace sketch {

namespace {

double MedianOf(std::vector<double>* v) {
  const auto mid = v->begin() + v->size() / 2;
  std::nth_element(v->begin(), mid, v->end());
  if (v->size() % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower = *std::max_element(v->begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace

SmpResult SmpRecover(const CsrMatrix& a, const std::vector<double>& y,
                     const SmpOptions& options) {
  SKETCH_CHECK(y.size() == a.rows());
  SKETCH_CHECK(options.sparsity >= 1);
  const uint64_t n = a.cols();
  const CsrMatrix at = a.Transpose();

  std::vector<double> x_hat(n, 0.0);
  std::vector<double> residual = y;
  double best_residual = L1Norm(residual);

  SmpResult result;
  std::vector<double> scratch;
  for (int it = 0; it < options.max_iterations; ++it) {
    // Candidate update: per-coordinate median of the residual buckets.
    std::vector<double> update(n, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      const CsrMatrix::RowView col = at.Row(i);
      if (col.size == 0) continue;
      scratch.assign(col.size, 0.0);
      for (uint64_t t = 0; t < col.size; ++t) {
        scratch[t] = residual[col.cols[t]];
      }
      update[i] = MedianOf(&scratch);
    }
    // Keep the 2k largest update entries, apply, re-sparsify to k.
    HardThreshold(&update, 2 * options.sparsity);
    for (uint64_t i = 0; i < n; ++i) x_hat[i] += update[i];
    HardThreshold(&x_hat, options.sparsity);

    // Residual = y - A x_hat via column walks (O(k d)).
    residual = y;
    for (uint64_t i = 0; i < n; ++i) {
      if (x_hat[i] == 0.0) continue;
      const CsrMatrix::RowView col = at.Row(i);
      for (uint64_t t = 0; t < col.size; ++t) {
        residual[col.cols[t]] -= x_hat[i];
      }
    }

    result.iterations_run = it + 1;
    const double l1 = L1Norm(residual);
    if (l1 < options.convergence_tolerance) break;
    if (l1 >= best_residual * (1.0 - 1e-9) && it > 2) break;  // stalled
    best_residual = std::min(best_residual, l1);
  }

  result.estimate = SparseVector::FromDense(x_hat);
  result.residual_l1 = L1Norm(residual);
  return result;
}

}  // namespace sketch
