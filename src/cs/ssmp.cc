#include "cs/ssmp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "telemetry/telemetry.h"

namespace sketch {

namespace {

/// Median of a small scratch vector (modifies it).
double MedianInPlace(std::vector<double>* v) {
  const auto mid = v->begin() + v->size() / 2;
  std::nth_element(v->begin(), mid, v->end());
  if (v->size() % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower = *std::max_element(v->begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace

SsmpResult SsmpRecover(const CsrMatrix& a, const std::vector<double>& y,
                       const SsmpOptions& options) {
  SKETCH_TRACE_SPAN("cs.ssmp.recover");
  SKETCH_CHECK(y.size() == a.rows());
  SKETCH_CHECK(options.sparsity >= 1);
  const uint64_t n = a.cols();
  const CsrMatrix at = a.Transpose();  // row i of `at` lists i's buckets

  std::vector<double> x_hat(n, 0.0);
  std::vector<double> residual = y;
  double best_residual_l1 = L1Norm(residual);

  SsmpResult result;
  std::vector<double> scratch;
  const int steps =
      options.steps_per_phase_factor * static_cast<int>(options.sparsity);

  for (int phase = 0; phase < options.phases; ++phase) {
    SKETCH_TRACE_SPAN("cs.ssmp.phase");
    for (int step = 0; step < steps; ++step) {
      // Find the single-coordinate update with the largest l1 gain.
      double best_gain = options.convergence_tolerance;
      uint64_t best_i = n;
      double best_z = 0.0;
      for (uint64_t i = 0; i < n; ++i) {
        const CsrMatrix::RowView col = at.Row(i);
        if (col.size == 0) continue;
        scratch.assign(col.size, 0.0);
        for (uint64_t t = 0; t < col.size; ++t) {
          scratch[t] = residual[col.cols[t]];
        }
        const double z = MedianInPlace(&scratch);
        if (z == 0.0) continue;
        double gain = 0.0;
        for (uint64_t t = 0; t < col.size; ++t) {
          const double r = residual[col.cols[t]];
          gain += std::abs(r) - std::abs(r - z);
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_z = z;
        }
      }
      if (best_i == n) break;  // no improving update
      SKETCH_COUNTER_INC("cs.ssmp.coordinate_updates");
      x_hat[best_i] += best_z;
      const CsrMatrix::RowView col = at.Row(best_i);
      for (uint64_t t = 0; t < col.size; ++t) {
        residual[col.cols[t]] -= best_z;
      }
    }

    // Sparsify: keep the k largest-magnitude coordinates.
    std::vector<SparseEntry> entries;
    for (uint64_t i = 0; i < n; ++i) {
      if (x_hat[i] != 0.0) entries.push_back({i, x_hat[i]});
    }
    if (entries.size() > options.sparsity) {
      std::nth_element(entries.begin(), entries.begin() + options.sparsity,
                       entries.end(),
                       [](const SparseEntry& p, const SparseEntry& q) {
                         return std::abs(p.value) > std::abs(q.value);
                       });
      entries.resize(options.sparsity);
    }
    std::fill(x_hat.begin(), x_hat.end(), 0.0);
    for (const SparseEntry& e : entries) x_hat[e.index] = e.value;

    // Rebuild the residual from scratch (column walks keep this O(k d)).
    residual = y;
    for (const SparseEntry& e : entries) {
      const CsrMatrix::RowView col = at.Row(e.index);
      for (uint64_t t = 0; t < col.size; ++t) {
        residual[col.cols[t]] -= e.value;
      }
    }

    result.phases_run = phase + 1;
    const double l1 = L1Norm(residual);
    SKETCH_TRACE_COUNTER("cs.ssmp.residual_l1",
                         static_cast<int64_t>(l1));
    if (l1 >= best_residual_l1 - options.convergence_tolerance) {
      best_residual_l1 = std::min(best_residual_l1, l1);
      break;
    }
    best_residual_l1 = l1;
  }

  result.estimate = SparseVector::FromDense(x_hat);
  result.residual_l1 = L1Norm(residual);
  return result;
}

}  // namespace sketch
