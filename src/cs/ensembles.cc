#include "cs/ensembles.h"

#include <algorithm>

#include "common/check.h"
#include "common/prng.h"
#include "hash/kwise_hash.h"

namespace sketch {

CsrMatrix MakeSparseBinaryMatrix(uint64_t rows, uint64_t cols,
                                 int ones_per_column, uint64_t seed) {
  SKETCH_CHECK(ones_per_column >= 1);
  SKETCH_CHECK(rows >= static_cast<uint64_t>(ones_per_column));
  Xoshiro256StarStar rng(seed);
  std::vector<Triplet> triplets;
  triplets.reserve(cols * ones_per_column);
  std::vector<uint64_t> picked;
  for (uint64_t c = 0; c < cols; ++c) {
    picked.clear();
    while (picked.size() < static_cast<size_t>(ones_per_column)) {
      const uint64_t r = rng.NextBounded(rows);
      if (std::find(picked.begin(), picked.end(), r) == picked.end()) {
        picked.push_back(r);
      }
    }
    for (uint64_t r : picked) triplets.push_back({r, c, 1.0});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

namespace {

CsrMatrix MakeHashedBlockMatrix(uint64_t width, uint64_t depth, uint64_t cols,
                                uint64_t seed, bool signed_entries) {
  SKETCH_CHECK(width >= 1 && depth >= 1);
  std::vector<Triplet> triplets;
  triplets.reserve(cols * depth);
  for (uint64_t j = 0; j < depth; ++j) {
    const KWiseHash bucket_hash(2, SplitMix64Once(seed * 2 + j));
    const KWiseHash sign_hash(2, SplitMix64Once(~seed * 2 + j + 0x9e37ULL));
    for (uint64_t c = 0; c < cols; ++c) {
      const uint64_t r = j * width + bucket_hash.Bucket(c, width);
      const double v = signed_entries
                           ? static_cast<double>(sign_hash.Sign(c))
                           : 1.0;
      triplets.push_back({r, c, v});
    }
  }
  return CsrMatrix::FromTriplets(width * depth, cols, std::move(triplets));
}

}  // namespace

CsrMatrix MakeCountSketchMatrix(uint64_t width, uint64_t depth, uint64_t cols,
                                uint64_t seed) {
  return MakeHashedBlockMatrix(width, depth, cols, seed,
                               /*signed_entries=*/true);
}

CsrMatrix MakeCountMinMatrix(uint64_t width, uint64_t depth, uint64_t cols,
                             uint64_t seed) {
  return MakeHashedBlockMatrix(width, depth, cols, seed,
                               /*signed_entries=*/false);
}

DenseMatrix MakeGaussianMatrix(uint64_t rows, uint64_t cols, uint64_t seed) {
  DenseMatrix m(rows, cols);
  m.FillGaussian(seed);
  return m;
}

DenseMatrix MakeRademacherMatrix(uint64_t rows, uint64_t cols, uint64_t seed) {
  DenseMatrix m(rows, cols);
  m.FillRademacher(seed);
  return m;
}

}  // namespace sketch
