#include "cs/iht.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"

namespace sketch {

void HardThreshold(std::vector<double>* x, uint64_t k) {
  if (k >= x->size()) return;
  std::vector<uint64_t> order(x->size());
  for (uint64_t i = 0; i < x->size(); ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + k, order.end(),
                   [&](uint64_t a, uint64_t b) {
                     return std::abs((*x)[a]) > std::abs((*x)[b]);
                   });
  for (uint64_t t = k; t < order.size(); ++t) (*x)[order[t]] = 0.0;
}

IhtResult IhtRecover(const LinearOperator& a, const std::vector<double>& y,
                     const IhtOptions& options) {
  SKETCH_CHECK(y.size() == a.rows());
  SKETCH_CHECK(options.sparsity >= 1);
  const uint64_t n = a.cols();

  std::vector<double> x(n, 0.0);
  std::vector<double> residual = y;
  double best_residual = L2Norm(residual);

  IhtResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    std::vector<double> gradient = a.ApplyTranspose(residual);

    // Normalized step size on the gradient restricted to the union of the
    // current support and the top-k gradient coordinates.
    std::vector<double> g_restricted = gradient;
    HardThreshold(&g_restricted, 3 * options.sparsity);
    const double g_norm2 = Dot(g_restricted, g_restricted);
    double mu = 1.0;
    if (g_norm2 > 0.0) {
      const std::vector<double> ag = a.Apply(g_restricted);
      const double ag_norm2 = Dot(ag, ag);
      if (ag_norm2 > 0.0) mu = g_norm2 / ag_norm2;
    }

    std::vector<double> x_next = x;
    Axpy(mu, gradient, &x_next);
    HardThreshold(&x_next, options.sparsity);

    std::vector<double> ax = a.Apply(x_next);
    std::vector<double> r_next(y.size());
    for (size_t i = 0; i < y.size(); ++i) r_next[i] = y[i] - ax[i];
    double r_norm = L2Norm(r_next);

    // Backtracking: damp the step until the residual does not blow up.
    int backtracks = 0;
    while (r_norm > best_residual && backtracks < 12) {
      mu *= 0.5;
      x_next = x;
      Axpy(mu, gradient, &x_next);
      HardThreshold(&x_next, options.sparsity);
      ax = a.Apply(x_next);
      for (size_t i = 0; i < y.size(); ++i) r_next[i] = y[i] - ax[i];
      r_norm = L2Norm(r_next);
      ++backtracks;
    }

    x = std::move(x_next);
    residual = std::move(r_next);
    result.iterations_run = it + 1;
    if (r_norm < options.tolerance) break;
    if (best_residual - r_norm < options.tolerance * best_residual &&
        r_norm >= best_residual * (1.0 - 1e-6) && it > 4) {
      break;  // stalled
    }
    best_residual = std::min(best_residual, r_norm);
  }

  result.estimate = SparseVector::FromDense(x);
  result.residual_l2 = L2Norm(residual);
  return result;
}

}  // namespace sketch
