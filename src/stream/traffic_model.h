#ifndef SKETCH_STREAM_TRAFFIC_MODEL_H_
#define SKETCH_STREAM_TRAFFIC_MODEL_H_

#include <cstdint>
#include <vector>

#include "stream/update.h"

namespace sketch {

/// Parameters of the synthetic flow-level traffic model.
///
/// This is the stand-in (per DESIGN.md's substitution table) for the real
/// packet traces the networking papers [EV02, FCAB98, LMP+08] evaluate
/// on: flow *sizes* follow a bounded Pareto (a few elephants, many mice —
/// the empirical heavy-tail that makes heavy-hitter detection worthwhile)
/// and packets of concurrent flows interleave, so sketches see flows
/// fragmented rather than in contiguous runs.
struct TrafficModelOptions {
  uint64_t num_flows = 10000;
  double pareto_shape = 1.2;       ///< tail index; smaller = heavier tail
  uint64_t min_flow_packets = 1;   ///< mice floor
  uint64_t max_flow_packets = 100000;  ///< elephant cap (bounded Pareto)
  /// Flow ids are drawn from this space (hashed 5-tuples in practice).
  uint64_t flow_id_space = 1ULL << 32;
  uint64_t seed = 1;
};

/// A generated trace: packet stream plus per-flow ground truth.
struct TrafficTrace {
  std::vector<StreamUpdate> packets;  ///< one update per packet, delta=1
  std::vector<uint64_t> flow_ids;     ///< distinct flows, sorted
  std::vector<uint64_t> flow_sizes;   ///< aligned with flow_ids
  uint64_t total_packets = 0;
};

/// Generates a trace under the model above. Packets of different flows
/// are interleaved by a random shuffle weighted by remaining flow size
/// (an M/M/∞-flavored mixing — enough to destroy per-flow locality).
TrafficTrace GenerateTrafficTrace(const TrafficModelOptions& options);

/// Fraction of total packets carried by the top `k` flows — the
/// "elephants carry most bytes" diagnostic used to sanity-check traces.
double TopFlowShare(const TrafficTrace& trace, uint64_t k);

}  // namespace sketch

#endif  // SKETCH_STREAM_TRAFFIC_MODEL_H_
