#include "stream/generators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/prng.h"
#include "common/zipf.h"

namespace sketch {

namespace {

/// A pseudo-random bijection on [0, universe) implemented by shuffling the
/// identity with Fisher–Yates. Used to decouple "rank" from "item id".
std::vector<uint64_t> MakeIdPermutation(uint64_t universe, uint64_t seed) {
  std::vector<uint64_t> perm(universe);
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256StarStar rng(seed);
  for (uint64_t i = universe; i > 1; --i) {
    const uint64_t j = rng.NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

std::vector<StreamUpdate> MakeZipfStream(uint64_t universe, double alpha,
                                         uint64_t length, uint64_t seed,
                                         bool shuffle_ids) {
  SKETCH_CHECK(universe >= 1);
  ZipfGenerator zipf(universe, alpha, seed);
  std::vector<uint64_t> perm;
  if (shuffle_ids) perm = MakeIdPermutation(universe, seed ^ 0x5eedULL);
  std::vector<StreamUpdate> updates;
  updates.reserve(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t rank = zipf.Next();
    updates.push_back({shuffle_ids ? perm[rank] : rank, +1});
  }
  return updates;
}

std::vector<StreamUpdate> MakeTurnstileStream(uint64_t universe, double alpha,
                                              uint64_t insert_count,
                                              double delete_fraction,
                                              uint64_t seed) {
  SKETCH_CHECK(delete_fraction >= 0.0 && delete_fraction <= 1.0);
  std::vector<StreamUpdate> updates =
      MakeZipfStream(universe, alpha, insert_count, seed);
  // Track live counts so deletions never drive a count below zero
  // (strict turnstile).
  std::unordered_map<uint64_t, int64_t> live;
  for (const StreamUpdate& u : updates) live[u.item] += u.delta;
  std::vector<uint64_t> items;
  items.reserve(live.size());
  for (const auto& [item, count] : live) items.push_back(item);
  std::sort(items.begin(), items.end());

  Xoshiro256StarStar rng(seed ^ 0xde1e7eULL);
  const uint64_t deletions =
      static_cast<uint64_t>(delete_fraction *
                            static_cast<double>(insert_count));
  for (uint64_t i = 0; i < deletions && !items.empty(); ++i) {
    const uint64_t pick = rng.NextBounded(items.size());
    const uint64_t item = items[pick];
    updates.push_back({item, -1});
    if (--live[item] == 0) {
      items[pick] = items.back();
      items.pop_back();
    }
  }
  return updates;
}

std::vector<StreamUpdate> MakeSingleItemStream(uint64_t item,
                                               uint64_t length) {
  return std::vector<StreamUpdate>(length, StreamUpdate{item, +1});
}

std::vector<StreamUpdate> MakeUniformStream(uint64_t universe, uint64_t length,
                                            uint64_t seed) {
  SKETCH_CHECK(universe >= 1);
  Xoshiro256StarStar rng(seed);
  std::vector<StreamUpdate> updates;
  updates.reserve(length);
  for (uint64_t i = 0; i < length; ++i) {
    updates.push_back({rng.NextBounded(universe), +1});
  }
  return updates;
}

}  // namespace sketch
