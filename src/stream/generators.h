#ifndef SKETCH_STREAM_GENERATORS_H_
#define SKETCH_STREAM_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "stream/update.h"

namespace sketch {

/// Synthetic stream workloads for the experiment suite (see DESIGN.md:
/// substitutions — these stand in for the packet traces / text corpora the
/// cited papers evaluated on; the sketch guarantees depend only on the
/// frequency-vector shape, which these control directly).

/// Insert-only Zipf(alpha) stream of `length` updates over universe [0, n).
/// Item ranks are shuffled to pseudo-random ids when `shuffle_ids` is true
/// so the heavy items are not simply 0,1,2,...
std::vector<StreamUpdate> MakeZipfStream(uint64_t universe, double alpha,
                                         uint64_t length, uint64_t seed,
                                         bool shuffle_ids = true);

/// Strict-turnstile stream: inserts followed by random partial deletions,
/// never driving any count negative. Exercises linear-sketch behaviour
/// under deletions (Count-Min/Count-Sketch/IBLT support them; counter
/// algorithms such as SpaceSaving do not).
std::vector<StreamUpdate> MakeTurnstileStream(uint64_t universe, double alpha,
                                              uint64_t insert_count,
                                              double delete_fraction,
                                              uint64_t seed);

/// Adversarial single-item stream: all `length` updates hit one key.
/// Stresses the "heavy bucket" path — one item owns the entire L1 mass.
std::vector<StreamUpdate> MakeSingleItemStream(uint64_t item, uint64_t length);

/// Uniform stream: every update hits a uniformly random item; no heavy
/// hitters exist. Used as the no-signal control in E2.
std::vector<StreamUpdate> MakeUniformStream(uint64_t universe, uint64_t length,
                                            uint64_t seed);

}  // namespace sketch

#endif  // SKETCH_STREAM_GENERATORS_H_
