#ifndef SKETCH_STREAM_UPDATE_H_
#define SKETCH_STREAM_UPDATE_H_

#include <cstdint>
#include <span>

namespace sketch {

/// A single stream update in the turnstile model: the frequency of `item`
/// changes by `delta`. The cash-register model of §1 (insertions only) is
/// the special case delta = +1; Count-Min/Count-Sketch/IBLT all accept
/// general deltas because they are linear sketches of the frequency
/// vector x.
struct StreamUpdate {
  uint64_t item = 0;
  int64_t delta = 1;
};

/// A borrowed, contiguous block of updates — the unit of batched
/// ingestion. Every mergeable sketch exposes `ApplyBatch(UpdateSpan)`, and
/// the sharded ingestion engine (`src/parallel`) partitions a stream into
/// these blocks, one per worker. Because the sketches are linear, *any*
/// partition of the stream yields the same final sketch, so the engine is
/// free to split purely by position.
using UpdateSpan = std::span<const StreamUpdate>;

}  // namespace sketch

#endif  // SKETCH_STREAM_UPDATE_H_
