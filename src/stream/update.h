#ifndef SKETCH_STREAM_UPDATE_H_
#define SKETCH_STREAM_UPDATE_H_

#include <cstdint>

namespace sketch {

/// A single stream update in the turnstile model: the frequency of `item`
/// changes by `delta`. The cash-register model of §1 (insertions only) is
/// the special case delta = +1; Count-Min/Count-Sketch/IBLT all accept
/// general deltas because they are linear sketches of the frequency
/// vector x.
struct StreamUpdate {
  uint64_t item = 0;
  int64_t delta = 1;
};

}  // namespace sketch

#endif  // SKETCH_STREAM_UPDATE_H_
