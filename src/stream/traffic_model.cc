#include "stream/traffic_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

TrafficTrace GenerateTrafficTrace(const TrafficModelOptions& options) {
  SKETCH_CHECK(options.num_flows >= 1);
  SKETCH_CHECK(options.pareto_shape > 0.0);
  SKETCH_CHECK(options.min_flow_packets >= 1);
  SKETCH_CHECK(options.max_flow_packets >= options.min_flow_packets);
  SKETCH_CHECK(options.flow_id_space >= options.num_flows);

  Xoshiro256StarStar rng(options.seed);
  TrafficTrace trace;

  // Distinct flow ids.
  std::unordered_set<uint64_t> seen;
  trace.flow_ids.reserve(options.num_flows);
  while (trace.flow_ids.size() < options.num_flows) {
    const uint64_t id = rng.NextBounded(options.flow_id_space);
    if (seen.insert(id).second) trace.flow_ids.push_back(id);
  }
  std::sort(trace.flow_ids.begin(), trace.flow_ids.end());

  // Bounded-Pareto flow sizes via inverse-CDF sampling:
  //   P(X > x) ∝ x^{-shape} on [min, max].
  const double alpha = options.pareto_shape;
  const double lo = static_cast<double>(options.min_flow_packets);
  const double hi = static_cast<double>(options.max_flow_packets);
  const double lo_a = std::pow(lo, -alpha);
  const double hi_a = std::pow(hi, -alpha);
  trace.flow_sizes.resize(options.num_flows);
  for (uint64_t i = 0; i < options.num_flows; ++i) {
    const double u = rng.NextDouble();
    const double x = std::pow(lo_a - u * (lo_a - hi_a), -1.0 / alpha);
    trace.flow_sizes[i] = std::max<uint64_t>(
        options.min_flow_packets,
        std::min<uint64_t>(options.max_flow_packets,
                           static_cast<uint64_t>(x)));
    trace.total_packets += trace.flow_sizes[i];
  }

  // Interleave: repeatedly emit a packet from a flow picked with
  // probability proportional to its remaining size. Implemented by
  // building the full packet multiset and Fisher-Yates shuffling — exact
  // and O(total_packets).
  trace.packets.reserve(trace.total_packets);
  for (uint64_t i = 0; i < options.num_flows; ++i) {
    for (uint64_t p = 0; p < trace.flow_sizes[i]; ++p) {
      trace.packets.push_back({trace.flow_ids[i], +1});
    }
  }
  for (uint64_t i = trace.packets.size(); i > 1; --i) {
    std::swap(trace.packets[i - 1], trace.packets[rng.NextBounded(i)]);
  }
  return trace;
}

double TopFlowShare(const TrafficTrace& trace, uint64_t k) {
  std::vector<uint64_t> sizes = trace.flow_sizes;
  std::sort(sizes.rbegin(), sizes.rend());
  if (k > sizes.size()) k = sizes.size();
  uint64_t top = 0;
  for (uint64_t i = 0; i < k; ++i) top += sizes[i];
  return trace.total_packets == 0
             ? 0.0
             : static_cast<double>(top) /
                   static_cast<double>(trace.total_packets);
}

}  // namespace sketch
