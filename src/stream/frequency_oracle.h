#ifndef SKETCH_STREAM_FREQUENCY_ORACLE_H_
#define SKETCH_STREAM_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stream/update.h"

namespace sketch {

/// Exact frequency counts — the ground truth every sketch is measured
/// against. Memory is O(#distinct items); the whole point of the sketches
/// is to avoid this cost, but the experiments need the oracle to score
/// precision/recall and estimation error.
class FrequencyOracle {
 public:
  /// Applies one update.
  void Update(const StreamUpdate& update) {
    counts_[update.item] += update.delta;
  }

  /// Applies a batch of updates.
  void UpdateAll(const std::vector<StreamUpdate>& updates) {
    for (const StreamUpdate& u : updates) Update(u);
  }

  /// Exact frequency of `item` (0 if never seen).
  int64_t Count(uint64_t item) const {
    const auto it = counts_.find(item);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Sum of all frequencies (the stream length N in the cash-register
  /// model).
  int64_t TotalCount() const;

  /// L1 norm of the frequency vector: sum of |count|.
  int64_t L1() const;

  /// Items with frequency >= threshold.
  std::vector<uint64_t> ItemsAbove(int64_t threshold) const;

  /// The k items of largest frequency (ties broken by item id for
  /// determinism).
  std::vector<uint64_t> TopK(uint64_t k) const;

  /// Number of distinct items with nonzero count.
  uint64_t DistinctCount() const;

  const std::unordered_map<uint64_t, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<uint64_t, int64_t> counts_;
};

}  // namespace sketch

#endif  // SKETCH_STREAM_FREQUENCY_ORACLE_H_
