#include "stream/frequency_oracle.h"

#include <algorithm>
#include <cstdlib>

namespace sketch {

int64_t FrequencyOracle::TotalCount() const {
  int64_t total = 0;
  for (const auto& [item, count] : counts_) total += count;
  return total;
}

int64_t FrequencyOracle::L1() const {
  int64_t total = 0;
  for (const auto& [item, count] : counts_) total += std::abs(count);
  return total;
}

std::vector<uint64_t> FrequencyOracle::ItemsAbove(int64_t threshold) const {
  std::vector<uint64_t> items;
  for (const auto& [item, count] : counts_) {
    if (count >= threshold) items.push_back(item);
  }
  std::sort(items.begin(), items.end());
  return items;
}

std::vector<uint64_t> FrequencyOracle::TopK(uint64_t k) const {
  std::vector<std::pair<int64_t, uint64_t>> by_count;
  by_count.reserve(counts_.size());
  for (const auto& [item, count] : counts_) {
    if (count != 0) by_count.emplace_back(count, item);
  }
  std::sort(by_count.begin(), by_count.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  if (by_count.size() > k) by_count.resize(k);
  std::vector<uint64_t> items;
  items.reserve(by_count.size());
  for (const auto& [count, item] : by_count) items.push_back(item);
  return items;
}

uint64_t FrequencyOracle::DistinctCount() const {
  uint64_t n = 0;
  for (const auto& [item, count] : counts_) n += (count != 0);
  return n;
}

}  // namespace sketch
