#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace sketch {

double L1Norm(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += std::abs(v);
  return s;
}

double L2Norm(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double LInfNorm(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s = std::max(s, std::abs(v));
  return s;
}

double L2Norm(const std::vector<std::complex<double>>& x) {
  double s = 0.0;
  for (const auto& v : x) s += std::norm(v);
  return std::sqrt(s);
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  SKETCH_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  SKETCH_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double L2Distance(const std::vector<std::complex<double>>& a,
                  const std::vector<std::complex<double>>& b) {
  SKETCH_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::norm(a[i] - b[i]);
  return std::sqrt(s);
}

double BestKTermError(const std::vector<double>& x, uint64_t k, int p) {
  SKETCH_CHECK(p == 1 || p == 2);
  std::vector<double> mags(x.size());
  for (size_t i = 0; i < x.size(); ++i) mags[i] = std::abs(x[i]);
  if (k >= mags.size()) return 0.0;
  // Partition so the k largest magnitudes come first; the tail is the error.
  std::nth_element(mags.begin(), mags.begin() + k, mags.end(),
                   [](double a, double b) { return a > b; });
  double s = 0.0;
  for (size_t i = k; i < mags.size(); ++i) {
    s += (p == 1) ? mags[i] : mags[i] * mags[i];
  }
  return (p == 1) ? s : std::sqrt(s);
}

PrecisionRecall ComputePrecisionRecall(const std::vector<uint64_t>& retrieved,
                                       const std::vector<uint64_t>& truth) {
  PrecisionRecall pr;
  if (retrieved.empty() && truth.empty()) return pr;
  const std::unordered_set<uint64_t> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (uint64_t item : retrieved) hits += truth_set.count(item);
  pr.precision = retrieved.empty()
                     ? 1.0
                     : static_cast<double>(hits) /
                           static_cast<double>(retrieved.size());
  pr.recall = truth_set.empty()
                  ? 1.0
                  : static_cast<double>(hits) /
                        static_cast<double>(truth_set.size());
  return pr;
}

}  // namespace sketch
