#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "telemetry/telemetry.h"

namespace sketch {

ThreadPool::ThreadPool(std::size_t num_threads) {
  SKETCH_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::SubmitLocked(std::function<void()> task) {
  SKETCH_CHECK_MSG(!shutting_down_, "Submit() after destruction began");
  queue_.push_back(std::move(task));
  ++in_flight_;
  SKETCH_COUNTER_INC("threadpool.tasks_submitted");
  SKETCH_HISTOGRAM_RECORD("threadpool.queue_depth", queue_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    SubmitLocked(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min(n, num_threads());
  const std::size_t chunk = n / blocks;
  const std::size_t remainder = n % blocks;
  // Blocks [0, blocks-1) go to the pool; the calling thread runs the last
  // block itself so a 1-thread pool never round-trips through the queue.
  // All pool-bound blocks are enqueued under a single lock acquisition —
  // one acquire + one NotifyAll instead of a lock/notify pair per block.
  std::size_t lo = begin;
  if (blocks > 1) {
    MutexLock lock(mu_);
    for (std::size_t b = 0; b + 1 < blocks; ++b) {
      const std::size_t hi = lo + chunk + (b < remainder ? 1 : 0);
      SubmitLocked([&body, lo, hi] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
      lo = hi;
    }
  }
  work_available_.NotifyAll();
  for (std::size_t i = lo; i < end; ++i) body(i);
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutting_down_) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      SKETCH_TRACE_SPAN("threadpool.task");
#if SKETCH_TELEMETRY_ENABLED
      const uint64_t t0 = MonotonicNowNs();
      task();
      SKETCH_HISTOGRAM_RECORD("threadpool.task_ns", MonotonicNowNs() - t0);
#else
      task();
#endif
    }
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace sketch
