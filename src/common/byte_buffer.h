#ifndef SKETCH_COMMON_BYTE_BUFFER_H_
#define SKETCH_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

/// \file
/// Minimal little-endian binary encode/decode helpers used by the sketch
/// serialization methods. Sketches serialize as (magic, geometry, seed,
/// counters); the hash functions are rebuilt deterministically from the
/// seed, so no hash state needs to be persisted — a practical payoff of
/// seed-derived randomness.

namespace sketch {

/// Appends a little-endian u64.
inline void AppendU64(uint64_t value, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

/// Appends a signed 64-bit value (two's complement).
inline void AppendI64(int64_t value, std::vector<uint8_t>* out) {
  AppendU64(static_cast<uint64_t>(value), out);
}

/// Overflow-checked product of two u64 geometry fields read from an
/// untrusted buffer. Used to size payloads in Deserialize() without the
/// multiplication silently wrapping.
inline uint64_t CheckedMulU64(uint64_t a, uint64_t b, const char* what) {
  SKETCH_CHECK_MSG(a == 0 || b <= UINT64_MAX / a, what);
  return a * b;
}

/// Uniform pre-allocation guard for Deserialize() implementations: after
/// reading the fixed-size header (`header_words` little-endian u64s) and
/// computing the expected payload length (`payload_words` u64s) from the
/// untrusted geometry fields, this validates that the buffer holds exactly
/// the advertised number of words *before* any allocation is sized from
/// those fields. Rejects truncated, length-inflated, and geometry-inflated
/// buffers with a single check.
inline void CheckSerializedSize(const std::vector<uint8_t>& bytes,
                                uint64_t header_words, uint64_t payload_words,
                                const char* what) {
  SKETCH_CHECK_MSG(payload_words <= UINT64_MAX / 8 - header_words, what);
  SKETCH_CHECK_MSG(bytes.size() == (header_words + payload_words) * 8, what);
}

/// Sequential reader over a serialized buffer; aborts on truncation.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint64_t ReadU64() {
    SKETCH_CHECK_MSG(position_ + 8 <= bytes_.size(),
                     "truncated sketch buffer");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(bytes_[position_ + i]) << (8 * i);
    }
    position_ += 8;
    return value;
  }

  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return position_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t position_ = 0;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_BYTE_BUFFER_H_
