#ifndef SKETCH_COMMON_BENCH_REPORTER_H_
#define SKETCH_COMMON_BENCH_REPORTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kernels/simd_dispatch.h"

namespace sketch::bench {

/// Unified result sink for the hand-rolled experiment harnesses
/// (`bench/bench_*.cc`): collects named throughput measurements, prints
/// the human-readable table the harnesses already produce, and optionally
/// writes a machine-readable snapshot in the exact
/// `sketch-bench-snapshot-v1` schema that `tools/bench_compare.py
/// compare` consumes — so any harness, not just the google-benchmark
/// ones, can participate in regression gating.
class BenchReporter {
 public:
  struct Entry {
    std::string name;
    double items_per_second = 0.0;
    double real_time_ns = 0.0;
    std::string label;  // free-form annotation shown in the table
  };

  /// Records one measurement. `name` is the snapshot key — keep it stable
  /// across runs so compare mode can match baseline rows.
  void Add(const std::string& name, double items_per_second,
           double real_time_ns, const std::string& label = "") {
    entries_.push_back({name, items_per_second, real_time_ns, label});
  }

  /// Prints all recorded entries as a fixed-width table.
  void PrintTable() const {
    std::size_t width = 9;  // len("benchmark")
    for (const Entry& e : entries_) width = std::max(width, e.name.size());
    std::printf("%-*s %14s %14s  %s\n", static_cast<int>(width), "benchmark",
                "Mitems/s", "time/op (ns)", "label");
    for (const Entry& e : entries_) {
      std::printf("%-*s %14.2f %14.1f  %s\n", static_cast<int>(width),
                  e.name.c_str(), e.items_per_second / 1e6, e.real_time_ns,
                  e.label.c_str());
    }
  }

  /// Writes the snapshot JSON to `path`. Returns false (and prints to
  /// stderr) if the file cannot be written. Keys match what
  /// tools/bench_compare.py `normalize` emits for google-benchmark runs.
  bool WriteSnapshot(const std::string& path) const {
    std::FILE* fh = std::fopen(path.c_str(), "w");
    if (fh == nullptr) {
      std::fprintf(stderr, "bench_reporter: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(fh, "{\n  \"schema\": \"sketch-bench-snapshot-v1\",\n");
    // Same host block google-benchmark puts in its context: snapshots are
    // only comparable across runs if the core count, build type, and
    // dispatched kernel tier match, so all three are recorded next to the
    // numbers they qualify.
#ifdef NDEBUG
    const char* build_type = "release";
#else
    const char* build_type = "debug";
#endif
    std::fprintf(fh,
                 "  \"host\": {\n    \"library_build_type\": \"%s\",\n"
                 "    \"num_cpus\": %u,\n    \"simd_tier\": \"%s\"\n  },\n",
                 build_type, std::thread::hardware_concurrency(),
                 simd::SimdTierName(simd::ActiveSimdTier()));
    std::fprintf(fh, "  \"benchmarks\": {\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(fh,
                   "    \"%s\": {\n      \"items_per_second\": %.6f,\n"
                   "      \"real_time_ns\": %.6f\n    }%s\n",
                   e.name.c_str(), e.items_per_second, e.real_time_ns,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(fh, "  }\n}\n");
    std::fclose(fh);
    std::printf("bench_reporter: wrote %s (%zu benchmarks)\n", path.c_str(),
                entries_.size());
    return true;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace sketch::bench

#endif  // SKETCH_COMMON_BENCH_REPORTER_H_
