#ifndef SKETCH_COMMON_TIMER_H_
#define SKETCH_COMMON_TIMER_H_

#include <chrono>

namespace sketch {

/// Monotonic wall-clock stopwatch for the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_TIMER_H_
