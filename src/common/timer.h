#ifndef SKETCH_COMMON_TIMER_H_
#define SKETCH_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sketch {

/// Current monotonic time in nanoseconds (std::chrono::steady_clock —
/// never system_clock, which can jump under NTP and would corrupt every
/// measured duration). The zero point is unspecified; only differences
/// are meaningful. Shared by Timer and the telemetry trace spans.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch for the benchmark harnesses.
class Timer {
 public:
  Timer() : start_ns_(MonotonicNowNs()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ns_ = MonotonicNowNs(); }

  /// Elapsed time since construction or last Reset(), in nanoseconds.
  uint64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }

  /// Elapsed time since construction or last Reset(), in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  uint64_t start_ns_;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_TIMER_H_
