#ifndef SKETCH_COMMON_THREAD_ANNOTATIONS_H_
#define SKETCH_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file
/// Clang Thread Safety Analysis annotations plus annotated lock types.
///
/// Under clang (any build with `-Wthread-safety`, see the
/// SKETCH_THREAD_SAFETY CMake option and the `thread-safety` CI job) the
/// SKETCH_* macros below expand to the `thread_safety` attribute family, so
/// lock discipline is checked at compile time: a `SKETCH_GUARDED_BY(mu_)`
/// member read without `mu_` held is a hard error, as is calling a
/// `SKETCH_REQUIRES(mu_)` method outside the lock. Under gcc (which has no
/// thread-safety analysis) every macro compiles away to nothing.
///
/// libstdc++'s `std::mutex` carries no capability attribute, so annotating
/// members with `SKETCH_GUARDED_BY` only works against a mutex type the
/// analyzer can see. This header therefore also provides the annotated
/// wrappers `sketch::Mutex`, `sketch::MutexLock`, and `sketch::CondVar`
/// (the same shape Abseil and Chromium use); all mutex-guarded code in the
/// repo uses these instead of raw `std::mutex` / `std::lock_guard` /
/// `std::condition_variable` (enforced by lint rule SL008).
///
/// Annotating new code:
///   - declare the lock as `sketch::Mutex mu_;`
///   - declare every field it protects as `T field_ SKETCH_GUARDED_BY(mu_);`
///   - take the lock with `sketch::MutexLock lock(mu_);` (RAII only — SL010
///     forbids manual lock()/unlock() calls)
///   - private helpers that expect the lock held get
///     `SKETCH_REQUIRES(mu_)`; public entry points that take the lock get
///     `SKETCH_EXCLUDES(mu_)`
///   - condition waits are explicit loops inside the locked scope:
///     `while (!ready_) cv_.Wait(mu_);` — the analyzer checks the guarded
///     reads in the loop condition, which a predicate lambda would hide.
///
/// This header is the single place thread-safety attributes are spelled;
/// everything else uses the SKETCH_* macros.

#if defined(__clang__)
#define SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op under gcc/msvc
#endif

/// Marks a class as a lockable capability (names it in diagnostics).
#define SKETCH_CAPABILITY(x) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SKETCH_SCOPED_CAPABILITY \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a field may only be accessed with `x` held.
#define SKETCH_GUARDED_BY(x) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Declares that the data a pointer field points to is guarded by `x`.
#define SKETCH_PT_GUARDED_BY(x) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares that a function may only be called with the capabilities held.
#define SKETCH_REQUIRES(...) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Declares that a function may only be called with the capabilities held
/// at least in shared (reader) mode; exclusive satisfies it too.
#define SKETCH_REQUIRES_SHARED(...)          \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(      \
      requires_shared_capability(__VA_ARGS__))

/// Declares that a function acquires the capabilities (held on return).
#define SKETCH_ACQUIRE(...) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Declares that a function acquires the capabilities in shared mode.
#define SKETCH_ACQUIRE_SHARED(...)           \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(      \
      acquire_shared_capability(__VA_ARGS__))

/// Declares that a function releases the capabilities (held on entry).
#define SKETCH_RELEASE(...) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Declares that a function releases capabilities held in shared mode.
#define SKETCH_RELEASE_SHARED(...)           \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(      \
      release_shared_capability(__VA_ARGS__))

/// Declares a try-lock: acquires the capabilities iff the return value
/// equals the first argument.
#define SKETCH_TRY_ACQUIRE(...) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Declares that a function must NOT be called with the capabilities held
/// (it acquires them itself — documents public entry points).
#define SKETCH_EXCLUDES(...) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the capability guarding
/// its result.
#define SKETCH_RETURN_CAPABILITY(x) \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis for one function. Only legitimate
/// inside this header's wrapper internals; the repo-wide acceptance bar is
/// zero uses elsewhere.
#define SKETCH_NO_THREAD_SAFETY_ANALYSIS \
  SKETCH_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace sketch {

class CondVar;

/// `std::mutex` wrapped as an analyzer-visible capability. Lock/Unlock are
/// public for the RAII wrapper below, but direct calls are rejected by lint
/// rule SL010 — all acquisition goes through MutexLock.
class SKETCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKETCH_ACQUIRE() { mu_.lock(); }
  void Unlock() SKETCH_RELEASE() { mu_.unlock(); }
  bool TryLock() SKETCH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope holding a Mutex — the repo's only sanctioned way to lock.
class SKETCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKETCH_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SKETCH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// `std::shared_mutex` wrapped as an analyzer-visible capability: one
/// writer or many readers. Used for the server's per-entry sketch locks,
/// where point/heavy-hitter/inner-product/statsz queries only read and
/// must not serialize behind each other. Like Mutex, the raw methods are
/// public only for the RAII wrappers below (SL010 rejects direct calls).
///
/// Lock-order note for multi-lock call sites (the server's inner-product
/// path takes two entry locks): acquire in increasing object-address
/// order. Reader/writer locks make even shared/shared acquisition
/// deadlock-prone under a writer-priority implementation — a queued
/// writer on B blocks a reader of B that already holds A shared while the
/// writer's thread holds B... — so ordering is required for *all* modes.
class SKETCH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SKETCH_ACQUIRE() { mu_.lock(); }
  void Unlock() SKETCH_RELEASE() { mu_.unlock(); }
  void LockShared() SKETCH_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SKETCH_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII scope holding a SharedMutex exclusively (writer side).
class SKETCH_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SKETCH_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SKETCH_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII scope holding a SharedMutex in shared mode (reader side).
class SKETCH_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SKETCH_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SKETCH_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with sketch::Mutex. Deliberately offers no
/// predicate overload: a `Wait(mu, lambda)` would run the predicate in a
/// lambda the analyzer treats as holding nothing, silencing exactly the
/// guarded-field checks the wait condition needs. Callers write the loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen; always call in a predicate loop.
  void Wait(Mutex& mu) SKETCH_REQUIRES(mu) {
    // Adopt the already-held native mutex so std::condition_variable can
    // release/reacquire it, then release() so the unique_lock destructor
    // does not unlock what the caller's MutexLock still owns.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but returns after `timeout` even without a notify
  /// (periodic background work: sleep-until-poked-or-due). Returns false
  /// on timeout. Spurious wakeups happen; always call in a predicate
  /// loop.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      SKETCH_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_THREAD_ANNOTATIONS_H_
