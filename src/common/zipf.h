#ifndef SKETCH_COMMON_ZIPF_H_
#define SKETCH_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/prng.h"

namespace sketch {

/// Samples from a Zipf(alpha) distribution over {0, ..., n-1}:
/// P(rank r) ∝ 1 / (r+1)^alpha.
///
/// Zipfian streams are the canonical skewed workload for heavy-hitter
/// sketches (cf. [CM04], [CCF02]): a handful of head items dominate the
/// stream while the tail supplies noise mass. Uses precomputed inverse-CDF
/// with binary search; O(log n) per sample after O(n) setup.
class ZipfGenerator {
 public:
  /// \param n      universe size (must be >= 1).
  /// \param alpha  skew parameter; 0 gives the uniform distribution.
  /// \param seed   PRNG seed.
  ZipfGenerator(uint64_t n, double alpha, uint64_t seed);

  /// Draws one sample (an item rank in [0, n)); rank 0 is the most
  /// frequent item.
  uint64_t Next();

  /// Probability mass of the given rank.
  double Probability(uint64_t rank) const;

  uint64_t universe_size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
  Xoshiro256StarStar rng_;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_ZIPF_H_
