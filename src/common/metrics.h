#ifndef SKETCH_COMMON_METRICS_H_
#define SKETCH_COMMON_METRICS_H_

#include <complex>
#include <cstdint>
#include <vector>

/// \file
/// Error metrics shared by the experiment harnesses: vector norms, relative
/// recovery errors, and set-retrieval precision/recall. These are the
/// quantities the surveyed papers state their guarantees in (ℓ1/ℓ2 error of
/// a k-sparse approximation, false-positive rates of heavy-hitter
/// retrieval).

namespace sketch {

/// ℓ1 norm of `x`.
double L1Norm(const std::vector<double>& x);

/// ℓ2 norm of `x`.
double L2Norm(const std::vector<double>& x);

/// ℓ∞ norm of `x`.
double LInfNorm(const std::vector<double>& x);

/// ℓ2 norm of a complex vector.
double L2Norm(const std::vector<std::complex<double>>& x);

/// ||a - b||_1. Vectors must have equal length.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// ||a - b||_2. Vectors must have equal length.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// ||a - b||_2 for complex vectors. Vectors must have equal length.
double L2Distance(const std::vector<std::complex<double>>& a,
                  const std::vector<std::complex<double>>& b);

/// ℓp error of the best k-term approximation of `x`: the ℓp norm of `x`
/// with its k largest-magnitude entries zeroed. This is `Err_k^p(x)`, the
/// benchmark against which sparse-recovery guarantees are stated (§2 of the
/// survey).
double BestKTermError(const std::vector<double>& x, uint64_t k, int p);

/// Precision and recall of a retrieved item set against a ground-truth set.
struct PrecisionRecall {
  double precision = 1.0;  ///< |retrieved ∩ truth| / |retrieved| (1 if empty)
  double recall = 1.0;     ///< |retrieved ∩ truth| / |truth| (1 if empty)
};

/// Computes precision/recall; inputs need not be sorted.
PrecisionRecall ComputePrecisionRecall(const std::vector<uint64_t>& retrieved,
                                       const std::vector<uint64_t>& truth);

}  // namespace sketch

#endif  // SKETCH_COMMON_METRICS_H_
