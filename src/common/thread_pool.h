#ifndef SKETCH_COMMON_THREAD_POOL_H_
#define SKETCH_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace sketch {

/// Fixed-size worker pool for the parallel ingestion engine
/// (`src/parallel`). Deliberately minimal: a mutex-guarded FIFO of
/// `std::function<void()>` tasks, `num_threads` workers created at
/// construction, and a `Wait()` barrier that blocks until every submitted
/// task has finished. No futures, no work stealing — sketch ingestion
/// shards are coarse, equal-sized blocks, so a simple queue is already
/// within noise of optimal and keeps the synchronization surface small
/// enough to reason about under ThreadSanitizer.
///
/// Thread safety: `Submit`, `ParallelFor`, and `Wait` may be called from
/// any thread, including concurrently. Tasks themselves may submit more
/// tasks, but must not call `Wait`/`ParallelFor` (a worker waiting for
/// its own task to retire would deadlock). Destruction waits for all
/// pending work. Lock discipline is machine-checked: every guarded member
/// is `SKETCH_GUARDED_BY(mu_)` and clang's `-Wthread-safety` build rejects
/// any access outside the lock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1; values above a small
  /// multiple of the hardware concurrency are allowed — oversubscription
  /// is the caller's choice).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task) SKETCH_EXCLUDES(mu_);

  /// Blocks until every task submitted so far (including tasks spawned by
  /// tasks) has completed.
  void Wait() SKETCH_EXCLUDES(mu_);

  /// Runs `body(i)` for every i in [begin, end), split into `num_threads`
  /// contiguous blocks, and waits for completion. The calling thread
  /// executes one block itself, so a pool of size 1 degenerates to a
  /// plain loop with no cross-thread handoff. All pool-bound blocks are
  /// enqueued under one lock acquisition.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body)
      SKETCH_EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  /// Enqueues one task with `mu_` already held. Callers notify
  /// `work_available_` after releasing the lock.
  void SubmitLocked(std::function<void()> task) SKETCH_REQUIRES(mu_);

  void WorkerLoop() SKETCH_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ SKETCH_GUARDED_BY(mu_);
  /// Queued + currently executing.
  std::size_t in_flight_ SKETCH_GUARDED_BY(mu_) = 0;
  bool shutting_down_ SKETCH_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_THREAD_POOL_H_
