#ifndef SKETCH_COMMON_PRNG_H_
#define SKETCH_COMMON_PRNG_H_

#include <cstdint>

/// \file
/// Deterministic, seedable pseudo-random number generation.
///
/// All randomized structures in the library draw their randomness through
/// these generators so that every experiment is reproducible from a single
/// 64-bit seed. `SplitMix64` is used for seeding/stateless mixing and
/// `Xoshiro256StarStar` as the general-purpose stream generator. Both pass
/// BigCrush and are far faster than `std::mt19937_64`.

namespace sketch {

/// Stateless 64-bit mixer (Stafford variant 13). Maps any 64-bit value to a
/// well-distributed 64-bit value; used for seed expansion and cheap hashing
/// of seed material.
inline uint64_t SplitMix64Once(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Sequential SplitMix64 stream; primarily used to seed larger generators.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna. General-purpose 64-bit PRNG with a
/// 256-bit state and period 2^256 - 1.
class Xoshiro256StarStar {
 public:
  using result_type = uint64_t;

  /// Constructs the generator from a single seed, expanding it with
  /// SplitMix64 as recommended by the xoshiro authors.
  explicit Xoshiro256StarStar(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Returns the next 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <random>
  /// distributions).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased for any bound.
  uint64_t NextBounded(uint64_t bound);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace sketch

#endif  // SKETCH_COMMON_PRNG_H_
