#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sketch {

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha, uint64_t seed)
    : n_(n), alpha_(alpha), rng_(seed) {
  SKETCH_CHECK(n >= 1);
  SKETCH_CHECK(alpha >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against round-off
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::Probability(uint64_t rank) const {
  SKETCH_CHECK(rank < n_);
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace sketch
