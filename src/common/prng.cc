#include "common/prng.h"

#include <cmath>

#include "common/check.h"

namespace sketch {

uint64_t Xoshiro256StarStar::NextBounded(uint64_t bound) {
  SKETCH_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256StarStar::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

}  // namespace sketch
