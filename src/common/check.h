#ifndef SKETCH_COMMON_CHECK_H_
#define SKETCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight precondition-checking macros.
///
/// The library does not use exceptions. Violated preconditions on public
/// APIs are programming errors and abort the process with a source
/// location, in both debug and release builds (the checks here are cheap
/// and off the hot path). Use `SKETCH_DCHECK` for hot-path invariants that
/// should only be verified in debug builds.

#define SKETCH_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define SKETCH_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SKETCH_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SKETCH_DCHECK(cond) SKETCH_CHECK(cond)
#endif

#endif  // SKETCH_COMMON_CHECK_H_
