#ifndef SKETCH_COMMON_CHECK_H_
#define SKETCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight precondition-checking macros.
///
/// The library does not use exceptions. Violated preconditions on public
/// APIs are programming errors and abort the process with a source
/// location, in both debug and release builds (the checks here are cheap
/// and off the hot path). Use `SKETCH_DCHECK` for hot-path invariants that
/// should only be verified in debug builds.
///
/// Fuzzing builds (`-DSKETCH_FUZZ=ON`, which defines
/// `SKETCH_FUZZING_ABORT_THROWS`) replace the abort with a thrown
/// `sketch::CheckFailure` so harnesses can feed malformed input and treat
/// a rejected buffer as the expected, non-crashing outcome; memory errors
/// that occur *before* a check fires still surface through the sanitizers.
/// Production builds are unaffected: the macro expansion is identical to
/// the abort form unless the fuzzing macro is defined.

#ifdef SKETCH_FUZZING_ABORT_THROWS

#include <stdexcept>
#include <string>

namespace sketch {

/// Thrown instead of aborting in fuzzing builds when a SKETCH_CHECK fails.
class CheckFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace sketch

#define SKETCH_INTERNAL_CHECK_FAIL(expr_text, msg_text)                     \
  throw ::sketch::CheckFailure(std::string("CHECK failed: ") + (expr_text) + \
                               " (" + (msg_text) + ")")

#else  // !SKETCH_FUZZING_ABORT_THROWS

#define SKETCH_INTERNAL_CHECK_FAIL(expr_text, msg_text)                     \
  do {                                                                      \
    std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,      \
                 __LINE__, expr_text, msg_text);                            \
    std::abort();                                                           \
  } while (0)

#endif  // SKETCH_FUZZING_ABORT_THROWS

#define SKETCH_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      SKETCH_INTERNAL_CHECK_FAIL(#cond, "precondition");                    \
    }                                                                       \
  } while (0)

#define SKETCH_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      SKETCH_INTERNAL_CHECK_FAIL(#cond, msg);                               \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SKETCH_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SKETCH_DCHECK(cond) SKETCH_CHECK(cond)
#endif

#endif  // SKETCH_COMMON_CHECK_H_
