#ifndef SKETCH_HASH_STRING_KEY_H_
#define SKETCH_HASH_STRING_KEY_H_

#include <cstdint>
#include <string_view>

#include "common/prng.h"

namespace sketch {

/// Stable 64-bit id for a string key (FNV-1a folded through a SplitMix64
/// finalizer for avalanche). This is the front door for using any sketch
/// in the library over string-keyed data (URLs, user ids, tokens): hash
/// the key once, then treat the id as the item. Collisions between
/// distinct strings occur with probability ~2^-64 per pair — far below
/// every sketch's own error floor.
inline uint64_t StringKeyId(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return SplitMix64Once(h);
}

}  // namespace sketch

#endif  // SKETCH_HASH_STRING_KEY_H_
