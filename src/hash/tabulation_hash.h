#ifndef SKETCH_HASH_TABULATION_HASH_H_
#define SKETCH_HASH_TABULATION_HASH_H_

#include <array>
#include <cstdint>

namespace sketch {

/// Simple tabulation hashing over 64-bit keys: the key is split into eight
/// bytes, each indexes a table of random 64-bit words, and the results are
/// XORed. Only 3-wise independent, but Pătraşcu–Thorup showed it behaves
/// like full randomness in linear probing, Count-Min style sketching, and
/// cuckoo hashing. Included as the "strong but table-driven" point in the
/// hash-family design space.
class TabulationHash {
 public:
  explicit TabulationHash(uint64_t seed);

  /// Hashes a 64-bit key to a 64-bit value.
  uint64_t Hash(uint64_t x) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][static_cast<uint8_t>(x >> (8 * i))];
    }
    return h;
  }

  /// Hash reduced onto [0, num_buckets).
  uint64_t Bucket(uint64_t x, uint64_t num_buckets) const {
    return Hash(x) % num_buckets;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace sketch

#endif  // SKETCH_HASH_TABULATION_HASH_H_
