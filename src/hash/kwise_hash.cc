#include "hash/kwise_hash.h"

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

KWiseHash::KWiseHash(int independence, uint64_t seed) {
  SKETCH_CHECK(independence >= 1);
  coeffs_.resize(independence);
  SplitMix64 sm(seed);
  for (int i = 0; i < independence; ++i) {
    // Rejection-sample uniformly from [0, p). The leading coefficient may
    // be zero; that only degrades to (k-1)-wise independence with
    // probability 1/p, which is negligible and standard practice.
    uint64_t c;
    do {
      c = sm.Next() & ((1ULL << 61) - 1);
    } while (c >= kMersennePrime61);
    coeffs_[i] = c;
  }
}

uint64_t KWiseHash::Hash(uint64_t x) const {
  uint64_t xr = ReduceModMersenne61(x);
  // Horner evaluation from the highest-degree coefficient down.
  uint64_t acc = coeffs_.back();
  for (size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = MulModMersenne61(acc, xr) + coeffs_[i];
    if (acc >= kMersennePrime61) acc -= kMersennePrime61;
  }
  return acc;
}

}  // namespace sketch
