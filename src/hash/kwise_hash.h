#ifndef SKETCH_HASH_KWISE_HASH_H_
#define SKETCH_HASH_KWISE_HASH_H_

#include <cstdint>
#include <vector>

/// \file
/// k-wise independent hashing over the Mersenne prime p = 2^61 - 1.
///
/// This is the workhorse hash family behind every sketch in the library
/// (§1 of the survey): a degree-(k-1) polynomial with random coefficients
/// evaluated mod p is a k-wise independent function [Carter–Wegman]. Two-
/// wise independence suffices for Count-Min buckets and Count-Sketch signs;
/// four-wise independence is needed for the AMS F2 second-moment estimator.

namespace sketch {

/// The Mersenne prime 2^61 - 1 used as the hash field modulus.
inline constexpr uint64_t kMersennePrime61 = (1ULL << 61) - 1;

/// Modular multiplication a*b mod (2^61 - 1) via 128-bit product and
/// Mersenne folding. Inline so the batched kernels (`src/kernels`) can keep
/// it in registers; exact for all a, b < 2^64.
inline uint64_t MulModMersenne61(uint64_t a, uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  // Fold: prod = hi * 2^61 + lo, and 2^61 ≡ 1 (mod p).
  uint64_t lo = static_cast<uint64_t>(prod) & kMersennePrime61;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

/// Reduces an arbitrary 64-bit value mod 2^61 - 1 without a hardware
/// divide: x = hi * 2^61 + lo with hi < 8, and 2^61 ≡ 1 (mod p), so
/// hi + lo < p + 8 needs at most one corrective subtraction. Bit-identical
/// to `x % kMersennePrime61`.
inline uint64_t ReduceModMersenne61(uint64_t x) {
  uint64_t r = (x >> 61) + (x & kMersennePrime61);
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

/// A k-wise independent hash function h : [2^61-1] -> [2^61-1], realized as
/// a random polynomial of degree k-1 over GF(p), p = 2^61 - 1.
///
/// Deterministic given (independence, seed): the same seed always yields
/// the same function, which makes sketch mergeability and experiment
/// reproducibility trivial.
class KWiseHash {
 public:
  /// \param independence  k >= 1; the returned family is k-wise
  ///                      independent (k=1 is a constant function, rarely
  ///                      useful; k=2 for buckets/signs; k=4 for AMS).
  /// \param seed          seed from which the k coefficients are drawn.
  KWiseHash(int independence, uint64_t seed);

  /// Evaluates the polynomial at `x` (reduced mod p first); result in
  /// [0, p).
  uint64_t Hash(uint64_t x) const;

  /// Hash reduced onto the bucket range [0, num_buckets).
  uint64_t Bucket(uint64_t x, uint64_t num_buckets) const {
    return Hash(x) % num_buckets;
  }

  /// A ±1 sign derived from the low bit of the hash; with k>=2 the signs
  /// of distinct keys are pairwise independent and unbiased.
  int Sign(uint64_t x) const { return (Hash(x) & 1) ? +1 : -1; }

  int independence() const { return static_cast<int>(coeffs_.size()); }

  /// The polynomial coefficients (coefficients()[0] is the constant term).
  /// Exposed so the batched kernels (`src/kernels/block_hasher.h`) can hoist
  /// them out of the heap-allocated vector and into registers.
  const std::vector<uint64_t>& coefficients() const { return coeffs_; }

 private:
  std::vector<uint64_t> coeffs_;  // coeffs_[0] is the constant term
};

}  // namespace sketch

#endif  // SKETCH_HASH_KWISE_HASH_H_
