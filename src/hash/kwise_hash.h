#ifndef SKETCH_HASH_KWISE_HASH_H_
#define SKETCH_HASH_KWISE_HASH_H_

#include <cstdint>
#include <vector>

/// \file
/// k-wise independent hashing over the Mersenne prime p = 2^61 - 1.
///
/// This is the workhorse hash family behind every sketch in the library
/// (§1 of the survey): a degree-(k-1) polynomial with random coefficients
/// evaluated mod p is a k-wise independent function [Carter–Wegman]. Two-
/// wise independence suffices for Count-Min buckets and Count-Sketch signs;
/// four-wise independence is needed for the AMS F2 second-moment estimator.

namespace sketch {

/// The Mersenne prime 2^61 - 1 used as the hash field modulus.
inline constexpr uint64_t kMersennePrime61 = (1ULL << 61) - 1;

/// A k-wise independent hash function h : [2^61-1] -> [2^61-1], realized as
/// a random polynomial of degree k-1 over GF(p), p = 2^61 - 1.
///
/// Deterministic given (independence, seed): the same seed always yields
/// the same function, which makes sketch mergeability and experiment
/// reproducibility trivial.
class KWiseHash {
 public:
  /// \param independence  k >= 1; the returned family is k-wise
  ///                      independent (k=1 is a constant function, rarely
  ///                      useful; k=2 for buckets/signs; k=4 for AMS).
  /// \param seed          seed from which the k coefficients are drawn.
  KWiseHash(int independence, uint64_t seed);

  /// Evaluates the polynomial at `x` (reduced mod p first); result in
  /// [0, p).
  uint64_t Hash(uint64_t x) const;

  /// Hash reduced onto the bucket range [0, num_buckets).
  uint64_t Bucket(uint64_t x, uint64_t num_buckets) const {
    return Hash(x) % num_buckets;
  }

  /// A ±1 sign derived from the low bit of the hash; with k>=2 the signs
  /// of distinct keys are pairwise independent and unbiased.
  int Sign(uint64_t x) const { return (Hash(x) & 1) ? +1 : -1; }

  int independence() const { return static_cast<int>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // coeffs_[0] is the constant term
};

/// Modular multiplication a*b mod (2^61 - 1) via 128-bit product and
/// Mersenne folding. Exposed for reuse by tests and other hash utilities.
uint64_t MulModMersenne61(uint64_t a, uint64_t b);

}  // namespace sketch

#endif  // SKETCH_HASH_KWISE_HASH_H_
