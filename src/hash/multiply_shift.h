#ifndef SKETCH_HASH_MULTIPLY_SHIFT_H_
#define SKETCH_HASH_MULTIPLY_SHIFT_H_

#include <cstdint>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

/// Dietzfelbinger's multiply-shift hashing: h(x) = (a*x + b) >> (64 - d),
/// mapping 64-bit keys to d-bit buckets. Universal (and close to 2-wise
/// independent) with a single multiply — the cheapest per-update hash in
/// the library, used where raw update throughput matters more than strict
/// independence guarantees (e.g., Bloom filter probes).
class MultiplyShiftHash {
 public:
  /// \param out_bits  number of output bits d in [1, 63].
  /// \param seed      seed for the random odd multiplier and offset.
  MultiplyShiftHash(int out_bits, uint64_t seed) : shift_(64 - out_bits) {
    SKETCH_CHECK(out_bits >= 1 && out_bits <= 63);
    SplitMix64 sm(seed);
    a_ = sm.Next() | 1;  // multiplier must be odd
    b_ = sm.Next();
  }

  /// Hashes `x` to [0, 2^out_bits).
  uint64_t Hash(uint64_t x) const { return (a_ * x + b_) >> shift_; }

 private:
  int shift_;
  uint64_t a_;
  uint64_t b_;
};

}  // namespace sketch

#endif  // SKETCH_HASH_MULTIPLY_SHIFT_H_
