#include "hash/tabulation_hash.h"

#include "common/prng.h"

namespace sketch {

TabulationHash::TabulationHash(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& table : tables_) {
    for (auto& entry : table) entry = sm.Next();
  }
}

}  // namespace sketch
