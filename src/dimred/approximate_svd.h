#ifndef SKETCH_DIMRED_APPROXIMATE_SVD_H_
#define SKETCH_DIMRED_APPROXIMATE_SVD_H_

#include <cstdint>
#include <vector>

#include "dimred/sketched_lowrank.h"
#include "linalg/dense_matrix.h"

namespace sketch {

/// Rank-r approximate singular value decomposition A ~ U diag(s) V^T.
struct ApproximateSvdResult {
  std::vector<double> singular_values;  ///< descending, length rank
  DenseMatrix u;                        ///< rows(A) x rank, orthonormal cols
  DenseMatrix v;                        ///< cols(A) x rank, orthonormal cols
  ApproximateSvdResult() : u(1, 1), v(1, 1) {}
};

/// Randomized SVD (Halko–Martinsson–Tropp, with optional Count-Sketch test
/// matrices [CW13]): range-find Q, project B = Q^T A, eigendecompose the
/// small B B^T by Jacobi, and lift. Completes the survey's §3 claim that
/// sketching yields the "key problems in numerical linear algebra" —
/// regression *and* low-rank factorizations — in near input-sparsity time.
///
/// The top singular values/vectors are accurate when the spectrum decays
/// past `rank` (oversampling absorbs slow decay).
ApproximateSvdResult ApproximateSvd(const DenseMatrix& a, uint64_t rank,
                                    uint64_t oversampling,
                                    LowRankSketchType type, uint64_t seed);

}  // namespace sketch

#endif  // SKETCH_DIMRED_APPROXIMATE_SVD_H_
