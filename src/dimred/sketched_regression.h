#ifndef SKETCH_DIMRED_SKETCHED_REGRESSION_H_
#define SKETCH_DIMRED_SKETCHED_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.h"

namespace sketch {

/// Which subspace embedding sketches the rows of [A | b].
enum class RegressionSketchType {
  kCountSketch,  ///< [CW13] sparse embedding: O(nnz(A)) sketch time
  kGaussian,     ///< dense Gaussian: O(n m d) sketch time (baseline)
  kOsnap,        ///< [NN12] s nonzeros/row: O(s nnz(A)), m = O~(d) suffices
};

/// Result of a sketched least-squares solve.
struct SketchedRegressionResult {
  std::vector<double> solution;   ///< approximate argmin ||Ax - b||_2
  double sketch_seconds = 0.0;    ///< time to form SA, Sb
  double solve_seconds = 0.0;     ///< time for the m x d QR solve
};

/// Sketch-and-solve least squares [CW13] (§3 of the survey, and the
/// gateway to "almost linear time numerical linear algebra"): draw a
/// subspace embedding S with m = O(d^2/eps) rows (Count-Sketch) or
/// m = O(d/eps^2) rows (Gaussian), and return argmin ||S A x - S b||_2.
/// With constant probability, ||A x' - b|| <= (1 + eps) min_x ||A x - b||.
///
/// The Count-Sketch embedding applies in a single O(nnz(A)) pass over the
/// rows — the input-sparsity-time result this library reproduces in E8.
///
/// The Count-Sketch embedding needs m = O(d^2/eps) rows; the OSNAP
/// embedding [NN12] spreads each input row over `osnap_sparsity` hashed
/// rows (scaled 1/sqrt(s)) and achieves the subspace guarantee at
/// m = O~(d) — the fix for Count-Sketch's quadratic blowup when d is
/// large relative to n.
///
/// \param a               n x d design matrix (n >> d).
/// \param b               response vector, length n.
/// \param sketch_rows     m; must satisfy m >= d + 1.
/// \param osnap_sparsity  s (only used by kOsnap); must divide into
///                        sketch_rows at least once (s <= sketch_rows).
SketchedRegressionResult SolveSketchedRegression(const DenseMatrix& a,
                                                 const std::vector<double>& b,
                                                 uint64_t sketch_rows,
                                                 RegressionSketchType type,
                                                 uint64_t seed,
                                                 int osnap_sparsity = 8);

/// Relative regression error ||A x - b||_2 / ||b||_2 (shared metric for
/// E8 tables).
double RegressionResidual(const DenseMatrix& a, const std::vector<double>& x,
                          const std::vector<double>& b);

}  // namespace sketch

#endif  // SKETCH_DIMRED_SKETCHED_REGRESSION_H_
