#include "dimred/approximate_svd.h"

#include <cmath>

#include "common/check.h"
#include "linalg/symmetric_eigen.h"

namespace sketch {

ApproximateSvdResult ApproximateSvd(const DenseMatrix& a, uint64_t rank,
                                    uint64_t oversampling,
                                    LowRankSketchType type, uint64_t seed) {
  const uint64_t rows = a.rows();
  const uint64_t cols = a.cols();
  SKETCH_CHECK(rank >= 1);
  SKETCH_CHECK(rank + oversampling <= std::min(rows, cols));

  // Stage 1: approximate range basis Q (rows x l).
  const LowRankResult range =
      RandomizedRangeFinder(a, rank, oversampling, type, seed);
  const DenseMatrix& q = range.basis;
  const uint64_t l = q.cols();

  // Stage 2: B = Q^T A (l x cols).
  DenseMatrix b(l, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    const double* a_row = a.Row(r);
    const double* q_row = q.Row(r);
    for (uint64_t t = 0; t < l; ++t) {
      const double qv = q_row[t];
      if (qv == 0.0) continue;
      double* b_row = b.Row(t);
      for (uint64_t c = 0; c < cols; ++c) b_row[c] += qv * a_row[c];
    }
  }

  // Stage 3: eigendecompose the small Gram matrix B B^T = W diag(lam) W^T;
  // then A ~ (Q W) diag(sqrt(lam)) (B^T W / sqrt(lam))^T.
  DenseMatrix gram(l, l);
  for (uint64_t i = 0; i < l; ++i) {
    for (uint64_t j = i; j < l; ++j) {
      double dot = 0.0;
      for (uint64_t c = 0; c < cols; ++c) dot += b.At(i, c) * b.At(j, c);
      gram.At(i, j) = dot;
      gram.At(j, i) = dot;
    }
  }
  const SymmetricEigen eigen = JacobiEigenDecomposition(gram);

  ApproximateSvdResult result;
  result.singular_values.resize(rank);
  result.u = DenseMatrix(rows, rank);
  result.v = DenseMatrix(cols, rank);
  for (uint64_t t = 0; t < rank; ++t) {
    const double lambda = std::max(eigen.values[t], 0.0);
    const double sigma = std::sqrt(lambda);
    result.singular_values[t] = sigma;
    // u_t = Q * w_t.
    for (uint64_t r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (uint64_t i = 0; i < l; ++i) {
        acc += q.At(r, i) * eigen.vectors.At(i, t);
      }
      result.u.At(r, t) = acc;
    }
    // v_t = B^T w_t / sigma (left at zero for null directions).
    if (sigma > 1e-12) {
      for (uint64_t c = 0; c < cols; ++c) {
        double acc = 0.0;
        for (uint64_t i = 0; i < l; ++i) {
          acc += b.At(i, c) * eigen.vectors.At(i, t);
        }
        result.v.At(c, t) = acc / sigma;
      }
    }
  }
  return result;
}

}  // namespace sketch
