#ifndef SKETCH_DIMRED_JL_TRANSFORM_H_
#define SKETCH_DIMRED_JL_TRANSFORM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/kwise_hash.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_vector.h"

namespace sketch {

/// Interface for Johnson–Lindenstrauss-style dimensionality reducers
/// (§3 of the survey): linear maps R^n -> R^m that preserve ℓ2 norms to
/// 1 ± eps with probability 1 - delta when m = O(eps^-2 log(1/delta)).
///
/// The concrete implementations span the survey's design space:
///  - DenseJlTransform:    the original [JL84] dense Gaussian map, O(nm);
///  - SparseJlTransform:   [KN12] block construction, s nonzeros/column,
///                         O(s · nnz(x)) per application;
///  - CountSketchTransform: s = 1 [CW13/WDL+09] — the hashing process
///                         itself as a JL map, O(nnz(x)) per application;
///  - FjltTransform:       [AC10] structured Hadamard map, O(n log n).
class JlTransform {
 public:
  virtual ~JlTransform() = default;

  /// Projects a dense vector of length `input_dimension()`.
  virtual std::vector<double> Apply(const std::vector<double>& x) const = 0;

  /// Projects a sparse vector (default: densify; sparse-aware subclasses
  /// override with O(nnz)-time paths).
  virtual std::vector<double> Apply(const SparseVector& x) const;

  virtual uint64_t input_dimension() const = 0;
  virtual uint64_t output_dimension() const = 0;

  /// Human-readable name for experiment tables.
  virtual const char* Name() const = 0;
};

/// Dense Gaussian JL map: entries i.i.d. N(0, 1/m).
class DenseJlTransform final : public JlTransform {
 public:
  DenseJlTransform(uint64_t input_dim, uint64_t output_dim, uint64_t seed);

  std::vector<double> Apply(const std::vector<double>& x) const override;
  uint64_t input_dimension() const override { return matrix_.cols(); }
  uint64_t output_dimension() const override { return matrix_.rows(); }
  const char* Name() const override { return "dense-gaussian"; }

 private:
  DenseMatrix matrix_;
};

/// Sparse JL map, Kane–Nelson block construction: the output is divided
/// into `sparsity` blocks of m/s rows; each input coordinate gets one
/// ±1/sqrt(s) entry per block at a hashed row.
class SparseJlTransform final : public JlTransform {
 public:
  /// `output_dim` is rounded down to a multiple of `sparsity`.
  SparseJlTransform(uint64_t input_dim, uint64_t output_dim, int sparsity,
                    uint64_t seed);

  std::vector<double> Apply(const std::vector<double>& x) const override;
  std::vector<double> Apply(const SparseVector& x) const override;
  uint64_t input_dimension() const override { return input_dim_; }
  uint64_t output_dimension() const override { return block_size_ * blocks_; }
  const char* Name() const override { return "sparse-jl"; }

  int sparsity() const { return blocks_; }

 private:
  uint64_t input_dim_;
  uint64_t block_size_;
  int blocks_;
  double scale_;
  std::vector<KWiseHash> bucket_hashes_;  // one per block
  std::vector<KWiseHash> sign_hashes_;
};

/// Count-Sketch transform (sparse embedding, s = 1): one ±1 entry per
/// column. The survey's §3 point: the heavy-hitters data structure *is*
/// an optimal-dimension JL map with O(nnz(x)) application time.
class CountSketchTransform final : public JlTransform {
 public:
  CountSketchTransform(uint64_t input_dim, uint64_t output_dim, uint64_t seed);

  std::vector<double> Apply(const std::vector<double>& x) const override;
  std::vector<double> Apply(const SparseVector& x) const override;
  uint64_t input_dimension() const override { return input_dim_; }
  uint64_t output_dimension() const override { return output_dim_; }
  const char* Name() const override { return "countsketch"; }

 private:
  uint64_t input_dim_;
  uint64_t output_dim_;
  KWiseHash bucket_hash_;
  KWiseHash sign_hash_;
};

/// Fast JL transform [AC10]: x -> sample_m( H (D x) ) * sqrt(n/m), where D
/// is a random diagonal ±1 matrix and H the Walsh–Hadamard transform
/// (input padded to the next power of two). O(n log n) regardless of
/// sparsity — the structured-matrix alternative the survey contrasts with
/// sparse maps.
class FjltTransform final : public JlTransform {
 public:
  FjltTransform(uint64_t input_dim, uint64_t output_dim, uint64_t seed);

  std::vector<double> Apply(const std::vector<double>& x) const override;
  uint64_t input_dimension() const override { return input_dim_; }
  uint64_t output_dimension() const override { return sampled_rows_.size(); }
  const char* Name() const override { return "fjlt"; }

 private:
  uint64_t input_dim_;
  uint64_t padded_dim_;
  std::vector<int8_t> signs_;           // D
  std::vector<uint64_t> sampled_rows_;  // P
  double scale_;
};

/// In-place Walsh–Hadamard transform; `x->size()` must be a power of two.
/// Unnormalized (apply scale 1/sqrt(n) yourself if needed).
void WalshHadamardInPlace(std::vector<double>* x);

}  // namespace sketch

#endif  // SKETCH_DIMRED_JL_TRANSFORM_H_
