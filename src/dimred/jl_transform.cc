#include "dimred/jl_transform.h"

#include <cmath>

#include "common/check.h"
#include "common/prng.h"

namespace sketch {

std::vector<double> JlTransform::Apply(const SparseVector& x) const {
  return Apply(x.ToDense());
}

// ---------------------------------------------------------------------------
// DenseJlTransform

DenseJlTransform::DenseJlTransform(uint64_t input_dim, uint64_t output_dim,
                                   uint64_t seed)
    : matrix_(output_dim, input_dim) {
  SKETCH_CHECK(output_dim >= 1 && input_dim >= 1);
  matrix_.FillGaussian(seed);
}

std::vector<double> DenseJlTransform::Apply(
    const std::vector<double>& x) const {
  return matrix_.Multiply(x);
}

// ---------------------------------------------------------------------------
// SparseJlTransform

SparseJlTransform::SparseJlTransform(uint64_t input_dim, uint64_t output_dim,
                                     int sparsity, uint64_t seed)
    : input_dim_(input_dim), blocks_(sparsity) {
  SKETCH_CHECK(sparsity >= 1);
  SKETCH_CHECK(output_dim >= static_cast<uint64_t>(sparsity));
  block_size_ = output_dim / sparsity;
  scale_ = 1.0 / std::sqrt(static_cast<double>(sparsity));
  bucket_hashes_.reserve(sparsity);
  sign_hashes_.reserve(sparsity);
  for (int b = 0; b < sparsity; ++b) {
    bucket_hashes_.emplace_back(2, SplitMix64Once(seed * 3 + b));
    sign_hashes_.emplace_back(2, SplitMix64Once(~seed * 3 + b + 0x51ULL));
  }
}

std::vector<double> SparseJlTransform::Apply(
    const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == input_dim_);
  std::vector<double> y(output_dimension(), 0.0);
  for (uint64_t i = 0; i < input_dim_; ++i) {
    if (x[i] == 0.0) continue;
    for (int b = 0; b < blocks_; ++b) {
      const uint64_t row = b * block_size_ +
                           bucket_hashes_[b].Bucket(i, block_size_);
      y[row] += sign_hashes_[b].Sign(i) * scale_ * x[i];
    }
  }
  return y;
}

std::vector<double> SparseJlTransform::Apply(const SparseVector& x) const {
  SKETCH_CHECK(x.dimension() == input_dim_);
  std::vector<double> y(output_dimension(), 0.0);
  for (const SparseEntry& e : x.entries()) {
    for (int b = 0; b < blocks_; ++b) {
      const uint64_t row = b * block_size_ +
                           bucket_hashes_[b].Bucket(e.index, block_size_);
      y[row] += sign_hashes_[b].Sign(e.index) * scale_ * e.value;
    }
  }
  return y;
}

// ---------------------------------------------------------------------------
// CountSketchTransform

CountSketchTransform::CountSketchTransform(uint64_t input_dim,
                                           uint64_t output_dim, uint64_t seed)
    : input_dim_(input_dim),
      output_dim_(output_dim),
      bucket_hash_(2, SplitMix64Once(seed * 5 + 1)),
      sign_hash_(2, SplitMix64Once(~seed * 5 + 2)) {
  SKETCH_CHECK(input_dim >= 1 && output_dim >= 1);
}

std::vector<double> CountSketchTransform::Apply(
    const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == input_dim_);
  std::vector<double> y(output_dim_, 0.0);
  for (uint64_t i = 0; i < input_dim_; ++i) {
    if (x[i] == 0.0) continue;
    y[bucket_hash_.Bucket(i, output_dim_)] += sign_hash_.Sign(i) * x[i];
  }
  return y;
}

std::vector<double> CountSketchTransform::Apply(const SparseVector& x) const {
  SKETCH_CHECK(x.dimension() == input_dim_);
  std::vector<double> y(output_dim_, 0.0);
  for (const SparseEntry& e : x.entries()) {
    y[bucket_hash_.Bucket(e.index, output_dim_)] +=
        sign_hash_.Sign(e.index) * e.value;
  }
  return y;
}

// ---------------------------------------------------------------------------
// FjltTransform

void WalshHadamardInPlace(std::vector<double>* x) {
  const uint64_t n = x->size();
  SKETCH_CHECK(n != 0 && (n & (n - 1)) == 0);
  std::vector<double>& a = *x;
  for (uint64_t len = 1; len < n; len <<= 1) {
    for (uint64_t i = 0; i < n; i += 2 * len) {
      for (uint64_t j = i; j < i + len; ++j) {
        const double u = a[j];
        const double v = a[j + len];
        a[j] = u + v;
        a[j + len] = u - v;
      }
    }
  }
}

FjltTransform::FjltTransform(uint64_t input_dim, uint64_t output_dim,
                             uint64_t seed)
    : input_dim_(input_dim) {
  SKETCH_CHECK(input_dim >= 1 && output_dim >= 1);
  padded_dim_ = 1;
  while (padded_dim_ < input_dim) padded_dim_ <<= 1;
  Xoshiro256StarStar rng(seed);
  signs_.resize(padded_dim_);
  for (auto& s : signs_) s = (rng.Next() & 1) ? 1 : -1;
  sampled_rows_.resize(output_dim);
  for (auto& r : sampled_rows_) r = rng.NextBounded(padded_dim_);
  // Normalization: with H~ = H/sqrt(n) orthonormal and rows sampled
  // uniformly, y_t = sqrt(n/m) * (H~ D x)_{r_t} keeps E||y||^2 = ||x||^2.
  // Composed with the unnormalized H this is a flat 1/sqrt(m) scale.
  scale_ = 1.0 / std::sqrt(static_cast<double>(output_dim));
}

std::vector<double> FjltTransform::Apply(const std::vector<double>& x) const {
  SKETCH_CHECK(x.size() == input_dim_);
  std::vector<double> padded(padded_dim_, 0.0);
  for (uint64_t i = 0; i < input_dim_; ++i) {
    padded[i] = signs_[i] * x[i];
  }
  WalshHadamardInPlace(&padded);
  std::vector<double> y(sampled_rows_.size());
  for (size_t t = 0; t < sampled_rows_.size(); ++t) {
    y[t] = padded[sampled_rows_[t]] * scale_;
  }
  return y;
}

}  // namespace sketch
