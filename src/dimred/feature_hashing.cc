#include "dimred/feature_hashing.h"

#include "common/check.h"
#include "common/prng.h"
#include "hash/string_key.h"

namespace sketch {

FeatureHasher::FeatureHasher(uint64_t output_dim, uint64_t seed)
    : output_dim_(output_dim),
      bucket_hash_(2, SplitMix64Once(seed * 7 + 1)),
      sign_hash_(2, SplitMix64Once(~seed * 7 + 3)) {
  SKETCH_CHECK(output_dim >= 1);
}

uint64_t FeatureHasher::FeatureId(std::string_view name) {
  return StringKeyId(name);
}

void FeatureHasher::AddFeature(std::string_view name, double value,
                               std::vector<double>* out) const {
  SKETCH_CHECK(out->size() == output_dim_);
  const uint64_t id = FeatureId(name);
  (*out)[bucket_hash_.Bucket(id, output_dim_)] +=
      sign_hash_.Sign(id) * value;
}

std::vector<double> FeatureHasher::HashFeatures(
    const std::vector<std::pair<std::string_view, double>>& features) const {
  std::vector<double> out(output_dim_, 0.0);
  for (const auto& [name, value] : features) AddFeature(name, value, &out);
  return out;
}

}  // namespace sketch
