#ifndef SKETCH_DIMRED_SKETCHED_LOWRANK_H_
#define SKETCH_DIMRED_SKETCHED_LOWRANK_H_

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.h"

namespace sketch {

/// Which test matrix the range finder multiplies A by.
enum class LowRankSketchType {
  kCountSketch,  ///< one ±1 per column of the test matrix: O(nnz(A)) pass
  kGaussian,     ///< dense Gaussian test matrix: O(rows·cols·l)
};

/// Result of a randomized low-rank approximation.
struct LowRankResult {
  /// Orthonormal basis Q (rows x l) for the approximate range of A.
  DenseMatrix basis;
  double build_seconds = 0.0;
  LowRankResult() : basis(1, 1) {}
};

/// Randomized range finder (Halko–Martinsson–Tropp, with the sparse test
/// matrices of [CW13]): Y = A Ω for a random (cols x l) test matrix Ω with
/// l = rank + oversampling, followed by Gram–Schmidt. The rank-l
/// approximation is Q (Q^T A); its Frobenius error is near-optimal with
/// constant probability. With a Count-Sketch Ω the product costs one pass
/// over A — the survey's §3 "low-rank approximation in input-sparsity
/// time".
LowRankResult RandomizedRangeFinder(const DenseMatrix& a, uint64_t rank,
                                    uint64_t oversampling,
                                    LowRankSketchType type, uint64_t seed);

/// ||A - Q Q^T A||_F — the approximation error of the basis Q.
double LowRankApproximationError(const DenseMatrix& a, const DenseMatrix& q);

/// ||A||_F.
double FrobeniusNorm(const DenseMatrix& a);

}  // namespace sketch

#endif  // SKETCH_DIMRED_SKETCHED_LOWRANK_H_
