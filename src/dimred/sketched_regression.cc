#include "dimred/sketched_regression.h"

#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/prng.h"
#include "common/timer.h"
#include "hash/kwise_hash.h"
#include "linalg/least_squares.h"

namespace sketch {

SketchedRegressionResult SolveSketchedRegression(const DenseMatrix& a,
                                                 const std::vector<double>& b,
                                                 uint64_t sketch_rows,
                                                 RegressionSketchType type,
                                                 uint64_t seed,
                                                 int osnap_sparsity) {
  const uint64_t n = a.rows();
  const uint64_t d = a.cols();
  SKETCH_CHECK(b.size() == n);
  SKETCH_CHECK(sketch_rows >= d + 1);
  SKETCH_CHECK(sketch_rows <= n);

  SketchedRegressionResult result;
  Timer timer;

  // Form SA (m x d) and Sb (m).
  DenseMatrix sa(sketch_rows, d);
  std::vector<double> sb(sketch_rows, 0.0);

  if (type == RegressionSketchType::kOsnap) {
    // OSNAP [NN12]: the output is split into s blocks; each input row
    // lands once per block with a ±1/sqrt(s) sign. One pass over A,
    // O(s * nnz(A)) work; subspace embedding already at m = O~(d).
    const int s = osnap_sparsity;
    SKETCH_CHECK(s >= 1 && static_cast<uint64_t>(s) <= sketch_rows);
    const uint64_t block = sketch_rows / s;
    const double scale = 1.0 / std::sqrt(static_cast<double>(s));
    std::vector<KWiseHash> bucket_hashes;
    std::vector<KWiseHash> sign_hashes;
    for (int i = 0; i < s; ++i) {
      bucket_hashes.emplace_back(2, SplitMix64Once(seed * 29 + i));
      sign_hashes.emplace_back(2, SplitMix64Once(~seed * 29 + i + 5));
    }
    for (uint64_t r = 0; r < n; ++r) {
      const double* row = a.Row(r);
      for (int i = 0; i < s; ++i) {
        const uint64_t out = i * block + bucket_hashes[i].Bucket(r, block);
        const double sign = sign_hashes[i].Sign(r) * scale;
        double* out_row = sa.Row(out);
        for (uint64_t c = 0; c < d; ++c) out_row[c] += sign * row[c];
        sb[out] += sign * b[r];
      }
    }
  } else if (type == RegressionSketchType::kCountSketch) {
    // Each input row r lands in one hashed output row with a ±1 sign:
    // a single pass over A, O(nnz(A) + m d) total.
    const KWiseHash bucket_hash(2, SplitMix64Once(seed * 11 + 1));
    const KWiseHash sign_hash(2, SplitMix64Once(~seed * 11 + 5));
    for (uint64_t r = 0; r < n; ++r) {
      const uint64_t out = bucket_hash.Bucket(r, sketch_rows);
      const double sign = sign_hash.Sign(r);
      const double* row = a.Row(r);
      double* out_row = sa.Row(out);
      for (uint64_t c = 0; c < d; ++c) out_row[c] += sign * row[c];
      sb[out] += sign * b[r];
    }
  } else {
    // Dense Gaussian sketch: S is m x n with N(0, 1/m) entries. Stream S
    // row-block-wise to avoid materializing it: for each input row r,
    // accumulate its contribution to all m output rows — O(n m d).
    Xoshiro256StarStar rng(seed);
    const double scale = 1.0 / std::sqrt(static_cast<double>(sketch_rows));
    for (uint64_t r = 0; r < n; ++r) {
      const double* row = a.Row(r);
      for (uint64_t out = 0; out < sketch_rows; ++out) {
        const double s = rng.NextGaussian() * scale;
        if (s == 0.0) continue;
        double* out_row = sa.Row(out);
        for (uint64_t c = 0; c < d; ++c) out_row[c] += s * row[c];
        sb[out] += s * b[r];
      }
    }
  }
  result.sketch_seconds = timer.ElapsedSeconds();

  timer.Reset();
  result.solution = SolveLeastSquaresQr(sa, sb);
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

double RegressionResidual(const DenseMatrix& a, const std::vector<double>& x,
                          const std::vector<double>& b) {
  const std::vector<double> ax = a.Multiply(x);
  return L2Distance(ax, b) / L2Norm(b);
}

}  // namespace sketch
