#ifndef SKETCH_DIMRED_FEATURE_HASHING_H_
#define SKETCH_DIMRED_FEATURE_HASHING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/kwise_hash.h"

namespace sketch {

/// The "hashing trick" for machine-learning features [WDL+09, SPD+09]:
/// named (string) features are hashed directly into a fixed-size weight
/// vector with a ±1 sign, i.e., a Count-Sketch transform applied to an
/// implicit, unbounded feature space. No dictionary is ever materialized —
/// the survey's §3 point that the hashing process is itself an
/// inner-product-preserving dimensionality reduction.
class FeatureHasher {
 public:
  /// \param output_dim  size of the hashed feature vector.
  FeatureHasher(uint64_t output_dim, uint64_t seed);

  /// Accumulates one named feature with the given value into `out`
  /// (`out->size()` must equal output_dim).
  void AddFeature(std::string_view name, double value,
                  std::vector<double>* out) const;

  /// Hashes a whole (name, value) list into a fresh vector.
  std::vector<double> HashFeatures(
      const std::vector<std::pair<std::string_view, double>>& features) const;

  /// Stable 64-bit id of a feature name (FNV-1a); exposed so callers can
  /// pre-tokenize.
  static uint64_t FeatureId(std::string_view name);

  uint64_t output_dim() const { return output_dim_; }

 private:
  uint64_t output_dim_;
  KWiseHash bucket_hash_;
  KWiseHash sign_hash_;
};

}  // namespace sketch

#endif  // SKETCH_DIMRED_FEATURE_HASHING_H_
