#include "dimred/sketched_lowrank.h"

#include <cmath>

#include "common/check.h"
#include "common/prng.h"
#include "common/timer.h"
#include "hash/kwise_hash.h"

namespace sketch {

namespace {

/// In-place modified Gram–Schmidt on the columns of `y`; returns the
/// number of numerically independent columns kept (others zeroed).
uint64_t GramSchmidt(DenseMatrix* y) {
  const uint64_t rows = y->rows();
  const uint64_t cols = y->cols();
  uint64_t kept = 0;
  for (uint64_t c = 0; c < cols; ++c) {
    double original_norm = 0.0;
    for (uint64_t r = 0; r < rows; ++r) {
      original_norm += y->At(r, c) * y->At(r, c);
    }
    original_norm = std::sqrt(original_norm);
    // Two projection passes ("twice is enough") keep the basis orthogonal
    // even when a column is nearly dependent on its predecessors.
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (uint64_t r = 0; r < rows; ++r) {
          dot += y->At(r, prev) * y->At(r, c);
        }
        for (uint64_t r = 0; r < rows; ++r) {
          y->At(r, c) -= dot * y->At(r, prev);
        }
      }
    }
    double norm = 0.0;
    for (uint64_t r = 0; r < rows; ++r) norm += y->At(r, c) * y->At(r, c);
    norm = std::sqrt(norm);
    // A column whose residual is a tiny fraction of its original norm is
    // numerically dependent: normalizing it would promote rounding noise
    // to a full basis vector. Drop it instead.
    if (norm < 1e-10 * (original_norm + 1e-300)) {
      for (uint64_t r = 0; r < rows; ++r) y->At(r, c) = 0.0;
      continue;
    }
    for (uint64_t r = 0; r < rows; ++r) y->At(r, c) /= norm;
    ++kept;
  }
  return kept;
}

}  // namespace

LowRankResult RandomizedRangeFinder(const DenseMatrix& a, uint64_t rank,
                                    uint64_t oversampling,
                                    LowRankSketchType type, uint64_t seed) {
  const uint64_t rows = a.rows();
  const uint64_t cols = a.cols();
  const uint64_t l = rank + oversampling;
  SKETCH_CHECK(rank >= 1);
  SKETCH_CHECK(l <= cols);

  LowRankResult result;
  Timer timer;
  DenseMatrix y(rows, l);

  if (type == LowRankSketchType::kCountSketch) {
    // Y[:, h(j)] += sign(j) * A[:, j] — one pass over A.
    const KWiseHash bucket_hash(2, SplitMix64Once(seed * 13 + 1));
    const KWiseHash sign_hash(2, SplitMix64Once(~seed * 13 + 7));
    for (uint64_t r = 0; r < rows; ++r) {
      const double* row = a.Row(r);
      double* out = y.Row(r);
      for (uint64_t j = 0; j < cols; ++j) {
        if (row[j] == 0.0) continue;
        out[bucket_hash.Bucket(j, l)] += sign_hash.Sign(j) * row[j];
      }
    }
  } else {
    // Y = A * G with G ~ N(0, 1), generated column-of-G-major so the
    // row-major pass over A stays cache friendly.
    Xoshiro256StarStar rng(seed);
    std::vector<double> g(cols * l);
    for (auto& v : g) v = rng.NextGaussian();
    for (uint64_t r = 0; r < rows; ++r) {
      const double* row = a.Row(r);
      double* out = y.Row(r);
      for (uint64_t j = 0; j < cols; ++j) {
        const double v = row[j];
        if (v == 0.0) continue;
        const double* g_row = &g[j * l];
        for (uint64_t t = 0; t < l; ++t) out[t] += v * g_row[t];
      }
    }
  }

  GramSchmidt(&y);
  result.basis = y;
  result.build_seconds = timer.ElapsedSeconds();
  return result;
}

double LowRankApproximationError(const DenseMatrix& a, const DenseMatrix& q) {
  SKETCH_CHECK(q.rows() == a.rows());
  const uint64_t rows = a.rows();
  const uint64_t cols = a.cols();
  const uint64_t l = q.cols();
  // B = Q^T A (l x cols).
  DenseMatrix b(l, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    const double* a_row = a.Row(r);
    const double* q_row = q.Row(r);
    for (uint64_t t = 0; t < l; ++t) {
      const double qv = q_row[t];
      if (qv == 0.0) continue;
      double* b_row = b.Row(t);
      for (uint64_t c = 0; c < cols; ++c) b_row[c] += qv * a_row[c];
    }
  }
  // ||A - Q B||_F^2 accumulated row-wise.
  double err2 = 0.0;
  for (uint64_t r = 0; r < rows; ++r) {
    const double* a_row = a.Row(r);
    const double* q_row = q.Row(r);
    for (uint64_t c = 0; c < cols; ++c) {
      double recon = 0.0;
      for (uint64_t t = 0; t < l; ++t) recon += q_row[t] * b.At(t, c);
      const double d = a_row[c] - recon;
      err2 += d * d;
    }
  }
  return std::sqrt(err2);
}

double FrobeniusNorm(const DenseMatrix& a) {
  double s = 0.0;
  for (uint64_t r = 0; r < a.rows(); ++r) {
    const double* row = a.Row(r);
    for (uint64_t c = 0; c < a.cols(); ++c) s += row[c] * row[c];
  }
  return std::sqrt(s);
}

}  // namespace sketch
