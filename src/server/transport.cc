#include "server/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sketch::server {

bool WriteAll(ByteStream* stream, const uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const std::ptrdiff_t n = stream->Write(data + written, size - written);
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteAll(ByteStream* stream, const std::vector<uint8_t>& bytes) {
  return WriteAll(stream, bytes.data(), bytes.size());
}

// --- LoopbackPipe ---------------------------------------------------------

std::ptrdiff_t LoopbackPipe::Read(uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  MutexLock lock(mutex_);
  while (bytes_.empty() && !closed_) readable_.Wait(mutex_);
  if (bytes_.empty()) return 0;  // closed and drained: clean EOF
  const std::size_t n = std::min(size, bytes_.size());
  std::copy_n(bytes_.begin(), n, data);
  bytes_.erase(bytes_.begin(),
               bytes_.begin() + static_cast<std::ptrdiff_t>(n));
  return static_cast<std::ptrdiff_t>(n);
}

std::ptrdiff_t LoopbackPipe::Write(const uint8_t* data, std::size_t size) {
  MutexLock lock(mutex_);
  if (closed_) return -1;
  bytes_.insert(bytes_.end(), data, data + size);
  readable_.NotifyAll();
  return static_cast<std::ptrdiff_t>(size);
}

void LoopbackPipe::Close() {
  MutexLock lock(mutex_);
  closed_ = true;
  readable_.NotifyAll();
}

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
MakeLoopbackPair() {
  auto forward = std::make_shared<LoopbackPipe>();
  auto backward = std::make_shared<LoopbackPipe>();
  return {std::make_unique<LoopbackStream>(backward, forward),
          std::make_unique<LoopbackStream>(forward, backward)};
}

// --- FaultyStream ---------------------------------------------------------

std::ptrdiff_t FaultyStream::Read(uint8_t* data, std::size_t size) {
  if (plan_.delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
  }
  if (plan_.fail_read_after_bytes > 0 &&
      total_read_ >= plan_.fail_read_after_bytes) {
    return -1;
  }
  std::size_t capped = size;
  if (plan_.max_read_chunk > 0) capped = std::min(capped, plan_.max_read_chunk);
  if (plan_.fail_read_after_bytes > 0) {
    capped = std::min(capped, plan_.fail_read_after_bytes - total_read_);
  }
  const std::ptrdiff_t n = inner_->Read(data, capped);
  if (n > 0) total_read_ += static_cast<std::size_t>(n);
  return n;
}

std::ptrdiff_t FaultyStream::Write(const uint8_t* data, std::size_t size) {
  if (plan_.delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
  }
  if (plan_.fail_write_after_bytes > 0 &&
      total_written_ >= plan_.fail_write_after_bytes) {
    return -1;
  }
  std::size_t capped = size;
  if (plan_.max_write_chunk > 0) {
    capped = std::min(capped, plan_.max_write_chunk);
  }
  if (plan_.fail_write_after_bytes > 0) {
    capped = std::min(capped, plan_.fail_write_after_bytes - total_written_);
  }
  const std::ptrdiff_t n = inner_->Write(data, capped);
  if (n > 0) total_written_ += static_cast<std::size_t>(n);
  return n;
}

// --- SocketStream ---------------------------------------------------------

std::ptrdiff_t SocketStream::Read(uint8_t* data, std::size_t size) {
  // relaxed: the fd value is the entire communicated state (no memory is
  // published through it); the recv/close interleaving is resolved by the
  // kernel, and Close's shutdown() unblocks a recv already in flight.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return -1;
  while (true) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

std::ptrdiff_t SocketStream::Write(const uint8_t* data, std::size_t size) {
  // relaxed: see Read.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return -1;
  while (true) {
    // MSG_NOSIGNAL: a peer that disconnected mid-frame must surface as a
    // -1 return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

void SocketStream::Close() {
  // acq_rel exchange: exactly one closer claims the descriptor (atomicity
  // prevents double-close of a possibly-reused fd) and the winner's
  // shutdown/close are ordered after any prior writes it made.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

// --- SocketListener -------------------------------------------------------

SocketListener::~SocketListener() { Close(); }

std::unique_ptr<SocketListener> SocketListener::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<SocketListener>(SocketListener::Private{}, fd,
                                          ntohs(bound.sin_port),
                                          /*unix_path=*/"");
}

std::unique_ptr<SocketListener> SocketListener::ListenUnix(
    const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<SocketListener>(SocketListener::Private{}, fd,
                                          /*port=*/0, path);
}

std::unique_ptr<ByteStream> SocketListener::Accept() {
  const int client = AcceptRaw();
  return client < 0 ? nullptr : std::make_unique<SocketStream>(client);
}

int SocketListener::AcceptRaw() {
  // relaxed: see SocketStream::Read — the fd carries no published memory,
  // and a Close racing with accept() surfaces as an error return.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return -1;
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      // Request/response framing over loopback: Nagle buys nothing and
      // can stall small pipelined responses behind delayed ACKs. A
      // failure (e.g. Unix-domain listener) is harmless.
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return client;
    }
    if (errno == EINTR) continue;
    return -1;  // listener closed or unrecoverable error
  }
}

void SocketListener::Close() {
  // Close races with Accept and with itself (connection threads, Stop,
  // and the destructor all call it); the exchange picks a single winner,
  // which also makes the unlink below happen exactly once.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  // shutdown() unblocks a concurrent Accept before the fd goes away.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

std::unique_ptr<ByteStream> ConnectTcp(const std::string& host,
                                       uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketStream>(fd);
}

std::unique_ptr<ByteStream> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return nullptr;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<SocketStream>(fd);
}

}  // namespace sketch::server
