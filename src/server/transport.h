#ifndef SKETCH_SERVER_TRANSPORT_H_
#define SKETCH_SERVER_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

/// \file
/// Byte-stream transports for the sketch daemon.
///
/// The server and client speak to an abstract ByteStream, so the same
/// connection loop runs over a kernel socket (TCP or Unix-domain), an
/// in-process loopback pipe (tests need no ports, no /tmp paths, and no
/// syscall flakiness), or a fault-injecting wrapper that deliberately
/// fragments, stalls, and severs the stream to exercise every partial-read
/// and disconnect path in the framing layer.

namespace sketch::server {

/// Minimal blocking byte stream. Implementations are used by exactly one
/// reader thread and one writer thread at a time.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Reads up to `size` bytes into `data`. Blocks until at least one byte
  /// is available. Returns the byte count, 0 on clean end-of-stream, or
  /// -1 on error / torn connection.
  virtual std::ptrdiff_t Read(uint8_t* data, std::size_t size) = 0;

  /// Writes up to `size` bytes from `data`. Returns the count written
  /// (possibly short) or -1 on error / torn connection.
  virtual std::ptrdiff_t Write(const uint8_t* data, std::size_t size) = 0;

  /// Closes both directions; unblocks any blocked Read on the peer.
  virtual void Close() = 0;
};

/// Writes the entire buffer, looping over short writes. Returns false if
/// the stream errors out first.
bool WriteAll(ByteStream* stream, const uint8_t* data, std::size_t size);
bool WriteAll(ByteStream* stream, const std::vector<uint8_t>& bytes);

// --- In-process loopback --------------------------------------------------

/// One direction of a loopback connection: an unbounded byte queue with a
/// closed flag, guarded by a mutex.
class LoopbackPipe {
 public:
  std::ptrdiff_t Read(uint8_t* data, std::size_t size)
      SKETCH_EXCLUDES(mutex_);
  std::ptrdiff_t Write(const uint8_t* data, std::size_t size)
      SKETCH_EXCLUDES(mutex_);
  void Close() SKETCH_EXCLUDES(mutex_);

 private:
  sketch::Mutex mutex_;
  sketch::CondVar readable_;
  std::deque<uint8_t> bytes_ SKETCH_GUARDED_BY(mutex_);
  bool closed_ SKETCH_GUARDED_BY(mutex_) = false;
};

/// One endpoint of a loopback pair: reads from one pipe, writes to the
/// other.
class LoopbackStream : public ByteStream {
 public:
  LoopbackStream(std::shared_ptr<LoopbackPipe> read_pipe,
                 std::shared_ptr<LoopbackPipe> write_pipe)
      : read_pipe_(std::move(read_pipe)), write_pipe_(std::move(write_pipe)) {}
  ~LoopbackStream() override { Close(); }

  std::ptrdiff_t Read(uint8_t* data, std::size_t size) override {
    return read_pipe_->Read(data, size);
  }
  std::ptrdiff_t Write(const uint8_t* data, std::size_t size) override {
    return write_pipe_->Write(data, size);
  }
  void Close() override {
    read_pipe_->Close();
    write_pipe_->Close();
  }

 private:
  std::shared_ptr<LoopbackPipe> read_pipe_;
  std::shared_ptr<LoopbackPipe> write_pipe_;
};

/// Creates a connected pair of in-process streams: bytes written to
/// `first` are read from `second` and vice versa.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
MakeLoopbackPair();

// --- Fault injection ------------------------------------------------------

/// Deterministic stream-level faults, applied by FaultyStream. The
/// defaults inject nothing.
struct FaultPlan {
  /// Caps each Read's return to this many bytes (short reads force the
  /// frame decoder through every resumption path). 0 = no cap.
  std::size_t max_read_chunk = 0;

  /// Caps each Write similarly, so WriteAll must loop. 0 = no cap.
  std::size_t max_write_chunk = 0;

  /// After this many bytes have been written in total, every further
  /// Write fails with -1 — a mid-frame disconnect as seen by the sender.
  /// 0 = never.
  std::size_t fail_write_after_bytes = 0;

  /// After this many bytes have been read in total, every further Read
  /// reports -1 — the peer vanished mid-frame. 0 = never.
  std::size_t fail_read_after_bytes = 0;

  /// Sleep this long before every Read/Write — a slow client pacing the
  /// stream one fragment at a time. 0 = no delay.
  std::size_t delay_micros = 0;
};

/// Wraps another stream and applies a FaultPlan to every call.
class FaultyStream : public ByteStream {
 public:
  FaultyStream(std::unique_ptr<ByteStream> inner, const FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan) {}

  std::ptrdiff_t Read(uint8_t* data, std::size_t size) override;
  std::ptrdiff_t Write(const uint8_t* data, std::size_t size) override;
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<ByteStream> inner_;
  FaultPlan plan_;
  std::size_t total_read_ = 0;
  std::size_t total_written_ = 0;
};

// --- Kernel sockets -------------------------------------------------------

/// A connected TCP or Unix-domain socket. `Close()` may race with a
/// blocked `Read`/`Write` on another thread (the server's shutdown path
/// closes connection streams out from under their reader threads), so the
/// descriptor is atomic and Close claims it with an exchange: exactly one
/// closer wins, and a loser (or a racing Read) sees -1 instead of
/// double-closing a possibly-reused descriptor.
class SocketStream : public ByteStream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() override { Close(); }

  std::ptrdiff_t Read(uint8_t* data, std::size_t size) override;
  std::ptrdiff_t Write(const uint8_t* data, std::size_t size) override;
  void Close() override;

 private:
  std::atomic<int> fd_{-1};
};

/// Listening socket: TCP on 127.0.0.1 or a Unix-domain path.
class SocketListener {
  /// Passkey: construction goes through the Listen* factories, but
  /// make_unique still needs a public constructor.
  struct Private {};

 public:
  SocketListener(Private, int fd, uint16_t port, std::string unix_path)
      : fd_(fd), port_(port), unix_path_(std::move(unix_path)) {}
  ~SocketListener();

  /// Listens on 127.0.0.1:port (port 0 picks a free port; see port()).
  /// Returns nullptr on failure.
  static std::unique_ptr<SocketListener> ListenTcp(uint16_t port);

  /// Listens on a Unix-domain socket path (unlinks a stale one first).
  /// Returns nullptr on failure.
  static std::unique_ptr<SocketListener> ListenUnix(const std::string& path);

  /// Blocks for the next connection; nullptr once the listener is closed.
  std::unique_ptr<ByteStream> Accept();

  /// Accept() without the ByteStream wrapper: blocks for the next
  /// connection and returns its raw descriptor (the caller owns it), or
  /// -1 once the listener is closed. Used by the epoll event loop, which
  /// manages descriptors directly.
  int AcceptRaw();

  /// Unblocks Accept and closes the listening socket. Safe to call from
  /// any thread, concurrently with Accept and with itself (the daemon's
  /// kShutdown path closes the listener from a connection thread while
  /// the accept thread blocks in Accept).
  void Close();

  /// Bound TCP port (after ListenTcp with port 0), or 0 for Unix sockets.
  uint16_t port() const { return port_; }

 private:
  // Same atomic-exchange close protocol as SocketStream; port_ and
  // unix_path_ are immutable after construction so Accept/Close need no
  // lock around them.
  std::atomic<int> fd_{-1};
  const uint16_t port_ = 0;
  const std::string unix_path_;
};

/// Connects to a daemon over TCP (host is an IPv4 literal such as
/// "127.0.0.1") or a Unix-domain path. Returns nullptr on failure.
std::unique_ptr<ByteStream> ConnectTcp(const std::string& host, uint16_t port);
std::unique_ptr<ByteStream> ConnectUnix(const std::string& path);

}  // namespace sketch::server

#endif  // SKETCH_SERVER_TRANSPORT_H_
