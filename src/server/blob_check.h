#ifndef SKETCH_SERVER_BLOB_CHECK_H_
#define SKETCH_SERVER_BLOB_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace sketch::server {

/// Result of validating an untrusted serialized-sketch blob.
struct BlobCheckResult {
  bool ok = false;
  std::string error;

  /// Total counters (or bit-words for Bloom) the blob would allocate.
  uint64_t counters = 0;

  static BlobCheckResult Ok(uint64_t counters) {
    return {true, "", counters};
  }
  static BlobCheckResult Fail(std::string message) {
    return {false, std::move(message), 0};
  }
};

/// Validates that `bytes` is a well-formed Serialize() buffer for `type`
/// WITHOUT constructing anything, so a Restore request can be rejected
/// with an error response instead of tripping a SKETCH_CHECK abort inside
/// Deserialize. The daemon must call this on every untrusted blob before
/// handing it to the sketch library.
///
/// The checks replicate every Deserialize/constructor/Merge precondition,
/// including the seed-derivation consistency of composite blobs (a
/// StreamSummary blob whose dyadic levels carry seeds that disagree with
/// its Options would otherwise abort inside Merge). `max_counters` bounds
/// the total allocation the blob may imply (the service passes
/// kMaxSketchCounters).
BlobCheckResult CheckSketchBlob(SketchType type,
                                const std::vector<uint8_t>& bytes,
                                uint64_t max_counters);

}  // namespace sketch::server

#endif  // SKETCH_SERVER_BLOB_CHECK_H_
