#include "server/http_exposition.h"

#include <cstdio>
#include <utility>

#include "telemetry/telemetry.h"

namespace sketch::server {

namespace {

/// Largest request head we will buffer. Real scrapers send well under
/// 1 KiB; anything bigger is a confused or hostile client.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string MakeResponse(int status, const char* reason,
                         const char* content_type, const std::string& body) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, reason, content_type, body.size());
  return std::string(head) + body;
}

std::string NotFound() {
  return MakeResponse(404, "Not Found", "text/plain",
                      "not found; try /metrics /statsz /tracez /healthz\n");
}

}  // namespace

std::string HttpExposition::HandleRequest(const std::string& method,
                                          const std::string& path) const {
  if (method != "GET") {
    return MakeResponse(405, "Method Not Allowed", "text/plain",
                        "GET only\n");
  }
  // Ignore any query string: /metrics?foo=bar scrapes like /metrics.
  const std::string bare = path.substr(0, path.find('?'));
  if (bare == "/metrics" && handlers_.metrics) {
    return MakeResponse(200, "OK", "text/plain; version=0.0.4",
                        handlers_.metrics());
  }
  if (bare == "/statsz" && handlers_.statsz) {
    return MakeResponse(200, "OK", "application/json", handlers_.statsz());
  }
  if (bare == "/tracez" && handlers_.tracez) {
    return MakeResponse(200, "OK", "application/json", handlers_.tracez());
  }
  if (bare == "/healthz" && handlers_.healthz) {
    const bool healthy = handlers_.healthy ? handlers_.healthy() : true;
    return healthy ? MakeResponse(200, "OK", "application/json",
                                  handlers_.healthz())
                   : MakeResponse(503, "Service Unavailable",
                                  "application/json", handlers_.healthz());
  }
  return NotFound();
}

void HttpExposition::ServeConnection(ByteStream* stream) const {
  // Read until the end of the request head. HTTP/1.0 GETs have no body,
  // so "\r\n\r\n" is the whole request.
  std::string request;
  uint8_t chunk[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > kMaxRequestBytes) return;
    const std::ptrdiff_t n = stream->Read(chunk, sizeof(chunk));
    if (n <= 0) return;
    request.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    const std::string bad =
        MakeResponse(400, "Bad Request", "text/plain", "bad request line\n");
    WriteAll(stream, reinterpret_cast<const uint8_t*>(bad.data()), bad.size());
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const std::string response = HandleRequest(method, path);
  WriteAll(stream, reinterpret_cast<const uint8_t*>(response.data()),
           response.size());
  SKETCH_COUNTER_INC("server.http.requests");
}

bool HttpExposition::Start(uint16_t port) {
  if (listener_) return true;
  listener_ = SocketListener::ListenTcp(port);
  if (!listener_) return false;
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpExposition::Stop() {
  if (!listener_) return;
  listener_->Close();
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

void HttpExposition::AcceptLoop() {
  for (;;) {
    std::unique_ptr<ByteStream> stream = listener_->Accept();
    if (!stream) return;  // listener closed — shutdown
    ServeConnection(stream.get());
    stream->Close();
  }
}

}  // namespace sketch::server
