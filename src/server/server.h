#ifndef SKETCH_SERVER_SERVER_H_
#define SKETCH_SERVER_SERVER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "server/health_monitor.h"
#include "server/http_exposition.h"
#include "server/sketch_service.h"
#include "server/transport.h"

namespace sketch::server {

/// The long-lived daemon: a listener (TCP or Unix-domain), an epoll
/// event-loop pool (or one blocking thread per connection when
/// `use_event_loop` is off / `SKETCH_FORCE_BLOCKING=1` is set), and a
/// shared SketchService. A kShutdown request from any client stops the
/// accept loop and drains the connections.
class SketchServer {
 public:
  struct Options {
    /// TCP listen port on 127.0.0.1; 0 picks a free port (see port()).
    /// Ignored when unix_path is set.
    uint16_t tcp_port = 0;
    /// When non-empty, listen on this Unix-domain socket path instead.
    std::string unix_path;
    /// Worker threads for the sharded-ingest fan-out pool.
    std::size_t pool_threads = 4;
    /// Shard replicas per kShardedCountMin sketch.
    std::size_t default_shards = 4;
    /// Serve connections on the epoll event loop (the E26 front door).
    /// False restores PR5's thread-per-connection model; the environment
    /// variable SKETCH_FORCE_BLOCKING=1 forces false regardless (the
    /// transport fallback oracle, mirroring SKETCH_FORCE_SCALAR for
    /// kernels).
    bool use_event_loop = true;
    /// Event-loop I/O threads (each multiplexes many connections).
    std::size_t io_threads = 2;
    /// Per-connection outbound backlog cap before a slow client is
    /// evicted (see EventLoopPool::Options::max_outbound_bytes).
    std::size_t max_outbound_bytes = 4 * 1024 * 1024;
    /// Benchmark/test oracle: emulate the PR5 front door end to end —
    /// thread-per-connection transport, per-frame dispatch (no ingest-run
    /// coalescing), and exclusive-only entry locks in the service.
    /// Overrides use_event_loop. The E26 speedup claim is measured
    /// against a server in this mode.
    bool pr5_oracle = false;
    /// Serve the HTTP observability endpoints (/metrics /statsz /tracez
    /// /healthz) on a second, local-only port. Off by default: the
    /// sketchwire port stays the only listener unless asked.
    bool enable_http = false;
    /// HTTP listen port on 127.0.0.1 when enable_http is set; 0 picks a
    /// free port (see http_port()).
    uint16_t http_port = 0;
    /// Sketch health sampling period; 0 disables the background sampler
    /// (the monitor still answers /healthz from its last — empty — pass).
    /// Only meaningful with enable_http.
    uint64_t health_period_ms = 1000;
    /// Slowest requests retained per opcode in the service's slow-query
    /// log; 0 disables it.
    std::size_t slow_query_log_size = 8;
  };

  explicit SketchServer(const Options& options);
  ~SketchServer();

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;

  /// Binds the listener and starts the accept loop. False if the address
  /// cannot be bound.
  bool Start();

  /// Blocks until a shutdown request has been served and every
  /// connection thread has drained.
  void Wait() SKETCH_EXCLUDES(connections_mutex_);

  /// Stops accepting, closes the listener, and joins all threads. Safe to
  /// call more than once; also called by the destructor.
  void Stop() SKETCH_EXCLUDES(connections_mutex_);

  /// Bound TCP port (valid after Start when listening on TCP).
  uint16_t port() const;

  /// Bound HTTP exposition port (valid after Start with enable_http).
  uint16_t http_port() const;

  SketchService* service() { return &service_; }

  /// Non-null after Start when enable_http is set.
  HealthMonitor* health_monitor() { return health_monitor_.get(); }

  /// True if this server is serving through the epoll event loop (false
  /// when configured off or overridden by SKETCH_FORCE_BLOCKING=1).
  bool using_event_loop() const { return event_pool_ != nullptr; }

 private:
  void AcceptLoop() SKETCH_EXCLUDES(connections_mutex_);

  Options options_;
  ThreadPool pool_;
  SketchService service_;
  // Set in Start() before the accept thread is spawned and never
  // reassigned, so connection threads may call listener_->Close() without
  // a lock (SocketListener::Close is itself race-safe).
  std::unique_ptr<SocketListener> listener_;
  // Non-null iff serving through the event loop; created in Start()
  // before the accept thread exists and torn down in Wait() after it has
  // joined, so the accept loop reads it without a lock.
  std::unique_ptr<EventLoopPool> event_pool_;
  // Observability plane (non-null iff enable_http): both created in
  // Start() before any request is served and stopped in Stop(). The
  // monitor must stop before the service's registry is torn down.
  std::unique_ptr<HealthMonitor> health_monitor_;
  std::unique_ptr<HttpExposition> http_;
  std::thread accept_thread_;
  sketch::Mutex connections_mutex_;
  std::vector<std::thread> connections_
      SKETCH_GUARDED_BY(connections_mutex_);
  // Blocking-transport connections still being served: Stop() closes them
  // (SocketStream::Close unblocks a blocked Read) so it can force-stop
  // connections mid-conversation, matching the event-loop path. A
  // use_count of 1 means the serving thread has dropped its reference —
  // the connection is over — and the accept loop prunes such entries.
  std::vector<std::shared_ptr<ByteStream>> live_streams_
      SKETCH_GUARDED_BY(connections_mutex_);
  // Owner-thread only (Start/Stop/destructor share the owning thread by
  // the class contract), so unguarded.
  bool started_ = false;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_SERVER_H_
