#ifndef SKETCH_SERVER_SERVER_H_
#define SKETCH_SERVER_SERVER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "server/connection.h"
#include "server/sketch_service.h"
#include "server/transport.h"

namespace sketch::server {

/// The long-lived daemon: a listener (TCP or Unix-domain), one thread per
/// connection, and a shared SketchService. A kShutdown request from any
/// client stops the accept loop and drains the connections.
class SketchServer {
 public:
  struct Options {
    /// TCP listen port on 127.0.0.1; 0 picks a free port (see port()).
    /// Ignored when unix_path is set.
    uint16_t tcp_port = 0;
    /// When non-empty, listen on this Unix-domain socket path instead.
    std::string unix_path;
    /// Worker threads for the sharded-ingest fan-out pool.
    std::size_t pool_threads = 4;
    /// Shard replicas per kShardedCountMin sketch.
    std::size_t default_shards = 4;
  };

  explicit SketchServer(const Options& options);
  ~SketchServer();

  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;

  /// Binds the listener and starts the accept loop. False if the address
  /// cannot be bound.
  bool Start();

  /// Blocks until a shutdown request has been served and every
  /// connection thread has drained.
  void Wait() SKETCH_EXCLUDES(connections_mutex_);

  /// Stops accepting, closes the listener, and joins all threads. Safe to
  /// call more than once; also called by the destructor.
  void Stop() SKETCH_EXCLUDES(connections_mutex_);

  /// Bound TCP port (valid after Start when listening on TCP).
  uint16_t port() const;

  SketchService* service() { return &service_; }

 private:
  void AcceptLoop() SKETCH_EXCLUDES(connections_mutex_);

  Options options_;
  ThreadPool pool_;
  SketchService service_;
  // Set in Start() before the accept thread is spawned and never
  // reassigned, so connection threads may call listener_->Close() without
  // a lock (SocketListener::Close is itself race-safe).
  std::unique_ptr<SocketListener> listener_;
  std::thread accept_thread_;
  sketch::Mutex connections_mutex_;
  std::vector<std::thread> connections_
      SKETCH_GUARDED_BY(connections_mutex_);
  // Owner-thread only (Start/Stop/destructor share the owning thread by
  // the class contract), so unguarded.
  bool started_ = false;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_SERVER_H_
