// Entry point for the sketch daemon: binds a TCP or Unix-domain listener
// and serves the sketchwire/1 protocol until a client sends Shutdown.
//
// Usage:
//   sketch_serverd [--port=N] [--unix=PATH] [--pool-threads=N] [--shards=N]
//                  [--http-port=N] [--health-period-ms=N] [--slow-log=N]
//
// With --port=0 (the default) a free port is picked and printed, so
// scripts can parse "listening on 127.0.0.1:PORT". --http-port enables
// the observability endpoints (/metrics /statsz /tracez /healthz) on a
// second 127.0.0.1 listener and prints "metrics on 127.0.0.1:PORT" the
// same way (0 picks a free port too).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/server.h"

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sketch::server::SketchServer::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "port", &value)) {
      options.tcp_port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "unix", &value)) {
      options.unix_path = value;
    } else if (ParseFlag(arg, "pool-threads", &value)) {
      options.pool_threads =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "shards", &value)) {
      options.default_shards =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "http-port", &value)) {
      options.enable_http = true;
      options.http_port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "health-period-ms", &value)) {
      options.health_period_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "slow-log", &value)) {
      options.slow_query_log_size =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--unix=PATH] [--pool-threads=N] "
                   "[--shards=N] [--http-port=N] [--health-period-ms=N] "
                   "[--slow-log=N]\n",
                   argv[0]);
      return 2;
    }
  }
  sketch::server::SketchServer server(options);
  if (!server.Start()) {
    std::fprintf(stderr, "sketch_serverd: failed to bind listener\n");
    return 1;
  }
  if (options.unix_path.empty()) {
    std::printf("sketch_serverd: listening on 127.0.0.1:%u\n", server.port());
  } else {
    std::printf("sketch_serverd: listening on %s\n",
                options.unix_path.c_str());
  }
  if (options.enable_http) {
    std::printf("sketch_serverd: metrics on 127.0.0.1:%u\n",
                server.http_port());
  }
  std::fflush(stdout);
  server.Wait();
  std::printf("sketch_serverd: shutdown complete\n");
  return 0;
}
