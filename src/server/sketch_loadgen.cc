// Load-generator client for the sketch daemon: N writer threads stream
// Zipf batches into one sharded sketch while M reader threads fire point
// queries, then prints sustained updates/sec and query-latency
// percentiles. The E24/E26 experiment harnesses (bench/bench_server_*.cc)
// measure the same pipeline in-process over the loopback transport; this
// binary drives a real daemon over TCP or a Unix socket.
//
// Two workload shapes:
//  - Legacy split mode (default): --writers ingest-only connections plus
//    --readers query-only connections.
//  - Mixed mode (--connections=N): N identical connections, each choosing
//    per operation between a point query (probability --read-fraction)
//    and an ingest batch. --rate=OPS_PER_SEC switches the mixed mode from
//    closed-loop (issue as fast as responses return) to open-loop:
//    operations are issued on a fixed arrival schedule and latency is
//    measured from the *scheduled* start, so queueing delay shows up in
//    the percentiles instead of being hidden by coordinated omission.
//
// Usage:
//   sketch_loadgen --port=N [--host=127.0.0.1] [--unix=PATH]
//                  [--writers=2] [--readers=2] [--batches=200]
//                  [--batch-size=8192] [--queries=2000]
//                  [--connections=0] [--read-fraction=0.5] [--ops=1000]
//                  [--rate=0] [--query-batch=1] [--shutdown]
//                  [--trace-every=1024] [--out=PATH]
//
// --trace-every=N stamps every Nth request per connection with a wire
// trace id (0 disables), so a daemon run with telemetry compiled in can
// export sampled request timelines from /tracez. --out writes a
// sketch-bench-snapshot-v1 JSON of the run's throughput and latency
// percentiles, comparable with committed baselines via
// tools/bench_compare.py.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_reporter.h"
#include "common/prng.h"
#include "common/timer.h"
#include "server/client.h"
#include "stream/generators.h"

namespace {

using sketch::MakeZipfStream;
using sketch::StreamUpdate;
using sketch::Xoshiro256StarStar;
using sketch::UpdateSpan;
using sketch::server::ConnectTcp;
using sketch::server::ConnectUnix;
using sketch::server::PointValueResponse;
using sketch::server::SketchClient;
using sketch::server::SketchType;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t batches = 200;       // per writer
  std::size_t batch_size = 8192;
  std::size_t queries = 2000;      // per reader
  // Mixed mode (active when connections > 0).
  std::size_t connections = 0;     // mixed-workload connections
  double read_fraction = 0.5;      // probability an op is a query
  std::size_t ops = 1000;          // operations per connection
  double rate = 0.0;               // open-loop total ops/sec; 0 = closed
  std::size_t query_batch = 1;     // keys per point query (batched >1)
  uint64_t trace_every = 1024;     // wire-trace sampling; 0 = off
  std::string out_path;            // snapshot JSON; empty = none
  bool shutdown = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::unique_ptr<SketchClient> Connect(const Config& config,
                                      uint64_t trace_seed = 0) {
  auto stream = config.unix_path.empty()
                    ? ConnectTcp(config.host, config.port)
                    : ConnectUnix(config.unix_path);
  if (stream == nullptr) return nullptr;
  auto client = std::make_unique<SketchClient>(std::move(stream));
  if (config.trace_every != 0 && trace_seed != 0) {
    client->SetTraceSampling(config.trace_every, trace_seed);
  }
  return client;
}

double Percentile(std::vector<double>* sorted_ns, double q) {
  if (sorted_ns->empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns->size() - 1));
  return (*sorted_ns)[index];
}

void PrintLatencies(std::vector<double>* all_ns) {
  std::sort(all_ns->begin(), all_ns->end());
  std::printf("  query p50         %.1f us\n",
              Percentile(all_ns, 0.50) / 1e3);
  std::printf("  query p99         %.1f us\n",
              Percentile(all_ns, 0.99) / 1e3);
}

/// Records throughput + latency percentiles in the snapshot schema.
/// `sorted_ns` must already be sorted (PrintLatencies does that).
void ReportRun(const Config& config, double updates_per_sec,
               double queries_per_sec, std::vector<double>* sorted_ns) {
  if (config.out_path.empty()) return;
  sketch::bench::BenchReporter reporter;
  reporter.Add("loadgen.ingest", updates_per_sec, 0.0, "updates/s");
  reporter.Add("loadgen.query_p50", queries_per_sec,
               Percentile(sorted_ns, 0.50), "point-query p50");
  reporter.Add("loadgen.query_p99", queries_per_sec,
               Percentile(sorted_ns, 0.99), "point-query p99");
  reporter.WriteSnapshot(config.out_path);
}

/// Mixed open/closed-loop mode: every connection interleaves queries and
/// ingest batches per --read-fraction.
int RunMixed(const Config& config, const std::string& name,
             SketchClient* admin) {
  std::atomic<uint64_t> total_updates{0};
  std::atomic<uint64_t> total_queries{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::vector<double>> latencies(config.connections);

  // Per-connection open-loop interval: the requested aggregate rate is
  // split evenly across connections.
  const double per_conn_interval_ns =
      config.rate > 0.0
          ? 1e9 * static_cast<double>(config.connections) / config.rate
          : 0.0;

  sketch::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<SketchClient> client = Connect(config, 0xace1 + c);
      if (client == nullptr) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Xoshiro256StarStar rng(0x5eed + c);
      const double read_fraction_c = config.read_fraction;
      // A modest pool of pre-generated batches, cycled by write_index:
      // bounds memory at 64 batches per connection regardless of --ops.
      constexpr std::size_t kBatchPool = 64;
      const std::vector<StreamUpdate> stream = MakeZipfStream(
          /*universe=*/1 << 20, /*alpha=*/1.1,
          /*length=*/config.batch_size * kBatchPool, /*seed=*/500 + c);
      std::vector<uint64_t> batch_keys(config.query_batch);
      latencies[c].reserve(config.ops);
      const uint64_t start_ns = sketch::MonotonicNowNs();
      std::size_t write_index = 0;
      for (std::size_t op = 0; op < config.ops; ++op) {
        uint64_t issue_ns = sketch::MonotonicNowNs();
        if (per_conn_interval_ns > 0.0) {
          // Open loop: wait for this op's scheduled arrival; latency is
          // measured from the schedule, not from the (possibly late)
          // issue instant.
          const uint64_t scheduled =
              start_ns + static_cast<uint64_t>(
                             per_conn_interval_ns * static_cast<double>(op));
          while (sketch::MonotonicNowNs() < scheduled) {
            std::this_thread::sleep_for(std::chrono::microseconds(20));
          }
          issue_ns = scheduled;
        }
        if (rng.NextDouble() < read_fraction_c) {
          bool ok;
          if (config.query_batch > 1) {
            for (uint64_t& k : batch_keys) k = rng.NextBounded(uint64_t{1} << 20);
            std::vector<PointValueResponse> values;
            ok = client->PointQueryBatch(name, batch_keys, &values);
          } else {
            PointValueResponse value;
            ok = client->PointQuery(name, rng.NextBounded(uint64_t{1} << 20), &value);
          }
          if (!ok) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          latencies[c].push_back(
              static_cast<double>(sketch::MonotonicNowNs() - issue_ns));
          total_queries.fetch_add(1, std::memory_order_relaxed);
        } else {
          const UpdateSpan batch(
              stream.data() + (write_index % kBatchPool) * config.batch_size,
              config.batch_size);
          ++write_index;
          uint64_t accepted = 0;
          if (!client->Ingest(name, batch, &accepted)) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          total_updates.fetch_add(accepted, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const double updates = static_cast<double>(
      total_updates.load(std::memory_order_relaxed));
  const double queries = static_cast<double>(
      total_queries.load(std::memory_order_relaxed));
  std::printf("sketch_loadgen: %zu mixed connections x %zu ops, "
              "read fraction %.2f, %s\n",
              config.connections, config.ops, config.read_fraction,
              config.rate > 0.0 ? "open loop" : "closed loop");
  if (config.rate > 0.0) {
    std::printf("  target rate       %.0f ops/s\n", config.rate);
  }
  std::printf("  wall time         %.3f s\n", seconds);
  std::printf("  sustained ingest  %.2f Mupdates/s\n",
              updates / seconds / 1e6);
  std::printf("  sustained queries %.2f Kqueries/s\n",
              queries / seconds / 1e3);
  PrintLatencies(&all);
  ReportRun(config, updates / seconds, queries / seconds, &all);
  const uint64_t failed = failures.load(std::memory_order_relaxed);
  if (failed > 0) {
    std::fprintf(stderr, "sketch_loadgen: %llu connection(s) failed\n",
                 static_cast<unsigned long long>(failed));
    return 1;
  }
  if (config.shutdown) admin->Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "host", &value)) {
      config.host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      config.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "unix", &value)) {
      config.unix_path = value;
    } else if (ParseFlag(arg, "writers", &value)) {
      config.writers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "readers", &value)) {
      config.readers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "batches", &value)) {
      config.batches = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "batch-size", &value)) {
      config.batch_size = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "queries", &value)) {
      config.queries = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "connections", &value)) {
      config.connections = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "read-fraction", &value)) {
      config.read_fraction = std::atof(value.c_str());
    } else if (ParseFlag(arg, "ops", &value)) {
      config.ops = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "rate", &value)) {
      config.rate = std::atof(value.c_str());
    } else if (ParseFlag(arg, "query-batch", &value)) {
      config.query_batch = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "trace-every", &value)) {
      config.trace_every = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "out", &value)) {
      config.out_path = value;
    } else if (arg == "--shutdown") {
      config.shutdown = true;
    } else {
      std::fprintf(stderr, "sketch_loadgen: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.port == 0 && config.unix_path.empty()) {
    std::fprintf(stderr, "sketch_loadgen: need --port or --unix\n");
    return 2;
  }
  if (config.read_fraction < 0.0 || config.read_fraction > 1.0) {
    std::fprintf(stderr,
                 "sketch_loadgen: --read-fraction must be in [0, 1]\n");
    return 2;
  }
  if (config.query_batch < 1) config.query_batch = 1;

  std::unique_ptr<SketchClient> admin = Connect(config);
  if (admin == nullptr || !admin->Ping()) {
    std::fprintf(stderr, "sketch_loadgen: cannot reach daemon\n");
    return 1;
  }
  const std::string name = "loadgen";
  admin->DropSketch(name);  // ignore "no such sketch" from a prior run
  if (!admin->CreateSketch(name, SketchType::kShardedCountMin,
                           {16384, 4, 42, 4, 0})) {
    std::fprintf(stderr, "sketch_loadgen: create failed: %s\n",
                 admin->last_error().message.c_str());
    return 1;
  }

  if (config.connections > 0) {
    return RunMixed(config, name, admin.get());
  }

  std::atomic<uint64_t> total_updates{0};
  std::vector<std::vector<double>> latencies(config.readers);

  sketch::Timer wall;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      std::unique_ptr<SketchClient> client = Connect(config, 0xbee1 + w);
      if (client == nullptr) return;
      const std::vector<StreamUpdate> stream = MakeZipfStream(
          /*universe=*/1 << 20, /*alpha=*/1.1,
          /*length=*/config.batch_size * config.batches, /*seed=*/100 + w);
      for (std::size_t b = 0; b < config.batches; ++b) {
        const UpdateSpan batch(stream.data() + b * config.batch_size,
                               config.batch_size);
        uint64_t accepted = 0;
        if (!client->Ingest(name, batch, &accepted)) return;
        // relaxed: monotone sum, read only after the joins below.
        total_updates.fetch_add(accepted, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      std::unique_ptr<SketchClient> client = Connect(config, 0xcee1 + r);
      if (client == nullptr) return;
      latencies[r].reserve(config.queries);
      for (std::size_t q = 0; q < config.queries; ++q) {
        PointValueResponse value;
        const uint64_t t0 = sketch::MonotonicNowNs();
        if (!client->PointQuery(name, q * 2654435761u % (1 << 20), &value)) {
          return;
        }
        latencies[r].push_back(
            static_cast<double>(sketch::MonotonicNowNs() - t0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  // relaxed: the joins above already order every writer's adds before
  // this read; the load needs atomicity only.
  const double updates = static_cast<double>(
      total_updates.load(std::memory_order_relaxed));
  std::printf("sketch_loadgen: %zu writers x %zu batches x %zu updates, "
              "%zu readers x %zu queries\n",
              config.writers, config.batches, config.batch_size,
              config.readers, config.queries);
  std::printf("  wall time         %.3f s\n", seconds);
  std::printf("  sustained ingest  %.2f Mupdates/s\n",
              updates / seconds / 1e6);
  PrintLatencies(&all);
  ReportRun(config, updates / seconds,
            static_cast<double>(all.size()) / seconds, &all);

  if (config.shutdown) admin->Shutdown();
  return 0;
}
