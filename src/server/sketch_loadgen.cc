// Load-generator client for the sketch daemon: N writer threads stream
// Zipf batches into one sharded sketch while M reader threads fire point
// queries, then prints sustained updates/sec and query-latency
// percentiles. The E24 experiment harness (bench/bench_server_e24.cc)
// measures the same pipeline in-process over the loopback transport; this
// binary drives a real daemon over TCP or a Unix socket.
//
// Usage:
//   sketch_loadgen --port=N [--host=127.0.0.1] [--unix=PATH]
//                  [--writers=2] [--readers=2] [--batches=200]
//                  [--batch-size=8192] [--queries=2000] [--shutdown]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "server/client.h"
#include "stream/generators.h"

namespace {

using sketch::MakeZipfStream;
using sketch::StreamUpdate;
using sketch::UpdateSpan;
using sketch::server::ConnectTcp;
using sketch::server::ConnectUnix;
using sketch::server::PointValueResponse;
using sketch::server::SketchClient;
using sketch::server::SketchType;

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;
  std::size_t writers = 2;
  std::size_t readers = 2;
  std::size_t batches = 200;       // per writer
  std::size_t batch_size = 8192;
  std::size_t queries = 2000;      // per reader
  bool shutdown = false;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

std::unique_ptr<SketchClient> Connect(const Config& config) {
  auto stream = config.unix_path.empty()
                    ? ConnectTcp(config.host, config.port)
                    : ConnectUnix(config.unix_path);
  if (stream == nullptr) return nullptr;
  return std::make_unique<SketchClient>(std::move(stream));
}

double Percentile(std::vector<double>* sorted_ns, double q) {
  if (sorted_ns->empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns->size() - 1));
  return (*sorted_ns)[index];
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "host", &value)) {
      config.host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      config.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "unix", &value)) {
      config.unix_path = value;
    } else if (ParseFlag(arg, "writers", &value)) {
      config.writers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "readers", &value)) {
      config.readers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "batches", &value)) {
      config.batches = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "batch-size", &value)) {
      config.batch_size = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "queries", &value)) {
      config.queries = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (arg == "--shutdown") {
      config.shutdown = true;
    } else {
      std::fprintf(stderr, "sketch_loadgen: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.port == 0 && config.unix_path.empty()) {
    std::fprintf(stderr, "sketch_loadgen: need --port or --unix\n");
    return 2;
  }

  std::unique_ptr<SketchClient> admin = Connect(config);
  if (admin == nullptr || !admin->Ping()) {
    std::fprintf(stderr, "sketch_loadgen: cannot reach daemon\n");
    return 1;
  }
  const std::string name = "loadgen";
  admin->DropSketch(name);  // ignore "no such sketch" from a prior run
  if (!admin->CreateSketch(name, SketchType::kShardedCountMin,
                           {16384, 4, 42, 4, 0})) {
    std::fprintf(stderr, "sketch_loadgen: create failed: %s\n",
                 admin->last_error().message.c_str());
    return 1;
  }

  std::atomic<uint64_t> total_updates{0};
  std::vector<std::vector<double>> latencies(config.readers);

  sketch::Timer wall;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < config.writers; ++w) {
    threads.emplace_back([&, w] {
      std::unique_ptr<SketchClient> client = Connect(config);
      if (client == nullptr) return;
      const std::vector<StreamUpdate> stream = MakeZipfStream(
          /*universe=*/1 << 20, /*alpha=*/1.1,
          /*length=*/config.batch_size * config.batches, /*seed=*/100 + w);
      for (std::size_t b = 0; b < config.batches; ++b) {
        const UpdateSpan batch(stream.data() + b * config.batch_size,
                               config.batch_size);
        uint64_t accepted = 0;
        if (!client->Ingest(name, batch, &accepted)) return;
        // relaxed: monotone sum, read only after the joins below.
        total_updates.fetch_add(accepted, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t r = 0; r < config.readers; ++r) {
    threads.emplace_back([&, r] {
      std::unique_ptr<SketchClient> client = Connect(config);
      if (client == nullptr) return;
      latencies[r].reserve(config.queries);
      for (std::size_t q = 0; q < config.queries; ++q) {
        PointValueResponse value;
        const uint64_t t0 = sketch::MonotonicNowNs();
        if (!client->PointQuery(name, q * 2654435761u % (1 << 20), &value)) {
          return;
        }
        latencies[r].push_back(
            static_cast<double>(sketch::MonotonicNowNs() - t0));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  // relaxed: the joins above already order every writer's adds before
  // this read; the load needs atomicity only.
  const double updates = static_cast<double>(
      total_updates.load(std::memory_order_relaxed));
  std::printf("sketch_loadgen: %zu writers x %zu batches x %zu updates, "
              "%zu readers x %zu queries\n",
              config.writers, config.batches, config.batch_size,
              config.readers, config.queries);
  std::printf("  wall time         %.3f s\n", seconds);
  std::printf("  sustained ingest  %.2f Mupdates/s\n",
              updates / seconds / 1e6);
  std::printf("  query p50         %.1f us\n",
              Percentile(&all, 0.50) / 1e3);
  std::printf("  query p99         %.1f us\n",
              Percentile(&all, 0.99) / 1e3);

  if (config.shutdown) admin->Shutdown();
  return 0;
}
