#ifndef SKETCH_SERVER_SLOW_QUERY_LOG_H_
#define SKETCH_SERVER_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "server/protocol.h"

/// \file
/// Fixed-size log of the slowest requests, kept per opcode so a storm of
/// slow ingests cannot evict the one interesting slow query. Surfaced in
/// `/statsz` and `/tracez` (see http_exposition.{h,cc}).
///
/// Write-path cost is the concern: every request offers its latency, and
/// almost all of them are fast. Each opcode slot therefore keeps an
/// atomic "floor" — the smallest latency currently retained once the slot
/// is full — and the hot path rejects sub-floor offers with one relaxed
/// load, no lock. Only a would-be-retained offer takes the slot mutex to
/// update the min-heap.

namespace sketch::server {

class SlowQueryLog {
 public:
  /// One retained slow request.
  struct Entry {
    Opcode opcode = Opcode::kPing;
    uint64_t latency_ns = 0;
    std::string sketch_name;     ///< empty when the request names none
    uint64_t payload_bytes = 0;  ///< request payload size on the wire
    uint64_t trace_id = 0;       ///< wire trace id (0 = untraced request)
    uint64_t timestamp_ns = 0;   ///< MonotonicNowNs() at record time
  };

  /// `capacity_per_opcode` == 0 disables the log (Record becomes a
  /// single branch).
  explicit SlowQueryLog(std::size_t capacity_per_opcode)
      : capacity_(capacity_per_opcode) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity_per_opcode() const { return capacity_; }

  /// The hot-path fast-reject, exposed so callers can skip assembling the
  /// entry fields (peeking the sketch name copies bytes) for requests
  /// that would not be retained anyway. Advisory: Record re-checks under
  /// the slot lock.
  bool WouldRecord(Opcode opcode, uint64_t latency_ns) const {
    if (capacity_ == 0) return false;
    // relaxed: advisory floor, see Record's fast-reject comment.
    return latency_ns >
           slots_[SlotOf(opcode)].floor.load(std::memory_order_relaxed);
  }

  /// Offers one finished request. Thread-safe; cheap for fast requests
  /// (one relaxed load once the opcode's slot is full).
  void Record(Opcode opcode, uint64_t latency_ns, std::string_view sketch_name,
              std::size_t payload_bytes, uint64_t trace_id);

  /// Every retained entry across opcodes, sorted by latency descending.
  std::vector<Entry> SnapshotSorted() const;

  /// The retained entries as a JSON array (schema documented in
  /// docs/observability.md): [{"opcode":"Ingest","latency_ns":..,
  /// "sketch":"..","payload_bytes":..,"trace_id":"<hex>",
  /// "age_ns":..}, ...] where age_ns is now - timestamp_ns.
  std::string ToJson() const;

 private:
  /// Request opcodes are 0x01..0x7f; slots are indexed by the raw opcode
  /// so no mapping table is needed. 0x20 comfortably covers the current
  /// 0x01..0x0e range plus growth; out-of-range opcodes share slot 0.
  static constexpr std::size_t kOpcodeSlots = 0x20;

  static std::size_t SlotOf(Opcode opcode) {
    const auto raw = static_cast<std::size_t>(opcode);
    return raw < kOpcodeSlots ? raw : 0;
  }

  struct Slot {
    mutable Mutex mu;
    /// Min-heap on latency_ns (heap top = cheapest retained entry, the
    /// one a faster new offer cannot beat).
    std::vector<Entry> heap SKETCH_GUARDED_BY(mu);
    /// Latency of the heap top once the slot is full, else 0. Advisory
    /// fast-reject only; the mutex-holding path re-checks.
    std::atomic<uint64_t> floor{0};
  };

  const std::size_t capacity_;
  Slot slots_[kOpcodeSlots];
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_SLOW_QUERY_LOG_H_
