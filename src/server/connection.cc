#include "server/connection.h"

#include <cstdint>
#include <vector>

#include "server/protocol.h"
#include "telemetry/telemetry.h"

namespace sketch::server {

ConnectionResult ServeConnection(ByteStream* stream, SketchService* service) {
  ConnectionResult result;
  FrameDecoder decoder;
  // Reads are sized to a fraction of the max frame so a slow or
  // fragmenting peer exercises the decoder's resumption path instead of
  // stalling a giant buffer.
  std::vector<uint8_t> chunk(64 * 1024);
  while (true) {
    Frame frame;
    const DecodeStatus status = decoder.Next(&frame);
    if (status == DecodeStatus::kBadFrame) {
      // The stream cannot be resynchronized after a framing violation;
      // tell the peer why (best effort) and drop the connection.
      ErrorResponse error;
      error.code = decoder.error_code();
      error.message = decoder.error();
      WriteAll(stream, EncodeError(error));
      result.framing_error = true;
      SKETCH_COUNTER_INC("server.connections_framing_error");
      break;
    }
    if (status == DecodeStatus::kFrame) {
      const std::vector<uint8_t> response = service->HandleFrame(frame);
      ++result.frames_handled;
      if (!WriteAll(stream, response)) {
        // Peer disconnected mid-response: nothing left to serve.
        result.transport_error = true;
        break;
      }
      if (frame.opcode == Opcode::kShutdown) break;
      continue;  // drain buffered frames before reading again
    }
    const std::ptrdiff_t n = stream->Read(chunk.data(), chunk.size());
    if (n == 0) break;  // clean end-of-stream
    if (n < 0) {
      result.transport_error = true;
      break;
    }
    decoder.Feed(chunk.data(), static_cast<std::size_t>(n));
  }
  stream->Close();
  SKETCH_COUNTER_INC("server.connections_served");
  return result;
}

}  // namespace sketch::server
