#include "server/connection.h"

#include <cstdint>
#include <vector>

#include "server/protocol.h"
#include "telemetry/telemetry.h"

namespace sketch::server {

ConnectionResult ServeConnection(ByteStream* stream, SketchService* service,
                                 const ServeOptions& options) {
  ConnectionResult result;
  FrameDecoder decoder;
  // Reads are sized to a fraction of the max frame so a slow or
  // fragmenting peer exercises the decoder's resumption path instead of
  // stalling a giant buffer.
  std::vector<uint8_t> chunk(64 * 1024);
  bool serving = true;
  while (serving) {
    // Drain every frame already buffered and dispatch them as one run:
    // HandleFrames applies consecutive same-sketch ingest frames under a
    // single registry lookup + entry lock (the pipelined-ingest batching
    // of E26). Frames pipelined after a kShutdown are dropped.
    std::vector<Frame> frames;
    bool shutdown_seen = false;
    bool bad_frame = false;
    while (!shutdown_seen) {
      Frame frame;
      const DecodeStatus status = decoder.Next(&frame);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kBadFrame) {
        bad_frame = true;
        break;
      }
      shutdown_seen = frame.opcode == Opcode::kShutdown;
      frames.push_back(std::move(frame));
    }
    if (!frames.empty()) {
      std::vector<std::vector<uint8_t>> responses;
      if (options.batched_dispatch) {
        service->HandleFrames(frames, &responses);
      } else {
        // PR5-oracle dispatch: one HandleFrame per frame, no ingest-run
        // coalescing. Responses are still collected here so the write
        // loop below is shared.
        responses.reserve(frames.size());
        for (const Frame& frame : frames) {
          responses.push_back(service->HandleFrame(frame));
        }
      }
      result.frames_handled += frames.size();
      for (const std::vector<uint8_t>& response : responses) {
        if (!WriteAll(stream, response)) {
          // Peer disconnected mid-response: nothing left to serve.
          result.transport_error = true;
          serving = false;
          break;
        }
      }
      if (!serving) break;
    }
    if (bad_frame) {
      // The stream cannot be resynchronized after a framing violation;
      // tell the peer why (best effort) and drop the connection.
      ErrorResponse error;
      error.code = decoder.error_code();
      error.message = decoder.error();
      WriteAll(stream, EncodeError(error));
      result.framing_error = true;
      SKETCH_COUNTER_INC("server.connections_framing_error");
      break;
    }
    if (shutdown_seen) break;
    const std::ptrdiff_t n = stream->Read(chunk.data(), chunk.size());
    if (n == 0) break;  // clean end-of-stream
    if (n < 0) {
      result.transport_error = true;
      break;
    }
    decoder.Feed(chunk.data(), static_cast<std::size_t>(n));
  }
  stream->Close();
  SKETCH_COUNTER_INC("server.connections_served");
  return result;
}

}  // namespace sketch::server
