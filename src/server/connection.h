#ifndef SKETCH_SERVER_CONNECTION_H_
#define SKETCH_SERVER_CONNECTION_H_

#include "server/sketch_service.h"
#include "server/transport.h"

namespace sketch::server {

/// Statistics from one served connection (tests assert on these to pin
/// down exactly how a fault was handled).
struct ConnectionResult {
  uint64_t frames_handled = 0;
  /// True if the stream ended with a framing violation (bad header /
  /// oversized frame) rather than a clean end-of-stream.
  bool framing_error = false;
  /// True if the peer vanished (read or write error) mid-conversation.
  bool transport_error = false;
};

struct ServeOptions {
  /// When true (default), every frame buffered on the stream is drained
  /// and dispatched as one HandleFrames run (consecutive same-sketch
  /// ingests share a lookup + lock) and the responses are written back
  /// to back. When false, each frame is dispatched and its response
  /// written individually — the PR5 front door, kept as the benchmark
  /// oracle the E26 batching is judged against.
  bool batched_dispatch = true;
};

/// Serves one connection to completion: reads bytes, extracts frames,
/// dispatches each through the service, and writes the response. Returns
/// when the peer closes, the stream fails, a framing violation occurs
/// (after sending a best-effort error response), or the service has been
/// asked to shut down.
///
/// Runs on a dedicated thread per connection — NOT on the service's
/// ThreadPool: ingest fans out through ShardedSketch, which blocks on
/// pool Wait(), and pool tasks must never Wait() on the pool they run on.
ConnectionResult ServeConnection(ByteStream* stream, SketchService* service,
                                 const ServeOptions& options = {});

}  // namespace sketch::server

#endif  // SKETCH_SERVER_CONNECTION_H_
