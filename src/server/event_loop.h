#ifndef SKETCH_SERVER_EVENT_LOOP_H_
#define SKETCH_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "server/protocol.h"
#include "server/sketch_service.h"

/// \file
/// The epoll front door (E26): a small pool of I/O threads multiplexing
/// many connections, replacing PR5's thread-per-connection model for
/// kernel sockets.
///
/// Each I/O thread owns one epoll instance plus an eventfd for wakeups;
/// accepted descriptors are handed to a thread round-robin and never
/// migrate, so per-connection state (decoder, outbound buffer) is
/// single-threaded by construction and needs no lock. Readable
/// connections are drained to EAGAIN, every complete frame in the read
/// is decoded, and the whole run goes through SketchService::HandleFrames
/// — one registry lookup and one entry lock per run of same-sketch
/// ingest frames (the dispatch batching of E26).
///
/// Writes are coalesced into a per-connection outbound buffer, flushed
/// opportunistically after dispatch and then under EPOLLOUT. The buffer
/// is bounded: a client that stops reading while pipelining requests is
/// evicted once its backlog exceeds Options::max_outbound_bytes, so one
/// slow consumer cannot pin unbounded response memory (backpressure
/// contract in DESIGN.md "Server").
///
/// The blocking ByteStream path (`ServeConnection`) remains the loopback
/// and fault-injection substrate; `SKETCH_FORCE_BLOCKING=1` pins the
/// daemon to it end to end.

namespace sketch::server {

/// A pool of epoll I/O threads serving adopted socket descriptors
/// against one SketchService.
class EventLoopPool {
 public:
  struct Options {
    /// I/O threads; each owns an epoll set. Connections are assigned
    /// round-robin at adoption and never migrate.
    std::size_t num_threads = 2;
    /// Eviction threshold for a connection's unflushed response backlog.
    std::size_t max_outbound_bytes = 4 * 1024 * 1024;
  };

  EventLoopPool(SketchService* service, const Options& options);
  ~EventLoopPool();

  EventLoopPool(const EventLoopPool&) = delete;
  EventLoopPool& operator=(const EventLoopPool&) = delete;

  /// Invoked (once, from an I/O thread) when a connection's kShutdown
  /// response has been fully flushed: the server uses it to close the
  /// listener. Must be set before Start().
  void set_shutdown_callback(std::function<void()> callback) {
    shutdown_callback_ = std::move(callback);
  }

  /// Spawns the I/O threads. False if an epoll or eventfd descriptor
  /// cannot be created (nothing is spawned in that case).
  bool Start();

  /// Hands a connected socket to one of the I/O threads. The pool owns
  /// the descriptor from here on (including on failure paths).
  void Adopt(int fd);

  /// Flushes every connection's remaining outbound bytes (briefly
  /// re-blocking the socket so the final writes are deterministic),
  /// closes all connections, and joins the I/O threads. Idempotent.
  void Stop();

  /// Currently-open adopted connections (statsz gauge).
  uint64_t connections_live() const {
    return connections_live_.load(std::memory_order_acquire);
  }

 private:
  /// One connection's single-threaded state (owned by exactly one I/O
  /// thread; no lock).
  struct Conn {
    explicit Conn(int descriptor) : fd(descriptor) {}
    int fd;
    FrameDecoder decoder;
    /// Coalesced responses not yet accepted by the kernel;
    /// [consumed, outbound.size()) is the live backlog.
    std::vector<uint8_t> outbound;
    std::size_t consumed = 0;
    /// EPOLLOUT is armed (backlog outlived the opportunistic flush).
    bool want_write = false;
    /// EPOLLOUT bit currently installed in the epoll set; UpdateInterest
    /// elides the epoll_ctl(MOD) syscall when it already matches
    /// want_write — the common case on every read-dispatch-flush cycle.
    bool epollout_armed = false;
    /// A kShutdown response is queued; close once the backlog drains.
    bool shutdown_pending = false;
  };

  /// One I/O thread's epoll set plus its cross-thread mailbox.
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    mutable Mutex mailbox_mutex;
    std::vector<int> pending SKETCH_GUARDED_BY(mailbox_mutex);
    bool stopping SKETCH_GUARDED_BY(mailbox_mutex) = false;
    /// fd -> connection; only the owning I/O thread touches it.
    std::map<int, std::unique_ptr<Conn>> conns;
  };

  void Run(Loop* loop);
  void AdoptPending(Loop* loop);
  /// Reads until EAGAIN/EOF, dispatches decoded frames, queues and
  /// flushes responses. Returns false if the connection must close.
  bool ServeReadable(Conn* conn);
  /// Writes backlog until EAGAIN or empty. Returns false on write error.
  bool FlushOutbound(Conn* conn);
  /// Re-arms or disarms EPOLLOUT to match conn->want_write.
  void UpdateInterest(Loop* loop, Conn* conn);
  void CloseConn(Loop* loop, int fd);
  void NotifyShutdown();

  SketchService* service_;
  Options options_;
  std::function<void()> shutdown_callback_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<uint64_t> connections_live_{0};
  std::atomic<bool> shutdown_notified_{false};
  bool started_ = false;
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_EVENT_LOOP_H_
