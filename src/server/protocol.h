#ifndef SKETCH_SERVER_PROTOCOL_H_
#define SKETCH_SERVER_PROTOCOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/update.h"

/// \file
/// Wire protocol for the sketch-as-a-service daemon ("sketchwire/1").
///
/// This layer is a pure codec: it converts between message structs and
/// length-prefixed binary frames, and never touches a socket, a sketch, or
/// a thread — so the whole protocol is unit-testable in-process, and the
/// daemon, the in-process loopback transport, the client library, and the
/// fuzz harness all share one decoder.
///
/// Frame layout (all integers little-endian):
///
///   offset 0  u32  payload length in bytes (excludes this 8-byte header)
///   offset 4  u8   opcode
///   offset 5  u8   protocol version (must be 1)
///   offset 6  u16  flags (unknown bits must be 0; was "reserved" pre-PR 10)
///   offset 8  payload bytes
///
/// Flags: bit 0 (kFrameFlagTraceId) marks a frame whose payload carries a
/// trailing 8-byte little-endian trace/request id; the u32 payload length
/// *includes* those 8 bytes on the wire, and the decoder strips them into
/// Frame::trace_id before typed decoding, so message codecs never see the
/// id. Frames with any other flag bit set are rejected exactly as the old
/// reserved-must-be-zero rule rejected them, which keeps old servers'
/// behavior a strict subset of new ones.
///
/// Payload primitives: u8/u16/u32/u64/i64/f64 little-endian; strings are a
/// u16 length followed by raw bytes (names are capped at kMaxNameBytes);
/// byte blobs are a u32 length followed by raw bytes.
///
/// Untrusted-input discipline (the server-side mirror of SL003): every
/// decode path validates a declared length against both its own cap and
/// the bytes actually present *before* allocating, so a malformed frame
/// can produce an error response but never an oversized allocation or a
/// crash. Decoding returns false / DecodeStatus::kBadFrame instead of
/// CHECK-failing; SKETCH_CHECK appears only on encode paths, where a
/// violation is a programming error in this process, not hostile input.
/// The full wire-format specification lives in DESIGN.md ("Server"); the
/// golden-file test (tests/server/wire_golden_test.cc) pins the encoding
/// so schema changes are deliberate.

namespace sketch::server {

/// Protocol version carried in every frame header.
inline constexpr uint8_t kProtocolVersion = 1;

/// Bytes in the fixed frame header.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Header flag: payload ends with an 8-byte little-endian trace id.
inline constexpr uint16_t kFrameFlagTraceId = 0x0001;

/// Every flag bit this protocol version understands; all others must be
/// zero on the wire.
inline constexpr uint16_t kKnownFrameFlags = kFrameFlagTraceId;

/// Bytes the trace id appends to a flagged frame's payload.
inline constexpr std::size_t kTraceIdBytes = 8;

/// Hard cap on a frame payload. Chosen so the largest legal messages — a
/// kMaxBatchUpdates ingest batch (16 bytes per update) and a snapshot of a
/// maximum-geometry sketch (kMaxSketchCounters counters at 8 bytes) — fit
/// with headroom, while a hostile length prefix can never drive a large
/// allocation: the decoder rejects the frame before buffering the payload.
inline constexpr uint32_t kMaxFramePayloadBytes = 8u << 20;  // 8 MiB

/// Cap on sketch-name strings.
inline constexpr uint32_t kMaxNameBytes = 256;

/// Cap on updates per ingest frame (16 bytes each → 4 MiB of payload).
inline constexpr uint32_t kMaxBatchUpdates = 1u << 18;

/// Cap on snapshot/restore blobs inside a frame.
inline constexpr uint32_t kMaxBlobBytes = kMaxFramePayloadBytes - 1024;

/// Cap on total counters a served sketch may allocate (512Ki counters =
/// 4 MiB), so CreateSketch geometry — and therefore every snapshot — stays
/// within one frame and a hostile create cannot exhaust server memory.
inline constexpr uint64_t kMaxSketchCounters = 1ull << 19;

/// Cap on items returned from a heavy-hitters query.
inline constexpr uint32_t kMaxHeavyHitterItems = 1u << 16;

/// Cap on keys per batched point query (8 bytes each on request; 17 bytes
/// of estimate+bound+kind each on response — both far inside the frame
/// cap).
inline constexpr uint32_t kMaxBatchQueryItems = 1u << 16;

/// Request and response opcodes. Requests occupy 0x01-0x7f, responses
/// 0x80-0xff, so a stray response frame can never be mistaken for a
/// request.
enum class Opcode : uint8_t {
  // Requests.
  kPing = 0x01,
  kCreateSketch = 0x02,
  kDropSketch = 0x03,
  kIngest = 0x04,
  kPointQuery = 0x05,
  kHeavyHitters = 0x06,
  kInnerProduct = 0x07,
  kSnapshot = 0x08,
  kRestore = 0x09,
  kListSketches = 0x0a,
  kStatsz = 0x0b,
  kTraceDump = 0x0c,
  kShutdown = 0x0d,
  kPointQueryBatch = 0x0e,
  // Responses.
  kOk = 0x80,
  kError = 0x81,
  kPointValue = 0x82,
  kItems = 0x83,
  kBlob = 0x84,
  kText = 0x85,
  kPong = 0x86,
  kIngestAck = 0x87,
  kValueBatch = 0x88,
};

/// Sketch families a server registry can own.
enum class SketchType : uint8_t {
  kCountMin = 1,
  kCountSketch = 2,
  kBloom = 3,
  kStreamSummary = 4,
  kShardedCountMin = 5,
};

/// Error codes carried in kError responses.
enum class ErrorCode : uint16_t {
  kNone = 0,
  kMalformedPayload = 1,
  kUnknownOpcode = 2,
  kNoSuchSketch = 3,
  kSketchExists = 4,
  kGeometryMismatch = 5,
  kFrameTooLarge = 6,
  kBadSketchType = 7,
  kUnsupported = 8,
  kBadBlob = 9,
  kBadGeometry = 10,
  kBadFrameHeader = 11,
};

/// Kind of error bound attached to a point-query response. Minton & Price
/// 2012 motivate reporting the bound alongside the estimate: the same
/// counters admit sharper guarantees than the worst case, and a client can
/// only exploit that if the server tells it the scale of the noise.
enum class BoundKind : uint8_t {
  kNone = 0,
  kL1 = 1,   ///< Count-Min style: eps * ||x||_1 with eps = e / width
  kL2 = 2,   ///< Count-Sketch style: sqrt(3 * F2_hat / width)
  kFpr = 3,  ///< Bloom: current false-positive probability
};

/// One decoded frame: opcode plus raw payload bytes. `trace_id` is the
/// stripped wire trace id (0 = frame was not flagged; stamped ids are
/// never 0 by construction, see StampTraceId).
struct Frame {
  Opcode opcode = Opcode::kPing;
  std::vector<uint8_t> payload;
  uint64_t trace_id = 0;
};

/// Appends primitives to a payload buffer. Encode-side only; sizes are
/// checked with SKETCH_CHECK because exceeding a cap here is a bug in this
/// process, not hostile input.
class PayloadWriter {
 public:
  void PutU8(uint8_t value) { bytes_.push_back(value); }
  void PutU16(uint16_t value);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutF64(double value);
  /// u16 length + raw bytes; CHECKs length <= kMaxNameBytes.
  void PutString(const std::string& value);
  /// u32 length + raw bytes; CHECKs length <= kMaxBlobBytes.
  void PutBytes(const std::vector<uint8_t>& value);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked cursor over a received payload. Every TryRead* returns
/// false instead of reading past the end, and length-prefixed reads
/// validate the declared length against the cap and the remaining bytes
/// before allocating.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  bool TryReadU8(uint8_t* out);
  bool TryReadU16(uint16_t* out);
  bool TryReadU32(uint32_t* out);
  bool TryReadU64(uint64_t* out);
  bool TryReadI64(int64_t* out);
  bool TryReadF64(double* out);
  /// u16 length + bytes; rejects length > kMaxNameBytes before allocating.
  bool TryReadString(std::string* out);
  /// u32 length + bytes; rejects length > max_bytes before allocating.
  bool TryReadBytes(std::vector<uint8_t>* out, uint32_t max_bytes);

  std::size_t remaining() const { return size_ - position_; }
  bool AtEnd() const { return position_ == size_; }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t position_ = 0;
};

/// Encodes a complete frame (header + payload). CHECKs the payload is
/// within kMaxFramePayloadBytes — an oversized response is a server bug.
std::vector<uint8_t> EncodeFrame(Opcode opcode,
                                 const std::vector<uint8_t>& payload);

/// Stamps an already-encoded request frame with a trace id: appends the
/// 8-byte little-endian id, bumps the header's payload length, and sets
/// kFrameFlagTraceId. Works on any Encode* output, so samplers decorate
/// frames post hoc without every codec growing a trace parameter. CHECKs
/// `trace_id != 0` (0 is the "untraced" sentinel) and that the frame is
/// well-formed and stays within kMaxFramePayloadBytes.
void StampTraceId(std::vector<uint8_t>* frame, uint64_t trace_id);

/// Incremental frame decoder. Feed() whatever a transport read returned —
/// any fragmentation, including one byte at a time — and Next() yields
/// complete frames as they become available. A malformed header (bad
/// version, nonzero reserved bits, oversized length) is fatal for the
/// stream: Next() returns kBadFrame and the decoder stays failed, because
/// after a framing error the byte stream can no longer be resynchronized.
enum class DecodeStatus : uint8_t {
  kFrame = 0,     ///< *out holds the next complete frame
  kNeedMore = 1,  ///< no complete frame buffered yet
  kBadFrame = 2,  ///< framing violation; connection must be dropped
};

class FrameDecoder {
 public:
  /// Appends raw transport bytes to the internal buffer.
  void Feed(const uint8_t* data, std::size_t size);

  /// Extracts the next complete frame, if any.
  DecodeStatus Next(Frame* out);

  /// Populated after Next() returns kBadFrame.
  ErrorCode error_code() const { return error_code_; }
  const std::string& error() const { return error_; }

  /// Bytes currently buffered and not yet consumed by Next().
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool failed_ = false;
  ErrorCode error_code_ = ErrorCode::kNone;
  std::string error_;
};

// --- Request messages -----------------------------------------------------

/// CreateSketch: five u64 parameters whose meaning depends on the type:
///   kCountMin/kCountSketch: {width, depth, seed, width_mode, 0}
///   kBloom:                 {num_bits, num_hashes, seed, width_mode, 0}
///   kStreamSummary:         {log_universe, width, depth, verify_width, seed}
///   kShardedCountMin:       {width, depth, seed, num_shards, width_mode}
///
/// `width_mode` is a sketch::WidthMode value: 0 (division, the default —
/// the slot was previously reserved-zero, so old clients are unchanged)
/// or 1 (pow2: width/num_bits rounds up to the next power of two and the
/// bucket reduction is a mask). Responses that report geometry or error
/// bounds always reflect the *rounded* width. Any other value is
/// kBadGeometry.
struct CreateSketchRequest {
  std::string name;
  SketchType type = SketchType::kCountMin;
  std::array<uint64_t, 5> params{};
};

struct IngestRequest {
  std::string name;
  std::vector<StreamUpdate> updates;
  /// Wire trace id of the carrying frame (not part of the ingest payload
  /// itself; the server copies it from Frame::trace_id so coalesced-run
  /// spans can tag which requests fed a batch). 0 = untraced.
  uint64_t trace_id = 0;
};

struct PointQueryRequest {
  std::string name;
  uint64_t item = 0;
};

/// Multi-key point query: one registry lookup and one (shared) entry lock
/// amortized over every key, and the estimates come from the batched
/// EstimateBatch kernel instead of per-item hashing.
struct PointQueryBatchRequest {
  std::string name;
  std::vector<uint64_t> items;
};

struct HeavyHittersRequest {
  std::string name;
  double phi = 0.0;
};

struct InnerProductRequest {
  std::string left;
  std::string right;
};

/// Shared by kDropSketch and kSnapshot (payload is just the name).
struct NamedRequest {
  std::string name;
};

struct RestoreRequest {
  std::string name;
  SketchType type = SketchType::kCountMin;
  std::vector<uint8_t> blob;
};

// --- Response messages ----------------------------------------------------

struct ErrorResponse {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

struct PointValueResponse {
  int64_t estimate = 0;
  double error_bound = 0.0;
  BoundKind bound_kind = BoundKind::kNone;
};

struct ItemsResponse {
  std::vector<uint64_t> items;
};

struct BlobResponse {
  std::vector<uint8_t> bytes;
};

struct TextResponse {
  std::string text;
};

struct IngestAckResponse {
  uint64_t accepted = 0;
};

/// One PointValueResponse per requested key, in request order.
struct ValueBatchResponse {
  std::vector<PointValueResponse> values;
};

// --- Typed encode/decode --------------------------------------------------
//
// Encode* returns complete frame bytes ready for a transport. Decode*
// takes a frame (already extracted by FrameDecoder), checks the opcode,
// and fills the struct; it returns false on any payload malformation,
// including trailing bytes after the message.

std::vector<uint8_t> EncodePing();
std::vector<uint8_t> EncodeShutdown();
std::vector<uint8_t> EncodeListSketches();
std::vector<uint8_t> EncodeStatsz();
std::vector<uint8_t> EncodeTraceDump();

std::vector<uint8_t> EncodeCreateSketch(const CreateSketchRequest& request);
bool DecodeCreateSketch(const Frame& frame, CreateSketchRequest* out);

std::vector<uint8_t> EncodeIngest(const IngestRequest& request);
/// Encodes directly from a span (avoids copying batches into a request).
std::vector<uint8_t> EncodeIngestSpan(const std::string& name,
                                      UpdateSpan updates);
bool DecodeIngest(const Frame& frame, IngestRequest* out);

std::vector<uint8_t> EncodePointQuery(const PointQueryRequest& request);
bool DecodePointQuery(const Frame& frame, PointQueryRequest* out);

std::vector<uint8_t> EncodePointQueryBatch(
    const PointQueryBatchRequest& request);
bool DecodePointQueryBatch(const Frame& frame, PointQueryBatchRequest* out);

std::vector<uint8_t> EncodeHeavyHitters(const HeavyHittersRequest& request);
bool DecodeHeavyHitters(const Frame& frame, HeavyHittersRequest* out);

std::vector<uint8_t> EncodeInnerProduct(const InnerProductRequest& request);
bool DecodeInnerProduct(const Frame& frame, InnerProductRequest* out);

std::vector<uint8_t> EncodeDropSketch(const NamedRequest& request);
std::vector<uint8_t> EncodeSnapshot(const NamedRequest& request);
bool DecodeNamedRequest(const Frame& frame, NamedRequest* out);

std::vector<uint8_t> EncodeRestore(const RestoreRequest& request);
bool DecodeRestore(const Frame& frame, RestoreRequest* out);

std::vector<uint8_t> EncodeOk();
std::vector<uint8_t> EncodePong();

std::vector<uint8_t> EncodeError(const ErrorResponse& response);
bool DecodeError(const Frame& frame, ErrorResponse* out);

std::vector<uint8_t> EncodePointValue(const PointValueResponse& response);
bool DecodePointValue(const Frame& frame, PointValueResponse* out);

std::vector<uint8_t> EncodeItems(const ItemsResponse& response);
bool DecodeItems(const Frame& frame, ItemsResponse* out);

std::vector<uint8_t> EncodeBlob(const BlobResponse& response);
bool DecodeBlob(const Frame& frame, BlobResponse* out);

std::vector<uint8_t> EncodeText(const TextResponse& response);
bool DecodeText(const Frame& frame, TextResponse* out);

std::vector<uint8_t> EncodeIngestAck(const IngestAckResponse& response);
bool DecodeIngestAck(const Frame& frame, IngestAckResponse* out);

std::vector<uint8_t> EncodeValueBatch(const ValueBatchResponse& response);
bool DecodeValueBatch(const Frame& frame, ValueBatchResponse* out);

/// True for opcodes in the request range that this protocol version knows.
bool IsKnownRequestOpcode(uint8_t raw);

/// Human-readable opcode / type names (diagnostics, statsz).
const char* OpcodeName(Opcode opcode);
const char* SketchTypeName(SketchType type);

}  // namespace sketch::server

#endif  // SKETCH_SERVER_PROTOCOL_H_
