#include "server/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "telemetry/telemetry.h"

namespace sketch::server {

namespace {

/// Per-event read granularity; sized like the blocking path's chunk so
/// both exercise the decoder's resumption behavior identically.
constexpr std::size_t kReadChunkBytes = 64 * 1024;

bool SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, wanted) == 0;
}

/// Blocking best-effort send of a buffer tail (shutdown/stop paths, after
/// the descriptor has been switched back to blocking mode).
void SendRemainder(int fd, const std::vector<uint8_t>& bytes,
                   std::size_t consumed) {
  while (consumed < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + consumed,
                             bytes.size() - consumed, MSG_NOSIGNAL);
    if (n > 0) {
      consumed += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
}

}  // namespace

EventLoopPool::EventLoopPool(SketchService* service, const Options& options)
    : service_(service), options_(options) {
  if (options_.num_threads < 1) options_.num_threads = 1;
}

EventLoopPool::~EventLoopPool() { Stop(); }

bool EventLoopPool::Start() {
  loops_.reserve(options_.num_threads);
  for (std::size_t i = 0; i < options_.num_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      loops_.clear();
      return false;
    }
    epoll_event wake_event{};
    wake_event.events = EPOLLIN;
    wake_event.data.fd = loop->wake_fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd,
                    &wake_event) != 0) {
      ::close(loop->epoll_fd);
      ::close(loop->wake_fd);
      loops_.clear();
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  for (const std::unique_ptr<Loop>& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { Run(raw); });
  }
  started_ = true;
  return true;
}

void EventLoopPool::Adopt(int fd) {
  if (fd < 0) return;
  if (loops_.empty()) {
    ::close(fd);
    return;
  }
  const std::size_t index =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  Loop* loop = loops_[index].get();
  {
    MutexLock lock(loop->mailbox_mutex);
    loop->pending.push_back(fd);
  }
  const uint64_t one = 1;
  (void)!::write(loop->wake_fd, &one, sizeof(one));
}

void EventLoopPool::Stop() {
  if (!started_) return;
  started_ = false;
  for (const std::unique_ptr<Loop>& loop : loops_) {
    {
      MutexLock lock(loop->mailbox_mutex);
      loop->stopping = true;
    }
    const uint64_t one = 1;
    (void)!::write(loop->wake_fd, &one, sizeof(one));
  }
  for (const std::unique_ptr<Loop>& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  loops_.clear();
}

void EventLoopPool::AdoptPending(Loop* loop) {
  std::vector<int> adopted;
  {
    MutexLock lock(loop->mailbox_mutex);
    adopted.swap(loop->pending);
  }
  for (const int fd : adopted) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (!SetNonBlocking(fd, true) ||
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    loop->conns.emplace(fd, std::make_unique<Conn>(fd));
    connections_live_.fetch_add(1, std::memory_order_acq_rel);
    SKETCH_COUNTER_INC("server.epoll.connections_adopted");
  }
}

void EventLoopPool::Run(Loop* loop) {
  epoll_event events[64];
  bool stopping = false;
  while (!stopping) {
    const int n = ::epoll_wait(loop->epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll set torn down under us: nothing left to serve
    }
    SKETCH_COUNTER_INC("server.epoll.wakeups");
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->wake_fd) {
        uint64_t drained = 0;
        (void)!::read(loop->wake_fd, &drained, sizeof(drained));
        AdoptPending(loop);
        MutexLock lock(loop->mailbox_mutex);
        stopping = loop->stopping;
        continue;
      }
      const auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) continue;  // closed earlier this batch
      Conn* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(loop, fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!ServeReadable(conn)) {
          const bool shutdown_flushed =
              conn->shutdown_pending && conn->consumed >= conn->outbound.size();
          CloseConn(loop, fd);
          if (shutdown_flushed) NotifyShutdown();
          continue;
        }
        UpdateInterest(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushOutbound(conn)) {
          CloseConn(loop, fd);
          continue;
        }
        const bool drained = conn->consumed >= conn->outbound.size();
        conn->want_write = !drained;
        if (drained && conn->shutdown_pending) {
          CloseConn(loop, fd);
          NotifyShutdown();
          continue;
        }
        UpdateInterest(loop, conn);
      }
    }
  }
  // Deterministic teardown: whatever responses are still queued (most
  // importantly kShutdown acks racing with Stop) are delivered with
  // blocking writes before the descriptors close.
  for (const auto& [fd, conn] : loop->conns) {
    if (conn->consumed < conn->outbound.size() && SetNonBlocking(fd, false)) {
      SendRemainder(fd, conn->outbound, conn->consumed);
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    connections_live_.fetch_sub(1, std::memory_order_acq_rel);
    SKETCH_COUNTER_INC("server.epoll.connections_closed");
  }
  loop->conns.clear();
}

bool EventLoopPool::ServeReadable(Conn* conn) {
  uint8_t chunk[kReadChunkBytes];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->decoder.Feed(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // torn connection
  }

  // Drain every complete frame buffered by the reads; the whole run goes
  // through HandleFrames so consecutive same-sketch ingest frames share
  // one lookup + one exclusive lock. Frames pipelined after a kShutdown
  // are dropped, mirroring the blocking path.
#if SKETCH_TELEMETRY_ENABLED
  const uint64_t rx_start_ns = MonotonicNowNs();
#endif
  uint64_t run_trace_id = 0;  // first traced frame tags the rx/tx spans
  std::vector<Frame> frames;
  bool bad_frame = false;
  while (!conn->shutdown_pending) {
    Frame frame;
    const DecodeStatus status = conn->decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kBadFrame) {
      bad_frame = true;
      break;
    }
    if (frame.opcode == Opcode::kShutdown) conn->shutdown_pending = true;
    if (run_trace_id == 0) run_trace_id = frame.trace_id;
    frames.push_back(std::move(frame));
  }
#if SKETCH_TELEMETRY_ENABLED
  if (run_trace_id != 0) {
    telemetry::TraceRecorder::Instance().RecordSpan(
        "server.rx_decode", rx_start_ns, MonotonicNowNs() - rx_start_ns,
        run_trace_id);
  }
#endif

  if (!frames.empty()) {
    std::vector<std::vector<uint8_t>> responses;
    service_->HandleFrames(frames, &responses);
    for (const std::vector<uint8_t>& response : responses) {
      conn->outbound.insert(conn->outbound.end(), response.begin(),
                            response.end());
    }
  }
  if (bad_frame) {
    // Best-effort diagnostic, then drop: the stream cannot be
    // resynchronized after a framing violation.
    ErrorResponse error;
    error.code = conn->decoder.error_code();
    error.message = conn->decoder.error();
    const std::vector<uint8_t> encoded = EncodeError(error);
    conn->outbound.insert(conn->outbound.end(), encoded.begin(),
                          encoded.end());
    SKETCH_COUNTER_INC("server.connections_framing_error");
    FlushOutbound(conn);
    return false;
  }

  {
    // Tag the inline flush with the run's trace id so a sampled request's
    // timeline reaches the socket write. (Residual EPOLLOUT flushes are
    // untagged; the inline path is the common case.)
    SKETCH_TRACE_SPAN_ID("server.tx_write", run_trace_id);
    if (!FlushOutbound(conn)) return false;
  }
  const std::size_t backlog = conn->outbound.size() - conn->consumed;
  if (backlog == 0) {
    // Reclaim the coalescing buffer once the kernel has taken it all.
    conn->outbound.clear();
    conn->consumed = 0;
    conn->want_write = false;
    if (conn->shutdown_pending || peer_closed) return false;
    return true;
  }
  if (backlog > options_.max_outbound_bytes) {
    // Backpressure: the client is pipelining faster than it reads.
    // Evicting it bounds response memory at max_outbound_bytes per
    // connection instead of letting one slow reader pin the daemon.
    SKETCH_COUNTER_INC("server.epoll.slow_clients_evicted");
    return false;
  }
  if (peer_closed) return false;  // cannot deliver the rest anyway
  conn->want_write = true;
  return true;
}

bool EventLoopPool::FlushOutbound(Conn* conn) {
  while (conn->consumed < conn->outbound.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbound.data() + conn->consumed,
               conn->outbound.size() - conn->consumed, MSG_NOSIGNAL);
    if (n > 0) {
      conn->consumed += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  if (conn->consumed == conn->outbound.size()) {
    conn->outbound.clear();
    conn->consumed = 0;
  }
  return true;
}

void EventLoopPool::UpdateInterest(Loop* loop, Conn* conn) {
  if (conn->want_write == conn->epollout_armed) return;  // already installed
  epoll_event event{};
  event.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  event.data.fd = conn->fd;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
    conn->epollout_armed = conn->want_write;
  }
}

void EventLoopPool::CloseConn(Loop* loop, int fd) {
  const auto it = loop->conns.find(fd);
  if (it == loop->conns.end()) return;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  loop->conns.erase(it);
  connections_live_.fetch_sub(1, std::memory_order_acq_rel);
  SKETCH_COUNTER_INC("server.epoll.connections_closed");
  SKETCH_COUNTER_INC("server.connections_served");
}

void EventLoopPool::NotifyShutdown() {
  if (shutdown_notified_.exchange(true, std::memory_order_acq_rel)) return;
  if (shutdown_callback_) shutdown_callback_();
}

}  // namespace sketch::server
