#include "server/client.h"

namespace sketch::server {

namespace {
ErrorResponse TransportError(const std::string& message) {
  ErrorResponse error;
  error.code = ErrorCode::kNone;
  error.message = message;
  return error;
}
}  // namespace

bool SketchClient::Transact(const std::vector<uint8_t>& request,
                            Frame* response) {
  last_trace_id_ = 0;
  bool sent = false;
  if (trace_every_ != 0 && transact_count_++ % trace_every_ == 0) {
    // Sampled request: stamp a nonzero trace id onto a copy of the frame
    // (the encoded request may be reused by the caller).
    uint64_t id = trace_rng_.Next();
    while (id == 0) id = trace_rng_.Next();
    std::vector<uint8_t> stamped = request;
    StampTraceId(&stamped, id);
    last_trace_id_ = id;
    sent = WriteAll(stream_.get(), stamped);
  } else {
    sent = WriteAll(stream_.get(), request);
  }
  if (!sent) {
    last_error_ = TransportError("write failed (connection lost?)");
    return false;
  }
  std::vector<uint8_t> chunk(64 * 1024);
  while (true) {
    const DecodeStatus status = decoder_.Next(response);
    if (status == DecodeStatus::kFrame) return true;
    if (status == DecodeStatus::kBadFrame) {
      last_error_ = TransportError("framing violation in server response");
      return false;
    }
    const std::ptrdiff_t n = stream_->Read(chunk.data(), chunk.size());
    if (n <= 0) {
      last_error_ = TransportError("connection closed before response");
      return false;
    }
    decoder_.Feed(chunk.data(), static_cast<std::size_t>(n));
  }
}

bool SketchClient::TransactChecked(const std::vector<uint8_t>& request,
                                   Frame* response) {
  if (!Transact(request, response)) return false;
  if (response->opcode == Opcode::kError) {
    if (!DecodeError(*response, &last_error_)) {
      last_error_ = TransportError("undecodable error response");
    }
    return false;
  }
  return true;
}

bool SketchClient::TransactExpectOk(const std::vector<uint8_t>& request) {
  Frame response;
  if (!TransactChecked(request, &response)) return false;
  if (response.opcode != Opcode::kOk) {
    last_error_ = TransportError("unexpected response opcode");
    return false;
  }
  return true;
}

bool SketchClient::Ping() {
  Frame response;
  return TransactChecked(EncodePing(), &response) &&
         response.opcode == Opcode::kPong;
}

bool SketchClient::CreateSketch(const std::string& name, SketchType type,
                                const std::array<uint64_t, 5>& params) {
  CreateSketchRequest request;
  request.name = name;
  request.type = type;
  request.params = params;
  return TransactExpectOk(EncodeCreateSketch(request));
}

bool SketchClient::DropSketch(const std::string& name) {
  NamedRequest request;
  request.name = name;
  return TransactExpectOk(EncodeDropSketch(request));
}

bool SketchClient::Ingest(const std::string& name, UpdateSpan updates,
                          uint64_t* accepted) {
  Frame response;
  if (!TransactChecked(EncodeIngestSpan(name, updates), &response)) {
    return false;
  }
  IngestAckResponse ack;
  if (!DecodeIngestAck(response, &ack)) {
    last_error_ = TransportError("undecodable ingest ack");
    return false;
  }
  if (accepted != nullptr) *accepted = ack.accepted;
  return true;
}

bool SketchClient::PointQuery(const std::string& name, uint64_t item,
                              PointValueResponse* out) {
  PointQueryRequest request;
  request.name = name;
  request.item = item;
  Frame response;
  if (!TransactChecked(EncodePointQuery(request), &response)) return false;
  if (!DecodePointValue(response, out)) {
    last_error_ = TransportError("undecodable point-value response");
    return false;
  }
  return true;
}

bool SketchClient::PointQueryBatch(const std::string& name,
                                   const std::vector<uint64_t>& items,
                                   std::vector<PointValueResponse>* out) {
  PointQueryBatchRequest request;
  request.name = name;
  request.items = items;
  Frame response;
  if (!TransactChecked(EncodePointQueryBatch(request), &response)) {
    return false;
  }
  ValueBatchResponse values;
  if (!DecodeValueBatch(response, &values) ||
      values.values.size() != items.size()) {
    last_error_ = TransportError("undecodable value-batch response");
    return false;
  }
  *out = std::move(values.values);
  return true;
}

bool SketchClient::HeavyHitters(const std::string& name, double phi,
                                std::vector<uint64_t>* out) {
  HeavyHittersRequest request;
  request.name = name;
  request.phi = phi;
  Frame response;
  if (!TransactChecked(EncodeHeavyHitters(request), &response)) return false;
  ItemsResponse items;
  if (!DecodeItems(response, &items)) {
    last_error_ = TransportError("undecodable items response");
    return false;
  }
  *out = std::move(items.items);
  return true;
}

bool SketchClient::InnerProduct(const std::string& left,
                                const std::string& right, int64_t* out) {
  InnerProductRequest request;
  request.left = left;
  request.right = right;
  Frame response;
  if (!TransactChecked(EncodeInnerProduct(request), &response)) return false;
  PointValueResponse value;
  if (!DecodePointValue(response, &value)) {
    last_error_ = TransportError("undecodable inner-product response");
    return false;
  }
  *out = value.estimate;
  return true;
}

bool SketchClient::Snapshot(const std::string& name,
                            std::vector<uint8_t>* blob) {
  NamedRequest request;
  request.name = name;
  Frame response;
  if (!TransactChecked(EncodeSnapshot(request), &response)) return false;
  BlobResponse payload;
  if (!DecodeBlob(response, &payload)) {
    last_error_ = TransportError("undecodable blob response");
    return false;
  }
  *blob = std::move(payload.bytes);
  return true;
}

bool SketchClient::Restore(const std::string& name, SketchType type,
                           const std::vector<uint8_t>& blob) {
  RestoreRequest request;
  request.name = name;
  request.type = type;
  request.blob = blob;
  return TransactExpectOk(EncodeRestore(request));
}

namespace {
bool DecodeTextInto(const Frame& response, std::string* out) {
  TextResponse text;
  if (!DecodeText(response, &text)) return false;
  *out = std::move(text.text);
  return true;
}
}  // namespace

bool SketchClient::ListSketches(std::string* json) {
  Frame response;
  if (!TransactChecked(EncodeListSketches(), &response)) return false;
  if (!DecodeTextInto(response, json)) {
    last_error_ = TransportError("undecodable text response");
    return false;
  }
  return true;
}

bool SketchClient::Statsz(std::string* json) {
  Frame response;
  if (!TransactChecked(EncodeStatsz(), &response)) return false;
  if (!DecodeTextInto(response, json)) {
    last_error_ = TransportError("undecodable text response");
    return false;
  }
  return true;
}

bool SketchClient::TraceDump(std::string* json) {
  Frame response;
  if (!TransactChecked(EncodeTraceDump(), &response)) return false;
  if (!DecodeTextInto(response, json)) {
    last_error_ = TransportError("undecodable text response");
    return false;
  }
  return true;
}

bool SketchClient::Shutdown() { return TransactExpectOk(EncodeShutdown()); }

}  // namespace sketch::server
