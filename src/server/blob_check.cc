#include "server/blob_check.h"

#include <cstdint>

#include "common/prng.h"

namespace sketch::server {

namespace {

// Magic words, mirrored from the sketch library's serializers (they are
// file-local there; the golden wire test pins both sides).
constexpr uint64_t kCountMinMagic = 0x534b434d494e3031ULL;     // "SKCMIN01"
constexpr uint64_t kCountSketchMagic = 0x534b43534b543031ULL;  // "SKCSKT01"
constexpr uint64_t kBloomMagic = 0x534b424c4f4f4d31ULL;        // "SKBLOOM1"
// v2 layouts append a width-mode word to the header (only ever written
// for pow2-mode sketches; see src/sketch/width_mode.h).
constexpr uint64_t kCountMinMagicV2 = 0x534b434d494e3032ULL;     // "SKCMIN02"
constexpr uint64_t kCountSketchMagicV2 = 0x534b43534b543032ULL;  // "SKCSKT02"
constexpr uint64_t kBloomMagicV2 = 0x534b424c4f4f4d32ULL;        // "SKBLOOM2"
constexpr uint64_t kPow2ModeWord = 1;  // sketch::WidthMode::kPow2
constexpr uint64_t kAmsMagic = 0x534b414d53303031ULL;          // "SKAMS001"
constexpr uint64_t kDyadicMagic = 0x534b4459434d3031ULL;       // "SKDYCM01"
constexpr uint64_t kSummaryMagic = 0x534b53554d4d3031ULL;      // "SKSUMM01"

/// Little-endian word view over a sub-range of the blob. All reads are
/// bounds-checked against the range, never the CHECK-aborting ByteReader.
class WordView {
 public:
  WordView(const uint8_t* data, uint64_t words) : data_(data), words_(words) {}

  uint64_t words() const { return words_; }

  uint64_t At(uint64_t index) const {
    uint64_t value = 0;
    const uint8_t* p = data_ + index * 8;
    for (int i = 7; i >= 0; --i) value = value << 8 | p[i];
    return value;
  }

  WordView Sub(uint64_t offset, uint64_t count) const {
    return WordView(data_ + offset * 8, count);
  }

 private:
  const uint8_t* data_;
  uint64_t words_;
};

/// True iff a * b fits in u64 (the non-aborting CheckedMulU64).
bool MulFits(uint64_t a, uint64_t b) { return b == 0 || a <= UINT64_MAX / b; }

/// Validates a flat counter-table blob (CountMin, CountSketch, AMS — all
/// share the 4-word header {magic, width, depth, seed} + width*depth
/// counters layout). `expect.*` pin fields for composite containers; pass
/// 0 / kAnySeed to accept any value.
constexpr uint64_t kAnyValue = UINT64_MAX;

struct TableExpectation {
  uint64_t magic = 0;
  uint64_t magic_v2 = 0;  // 0 = v2 layout not accepted here (embedded
                          // tables inside composites are division-mode)
  uint64_t width = kAnyValue;
  uint64_t depth = kAnyValue;
  uint64_t seed = kAnyValue;
};

BlobCheckResult CheckCounterTable(const WordView& view,
                                  const TableExpectation& expect,
                                  uint64_t max_counters, const char* label) {
  if (view.words() < 4) {
    return BlobCheckResult::Fail(std::string(label) + ": blob too short");
  }
  const uint64_t magic = view.At(0);
  const bool v2 = expect.magic_v2 != 0 && magic == expect.magic_v2;
  if (magic != expect.magic && !v2) {
    return BlobCheckResult::Fail(std::string(label) + ": bad magic");
  }
  const uint64_t width = view.At(1);
  const uint64_t depth = view.At(2);
  const uint64_t seed = view.At(3);
  if (width < 1 || depth < 1 || !MulFits(width, depth)) {
    return BlobCheckResult::Fail(std::string(label) + ": invalid geometry");
  }
  uint64_t header_words = 4;
  if (v2) {
    if (view.words() < 5) {
      return BlobCheckResult::Fail(std::string(label) + ": blob too short");
    }
    if (view.At(4) != kPow2ModeWord) {
      return BlobCheckResult::Fail(std::string(label) +
                                   ": invalid width mode");
    }
    if ((width & (width - 1)) != 0) {
      return BlobCheckResult::Fail(std::string(label) +
                                   ": pow2 width is not a power of two");
    }
    header_words = 5;
  }
  const uint64_t counters = width * depth;
  if (counters > max_counters) {
    return BlobCheckResult::Fail(std::string(label) +
                                 ": geometry exceeds counter budget");
  }
  if (view.words() != header_words + counters) {
    return BlobCheckResult::Fail(std::string(label) +
                                 ": size does not match geometry");
  }
  if (expect.width != kAnyValue && width != expect.width) {
    return BlobCheckResult::Fail(std::string(label) + ": width mismatch");
  }
  if (expect.depth != kAnyValue && depth != expect.depth) {
    return BlobCheckResult::Fail(std::string(label) + ": depth mismatch");
  }
  if (expect.seed != kAnyValue && seed != expect.seed) {
    return BlobCheckResult::Fail(std::string(label) + ": seed mismatch");
  }
  return BlobCheckResult::Ok(counters);
}

BlobCheckResult CheckBloom(const WordView& view, uint64_t max_counters) {
  if (view.words() < 4) {
    return BlobCheckResult::Fail("Bloom: blob too short");
  }
  const uint64_t magic = view.At(0);
  const bool v2 = magic == kBloomMagicV2;
  if (magic != kBloomMagic && !v2) {
    return BlobCheckResult::Fail("Bloom: bad magic");
  }
  const uint64_t num_bits = view.At(1);
  const uint64_t num_hashes = view.At(2);
  if (num_bits < 1 || num_bits > UINT64_MAX - 63) {
    return BlobCheckResult::Fail("Bloom: invalid bit count");
  }
  if (num_hashes < 1 || num_hashes > 1024) {
    return BlobCheckResult::Fail("Bloom: invalid hash count");
  }
  uint64_t header_words = 4;
  if (v2) {
    if (view.words() < 5) {
      return BlobCheckResult::Fail("Bloom: blob too short");
    }
    if (view.At(4) != kPow2ModeWord) {
      return BlobCheckResult::Fail("Bloom: invalid width mode");
    }
    if ((num_bits & (num_bits - 1)) != 0) {
      return BlobCheckResult::Fail(
          "Bloom: pow2 bit count is not a power of two");
    }
    header_words = 5;
  }
  const uint64_t bit_words = (num_bits + 63) / 64;
  if (bit_words > max_counters) {
    return BlobCheckResult::Fail("Bloom: geometry exceeds counter budget");
  }
  if (view.words() != header_words + bit_words) {
    return BlobCheckResult::Fail("Bloom: size does not match geometry");
  }
  return BlobCheckResult::Ok(bit_words);
}

/// Validates a DyadicCountMin blob. When `expect_seed` is not kAnyValue,
/// each level's embedded CountMin seed must equal the derivation
/// SplitMix64Once(expect_seed + 1000 * level) — the value Merge against a
/// freshly constructed dyadic sketch would demand (StreamSummary restore
/// takes exactly that path).
BlobCheckResult CheckDyadic(const WordView& view, uint64_t max_counters,
                            uint64_t expect_log_universe,
                            uint64_t expect_width, uint64_t expect_depth,
                            uint64_t expect_seed) {
  if (view.words() < 5) {
    return BlobCheckResult::Fail("Dyadic: blob too short");
  }
  if (view.At(0) != kDyadicMagic) {
    return BlobCheckResult::Fail("Dyadic: bad magic");
  }
  const uint64_t log_universe = view.At(1);
  const uint64_t width = view.At(3);
  const uint64_t depth = view.At(4);
  if (log_universe < 1 || log_universe > 40) {
    return BlobCheckResult::Fail("Dyadic: invalid universe");
  }
  if (expect_log_universe != kAnyValue &&
      log_universe != expect_log_universe) {
    return BlobCheckResult::Fail("Dyadic: universe mismatch");
  }
  if (width < 1 || depth < 1 || !MulFits(width, depth)) {
    return BlobCheckResult::Fail("Dyadic: invalid geometry");
  }
  if (expect_width != kAnyValue && width != expect_width) {
    return BlobCheckResult::Fail("Dyadic: width mismatch");
  }
  if (expect_depth != kAnyValue && depth != expect_depth) {
    return BlobCheckResult::Fail("Dyadic: depth mismatch");
  }
  const uint64_t per_level = width * depth;
  if (per_level > UINT64_MAX - 4 ||
      !MulFits(log_universe, per_level + 4)) {
    return BlobCheckResult::Fail("Dyadic: level table overflows");
  }
  if (!MulFits(log_universe, per_level) ||
      log_universe * per_level > max_counters) {
    return BlobCheckResult::Fail("Dyadic: geometry exceeds counter budget");
  }
  const uint64_t level_words = 4 + per_level;
  if (view.words() != 5 + log_universe * level_words) {
    return BlobCheckResult::Fail("Dyadic: size does not match geometry");
  }
  for (uint64_t l = 0; l < log_universe; ++l) {
    TableExpectation expect;
    expect.magic = kCountMinMagic;
    expect.width = width;
    expect.depth = depth;
    if (expect_seed != kAnyValue) {
      expect.seed = SplitMix64Once(expect_seed + 1000 * (l + 1));
    }
    const BlobCheckResult level = CheckCounterTable(
        view.Sub(5 + l * level_words, level_words), expect, max_counters,
        "Dyadic level");
    if (!level.ok) return level;
  }
  return BlobCheckResult::Ok(log_universe * per_level);
}

BlobCheckResult CheckSummary(const WordView& view, uint64_t max_counters) {
  if (view.words() < 9) {
    return BlobCheckResult::Fail("Summary: blob too short");
  }
  if (view.At(0) != kSummaryMagic) {
    return BlobCheckResult::Fail("Summary: bad magic");
  }
  const uint64_t log_universe = view.At(1);
  const uint64_t width = view.At(2);
  const uint64_t depth = view.At(3);
  const uint64_t verify_width = view.At(4);
  const uint64_t seed = view.At(5);
  if (log_universe < 1 || log_universe > 40) {
    return BlobCheckResult::Fail("Summary: invalid universe");
  }
  if (width < 1 || depth < 1 || verify_width < 1) {
    return BlobCheckResult::Fail("Summary: invalid geometry");
  }
  const uint64_t dyadic_words = view.At(6);
  const uint64_t verifier_words = view.At(7);
  const uint64_t ams_words = view.At(8);
  const uint64_t max_words = view.words();
  if (dyadic_words > max_words || verifier_words > max_words ||
      ams_words > max_words) {
    return BlobCheckResult::Fail("Summary: component length exceeds buffer");
  }
  if (view.words() != 9 + dyadic_words + verifier_words + ams_words) {
    return BlobCheckResult::Fail("Summary: size does not match components");
  }
  // Restore path is StreamSummary(options) + Merge(component): each
  // component blob must match the geometry AND derived seed that fresh
  // construction from the Options would produce, or Merge aborts.
  const BlobCheckResult dyadic =
      CheckDyadic(view.Sub(9, dyadic_words), max_counters, log_universe,
                  width, depth, seed);
  if (!dyadic.ok) return dyadic;
  TableExpectation verifier_expect;
  verifier_expect.magic = kCountSketchMagic;
  verifier_expect.width = verify_width;
  verifier_expect.depth = depth | 1;
  verifier_expect.seed = ~seed;
  const BlobCheckResult verifier =
      CheckCounterTable(view.Sub(9 + dyadic_words, verifier_words),
                        verifier_expect, max_counters, "Summary verifier");
  if (!verifier.ok) return verifier;
  TableExpectation ams_expect;
  ams_expect.magic = kAmsMagic;
  ams_expect.width = width;
  ams_expect.depth = depth | 1;
  ams_expect.seed = seed + 0x5eedULL;
  const BlobCheckResult ams = CheckCounterTable(
      view.Sub(9 + dyadic_words + verifier_words, ams_words), ams_expect,
      max_counters, "Summary ams");
  if (!ams.ok) return ams;
  const uint64_t total = dyadic.counters + verifier.counters + ams.counters;
  if (total > max_counters) {
    return BlobCheckResult::Fail("Summary: geometry exceeds counter budget");
  }
  return BlobCheckResult::Ok(total);
}

}  // namespace

BlobCheckResult CheckSketchBlob(SketchType type,
                                const std::vector<uint8_t>& bytes,
                                uint64_t max_counters) {
  if (bytes.empty() || bytes.size() % 8 != 0) {
    return BlobCheckResult::Fail("blob length is not a whole word count");
  }
  const WordView view(bytes.data(), bytes.size() / 8);
  switch (type) {
    case SketchType::kCountMin:
    case SketchType::kShardedCountMin: {
      // A sharded snapshot is the collapsed CountMin state.
      TableExpectation expect;
      expect.magic = kCountMinMagic;
      expect.magic_v2 = kCountMinMagicV2;
      return CheckCounterTable(view, expect, max_counters, "CountMin");
    }
    case SketchType::kCountSketch: {
      TableExpectation expect;
      expect.magic = kCountSketchMagic;
      expect.magic_v2 = kCountSketchMagicV2;
      return CheckCounterTable(view, expect, max_counters, "CountSketch");
    }
    case SketchType::kBloom:
      return CheckBloom(view, max_counters);
    case SketchType::kStreamSummary:
      return CheckSummary(view, max_counters);
  }
  return BlobCheckResult::Fail("unknown sketch type");
}

}  // namespace sketch::server
