#include "server/server.h"

#include <utility>

namespace sketch::server {

SketchServer::SketchServer(const Options& options)
    : options_(options),
      pool_(options.pool_threads),
      service_(SketchService::Options{&pool_, options.default_shards}) {}

SketchServer::~SketchServer() { Stop(); }

bool SketchServer::Start() {
  listener_ = options_.unix_path.empty()
                  ? SocketListener::ListenTcp(options_.tcp_port)
                  : SocketListener::ListenUnix(options_.unix_path);
  if (listener_ == nullptr) return false;
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SketchServer::AcceptLoop() {
  while (true) {
    std::unique_ptr<ByteStream> stream = listener_->Accept();
    if (stream == nullptr) break;  // listener closed
    if (service_.shutdown_requested()) {
      stream->Close();
      break;
    }
    // Dedicated thread per connection (see ServeConnection's contract):
    // the connection blocks on ShardedSketch ingests that Wait() on the
    // shared pool, so it must not itself be a pool task.
    ByteStream* raw = stream.release();
    MutexLock lock(connections_mutex_);
    connections_.emplace_back([this, raw] {
      std::unique_ptr<ByteStream> owned(raw);
      ServeConnection(owned.get(), &service_);
      if (service_.shutdown_requested()) {
        // Unblock the accept loop so the daemon can drain and exit.
        listener_->Close();
      }
    });
  }
}

void SketchServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  MutexLock lock(connections_mutex_);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void SketchServer::Stop() {
  if (!started_) return;
  if (listener_ != nullptr) listener_->Close();
  Wait();
  started_ = false;
}

uint16_t SketchServer::port() const {
  return listener_ == nullptr ? 0 : listener_->port();
}

}  // namespace sketch::server
