#include "server/server.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "telemetry/prometheus.h"
#include "telemetry/trace.h"

namespace sketch::server {

namespace {

/// SKETCH_FORCE_BLOCKING=1 pins the daemon to the thread-per-connection
/// path — the transport analogue of SKETCH_FORCE_SCALAR, used to diff the
/// epoll front door against the simple oracle.
bool ForceBlockingTransport() {
  const char* value = std::getenv("SKETCH_FORCE_BLOCKING");
  return value != nullptr && std::strcmp(value, "1") == 0;
}

}  // namespace

SketchServer::SketchServer(const Options& options)
    : options_(options),
      pool_(options.pool_threads),
      service_(SketchService::Options{&pool_, options.default_shards,
                                      options.pr5_oracle,
                                      options.slow_query_log_size}) {}

SketchServer::~SketchServer() { Stop(); }

bool SketchServer::Start() {
  listener_ = options_.unix_path.empty()
                  ? SocketListener::ListenTcp(options_.tcp_port)
                  : SocketListener::ListenUnix(options_.unix_path);
  if (listener_ == nullptr) return false;
  if (options_.use_event_loop && !options_.pr5_oracle &&
      !ForceBlockingTransport()) {
    EventLoopPool::Options pool_options;
    pool_options.num_threads = options_.io_threads;
    pool_options.max_outbound_bytes = options_.max_outbound_bytes;
    event_pool_ = std::make_unique<EventLoopPool>(&service_, pool_options);
    // Once a kShutdown response has been delivered, closing the listener
    // unblocks the accept loop so the daemon can drain and exit.
    event_pool_->set_shutdown_callback([this] { listener_->Close(); });
    if (!event_pool_->Start()) {
      // epoll/eventfd creation failed (fd exhaustion, exotic kernel):
      // fall back to the blocking path rather than refusing to serve.
      event_pool_.reset();
    } else {
      service_.RegisterGauge("server.connections_live", [pool =
                                                             event_pool_.get()] {
        return pool->connections_live();
      });
    }
  }
  if (options_.enable_http) {
    HealthMonitor::Options health_options;
    health_options.period_ms =
        options_.health_period_ms == 0 ? 1000 : options_.health_period_ms;
    health_monitor_ =
        std::make_unique<HealthMonitor>(&service_, health_options);
    if (options_.health_period_ms != 0) health_monitor_->Start();

    HttpExposition::Handlers handlers;
    handlers.metrics = [this] {
      return telemetry::DumpPrometheus(health_monitor_->Gauges());
    };
    handlers.statsz = [this] { return service_.StatszJson(); };
    handlers.tracez = [this] {
      // Chrome-trace JSON plus the slow-query ring: splice an extra
      // top-level key before the export's closing brace so the result
      // still loads in Perfetto (unknown keys are ignored there).
      std::string trace =
          telemetry::TraceRecorder::Instance().ExportChromeTraceJson();
      if (!trace.empty() && trace.back() == '}') trace.pop_back();
      trace += ",\"slowQueries\":";
      trace += service_.slow_query_log().ToJson();
      trace += "}";
      return trace;
    };
    handlers.healthz = [this] { return health_monitor_->HealthzJson(); };
    handlers.healthy = [this] { return !health_monitor_->degraded(); };
    http_ = std::make_unique<HttpExposition>(std::move(handlers));
    if (!http_->Start(options_.http_port)) {
      health_monitor_->Stop();
      health_monitor_.reset();
      http_.reset();
      listener_->Close();
      listener_.reset();
      return false;
    }
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SketchServer::AcceptLoop() {
  while (true) {
    if (event_pool_ != nullptr) {
      const int fd = listener_->AcceptRaw();
      if (fd < 0) break;  // listener closed
      if (service_.shutdown_requested()) {
        ::close(fd);
        break;
      }
      event_pool_->Adopt(fd);
      continue;
    }
    std::unique_ptr<ByteStream> stream = listener_->Accept();
    if (stream == nullptr) break;  // listener closed
    if (service_.shutdown_requested()) {
      stream->Close();
      break;
    }
    // Dedicated thread per connection (see ServeConnection's contract):
    // the connection blocks on ShardedSketch ingests that Wait() on the
    // shared pool, so it must not itself be a pool task.
    std::shared_ptr<ByteStream> shared = std::move(stream);
    MutexLock lock(connections_mutex_);
    std::erase_if(live_streams_, [](const std::shared_ptr<ByteStream>& s) {
      return s.use_count() == 1;  // serving thread finished with it
    });
    live_streams_.push_back(shared);
    connections_.emplace_back([this, owned = std::move(shared)] {
      ServeConnection(owned.get(), &service_,
                      ServeOptions{!options_.pr5_oracle});
      if (service_.shutdown_requested()) {
        // Unblock the accept loop so the daemon can drain and exit.
        listener_->Close();
      }
    });
  }
}

void SketchServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (event_pool_ != nullptr) {
    // Flushes every connection's pending responses and joins the I/O
    // threads. The pool object stays alive (Stopped) because the statsz
    // gauge registered in Start() reads its live-connection count.
    event_pool_->Stop();
  }
  MutexLock lock(connections_mutex_);
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
  live_streams_.clear();
}

void SketchServer::Stop() {
  if (!started_) return;
  if (http_ != nullptr) http_->Stop();
  if (health_monitor_ != nullptr) health_monitor_->Stop();
  if (listener_ != nullptr) listener_->Close();
  {
    // Force-close blocking-transport connections still mid-conversation:
    // without this, Wait() would block on connection threads whose
    // clients never hang up. (The event-loop path force-closes its own
    // connections inside EventLoopPool::Stop.)
    MutexLock lock(connections_mutex_);
    for (const std::shared_ptr<ByteStream>& stream : live_streams_) {
      stream->Close();  // idempotent; no-op for finished connections
    }
  }
  Wait();
  started_ = false;
}

uint16_t SketchServer::port() const {
  return listener_ == nullptr ? 0 : listener_->port();
}

uint16_t SketchServer::http_port() const {
  return http_ == nullptr ? 0 : http_->port();
}

}  // namespace sketch::server
