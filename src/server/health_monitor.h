#ifndef SKETCH_SERVER_HEALTH_MONITOR_H_
#define SKETCH_SERVER_HEALTH_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "server/sketch_service.h"
#include "telemetry/prometheus.h"

/// \file
/// Background sketch-accuracy monitor. The paper's error bounds are
/// conditional — Count-Min's eps*||x||_1 assumes counters far from
/// saturation and collision behavior near the design point — so a serving
/// registry needs a live signal for when those assumptions stop holding.
/// The monitor periodically walks the registry via
/// `SketchService::ForEachSketch` (one shared entry lock at a time; see
/// the lock-order note there and in DESIGN.md), runs `Introspect()`, and
/// distills each snapshot into four scalars:
///
///   - occupancy: max occupied_fraction over the snapshot tree — buckets
///     in use; past ~0.95 every key collides and estimates only inflate.
///   - collision_rate: max estimated_collision_rate over the tree (the
///     Minton-Price quantity).
///   - saturation: fraction of nonzero cells within 2 bits of the int64
///     limit (bit width >= 62) — imminent counter overflow.
///   - eps_drift: collision_rate / (e * occupancy). Under the Count-Min
///     design model a row's collision rate tracks its occupancy with
///     slope < e, so this ratio sits well below 1 at the design point and
///     crosses 1 exactly when collisions outrun what the configured
///     eps = e/width accounts for.
///
/// Any scalar over its threshold marks the sketch degraded; any degraded
/// sketch flips the process /healthz to degraded. Results are published
/// as Prometheus gauges (sketch name as label) and as JSON for /healthz.

namespace sketch::server {

/// One sketch's distilled health.
struct SketchHealth {
  std::string name;
  std::string type;
  double occupancy = 0.0;
  double collision_rate = 0.0;
  double saturation = 0.0;
  double eps_drift = 0.0;
  bool degraded = false;
  /// Comma-separated names of the thresholds exceeded (empty if healthy).
  std::string reasons;
};

class HealthMonitor {
 public:
  struct Options {
    /// Sampling period. The walk is shared-lock-only and touches each
    /// entry once, so 1 Hz is far from intrusive even on big registries.
    uint64_t period_ms = 1000;
    double max_occupancy = 0.95;
    double max_collision_rate = 0.75;
    double max_saturation = 0.01;
    double max_eps_drift = 1.0;
  };

  /// The service must outlive the monitor.
  HealthMonitor(SketchService* service, const Options& options)
      : service_(service), options_(options) {}
  ~HealthMonitor() { Stop(); }

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Starts the background sampler thread (idempotent).
  void Start();

  /// Stops and joins the sampler (idempotent; safe without Start).
  void Stop();

  /// One synchronous sampling pass (the thread body calls this; tests
  /// call it directly to avoid timing dependence).
  void RunOnce();

  /// True once any sketch exceeded a threshold on the latest pass.
  bool degraded() const {
    // relaxed: a point-in-time flag for /healthz; no other state is
    // published through it.
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Latest per-sketch health, name-sorted (registry walk order).
  std::vector<SketchHealth> Snapshot() const SKETCH_EXCLUDES(mu_);

  /// Per-sketch gauges for /metrics: sketch_health_{occupancy,
  /// collision_rate, saturation, eps_drift, degraded}{sketch="name"}.
  std::vector<telemetry::PromGauge> Gauges() const;

  /// /healthz body: {"status":"ok"|"degraded","sketches":[...]} listing
  /// only degraded sketches with their reasons.
  std::string HealthzJson() const;

  /// Distills one introspection snapshot (exposed for unit tests).
  static SketchHealth Evaluate(const std::string& name,
                               const StatsSnapshot& snapshot,
                               const Options& options);

 private:
  void ThreadBody();

  SketchService* const service_;
  const Options options_;

  mutable Mutex mu_;
  std::vector<SketchHealth> latest_ SKETCH_GUARDED_BY(mu_);
  bool running_ SKETCH_GUARDED_BY(mu_) = false;
  bool stop_requested_ SKETCH_GUARDED_BY(mu_) = false;
  CondVar wakeup_;
  std::thread thread_;
  std::atomic<bool> degraded_{false};
};

}  // namespace sketch::server

#endif  // SKETCH_SERVER_HEALTH_MONITOR_H_
